//! Hermetic-build guard: every dependency in every workspace manifest
//! must resolve inside the repository, so `cargo build --release
//! --offline && cargo test -q --offline` succeeds from a scrubbed
//! `CARGO_HOME` with no crate registry at all.
//!
//! The rule is structural, not behavioral: each dependency entry is
//! either a `path = "..."` table or `{ workspace = true }` inheriting a
//! path entry from the root manifest. Registry (`version`-only) and
//! `git` specifications are rejected by name, which keeps the failure
//! message actionable when someone adds a crate.

use std::path::{Path, PathBuf};

/// Repository root, resolved from the bench crate this test is
/// registered under.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Every manifest in the workspace: the root plus one per crate.
fn manifests() -> Vec<PathBuf> {
    let root = repo_root();
    let mut found = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).expect("crates/ directory exists");
    for entry in entries {
        let manifest = entry
            .expect("readable crates/ entry")
            .path()
            .join("Cargo.toml");
        if manifest.is_file() {
            found.push(manifest);
        }
    }
    found.sort();
    found
}

/// A dependency section header: `[dependencies]`, `[dev-dependencies]`,
/// `[build-dependencies]`, `[workspace.dependencies]`, or the expanded
/// per-dependency form `[dependencies.<name>]`.
fn is_dep_section(header: &str) -> bool {
    let h = header.trim();
    h.ends_with("dependencies]") || h.contains("dependencies.")
}

/// One dependency entry found in a manifest: its name and the inline
/// specification text to validate.
struct DepEntry {
    manifest: String,
    name: String,
    spec: String,
}

/// Line-level scan of a manifest for dependency entries. The workspace
/// only uses inline `name = { ... }` tables, but the expanded
/// `[dependencies.name]` form is collected too so a future rewrite
/// cannot slip past the guard.
fn collect_deps(path: &Path) -> Vec<DepEntry> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let manifest = path.display().to_string();
    let mut deps = Vec::new();
    let mut in_dep_section = false;
    let mut expanded: Option<DepEntry> = None;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some(entry) = expanded.take() {
                deps.push(entry);
            }
            in_dep_section = is_dep_section(line);
            if in_dep_section && line.contains("dependencies.") {
                let name = line
                    .trim_matches(['[', ']'])
                    .rsplit('.')
                    .next()
                    .unwrap_or("")
                    .to_string();
                expanded = Some(DepEntry {
                    manifest: manifest.clone(),
                    name,
                    spec: String::new(),
                });
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        if let Some(entry) = expanded.as_mut() {
            entry.spec.push_str(line);
            entry.spec.push(' ');
        } else if let Some((name, spec)) = line.split_once('=') {
            deps.push(DepEntry {
                manifest: manifest.clone(),
                name: name.trim().to_string(),
                spec: spec.trim().to_string(),
            });
        }
    }
    if let Some(entry) = expanded.take() {
        deps.push(entry);
    }
    deps
}

/// The dependency resolves inside the repository.
fn is_hermetic(spec: &str, in_workspace_root: bool) -> bool {
    if spec.contains("git") || spec.contains("registry") {
        return false;
    }
    if spec.contains("path") {
        return true;
    }
    // `workspace = true` inherits the root entry, which the root-manifest
    // pass verifies is itself a path dependency.
    !in_workspace_root && spec.contains("workspace") && spec.contains("true")
}

#[test]
fn every_dependency_is_a_workspace_path() {
    let found = manifests();
    // The walker itself is under test: the workspace has the root
    // manifest plus six crates, and silently scanning fewer would turn
    // this guard into a no-op.
    assert!(
        found.len() >= 7,
        "expected the root + >= 6 crate manifests, found {}: {found:?}",
        found.len()
    );
    let mut total = 0;
    let mut offenders = Vec::new();
    for path in &found {
        let in_workspace_root = path.parent().map(Path::new) == Some(&repo_root())
            || !path.starts_with(repo_root().join("crates"));
        for dep in collect_deps(path) {
            total += 1;
            if !is_hermetic(&dep.spec, in_workspace_root) {
                offenders.push(format!(
                    "{}: `{} = {}` does not resolve in-repo",
                    dep.manifest,
                    dep.name,
                    dep.spec.trim()
                ));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "non-hermetic dependencies (add crates as in-workspace path deps \
         or vendor the code):\n{}",
        offenders.join("\n")
    );
    // Every crate depends on at least one sibling, so an empty scan means
    // the parser broke, not that the workspace is dependency-free.
    assert!(
        total >= 10,
        "only {total} dependency entries found — parser broken?"
    );
}

#[test]
fn lockfile_contains_no_registry_packages() {
    let lock = repo_root().join("Cargo.lock");
    let text = std::fs::read_to_string(&lock)
        .unwrap_or_else(|e| panic!("reading {}: {e}", lock.display()));
    // Registry packages carry `source = "registry+..."` (and a checksum);
    // path packages carry neither.
    let sourced: Vec<&str> = text
        .lines()
        .filter(|l| l.trim_start().starts_with("source ="))
        .collect();
    assert!(
        sourced.is_empty(),
        "Cargo.lock references external package sources:\n{}",
        sourced.join("\n")
    );
}
