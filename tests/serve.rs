//! Cross-thread determinism of the online serve loop: a session run on
//! one worker thread and on four must produce bit-identical epoch
//! fingerprints (and identical deterministic report content) — shards
//! solve concurrently but commit in station order, so the thread count
//! may only change wall times.
//!
//! The worker-thread count is process-global; tests that toggle it hold
//! one shared lock.

use mec_bench::par;
use mec_bench::serve::{serve, EpochStats, ServeConfig, ServeReport};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn threads_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Strips the wall-clock fields so two runs compare on decisions alone.
fn scrub(mut r: ServeReport) -> ServeReport {
    r.decision_p50_ms = 0.0;
    r.decision_p95_ms = 0.0;
    r.assignments_per_sec = 0.0;
    for e in &mut r.epochs {
        e.decision_ns = 0;
        e.repair_ms = 0.0;
    }
    r
}

fn session(cfg: &ServeConfig, threads: usize) -> ServeReport {
    par::set_threads(threads);
    serve(cfg).unwrap()
}

/// The ISSUE acceptance oracle: identical epoch fingerprints between
/// `--threads 1` and `--threads 4` over several seeds, churn-free.
#[test]
fn serve_fingerprints_match_across_thread_counts() {
    let _guard = threads_lock();
    for seed in [3u64, 17, 4242] {
        let cfg = ServeConfig {
            seed,
            epochs: 5,
            ..ServeConfig::default()
        };
        let serial = session(&cfg, 1);
        let parallel = session(&cfg, 4);
        assert_eq!(
            serial.session_fingerprint, parallel.session_fingerprint,
            "seed {seed}: session fingerprints diverge across thread counts"
        );
        for (a, b) in serial.epochs.iter().zip(&parallel.epochs) {
            assert_eq!(
                a.fingerprint, b.fingerprint,
                "seed {seed} epoch {}: fingerprints diverge",
                a.epoch
            );
        }
        assert_eq!(
            scrub(serial),
            scrub(parallel),
            "seed {seed}: report content"
        );
    }
    par::set_threads(0);
}

/// Same oracle under churn: dead owners and re-sourced tasks shuffle the
/// per-epoch shard shapes, which must still commit deterministically.
#[test]
fn serve_with_churn_is_thread_count_invariant() {
    let _guard = threads_lock();
    for (seed, chaos) in [(11u64, 3u64), (23, 9), (5, 21)] {
        let cfg = ServeConfig {
            seed,
            epochs: 6,
            num_stations: 2,
            devices_per_station: 3,
            max_input_kb: 1200.0,
            chaos: Some(chaos),
            ..ServeConfig::default()
        };
        let serial = session(&cfg, 1);
        let parallel = session(&cfg, 4);
        assert_eq!(
            scrub(serial),
            scrub(parallel),
            "seed {seed} chaos {chaos}: churned sessions diverge across threads"
        );
    }
    par::set_threads(0);
}

/// Pins the reference sessions' fingerprints to their golden values.
/// These are the byte-for-byte decision digests of `dsmec serve --seed
/// 42 --epochs 20` with and without the documented chaos seed; storage
/// refactors (the arena/SoA work of DESIGN.md §11 included) must not
/// move them. A change here means decisions changed — that is a
/// behavior change to justify, not a constant to update in passing.
#[test]
fn reference_session_fingerprints_are_pinned() {
    let _guard = threads_lock();
    par::set_threads(0);
    let default_cfg = ServeConfig {
        seed: 42,
        epochs: 20,
        ..ServeConfig::default()
    };
    let report = serve(&default_cfg).unwrap();
    assert_eq!(report.session_fingerprint, "33b92d38ebe7d960");
    let chaos_cfg = ServeConfig {
        chaos: Some(12_648_430),
        ..default_cfg
    };
    let report = serve(&chaos_cfg).unwrap();
    assert_eq!(report.session_fingerprint, "03c67e80a4ca687f");
}

/// The telemetry-era `EpochStats` fields: `deadline_misses` is
/// deterministic content that must survive a djson round-trip and match
/// across runs; `repair_ms` is wall time that must stay out of the
/// fingerprint (two runs of the same session agree on every fingerprint
/// even though their repair timings differ).
#[test]
fn epoch_stats_new_fields_round_trip_and_stay_out_of_fingerprints() {
    let _guard = threads_lock();
    par::set_threads(0);
    let cfg = ServeConfig {
        seed: 42,
        epochs: 4,
        num_stations: 2,
        devices_per_station: 3,
        max_input_kb: 1200.0,
        ..ServeConfig::default()
    };
    let a = serve(&cfg).unwrap();
    let b = serve(&cfg).unwrap();

    let json = djson::to_string(&a.epochs[0]);
    assert!(json.contains("\"deadline_misses\""), "{json}");
    assert!(json.contains("\"repair_ms\""), "{json}");
    let back: EpochStats = djson::from_str(&json).unwrap();
    assert_eq!(back, a.epochs[0]);

    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(x.fingerprint, y.fingerprint, "epoch {}", x.epoch);
        assert_eq!(x.deadline_misses, y.deadline_misses, "epoch {}", x.epoch);
        assert!(x.repair_ms >= 0.0);
    }
    assert_eq!(scrub(a), scrub(b));
}

/// Warm-start acceptance gate: after the cold first epoch, the default
/// (churn-free) stream keeps every cluster's LP shape constant, so the
/// steady-state hit rate must clear the >50% bar with room to spare.
#[test]
fn steady_state_warm_hit_rate_clears_the_bar() {
    let _guard = threads_lock();
    par::set_threads(2);
    let cfg = ServeConfig {
        seed: 42,
        epochs: 8,
        ..ServeConfig::default()
    };
    let report = serve(&cfg).unwrap();
    assert!(
        report.steady_warm_hit_rate > 0.5,
        "steady warm hit rate {} below the acceptance bar",
        report.steady_warm_hit_rate
    );
    assert_eq!(report.epochs[0].warm_attempts, 0, "epoch 0 must run cold");
    assert!(report.warm_attempts > 0);
    par::set_threads(0);
}
