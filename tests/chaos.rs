//! Chaos-engineering oracle suite: deterministic fault injection in the
//! discrete-event executor, replanning, invariant oracles over a seed
//! matrix, cross-thread event-sequence determinism, and failing-seed
//! shrinking.
//!
//! The invariants checked here are the determinism contract of
//! DESIGN.md §8:
//!
//! 1. an empty [`FaultPlan`] is **bit-identical** to the plain executor;
//! 2. no task is ever silently dropped — every input task reports
//!    exactly one fate, completed or explicitly failed;
//! 3. energy and latency accounting stays finite and non-negative under
//!    any fault schedule;
//! 4. the fault/repair event sequence is a pure function of the seed,
//!    independent of the worker-thread count;
//! 5. a deliberately broken invariant shrinks to a small repro
//!    (≤ 2 stations, ≤ 4 devices) via `detrand::prop`.
//!
//! Seed-matrix knobs (mirrored in the CI chaos job):
//! `DSMEC_CHAOS_SEEDS=1,2,3` replaces the default matrix;
//! `DSMEC_CHAOS_EXTENDED=1` widens it for the nightly-ish sweep.

use dsmec_core::repair::{AbandonReason, RepairPolicy, TaskFate};
use dsmec_core::{execute_with_repair, CostTable};
use mec_bench::cli::{
    assign_scenario, chaos_assignment, generate_scenario, resolve_chaos, AlgorithmName,
};
use mec_bench::par;
use mec_sim::sim::{simulate, simulate_chaos, ChaosConfig, Contention, Fault, FaultPlan};
use mec_sim::task::ExecutionSite;
use mec_sim::topology::DeviceId;
use mec_sim::units::Seconds;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that mutate process-global state (the worker-thread
/// count, environment variables).
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The chaos seed matrix: `DSMEC_CHAOS_SEEDS` (comma-separated) wins;
/// otherwise a fixed default, widened when `DSMEC_CHAOS_EXTENDED=1`.
fn seed_matrix() -> Vec<u64> {
    if let Ok(spec) = std::env::var("DSMEC_CHAOS_SEEDS") {
        let seeds: Vec<u64> = spec
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("DSMEC_CHAOS_SEEDS entry {s:?}: {e}"))
            })
            .collect();
        if !seeds.is_empty() {
            return seeds;
        }
    }
    let mut seeds = vec![1, 7, 42, 0xC0FFEE, 0xDEAD_BEEF];
    if std::env::var("DSMEC_CHAOS_EXTENDED").as_deref() == Ok("1") {
        seeds.extend(100..132);
    }
    seeds
}

/// Invariant 1: the `FaultPlan::none()` chaos path produces bit-for-bit
/// the completion times, sojourns and energies of the plain executor,
/// under both contention models. This is the regression fence that keeps
/// the fault plane zero-cost when unused.
#[test]
fn empty_fault_plan_is_bit_identical_to_the_plain_executor() {
    let scenario = generate_scenario(42, 3, 8, 60, 3000.0).unwrap();
    let file = assign_scenario(&scenario, AlgorithmName::LpHta, 42).unwrap();
    let exec = file.assignment.to_executable(&scenario.tasks).unwrap();
    for contention in [Contention::None, Contention::Exclusive] {
        let plain = simulate(&scenario.system, &exec, contention).unwrap();
        let chaos =
            simulate_chaos(&scenario.system, &exec, contention, &FaultPlan::none()).unwrap();
        assert_eq!(plain.results.len(), chaos.results.len());
        assert!(chaos.events.is_empty());
        for (p, c) in plain.results.iter().zip(&chaos.results) {
            assert_eq!(p.id, c.id);
            assert_eq!(
                p.energy.value().to_bits(),
                c.energy.value().to_bits(),
                "{}: energy differs under {contention:?}",
                p.id
            );
            match c.outcome {
                mec_sim::sim::ChaosOutcome::Completed {
                    completion,
                    sojourn,
                    met_deadline,
                } => {
                    assert_eq!(p.completion.value().to_bits(), completion.value().to_bits());
                    assert_eq!(p.sojourn.value().to_bits(), sojourn.value().to_bits());
                    assert_eq!(p.met_deadline, met_deadline);
                }
                mec_sim::sim::ChaosOutcome::Failed(hit) => {
                    panic!("{}: failed under an empty plan: {hit:?}", p.id)
                }
            }
        }
    }
}

/// Invariants 2 and 3 over the whole seed matrix: every task reports
/// exactly one fate, failures carry explicit reasons, and all accounting
/// stays finite and non-negative.
#[test]
fn invariant_oracles_hold_across_the_seed_matrix() {
    let scenario = generate_scenario(42, 3, 8, 60, 3000.0).unwrap();
    let file = assign_scenario(&scenario, AlgorithmName::LpHta, 42).unwrap();
    for seed in seed_matrix() {
        let run = chaos_assignment(&scenario, &file, Contention::Exclusive, seed).unwrap();
        let r = &run.report;
        // Exactly one fate per input task, in input order.
        assert_eq!(r.results.len(), scenario.tasks.len(), "seed {seed}");
        for (t, task) in r.results.iter().zip(&scenario.tasks) {
            assert_eq!(t.id, task.id, "seed {seed}: fate order");
            let e = t.energy.value();
            assert!(
                e.is_finite() && e >= 0.0,
                "seed {seed} {}: energy {e}",
                t.id
            );
            match t.fate {
                TaskFate::Completed {
                    completion,
                    sojourn,
                    met_deadline,
                    ..
                } => {
                    let (c, s) = (completion.value(), sojourn.value());
                    assert!(c.is_finite() && c >= 0.0, "seed {seed} {}: {c}", t.id);
                    assert!(s.is_finite() && s >= 0.0, "seed {seed} {}: {s}", t.id);
                    assert_eq!(
                        met_deadline,
                        sojourn <= task.deadline,
                        "seed {seed} {}: deadline bookkeeping",
                        t.id
                    );
                }
                TaskFate::Failed { reason, last_hit } => {
                    // Deadlines are "met or explicitly failed": a failed
                    // task names its reason, and fault-caused failures
                    // carry the hit that killed them.
                    match reason {
                        AbandonReason::CancelledAtAssignment => {
                            assert!(last_hit.is_none(), "seed {seed} {}", t.id)
                        }
                        AbandonReason::OwnerLost | AbandonReason::DataLost => {
                            assert!(last_hit.is_some(), "seed {seed} {}", t.id)
                        }
                        AbandonReason::RetriesExhausted | AbandonReason::NoFeasibleSite => {}
                    }
                }
            }
        }
        assert_eq!(r.completed() + r.failed(), scenario.tasks.len());
        let total = r.total_energy().value();
        assert!(total.is_finite() && total >= 0.0, "seed {seed}: {total}");
        assert!(r.waves >= 1, "seed {seed}");
        // The run is replayable: same seed, same fingerprint.
        let again = chaos_assignment(&scenario, &file, Contention::Exclusive, seed).unwrap();
        assert_eq!(run, again, "seed {seed}: replay diverged");
    }
}

/// Invariant 4: the fault/repair event sequence is identical across
/// worker-thread counts. Seed 0xC0FFEE (12648430) is the documented
/// reference seed (EXPERIMENTS.md); the whole check lives in ONE test fn
/// because the thread count is process-global.
#[test]
fn fault_and_repair_event_sequence_is_identical_across_thread_counts() {
    let _guard = global_lock();
    let scenario = generate_scenario(42, 3, 8, 60, 3000.0).unwrap();
    let file = assign_scenario(&scenario, AlgorithmName::LpHta, 42).unwrap();
    let seeds: Vec<u64> = vec![0xC0FFEE, 1, 42];
    let fingerprints = |seeds: &[u64]| -> Vec<String> {
        par::par_map(seeds, |&seed| {
            chaos_assignment(&scenario, &file, Contention::Exclusive, seed)
                .unwrap()
                .report
                .fingerprint()
        })
    };
    par::set_threads(1);
    let serial = fingerprints(&seeds);
    par::set_threads(4);
    let parallel = fingerprints(&seeds);
    par::set_threads(0); // restore ambient resolution
    assert!(!serial.iter().all(String::is_empty), "no events at all?");
    for ((seed, a), b) in seeds.iter().zip(&serial).zip(&parallel) {
        assert_eq!(a, b, "seed {seed}: event sequence depends on threads");
    }
}

/// The shrinkable chaos case: a scenario sized by the generator's
/// [`detrand::prop::Scale`], plus the seed of the fault plan thrown at
/// it.
#[derive(Debug, Clone, Copy)]
struct ChaosCase {
    stations: usize,
    devices_per_station: usize,
    tasks: usize,
    chaos_seed: u64,
}

/// Invariant 5: shrinking. "No task ever fails under chaos" is a
/// deliberately broken invariant (an all-device dropout at t=0 strands
/// every offloaded task); the scaled harness must reduce the failing
/// case from paper-sized systems to ≤ 2 stations and ≤ 4 devices, and
/// the minimized plan is archived for the CI artifact upload.
#[test]
fn shrinker_reduces_a_failing_chaos_invariant_to_a_tiny_system() {
    use detrand::prop::{find_failure_scaled, Scale};

    let run_case = |case: &ChaosCase| -> Result<(), String> {
        let scenario = generate_scenario(
            case.chaos_seed,
            case.stations,
            case.devices_per_station,
            case.tasks,
            1500.0,
        )
        .map_err(|e| e.to_string())?;
        // Offload everything so every task depends on its owner's radio.
        let n = scenario.tasks.len();
        let assignment = dsmec_core::Assignment::uniform(n, ExecutionSite::Station);
        let faults = FaultPlan::new(
            &scenario.system,
            scenario
                .system
                .devices()
                .iter()
                .map(|d| Fault::Dropout {
                    device: d.id,
                    at: Seconds::ZERO,
                })
                .collect(),
        )
        .map_err(|e| e.to_string())?;
        let report = execute_with_repair(
            &scenario.system,
            &scenario.tasks,
            &assignment,
            Contention::Exclusive,
            &faults,
            &RepairPolicy::default(),
        )
        .map_err(|e| e.to_string())?;
        // The broken oracle: pretend failures should never happen.
        detrand::prop_assert!(
            report.failed() == 0,
            "{} of {} tasks failed",
            report.failed(),
            report.results.len()
        );
        Ok(())
    };

    let shrunk = find_failure_scaled(
        "chaos_no_task_ever_fails",
        4,
        |rng, scale| ChaosCase {
            stations: rng.gen_range(1..=scale.upper(1, 5)),
            devices_per_station: rng.gen_range(1..=scale.upper(1, 8)),
            tasks: rng.gen_range(1..=scale.upper(2, 40)),
            chaos_seed: rng.gen_range(0..1000u64),
        },
        run_case,
    )
    .expect("an all-device dropout must fail the broken oracle at any size");

    // The harness found a failure at full size AND kept shrinking it.
    assert!(
        shrunk.scale.factor() <= Scale::new(0.5).factor(),
        "shrinker never reduced the case: {shrunk}"
    );
    let c = shrunk.case;
    assert!(
        c.stations <= 2 && c.stations * c.devices_per_station <= 4,
        "minimized case is not minimal: {shrunk}"
    );
    // Archive the minimized case + its fault plan for CI upload.
    let scenario = generate_scenario(
        c.chaos_seed,
        c.stations,
        c.devices_per_station,
        c.tasks,
        1500.0,
    )
    .unwrap();
    let plan = FaultPlan::new(
        &scenario.system,
        scenario
            .system
            .devices()
            .iter()
            .map(|d| Fault::Dropout {
                device: d.id,
                at: Seconds::ZERO,
            })
            .collect(),
    )
    .unwrap();
    // Anchor on the workspace target dir — integration tests run with
    // the package root (crates/bench) as cwd, not the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("minimized_plan.json"),
        djson::to_string_pretty(&plan),
    )
    .unwrap();
    std::fs::write(
        dir.join("minimized_case.txt"),
        format!(
            "{shrunk}\nreplay: DSMEC_PROP_SEED={} (scale {:.6})\n",
            shrunk.seed,
            shrunk.scale.factor()
        ),
    )
    .unwrap();
}

/// `--chaos SEED` beats `DSMEC_CHAOS`, which beats "off" — the same
/// resolution order as `--trace`/`DSMEC_TRACE`.
#[test]
fn dsmec_chaos_env_var_is_honored() {
    let _guard = global_lock();
    std::env::set_var("DSMEC_CHAOS", "12648430");
    assert_eq!(resolve_chaos(None), Ok(Some(12648430)));
    assert_eq!(resolve_chaos(Some("7")), Ok(Some(7)));
    std::env::set_var("DSMEC_CHAOS", "not-a-seed");
    assert!(resolve_chaos(None).is_err());
    std::env::remove_var("DSMEC_CHAOS");
    assert_eq!(resolve_chaos(None), Ok(None));
}

/// A generated chaos schedule actually exercises the repair machinery on
/// the reference seed — guarding against the plan generator silently
/// producing windows that never overlap the schedule.
#[test]
fn reference_seed_produces_faults_and_repairs() {
    let scenario = generate_scenario(42, 3, 8, 60, 3000.0).unwrap();
    let file = assign_scenario(&scenario, AlgorithmName::LpHta, 42).unwrap();
    let run = chaos_assignment(&scenario, &file, Contention::Exclusive, 0xC0FFEE).unwrap();
    assert!(
        !run.plan.is_empty(),
        "reference seed generated no faults at all"
    );
    assert!(
        !run.report.events.is_empty(),
        "no fault ever struck the schedule; horizon {:?} vs plan {:?}",
        run.horizon,
        run.plan
    );
    // And the plan itself is a pure function of the seed.
    let horizon = run.horizon;
    let a = ChaosConfig::from_seed(0xC0FFEE)
        .generate(&scenario.system, horizon)
        .unwrap();
    assert_eq!(a, run.plan);
}

/// Malformed chaos inputs fail loudly with typed errors, not panics.
#[test]
fn malformed_chaos_inputs_are_rejected() {
    let scenario = generate_scenario(9, 1, 3, 6, 1000.0).unwrap();
    // Unknown device.
    let err = FaultPlan::new(
        &scenario.system,
        vec![Fault::Dropout {
            device: DeviceId(999),
            at: Seconds::ZERO,
        }],
    )
    .unwrap_err();
    assert!(err.to_string().contains("999"), "{err}");
    // Length-mismatched assignment.
    let file = assign_scenario(&scenario, AlgorithmName::LpHta, 9).unwrap();
    let short = dsmec_core::Assignment::uniform(2, ExecutionSite::Device);
    let err = execute_with_repair(
        &scenario.system,
        &scenario.tasks,
        &short,
        Contention::None,
        &FaultPlan::none(),
        &RepairPolicy::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, dsmec_core::AssignError::LengthMismatch { .. }),
        "{err}"
    );
    // The well-formed baseline still works (no cross-contamination).
    let costs = CostTable::build(&scenario.system, &scenario.tasks).unwrap();
    assert_eq!(costs.len(), scenario.tasks.len());
    drop(file);
}
