//! Cross-crate property tests: randomized scenario parameters, with the
//! paper's invariants asserted end to end.
//!
//! Runs on the in-workspace seeded harness ([`detrand::prop`]); set
//! `DSMEC_PROP_SEED` to replay a failing case stream.

use detrand::prop::run_cases;
use detrand::{prop_assert, prop_assert_eq, ChaCha8Rng};
use dsmec_core::costs::CostTable;
use dsmec_core::dta::{divide_balanced, divide_min_devices};
use dsmec_core::hta::{Hgos, HtaAlgorithm, LpHta};
use dsmec_core::metrics::{capacity_usage, evaluate_assignment};
use mec_sim::sim::{simulate, Contention};
use mec_sim::units::Bytes;
use mec_sim::workload::{DivisibleScenarioConfig, ScenarioConfig};

/// Draws a scenario configuration from the same parameter ranges the old
/// proptest strategy used.
fn arb_config(rng: &mut ChaCha8Rng) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_defaults(rng.gen_range(0..10_000u64));
    cfg.num_stations = rng.gen_range(1..5usize);
    cfg.devices_per_station = rng.gen_range(2..8usize);
    cfg.tasks_total = rng.gen_range(10..60usize);
    cfg.max_input_kb = rng.gen_range(500.0..4000.0);
    let dl_lo = rng.gen_range(1.0..3.0);
    cfg.deadline_factor_range = (dl_lo, dl_lo + 1.0);
    cfg.device_resource_mb = rng.gen_range(2.0..16.0);
    cfg.station_resource_mb = rng.gen_range(20.0..300.0);
    cfg
}

/// LP-HTA output is always feasible: deadlines for assigned tasks,
/// capacities everywhere, one decision per task.
#[test]
fn lp_hta_is_always_feasible() {
    run_cases("lp_hta_is_always_feasible", 24, |rng| {
        let cfg = arb_config(rng);
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let a = LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap();
        prop_assert_eq!(a.len(), s.tasks.len());
        for (idx, task) in s.tasks.iter().enumerate() {
            if let Some(site) = a.decision(idx).site() {
                prop_assert!(costs.feasible(idx, site, task.deadline));
            }
        }
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        prop_assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        Ok(())
    });
}

/// The certified ratio bound is finite and at least 1 whenever tasks
/// were assigned, and the final energy respects the Lemma-1 chain.
#[test]
fn lp_hta_certificate_sanity() {
    run_cases("lp_hta_certificate_sanity", 24, |rng| {
        let cfg = arb_config(rng);
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let (a, r) = LpHta::paper()
            .without_fast_path()
            .assign_with_report(&s.system, &s.tasks, &costs)
            .unwrap();
        prop_assert!(r.lp_objective > 0.0);
        prop_assert!(r.rounded_energy <= 3.0 * r.lp_objective + 1e-6);
        prop_assert!(r.theorem2_bound >= 3.0);
        prop_assert!(r.delta >= 0.0);
        prop_assert_eq!(a.cancelled().len(), r.cancelled.len());
        Ok(())
    });
}

/// Analytic metrics equal discrete-event execution for any algorithm
/// output (unlimited resources).
#[test]
fn sim_cross_check() {
    run_cases("sim_cross_check", 24, |rng| {
        let cfg = arb_config(rng);
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let a = Hgos::default().assign(&s.system, &s.tasks, &costs).unwrap();
        let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
        let exec = a.to_executable(&s.tasks).unwrap();
        let report = simulate(&s.system, &exec, Contention::None).unwrap();
        let sim_e = report.total_energy().value();
        prop_assert!((m.total_energy.value() - sim_e).abs() < 1e-6 * (1.0 + sim_e));
        Ok(())
    });
}

/// Division invariants on random divisible scenarios: validity plus
/// the two optimization directions.
#[test]
fn division_invariants() {
    run_cases("division_invariants", 24, |rng| {
        let items = rng.gen_range(50..400usize);
        let mut cfg = DivisibleScenarioConfig::paper_defaults(rng.gen_range(0..5000u64));
        cfg.num_items = items;
        cfg.tasks_total = rng.gen_range(5..40usize);
        cfg.items_per_task = (2, 10.min(items));
        let s = cfg.generate().unwrap();
        let required = s.required_universe();
        let w = divide_balanced(&s.universe, &required).unwrap();
        let n = divide_min_devices(&s.universe, &required).unwrap();
        prop_assert!(w.validate(&s.universe, &required).is_ok());
        prop_assert!(n.validate(&s.universe, &required).is_ok());
        prop_assert!(n.involved_devices() <= w.involved_devices());
        prop_assert!(w.max_share_len() <= n.max_share_len());
        Ok(())
    });
}

/// Battery attribution: summed device shares never exceed the system
/// energy for any task/site.
#[test]
fn battery_attribution_is_bounded_by_system_energy() {
    use mec_sim::battery::attribute_energy;
    use mec_sim::cost::evaluate;
    use mec_sim::task::ExecutionSite;
    run_cases(
        "battery_attribution_is_bounded_by_system_energy",
        16,
        |rng| {
            let mut cfg = ScenarioConfig::paper_defaults(rng.gen_range(0..2000u64));
            cfg.tasks_total = 12;
            let s = cfg.generate().unwrap();
            for task in &s.tasks {
                let costs = evaluate(&s.system, task).unwrap();
                for site in ExecutionSite::ALL {
                    let shares = attribute_energy(&s.system, task, site).unwrap();
                    let paid: f64 = shares.iter().map(|sh| sh.energy.value()).sum();
                    prop_assert!(paid <= costs.at(site).energy.value() + 1e-9);
                }
            }
            Ok(())
        },
    );
}

/// Mobility churn is monotone in the move probability (in
/// expectation; checked with a margin) and epoch 0 never churns.
#[test]
fn mobility_churn_scales_with_probability() {
    use mec_sim::mobility::MobilityConfig;
    run_cases("mobility_churn_scales_with_probability", 16, |rng| {
        let seed = rng.gen_range(0..500u64);
        let mut low = MobilityConfig::paper_defaults(seed);
        low.move_prob = 0.05;
        low.epochs = 2;
        let mut high = MobilityConfig::paper_defaults(seed);
        high.move_prob = 0.9;
        high.epochs = 2;
        let a = low.generate().unwrap();
        let b = high.generate().unwrap();
        prop_assert_eq!(a.churn(0, 0).unwrap(), 0.0);
        prop_assert!(b.churn(0, 1).unwrap() >= a.churn(0, 1).unwrap());
        Ok(())
    });
}

/// The online controllers never violate capacities or deadlines, for
/// any policy and pressure level.
#[test]
fn online_is_always_feasible() {
    use dsmec_core::hta::{OnlineHta, OnlinePolicy};
    run_cases("online_is_always_feasible", 16, |rng| {
        let mut cfg = ScenarioConfig::paper_defaults(rng.gen_range(0..1000u64));
        cfg.tasks_total = 40;
        cfg.device_resource_mb = rng.gen_range(2.0..12.0);
        let reserve = rng.gen_range(0.0..0.5);
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        for policy in [OnlinePolicy::Greedy, OnlinePolicy::Reserve { reserve }] {
            let a = OnlineHta { policy }
                .assign(&s.system, &s.tasks, &costs)
                .unwrap();
            for (idx, task) in s.tasks.iter().enumerate() {
                if let Some(site) = a.decision(idx).site() {
                    prop_assert!(costs.feasible(idx, site, task.deadline));
                }
            }
            let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
            prop_assert!(usage.within_limits(&s.system, Bytes::new(1e-6)));
        }
        Ok(())
    });
}

/// Station shadow prices vanish when capacity is abundant.
#[test]
fn shadow_prices_sane() {
    use dsmec_core::hta::station_capacity_prices;
    run_cases("shadow_prices_sane", 16, |rng| {
        let mut cfg = ScenarioConfig::paper_defaults(rng.gen_range(0..300u64));
        cfg.tasks_total = 30;
        cfg.station_resource_mb = 1_000_000.0;
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let prices = station_capacity_prices(&s.system, &s.tasks, &costs).unwrap();
        for (_, p) in prices {
            prop_assert!(p.abs() < 1e-9, "slack stations price at zero, got {p}");
        }
        Ok(())
    });
}
