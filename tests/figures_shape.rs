//! Shape tests for the reproduced figures: the absolute numbers depend on
//! our simulator, but the *qualitative* relationships the paper reports
//! (who wins, how curves move) must hold. Each test runs the real figure
//! runner in quick mode and checks the paper's claims about it.

use mec_bench::figures::{
    ablate_contention, ablate_lp_backend, ablate_rebalance, fig2a, fig2b, fig3, fig4a, fig4b,
    fig5a, fig5b, fig6a, fig6b, ratio_check, table1, ExperimentOptions,
};
use mec_bench::table::Figure;

fn quick() -> ExperimentOptions {
    ExperimentOptions::quick()
}

fn series<'f>(fig: &'f Figure, name: &str) -> &'f [f64] {
    &fig.series_named(name)
        .unwrap_or_else(|| panic!("{} missing series {name}", fig.id))
        .values
}

fn all_below(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

#[test]
fn fig2a_lp_hta_wins_on_energy() {
    let fig = fig2a(&quick()).unwrap();
    let lp = series(&fig, "LP-HTA");
    for other in ["AllToC", "AllOffload"] {
        assert!(
            lp.iter()
                .zip(series(&fig, other))
                .all(|(a, b)| *a < 0.5 * b),
            "LP-HTA must be far below {other}"
        );
    }
    // HGOS is competitive but never much better.
    let hgos = series(&fig, "HGOS");
    assert!(lp.iter().zip(hgos).all(|(a, b)| *a <= b * 1.05));
    // Energy grows with the task count for every algorithm.
    for s in &fig.series {
        assert!(
            s.values.windows(2).all(|w| w[0] < w[1]),
            "{} not increasing",
            s.name
        );
    }
}

#[test]
fn fig2b_lp_hta_wins_as_data_grows() {
    let fig = fig2b(&quick()).unwrap();
    let lp = series(&fig, "LP-HTA");
    // HGOS may edge ahead slightly at light load by ignoring deadlines
    // (the paper's Fig. 3 point); LP-HTA stays within a few percent.
    assert!(lp
        .iter()
        .zip(series(&fig, "HGOS"))
        .all(|(a, b)| *a <= b * 1.05));
    assert!(all_below(lp, series(&fig, "AllToC")));
    assert!(all_below(lp, series(&fig, "AllOffload")));
    assert!(
        lp.windows(2).all(|w| w[0] < w[1]),
        "energy grows with data size"
    );
}

#[test]
fn fig3_unsatisfied_ordering() {
    let fig = fig3(&quick()).unwrap();
    let lp = series(&fig, "LP-HTA");
    let hgos = series(&fig, "HGOS");
    let offload = series(&fig, "AllOffload");
    assert!(all_below(lp, hgos), "LP-HTA <= HGOS everywhere");
    assert!(all_below(lp, offload), "LP-HTA <= AllOffload everywhere");
    assert!(lp.iter().all(|&r| r < 0.2), "LP-HTA rate stays small");
    assert!(
        offload.iter().all(|&r| r > 0.3),
        "AllOffload misses many deadlines"
    );
}

#[test]
fn fig4a_latency_ordering() {
    let fig = fig4a(&quick()).unwrap();
    let lp = series(&fig, "LP-HTA");
    assert!(all_below(lp, series(&fig, "AllToC")));
    assert!(all_below(lp, series(&fig, "AllOffload")));
    assert!(lp
        .iter()
        .zip(series(&fig, "HGOS"))
        .all(|(a, b)| *a <= b * 1.02));
}

#[test]
fn fig4b_latency_grows_with_data() {
    let fig = fig4b(&quick()).unwrap();
    for s in &fig.series {
        assert!(
            s.values.windows(2).all(|w| w[0] <= w[1] * 1.05),
            "{} latency should grow (roughly) with input size",
            s.name
        );
    }
    let lp = series(&fig, "LP-HTA");
    assert!(all_below(lp, series(&fig, "AllToC")));
}

#[test]
fn fig5a_dta_saves_energy_with_growing_gap() {
    let fig = fig5a(&quick()).unwrap();
    let lp = series(&fig, "LP-HTA");
    let w = series(&fig, "DTA-Workload");
    let n = series(&fig, "DTA-Number");
    assert!(all_below(w, lp));
    assert!(all_below(n, lp));
    // The absolute saving grows with the number of tasks.
    let gap_first = lp[0] - w[0];
    let gap_last = lp[lp.len() - 1] - w[w.len() - 1];
    assert!(gap_last > gap_first, "paper: savings grow with task count");
}

#[test]
fn fig5b_dta_energy_falls_with_result_size() {
    let fig = fig5b(&quick()).unwrap();
    let w = series(&fig, "DTA-Workload");
    // Over the proportional models (0.4X → 0.05X) energy must fall.
    assert!(w[0] > w[1] && w[1] > w[2] && w[2] > w[3]);
    // LP-HTA barely moves: it ships raw data either way.
    let lp = series(&fig, "LP-HTA");
    let spread = (lp[0] - lp[3]).abs() / lp[0];
    assert!(spread < 0.15, "LP-HTA spread {spread} should be small");
    // DTA stays below LP-HTA everywhere.
    assert!(all_below(w, lp));
}

#[test]
fn fig6a_workload_processes_faster() {
    let fig = fig6a(&quick()).unwrap();
    let w = series(&fig, "DTA-Workload");
    let n = series(&fig, "DTA-Number");
    assert!(
        w.iter().zip(n).all(|(a, b)| *a < *b),
        "balanced division must process faster"
    );
}

#[test]
fn fig6b_number_involves_fewer_devices() {
    let fig = fig6b(&quick()).unwrap();
    let w = series(&fig, "DTA-Workload");
    let n = series(&fig, "DTA-Number");
    assert!(
        n.iter().zip(w).all(|(a, b)| *a < 0.5 * b),
        "set-cover division must involve far fewer devices"
    );
}

#[test]
fn table1_is_the_paper_table() {
    let fig = table1(&quick()).unwrap();
    assert_eq!(fig.x_ticks, vec!["4G", "Wi-Fi"]);
    let up = series(&fig, "upload (Mbps)");
    assert!((up[0] - 5.85).abs() < 1e-9);
    assert!((up[1] - 12.88).abs() < 1e-9);
    let pt = series(&fig, "P^T (W)");
    assert!((pt[0] - 7.32).abs() < 1e-9 && (pt[1] - 15.7).abs() < 1e-9);
}

#[test]
fn ratio_check_within_certificates() {
    let fig = ratio_check(&quick()).unwrap();
    let ratio = series(&fig, "empirical ratio");
    let bound = series(&fig, "certificate");
    for (r, b) in ratio.iter().zip(bound) {
        if r.is_finite() {
            assert!(*r >= 1.0 - 1e-9);
            assert!(r <= b, "empirical {r} above certificate {b}");
        }
    }
}

#[test]
fn lp_backends_agree_on_energy() {
    let fig = ablate_lp_backend(&quick()).unwrap();
    let ipm = series(&fig, "energy (IPM)");
    let spx = series(&fig, "energy (simplex)");
    for (a, b) in ipm.iter().zip(spx) {
        assert!(
            (a - b).abs() < 0.05 * b.abs().max(1.0),
            "backends disagree: {a} vs {b}"
        );
    }
}

#[test]
fn rebalance_sits_between_greedy_and_exact() {
    let fig = ablate_rebalance(&quick()).unwrap();
    let greedy = series(&fig, "greedy");
    let refined = series(&fig, "rebalanced");
    let exact = series(&fig, "exact");
    for ((g, r), e) in greedy.iter().zip(refined).zip(exact) {
        assert!(r <= g, "rebalancing never hurts");
        assert!(e <= r, "exact is the floor");
    }
}

#[test]
fn contention_stretches_latency() {
    let fig = ablate_contention(&quick()).unwrap();
    let free = series(&fig, "analytic mean latency");
    let queued = series(&fig, "queued mean latency");
    let makespan = series(&fig, "queued makespan");
    for ((f, q), m) in free.iter().zip(queued).zip(makespan) {
        assert!(q >= f);
        assert!(m >= q);
    }
}

#[test]
fn every_figure_writes_csv() {
    let dir = std::env::temp_dir().join("dsmec_csv_smoke");
    let fig = table1(&quick()).unwrap();
    fig.write_csv(&dir).unwrap();
    let content = std::fs::read_to_string(dir.join("table1.csv")).unwrap();
    assert!(content.lines().count() >= 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ext_nash_sits_between_lp_hta_and_chaos() {
    let fig = mec_bench::figures::ext_nash(&quick()).unwrap();
    let lp_e = series(&fig, "E LP-HTA");
    let nash_e = series(&fig, "E Nash");
    let lp_u = series(&fig, "unsat LP-HTA");
    let nash_u = series(&fig, "unsat Nash");
    for ((le, ne), (lu, nu)) in lp_e.iter().zip(nash_e).zip(lp_u.iter().zip(nash_u)) {
        assert!(
            *le <= ne * 1.05,
            "LP-HTA energy within 5% of Nash or better"
        );
        assert!(lu <= nu, "LP-HTA never has a worse unsatisfied rate");
    }
}

#[test]
fn ext_battery_shows_the_papers_tradeoff() {
    let fig = mec_bench::figures::ext_battery(&quick()).unwrap();
    let rounds = series(&fig, "rounds to first depletion");
    let untouched = series(&fig, "devices <0.1% drained");
    // Order: [LP-HTA raw, DTA-Workload, DTA-Number].
    assert!(
        rounds[1] > rounds[0],
        "balanced DTA outlives raw-data LP-HTA"
    );
    assert!(
        rounds[1] >= rounds[2],
        "balanced drain maximizes fleet lifetime"
    );
    assert!(
        untouched[2] > untouched[1],
        "DTA-Number spares the majority of devices (the paper's motivation)"
    );
}

#[test]
fn ext_mobility_staleness_price_appears_with_churn() {
    let fig = mec_bench::figures::ext_mobility(&quick()).unwrap();
    let de = series(&fig, "dE stale-fresh");
    let churn = series(&fig, "mean churn vs epoch 0");
    // No movement, no regret.
    assert!(de[0].abs() < 1e-9);
    assert!(churn[0].abs() < 1e-9);
    // Staleness never helps.
    assert!(de.iter().all(|&v| v >= -1e-6));
    // Movement happens when requested.
    assert!(churn[churn.len() - 1] > 0.05);
}

#[test]
fn ext_online_offline_wins_on_satisfaction() {
    let fig = mec_bench::figures::ext_online(&quick()).unwrap();
    let on = series(&fig, "unsat online-greedy");
    let off = series(&fig, "unsat offline");
    for (o, f) in on.iter().zip(off) {
        assert!(f <= o, "offline LP-HTA satisfies at least as many tasks");
    }
}

#[test]
fn ext_partial_saves_energy_but_lacks_the_cloud_fallback() {
    let fig = mec_bench::figures::ext_partial(&quick()).unwrap();
    let eb = series(&fig, "E binary LP-HTA");
    let ep = series(&fig, "E partial split");
    let ub = series(&fig, "unsat binary");
    let up = series(&fig, "unsat partial");
    for (((b, p), bu), pu) in eb.iter().zip(ep).zip(ub.iter()).zip(up) {
        // Fractional splitting is unconstrained by capacities and mixes
        // the two cheap sites optimally: it never needs more energy.
        assert!(*p <= b * 1.001, "partial energy {p} > binary {b}");
        // But it only knows device + station; binary LP-HTA's cloud
        // fallback satisfies at least as many tasks.
        assert!(*bu <= pu + 1e-9, "binary unsat {bu} > partial {pu}");
    }
}

#[test]
fn ext_arrivals_staggering_relieves_contention() {
    let fig = mec_bench::figures::ext_arrivals(&quick()).unwrap();
    let analytic = series(&fig, "analytic");
    let batch = series(&fig, "batch + contention");
    let open = series(&fig, "poisson + contention");
    for ((a, b), o) in analytic.iter().zip(batch).zip(open) {
        assert!(b >= a, "batch contention never beats analytic");
        assert!(*o >= a - 1e-9, "open contention never beats analytic");
    }
    // Quick mode sweeps a fast rate then a slow rate: the slow release
    // must be closer to the analytic floor than the batch is.
    let last = open.len() - 1;
    assert!(
        open[last] - analytic[last] <= batch[last] - analytic[last] + 1e-9,
        "slow Poisson release should relieve queueing"
    );
}
