//! Cross-crate integration tests: scenarios from `mec-sim`, algorithms
//! from `dsmec-core`, execution on the discrete-event simulator, and the
//! paper's analytical guarantees holding end to end.

use dsmec_core::costs::CostTable;
use dsmec_core::dta::{
    aggregate_distributed, divide_balanced, divide_min_devices, divisible_as_holistic, run_dta,
    DtaConfig,
};
use dsmec_core::hta::{AllOffload, AllToC, ExactBnB, Hgos, HtaAlgorithm, LocalFirst, LpHta};
use dsmec_core::metrics::{capacity_usage, evaluate_assignment};
use mec_sim::sim::{simulate, Contention};
use mec_sim::units::Bytes;
use mec_sim::workload::{DivisibleScenarioConfig, ScenarioConfig};

/// End-to-end: the energy the metric layer reports for an assignment must
/// equal the energy the discrete-event executor actually spends.
#[test]
fn analytic_energy_matches_simulated_energy_for_every_algorithm() {
    let s = ScenarioConfig::paper_defaults(301).generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let algos: Vec<Box<dyn HtaAlgorithm>> = vec![
        Box::new(LpHta::paper()),
        Box::new(Hgos::default()),
        Box::new(AllToC),
        Box::new(AllOffload),
        Box::new(LocalFirst),
    ];
    for algo in &algos {
        let a = algo.assign(&s.system, &s.tasks, &costs).unwrap();
        let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
        let exec = a.to_executable(&s.tasks).unwrap();
        let report = simulate(&s.system, &exec, Contention::None).unwrap();
        let sim_energy = report.total_energy().value();
        assert!(
            (m.total_energy.value() - sim_energy).abs() < 1e-6 * (1.0 + sim_energy),
            "{}: analytic {} vs simulated {}",
            algo.name(),
            m.total_energy,
            report.total_energy()
        );
    }
}

/// End-to-end: per-task latencies from the cost table equal the
/// executor's completion times when resources are unlimited.
#[test]
fn analytic_latency_matches_simulated_completion() {
    let s = ScenarioConfig::paper_defaults(302).generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let a = LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap();
    let exec = a.to_executable(&s.tasks).unwrap();
    let report = simulate(&s.system, &exec, Contention::None).unwrap();
    for ((task, site), result) in exec.iter().zip(report.results.iter()) {
        let idx = s.tasks.iter().position(|t| t.id == task.id).unwrap();
        let expect = costs.at(idx, *site).time.value();
        assert!(
            (result.completion.value() - expect).abs() < 1e-9 * (1.0 + expect),
            "{}",
            task.id
        );
    }
}

/// LP-HTA's assignment satisfies all four constraint families of the HTA
/// problem definition across a spread of seeds and pressures.
#[test]
fn lp_hta_constraints_hold_under_pressure() {
    for (seed, dev_mb, st_mb, dl) in [
        (401u64, 8.0, 200.0, (1.0, 3.0)),
        (402, 3.0, 50.0, (1.0, 2.0)),
        (403, 2.0, 20.0, (1.0, 1.5)),
        (404, 16.0, 400.0, (2.0, 5.0)),
    ] {
        let mut cfg = ScenarioConfig::paper_defaults(seed);
        cfg.tasks_total = 150;
        cfg.device_resource_mb = dev_mb;
        cfg.station_resource_mb = st_mb;
        cfg.deadline_factor_range = dl;
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let a = LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap();
        // C1 (deadlines) for assigned tasks.
        for (idx, task) in s.tasks.iter().enumerate() {
            if let Some(site) = a.decision(idx).site() {
                assert!(
                    costs.feasible(idx, site, task.deadline),
                    "seed {seed}: {} misses deadline",
                    task.id
                );
            }
        }
        // C2/C3 (capacities).
        let usage = capacity_usage(&s.system, &s.tasks, &a).unwrap();
        assert!(
            usage.within_limits(&s.system, Bytes::new(1e-6)),
            "seed {seed}"
        );
        // C4/C5: every task has exactly one decision by construction.
        assert_eq!(a.len(), s.tasks.len());
    }
}

/// The paper's headline comparison (Fig. 2/3/4 shape) on a full-size
/// scenario: LP-HTA dominates the baselines on every axis at once.
#[test]
fn lp_hta_dominates_baselines_at_scale() {
    let mut cfg = ScenarioConfig::paper_defaults(305);
    cfg.tasks_total = 400;
    let s = cfg.generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();

    let lp = evaluate_assignment(
        &s.tasks,
        &costs,
        &LpHta::paper().assign(&s.system, &s.tasks, &costs).unwrap(),
    )
    .unwrap();
    let hgos = evaluate_assignment(
        &s.tasks,
        &costs,
        &Hgos::default().assign(&s.system, &s.tasks, &costs).unwrap(),
    )
    .unwrap();
    let cloud = evaluate_assignment(
        &s.tasks,
        &costs,
        &AllToC.assign(&s.system, &s.tasks, &costs).unwrap(),
    )
    .unwrap();
    let offload = evaluate_assignment(
        &s.tasks,
        &costs,
        &AllOffload.assign(&s.system, &s.tasks, &costs).unwrap(),
    )
    .unwrap();

    // Energy: LP-HTA < HGOS < AllOffload < AllToC.
    assert!(lp.total_energy < hgos.total_energy);
    assert!(hgos.total_energy < offload.total_energy);
    assert!(offload.total_energy < cloud.total_energy);
    // Latency: LP-HTA smallest.
    assert!(lp.mean_latency <= hgos.mean_latency);
    assert!(lp.mean_latency < cloud.mean_latency);
    // Unsatisfied rate: LP-HTA smallest.
    assert!(lp.unsatisfied_rate <= hgos.unsatisfied_rate);
    assert!(lp.unsatisfied_rate < offload.unsatisfied_rate);
}

/// LP-HTA tracks the exact optimum within its own certificate on small
/// instances (the Theorem 2 / Corollary 1 guarantee, measured).
#[test]
fn approximation_ratio_certificate_holds_empirically() {
    let mut checked = 0;
    for seed in 501..511u64 {
        let mut cfg = ScenarioConfig::paper_defaults(seed);
        cfg.num_stations = 2;
        cfg.devices_per_station = 3;
        cfg.tasks_total = 10;
        let s = cfg.generate().unwrap();
        let costs = CostTable::build(&s.system, &s.tasks).unwrap();
        let Some((_, opt)) = ExactBnB::default()
            .solve(&s.system, &s.tasks, &costs)
            .unwrap()
        else {
            continue;
        };
        let (a, report) = LpHta::paper()
            .without_fast_path()
            .assign_with_report(&s.system, &s.tasks, &costs)
            .unwrap();
        if !a.cancelled().is_empty() {
            continue;
        }
        let m = evaluate_assignment(&s.tasks, &costs, &a).unwrap();
        let ratio = m.total_energy.value() / opt;
        assert!(ratio >= 1.0 - 1e-9, "seed {seed}: beat the optimum");
        assert!(
            ratio <= report.ratio_bound + 1e-9,
            "seed {seed}: ratio {ratio} above certificate {}",
            report.ratio_bound
        );
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} instances were checkable");
}

/// Full divisible pipeline: division validity, aggregation correctness
/// and the Fig. 5/6 relationships, in one pass.
#[test]
fn divisible_pipeline_end_to_end() {
    let mut cfg = DivisibleScenarioConfig::paper_defaults(601);
    cfg.tasks_total = 50;
    let s = cfg.generate().unwrap();
    let required = s.required_universe();

    // Division validity for both strategies.
    let balanced = divide_balanced(&s.universe, &required).unwrap();
    let minimal = divide_min_devices(&s.universe, &required).unwrap();
    balanced.validate(&s.universe, &required).unwrap();
    minimal.validate(&s.universe, &required).unwrap();
    assert!(minimal.involved_devices() <= balanced.involved_devices());
    assert!(balanced.max_share_len() <= minimal.max_share_len());

    // Aggregation correctness over the balanced coverage.
    let values: Vec<f64> = (0..s.universe.num_items())
        .map(|i| (i % 17) as f64)
        .collect();
    for task in &s.tasks {
        let got = aggregate_distributed(&s, &balanced, task, &values);
        let central: Vec<f64> = task.items.iter().map(|d| values[d.0]).collect();
        assert_eq!(got, task.op.apply(&central), "{}", task.id);
    }

    // Pipeline energy: both DTA variants beat shipping raw data.
    let w = run_dta(&s, DtaConfig::workload()).unwrap();
    let n = run_dta(&s, DtaConfig::number()).unwrap();
    let holistic = divisible_as_holistic(&s).unwrap();
    let costs = CostTable::build(&s.system, &holistic).unwrap();
    let a = LpHta::paper().assign(&s.system, &holistic, &costs).unwrap();
    let raw = evaluate_assignment(&holistic, &costs, &a).unwrap();
    assert!(w.total_energy < raw.total_energy);
    assert!(n.total_energy < raw.total_energy);
}

/// Contention never reduces latency, and never changes energy.
#[test]
fn queued_execution_dominates_contention_free() {
    let mut cfg = ScenarioConfig::paper_defaults(701);
    cfg.tasks_total = 80;
    let s = cfg.generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let a = Hgos::default().assign(&s.system, &s.tasks, &costs).unwrap();
    let exec = a.to_executable(&s.tasks).unwrap();
    let free = simulate(&s.system, &exec, Contention::None).unwrap();
    let queued = simulate(&s.system, &exec, Contention::Exclusive).unwrap();
    assert!(queued.makespan() >= free.makespan());
    assert!(queued.mean_latency() >= free.mean_latency());
    assert!(
        (queued.total_energy().value() - free.total_energy().value()).abs()
            < 1e-9 * (1.0 + free.total_energy().value())
    );
}
