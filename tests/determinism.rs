//! Determinism guarantees of the parallel sweep engine and the parallel
//! dense kernels: running on N worker threads must produce outputs that
//! are bit-identical to a single-threaded run, and the scenario/cost
//! caches must be invisible in results.
//!
//! The thread count is process-global, so every test that toggles it
//! holds one shared lock.

use linprog::{solve, ConstraintSense, LpProblem, Solver};
use mec_bench::figures::{fig2a, fig5a, ExperimentOptions};
use mec_bench::table::Figure;
use mec_bench::{cache, par};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that mutate the global thread count.
fn threads_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn assert_bit_identical(a: &Figure, b: &Figure) {
    assert_eq!(a.x_ticks, b.x_ticks, "{}: x ticks differ", a.id);
    assert_eq!(a.series.len(), b.series.len(), "{}: series count", a.id);
    for (sa, sb) in a.series.iter().zip(&b.series) {
        assert_eq!(sa.name, sb.name, "{}: series name", a.id);
        assert_eq!(sa.values.len(), sb.values.len(), "{}: series length", a.id);
        for (i, (va, vb)) in sa.values.iter().zip(&sb.values).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{} `{}`[{i}]: serial {va} vs parallel {vb}",
                a.id,
                sa.name,
            );
        }
    }
}

/// The headline guarantee: a holistic figure (LP-heavy, cached scenarios)
/// and a divisible figure (DTA path, uncached) are bit-identical between
/// one worker thread and four.
#[test]
fn figures_are_bit_identical_serial_vs_parallel() {
    let _guard = threads_lock();
    let opts = ExperimentOptions::quick();
    for run in [fig2a, fig5a] {
        par::set_threads(1);
        cache::clear();
        let serial = run(&opts).unwrap();
        par::set_threads(4);
        cache::clear();
        let parallel = run(&opts).unwrap();
        assert_bit_identical(&serial, &parallel);
    }
    par::set_threads(0);
}

/// A caller that keeps its cache warm must see the same figure as a cold
/// run — the cache can change timings only, never values.
#[test]
fn warm_cache_changes_nothing() {
    let _guard = threads_lock();
    par::set_threads(2);
    let opts = ExperimentOptions::quick();
    cache::clear();
    let cold = fig2a(&opts).unwrap();
    let stats = cache::stats();
    assert!(stats.scenario_misses > 0, "cold run must build scenarios");
    let warm = fig2a(&opts).unwrap();
    let stats = cache::stats();
    assert!(
        stats.scenario_hits >= stats.scenario_misses,
        "warm rerun must hit the scenario cache: {stats:?}"
    );
    assert_bit_identical(&cold, &warm);
    par::set_threads(0);
}

/// The cached scenario/cost pair equals a direct build, entry for entry.
#[test]
fn cached_cost_table_agrees_with_direct_build() {
    use dsmec_core::costs::CostTable;
    use mec_sim::workload::ScenarioConfig;
    // The cache counters are process-global; serialize with the tests
    // that assert on them.
    let _guard = threads_lock();
    let mut cfg = ScenarioConfig::paper_defaults(8899);
    cfg.tasks_total = 25;
    let cached = cache::scenario_with_costs(&cfg).unwrap();
    let scenario = cfg.generate().unwrap();
    let costs = CostTable::build(&scenario.system, &scenario.tasks).unwrap();
    assert_eq!(cached.scenario, scenario);
    assert_eq!(cached.costs, costs);
}

/// Pseudo-random dense-ish LP used to exercise both backends.
fn random_lp(seed: u64, vars: usize, rows: usize) -> LpProblem {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut lp = LpProblem::new(vars);
    lp.set_objective((0..vars).map(|_| 0.1 + next()).collect())
        .unwrap();
    for _ in 0..rows {
        let terms: Vec<(usize, f64)> = (0..vars).map(|v| (v, next())).collect();
        // Row sums keep every instance feasible and bounded.
        let rhs = 1.0 + next() * vars as f64 * 0.5;
        lp.add_constraint(terms, ConstraintSense::Ge, rhs).unwrap();
    }
    for v in 0..vars {
        lp.set_bounds(v, 0.0, 10.0 + next()).unwrap();
    }
    lp
}

/// Both LP backends produce bit-identical solutions on 1 vs 4 threads —
/// the parallel dense kernels must not reorder any reduction.
#[test]
fn lp_solvers_are_bit_identical_across_thread_counts() {
    let _guard = threads_lock();
    for solver in [Solver::Simplex, Solver::InteriorPoint] {
        for seed in [1u64, 2, 3] {
            let lp = random_lp(seed, 24, 18);
            linprog::set_threads(1);
            let serial = solve(&lp, solver).unwrap();
            linprog::set_threads(4);
            let parallel = solve(&lp, solver).unwrap();
            assert_eq!(serial.status, parallel.status, "{solver:?} seed {seed}");
            assert_eq!(
                serial.iterations, parallel.iterations,
                "{solver:?} seed {seed}"
            );
            assert_eq!(
                serial.objective.to_bits(),
                parallel.objective.to_bits(),
                "{solver:?} seed {seed}: objective {} vs {}",
                serial.objective,
                parallel.objective
            );
            for (i, (a, b)) in serial.x.iter().zip(&parallel.x).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{solver:?} seed {seed} x[{i}]");
            }
        }
    }
    linprog::set_threads(0);
}

/// The sweep engine surfaces worker failures as errors in a deterministic
/// way (smallest failing index wins) regardless of the thread count.
#[test]
fn sweep_failures_are_deterministic() {
    use dsmec_core::error::AssignError;
    use mec_bench::par::par_map_result;
    let _guard = threads_lock();
    let items: Vec<usize> = (0..97).collect();
    for threads in [1usize, 4] {
        par::set_threads(threads);
        let out: Result<Vec<usize>, AssignError> = par_map_result(&items, |&i| {
            if i % 31 == 13 {
                Err(AssignError::InvalidInput(format!("item {i}")))
            } else {
                Ok(i)
            }
        });
        let err = out.unwrap_err();
        assert!(
            err.to_string().contains("item 13"),
            "threads={threads}: expected the smallest failing index, got {err}"
        );
    }
    par::set_threads(0);
}
