//! End-to-end check of the `--trace` plumbing: run `repro` on a small
//! selection of experiments, then parse the emitted trace with `djson`
//! and assert the documented schema (DESIGN.md §7) actually comes out.

use mec_obs::{TraceSnapshot, SCHEMA_VERSION};
use std::process::Command;

#[test]
fn repro_trace_emits_the_documented_schema() {
    let dir = std::env::temp_dir().join("dsmec_trace_cli");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace_path = dir.join("trace.json");

    // fig2a exercises the LP-HTA pipeline (relaxation → rounding → repair
    // plus the LP kernels); fig6b exercises the DTA greedy division.
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--quick",
            "fig2a",
            "fig6b",
            "--trace",
            trace_path.to_str().expect("utf-8 path"),
            "--out",
            dir.join("csv").to_str().expect("utf-8 path"),
            "--bench-out",
            dir.join("bench.json").to_str().expect("utf-8 path"),
        ])
        .env_remove("DSMEC_TRACE")
        .output()
        .expect("run repro");
    assert!(
        output.status.success(),
        "repro failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let text = std::fs::read_to_string(&trace_path).expect("read trace file");
    let trace: TraceSnapshot = djson::from_str(&text).expect("trace parses as a snapshot");
    assert_eq!(trace.version, SCHEMA_VERSION);

    let span_names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "lp_hta/relaxation",
        "lp_hta/rounding",
        "lp_hta/repair",
        "dta/division",
        "sweep/point",
    ] {
        assert!(
            span_names.contains(&expected),
            "missing span {expected:?} in {span_names:?}"
        );
    }
    for span in &trace.spans {
        assert!(span.count >= 1, "span {} has no samples", span.name);
        assert!(
            span.total_ns >= span.max_ns,
            "span {} misaggregated",
            span.name
        );
    }

    // The LP kernel in use must report its iteration count, whichever
    // backend the paper configuration selects.
    assert!(
        trace.counters.iter().any(|c| c.name.starts_with("linprog/")
            && c.name.ends_with("/iterations")
            && c.value > 0),
        "no LP kernel iteration counter in {:?}",
        trace.counters
    );
    assert!(trace.counter("dta/greedy/rounds").unwrap_or(0) > 0);
    // Cold cache + distinct figures: every sweep point is a miss.
    assert!(trace.counter("cache/scenario/misses").unwrap_or(0) > 0);
}
