//! End-to-end check of the `--trace` plumbing: run `repro` on a small
//! selection of experiments, then parse the emitted trace with `djson`
//! and assert the documented schema (DESIGN.md §7) actually comes out —
//! and that `dsmec trace` can analyze, diff and gate it.

use mec_obs::{TraceSnapshot, SCHEMA_VERSION};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `repro --quick fig2a fig6b --trace` into a per-test temp dir and
/// returns the trace path. fig2a exercises the LP-HTA pipeline (relaxation
/// → rounding → repair plus the LP kernels); fig6b the DTA greedy division.
fn record_quick_trace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsmec_trace_cli_{tag}"));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace_path = dir.join("trace.json");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--quick",
            "fig2a",
            "fig6b",
            "--trace",
            trace_path.to_str().expect("utf-8 path"),
            "--out",
            dir.join("csv").to_str().expect("utf-8 path"),
            "--bench-out",
            dir.join("bench.json").to_str().expect("utf-8 path"),
        ])
        .env_remove("DSMEC_TRACE")
        .env_remove("DSMEC_TRACE_EVENTS")
        .output()
        .expect("run repro");
    assert!(
        output.status.success(),
        "repro failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    trace_path
}

/// Runs `dsmec trace` with `args` and returns `(exit ok, stdout, stderr)`.
fn dsmec_trace(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_dsmec"))
        .arg("trace")
        .args(args)
        .output()
        .expect("run dsmec trace");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn read_trace(path: &Path) -> TraceSnapshot {
    let text = std::fs::read_to_string(path).expect("read trace file");
    djson::from_str(&text).expect("trace parses as a snapshot")
}

#[test]
fn repro_trace_emits_the_documented_schema() {
    let trace_path = record_quick_trace("schema");
    let trace = read_trace(&trace_path);
    assert_eq!(trace.version, SCHEMA_VERSION);

    let span_names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "lp_hta/relaxation",
        "lp_hta/rounding",
        "lp_hta/repair",
        "dta/division",
        "sweep/point",
    ] {
        assert!(
            span_names.contains(&expected),
            "missing span {expected:?} in {span_names:?}"
        );
    }
    for span in &trace.spans {
        assert!(span.count >= 1, "span {} has no samples", span.name);
        assert!(
            span.total_ns >= span.max_ns,
            "span {} misaggregated",
            span.name
        );
    }

    // The LP kernel in use must report its iteration count, whichever
    // backend the paper configuration selects.
    assert!(
        trace.counters.iter().any(|c| c.name.starts_with("linprog/")
            && c.name.ends_with("/iterations")
            && c.value > 0),
        "no LP kernel iteration counter in {:?}",
        trace.counters
    );
    assert!(trace.counter("dta/greedy/rounds").unwrap_or(0) > 0);
    // Cold cache + distinct figures: every sweep point is a miss.
    assert!(trace.counter("cache/scenario/misses").unwrap_or(0) > 0);
}

#[test]
fn repro_trace_records_nested_flight_recorder_events() {
    let trace_path = record_quick_trace("events");
    let trace = read_trace(&trace_path);
    assert!(!trace.events.is_empty(), "v2 trace carries span events");

    // The documented nesting chain: sweep (root) → experiment/<id> →
    // sweep/point (on worker threads, linked via the explicit parent id).
    let sweeps: Vec<_> = trace.events.iter().filter(|e| e.name == "sweep").collect();
    assert_eq!(sweeps.len(), 1, "one sweep root per recorded pass");
    let sweep = sweeps[0];
    assert_eq!(sweep.parent, 0, "sweep is a root span");

    let experiment_ids: Vec<u64> = trace
        .events
        .iter()
        .filter(|e| e.name.starts_with("experiment/"))
        .map(|e| {
            assert_eq!(e.parent, sweep.id, "experiments nest under the sweep");
            e.id
        })
        .collect();
    assert_eq!(experiment_ids.len(), 2, "fig2a and fig6b");

    let points: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name == "sweep/point")
        .collect();
    assert!(!points.is_empty(), "worker points recorded");
    for p in points {
        assert!(
            experiment_ids.contains(&p.parent),
            "sweep/point parent {} is not an experiment span",
            p.parent
        );
        assert!(p.end_ns >= p.start_ns, "monotonic event bounds");
    }

    // Worker staging reached the snapshot via the explicit join-point
    // flush, and the recorder kept every event (no ring overflow on a
    // quick run).
    assert!(trace.counter("obs/flush").unwrap_or(0) > 0);
    assert_eq!(trace.counter("obs/events/dropped"), None);
}

#[test]
fn dsmec_trace_renders_table_critical_path_and_folded_stacks() {
    let trace_path = record_quick_trace("report");
    let trace_str = trace_path.to_str().unwrap();

    let (ok, stdout, stderr) = dsmec_trace(&[trace_str]);
    assert!(ok, "dsmec trace failed: {stderr}");
    // Non-empty self-time table…
    assert!(stdout.contains("self ms"), "{stdout}");
    assert!(stdout.contains("sweep/point"), "{stdout}");
    // …and a critical path rooted at the sweep.
    assert!(stdout.contains("critical path"), "{stdout}");
    assert!(stdout.contains("% serial"), "{stdout}");

    let folded_path = trace_path.with_file_name("stacks.folded");
    let folded_str = folded_path.to_str().unwrap();
    let (ok, _, stderr) = dsmec_trace(&[trace_str, "--folded", folded_str]);
    assert!(ok, "dsmec trace --folded failed: {stderr}");
    let folded = std::fs::read_to_string(&folded_path).expect("folded output written");
    assert!(!folded.is_empty());
    for line in folded.lines() {
        // flamegraph format: `root;child;leaf <ns>`.
        let (stack, ns) = line.rsplit_once(' ').expect("folded line has a count");
        assert!(!stack.is_empty(), "bad folded line {line:?}");
        assert!(ns.parse::<u64>().is_ok(), "bad folded count {line:?}");
    }
    assert!(
        folded.lines().any(|l| l.starts_with("sweep;experiment/")),
        "stacks are rooted at the sweep:\n{folded}"
    );
}

#[test]
fn dsmec_trace_gate_passes_identity_and_fails_injected_regression() {
    let trace_path = record_quick_trace("gate");
    let trace_str = trace_path.to_str().unwrap();

    // A trace never regresses against itself.
    let (ok, stdout, stderr) = dsmec_trace(&[trace_str, "--baseline", trace_str, "--gate", "1.01"]);
    assert!(ok, "identity gate tripped: {stderr}");
    assert!(stdout.contains("ratio"), "{stdout}");

    // Inject a 2x regression on every span that clears the noise floor
    // and check the gate exits nonzero, naming a span.
    let mut slow = read_trace(&trace_path);
    for span in &mut slow.spans {
        span.total_ns *= 2;
    }
    let slow_path = trace_path.with_file_name("slow.json");
    std::fs::write(&slow_path, djson::to_string_pretty(&slow)).expect("write regressed trace");
    let (ok, _, stderr) = dsmec_trace(&[
        slow_path.to_str().unwrap(),
        "--baseline",
        trace_str,
        "--gate",
        "1.5",
    ]);
    assert!(!ok, "2x regression must trip a 1.5x gate");
    assert!(stderr.contains("regression gate failed"), "{stderr}");
    assert!(stderr.contains("2.000x"), "{stderr}");
}
