//! The telemetry plane's acceptance oracles (ISSUE 9):
//!
//! * interval snapshots are bit-identical across worker-thread counts on
//!   their deterministic subset (counters, gauges, observation counts —
//!   everything except wall-clock-valued series),
//! * the pinned reference session keeps its golden fingerprint with the
//!   plane enabled — telemetry must be a pure observer,
//! * `GET /metrics` serves parseable Prometheus exposition *mid-session*,
//! * the exposition renderer matches a golden fixture byte for byte,
//! * `dsmec metrics --slo` gates a real flight log with correct
//!   zero/nonzero outcomes.
//!
//! Both the obs registry and the worker-thread count are process-global,
//! so every test holds `mec_obs::TEST_LOCK` for its whole body.

use mec_bench::exposition::{http_get, parse_exposition, render_exposition, MetricsServer};
use mec_bench::metrics::{
    metrics_command, read_flight_log, MetricsArgs, TelemetryOptions, TelemetryPlane,
};
use mec_bench::par;
use mec_bench::serve::{serve_with_hook, ServeConfig};
use mec_obs::{BucketCount, CounterWindow, GaugeStat, HistogramWindow, IntervalSnapshot};
use std::fmt::Write as _;
use std::sync::MutexGuard;
use std::time::Duration;

/// Serializes the registry-touching tests and resets the process-global
/// obs state (registries, interval baselines, staged thread-locals).
fn obs_lock() -> MutexGuard<'static, ()> {
    let guard = mec_obs::TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    mec_obs::reset();
    mec_obs::set_enabled(true);
    mec_obs::set_events(false);
    guard
}

fn tiny_config() -> ServeConfig {
    ServeConfig {
        seed: 42,
        epochs: 5,
        num_stations: 2,
        devices_per_station: 3,
        max_input_kb: 1200.0,
        ..ServeConfig::default()
    }
}

/// Runs one serve session collecting an interval snapshot per epoch.
fn session_intervals(cfg: &ServeConfig, threads: usize) -> Vec<IntervalSnapshot> {
    mec_obs::reset();
    mec_obs::set_enabled(true);
    par::set_threads(threads);
    let mut snaps = Vec::new();
    serve_with_hook(cfg, &mut |_| snaps.push(mec_obs::snapshot_interval())).unwrap();
    par::set_threads(0);
    snaps
}

/// Projects interval snapshots onto their deterministic subset: the
/// `serve/*` counters and gauges (decision content, recorded on the
/// serve thread) and every histogram's observation counts. Excluded:
/// wall-clock-valued series (`serve/slo/repair_ms`, histogram
/// sums/bounds/percentiles) and the `obs/*`, `linprog/*` internals whose
/// per-interval flush timing is scheduling-dependent.
fn deterministic_view(snaps: &[IntervalSnapshot]) -> String {
    let mut out = String::new();
    for s in snaps {
        let _ = writeln!(out, "interval {}", s.interval);
        for c in s.counters.iter().filter(|c| c.name.starts_with("serve/")) {
            let _ = writeln!(out, "  counter {} {} {}", c.name, c.total, c.delta);
        }
        for g in s
            .gauges
            .iter()
            .filter(|g| g.name.starts_with("serve/") && g.name != "serve/slo/repair_ms")
        {
            let _ = writeln!(out, "  gauge {} {}", g.name, g.value);
        }
        for h in s.histograms.iter().filter(|h| h.name.starts_with("serve/")) {
            let _ = writeln!(out, "  hist {} {} {}", h.name, h.total_count, h.count);
        }
    }
    out
}

/// ISSUE acceptance: delta counters and windowed observation counts are
/// bit-identical across `--threads 1` vs `4` on the reference seeds.
#[test]
fn interval_snapshots_are_thread_count_invariant() {
    let _guard = obs_lock();
    for chaos in [None, Some(9u64)] {
        let cfg = ServeConfig {
            chaos,
            ..tiny_config()
        };
        let serial = session_intervals(&cfg, 1);
        let parallel = session_intervals(&cfg, 4);
        assert_eq!(serial.len(), cfg.epochs);
        let (a, b) = (deterministic_view(&serial), deterministic_view(&parallel));
        assert_eq!(
            a, b,
            "chaos {chaos:?}: interval windows diverge across threads"
        );
        // The view is not vacuous: it carries the assignment counter with
        // a full-batch delta and the SLO gauges.
        assert!(a.contains("counter serve/assignments"), "{a}");
        assert!(a.contains("gauge serve/slo/warm_hit_rate"), "{a}");
        assert!(a.contains("hist serve/decision_latency_ms"), "{a}");
        let first = serial[0].counter("serve/assignments").unwrap();
        assert_eq!(
            first.total, first.delta,
            "interval 0 baseline starts at zero"
        );
    }
}

/// Telemetry is a pure observer: the pinned reference session (`--seed
/// 42 --epochs 20`, the same golden as tests/serve.rs) keeps its
/// fingerprint with the full plane enabled — flight log, exposition
/// endpoint and all. The flight log it produces then drives the SLO
/// gate both ways.
#[test]
fn metrics_on_keeps_the_pinned_fingerprint_and_gates_slo() {
    let _guard = obs_lock();
    par::set_threads(0);
    let dir = std::env::temp_dir().join("dsmec_telemetry_pinned");
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("flight.jsonl");
    let log = log_path.to_str().unwrap().to_string();

    let opts = TelemetryOptions {
        metrics_out: Some(log.clone()),
        metrics_addr: Some("127.0.0.1:0".to_string()),
    };
    let mut plane = TelemetryPlane::start(&opts).unwrap().unwrap();
    assert!(plane.server_addr().is_some());
    let cfg = ServeConfig {
        seed: 42,
        epochs: 20,
        ..ServeConfig::default()
    };
    let report = serve_with_hook(&cfg, &mut |e| plane.on_epoch(e)).unwrap();
    assert_eq!(
        report.session_fingerprint, "33b92d38ebe7d960",
        "telemetry must not perturb decisions"
    );
    assert_eq!(plane.finish().unwrap(), 20);

    let records = read_flight_log(&log).unwrap();
    assert_eq!(records.len(), 20);
    assert_eq!(
        records
            .last()
            .unwrap()
            .counter("serve/assignments")
            .unwrap()
            .total,
        report.assigned_total as u64
    );

    // The SLO gate over the same flight log: permissive rules pass,
    // an impossible queue bound fails with violations.
    let ok = MetricsArgs {
        file: log.clone(),
        slo: Some("p95_ms=1000000,miss_rate=1.0,queue_max=1000000".to_string()),
    };
    metrics_command(&ok).unwrap();
    let fail = MetricsArgs {
        file: log,
        slo: Some("queue_max=0".to_string()),
    };
    let err = metrics_command(&fail).unwrap_err();
    assert!(err.contains("SLO violation"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The endpoint answers *during* the session: a scrape issued from
/// inside the epoch hook (while the serve loop is mid-flight) returns
/// valid exposition carrying that epoch's interval.
#[test]
fn metrics_endpoint_is_scrapeable_mid_session() {
    let _guard = obs_lock();
    mec_obs::reset();
    mec_obs::set_enabled(true);
    let server = MetricsServer::bind("127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let mut mid_session: Option<(u16, String)> = None;
    serve_with_hook(&tiny_config(), &mut |_| {
        let window = mec_obs::snapshot_interval();
        server.publish(render_exposition(&window));
        if window.interval == 2 {
            mid_session = Some(http_get(&addr, "/metrics", Duration::from_secs(5)).unwrap());
        }
    })
    .unwrap();
    let (status, body) = mid_session.expect("epoch hook never fired at interval 2");
    assert_eq!(status, 200);
    let exp = parse_exposition(&body).unwrap();
    assert_eq!(exp.value("dsmec_interval"), Some(2.0));
    assert!(exp.value("dsmec_serve_assignments_total").unwrap() > 0.0);
    assert!(exp.value("dsmec_serve_queue_depth").is_some());
    assert!(exp
        .types
        .get("dsmec_serve_decision_latency_ms")
        .is_some_and(|t| t == "histogram"));
    server.shutdown();
}

/// Golden fixture: the exposition renderer's exact output for a fixed
/// window. Any byte-level change here is a format change every scraper
/// sees — update deliberately, with DESIGN.md §12.
#[test]
fn exposition_rendering_matches_the_golden_fixture() {
    let window = IntervalSnapshot {
        interval: 5,
        counters: vec![CounterWindow {
            name: "serve/assignments".into(),
            total: 250,
            delta: 50,
        }],
        gauges: vec![GaugeStat {
            name: "serve/slo/warm_hit_rate".into(),
            value: 0.75,
        }],
        histograms: vec![HistogramWindow {
            name: "serve/decision_latency_ms".into(),
            total_count: 6,
            count: 2,
            sum: 0.75,
            min: 0.25,
            max: 0.5,
            p50: 0.25,
            p95: 0.5,
            p99: 0.5,
            buckets: vec![
                BucketCount { le: 0.25, count: 1 },
                BucketCount { le: 0.5, count: 2 },
            ],
        }],
    };
    let golden = "\
# TYPE dsmec_interval gauge
dsmec_interval 5
# TYPE dsmec_serve_assignments counter
dsmec_serve_assignments_total 250
# TYPE dsmec_serve_assignments_window gauge
dsmec_serve_assignments_window 50
# TYPE dsmec_serve_slo_warm_hit_rate gauge
dsmec_serve_slo_warm_hit_rate 0.75
# TYPE dsmec_serve_decision_latency_ms histogram
dsmec_serve_decision_latency_ms_bucket{le=\"0.25\"} 1
dsmec_serve_decision_latency_ms_bucket{le=\"0.5\"} 2
dsmec_serve_decision_latency_ms_bucket{le=\"+Inf\"} 2
dsmec_serve_decision_latency_ms_sum 0.75
dsmec_serve_decision_latency_ms_count 2
# TYPE dsmec_serve_decision_latency_ms_p50 gauge
dsmec_serve_decision_latency_ms_p50 0.25
# TYPE dsmec_serve_decision_latency_ms_p95 gauge
dsmec_serve_decision_latency_ms_p95 0.5
# TYPE dsmec_serve_decision_latency_ms_p99 gauge
dsmec_serve_decision_latency_ms_p99 0.5
";
    let rendered = render_exposition(&window);
    assert_eq!(rendered, golden);
    // And the golden text is valid exposition by our own validator.
    let exp = parse_exposition(golden).unwrap();
    assert_eq!(exp.samples.len(), 12);
}
