//! Capacity planning: how much edge capacity does a deployment need?
//!
//! An operator sizing a MEC rollout wants to know how the per-device and
//! per-station resource limits (`max_i`, `max_S`) trade off against total
//! energy and the unsatisfied-task rate. This example sweeps both limits
//! with LP-HTA over the same workload and prints the frontier — the kind
//! of downstream use the paper's algorithms enable.
//!
//! Run with:
//!
//! ```text
//! cargo run -p dsmec-core --example capacity_planning --release
//! ```

use dsmec_core::costs::CostTable;
use dsmec_core::hta::{station_capacity_prices, HtaAlgorithm, LpHta};
use dsmec_core::metrics::{capacity_usage, evaluate_assignment};
use mec_sim::units::Bytes;
use mec_sim::workload::ScenarioConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device_caps_mb = [2.0, 4.0, 8.0, 16.0];
    let station_caps_mb = [25.0, 100.0, 400.0];

    println!(
        "{:<10} {:<11} {:>12} {:>12} {:>11} {:>20}",
        "max_i(MB)", "max_S(MB)", "energy (J)", "latency (s)", "unsatisf.", "sites (dev/bs/cloud)"
    );
    println!("{}", "-".repeat(82));

    for &station_mb in &station_caps_mb {
        for &device_mb in &device_caps_mb {
            let mut cfg = ScenarioConfig::paper_defaults(99);
            cfg.tasks_total = 300;
            cfg.device_resource_mb = device_mb;
            cfg.station_resource_mb = station_mb;
            let s = cfg.generate()?;
            let costs = CostTable::build(&s.system, &s.tasks)?;
            let a = LpHta::paper().assign(&s.system, &s.tasks, &costs)?;
            let m = evaluate_assignment(&s.tasks, &costs, &a)?;
            let usage = capacity_usage(&s.system, &s.tasks, &a)?;
            assert!(
                usage.within_limits(&s.system, Bytes::new(1e-6)),
                "LP-HTA must respect the configured limits"
            );
            let [d, bs, c] = m.site_counts;
            println!(
                "{:<10} {:<11} {:>12.1} {:>12.3} {:>10.1}% {:>20}",
                device_mb,
                station_mb,
                m.total_energy.value(),
                m.mean_latency.value(),
                m.unsatisfied_rate * 100.0,
                format!("{d}/{bs}/{c}"),
            );
        }
        println!();
    }

    println!("reading the frontier:");
    println!("  - more device capacity keeps work local: energy and latency fall;");
    println!("  - starved stations push overflow to the cloud: energy rises and");
    println!("    deadline misses appear;");
    println!("  - the knee of the curve is where an operator should provision.");

    // Shadow prices: the LP duals say exactly which station to upgrade.
    let mut cfg = ScenarioConfig::paper_defaults(99);
    cfg.tasks_total = 300;
    cfg.device_resource_mb = 2.0;
    cfg.station_resource_mb = 30.0;
    let s = cfg.generate()?;
    let costs = CostTable::build(&s.system, &s.tasks)?;
    let prices = station_capacity_prices(&s.system, &s.tasks, &costs)?;
    println!("\nstation capacity shadow prices (J saved per extra MB of max_S):");
    for (st, p) in prices {
        println!("  {st}: {:+.4}", p * 1e6);
    }
    println!("the most negative station is the best upgrade target.");
    Ok(())
}
