//! Quickstart: generate a paper-style MEC scenario, assign its tasks with
//! LP-HTA and the Section V comparators, and compare energy, latency and
//! unsatisfied-task rate.
//!
//! Run with:
//!
//! ```text
//! cargo run -p dsmec-core --example quickstart --release
//! ```

use dsmec_core::costs::CostTable;
use dsmec_core::hta::{AllOffload, AllToC, Hgos, HtaAlgorithm, LocalFirst, LpHta};
use dsmec_core::metrics::evaluate_assignment;
use mec_sim::workload::ScenarioConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Section V.A scenario: 5 base stations x 10 devices, 200 tasks of
    // up to 3000 kB, external data 0-0.5x the local data.
    let mut cfg = ScenarioConfig::paper_defaults(2024);
    cfg.tasks_total = 200;
    let scenario = cfg.generate()?;
    println!(
        "System: {} stations, {} devices, {} tasks\n",
        scenario.system.num_stations(),
        scenario.system.num_devices(),
        scenario.tasks.len(),
    );

    // Price every task at every site once (the Section II cost model).
    let costs = CostTable::build(&scenario.system, &scenario.tasks)?;

    let algorithms: Vec<(&str, Box<dyn HtaAlgorithm>)> = vec![
        ("LP-HTA", Box::new(LpHta::paper())),
        ("HGOS", Box::new(Hgos::default())),
        ("AllToC", Box::new(AllToC)),
        ("AllOffload", Box::new(AllOffload)),
        ("LocalFirst", Box::new(LocalFirst)),
    ];

    println!(
        "{:<12} {:>12} {:>12} {:>12}  {:>18}",
        "algorithm", "energy (J)", "latency (s)", "unsatisfied", "sites (dev/bs/cloud)"
    );
    println!("{}", "-".repeat(74));
    for (name, algo) in &algorithms {
        let assignment = algo.assign(&scenario.system, &scenario.tasks, &costs)?;
        let m = evaluate_assignment(&scenario.tasks, &costs, &assignment)?;
        let [d, s, c] = m.site_counts;
        println!(
            "{:<12} {:>12.1} {:>12.3} {:>11.1}%  {:>18}",
            name,
            m.total_energy.value(),
            m.mean_latency.value(),
            m.unsatisfied_rate * 100.0,
            format!("{d}/{s}/{c}"),
        );
    }

    // LP-HTA also certifies its own approximation ratio (Theorem 2 /
    // Corollary 1 of the paper).
    let (_, report) = LpHta::paper().without_fast_path().assign_with_report(
        &scenario.system,
        &scenario.tasks,
        &costs,
    )?;
    println!(
        "\nLP-HTA certificate: E_LP(OPT) = {:.1} J, rounded = {:.1} J, final = {:.1} J",
        report.lp_objective, report.rounded_energy, report.final_energy
    );
    println!(
        "ratio bound: min(3 + delta/E_LP, corollary-1) = min({:.4}, {:.1}) = {:.4}",
        report.theorem2_bound, report.corollary1_bound, report.ratio_bound
    );
    Ok(())
}
