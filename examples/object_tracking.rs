//! Object tracking — the paper's second motivating example: "a mobile
//! device is required to return the whole trajectory of the monitored
//! object, while it only has partial trajectory information."
//!
//! Trajectory stitching is *holistic*: all segments must be gathered at
//! one subsystem. The example hand-builds a two-cell topology where the
//! tracked object crossed cells (so the external data sits in another
//! cluster), assigns the queries with LP-HTA under tight deadlines, and
//! then actually executes the assignment on the discrete-event simulator
//! — first with unlimited resources, then with FIFO contention.
//!
//! Run with:
//!
//! ```text
//! cargo run -p dsmec-core --example object_tracking --release
//! ```

use dsmec_core::costs::CostTable;
use dsmec_core::hta::LpHta;
use dsmec_core::metrics::evaluate_assignment;
use mec_sim::radio::NetworkProfile;
use mec_sim::sim::{simulate, Contention};
use mec_sim::task::{HolisticTask, TaskId};
use mec_sim::topology::{Cloud, DeviceId, MecSystem};
use mec_sim::units::{Bytes, Hertz, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two cells along a highway; four camera-equipped devices per cell.
    let mut b = MecSystem::builder(Cloud {
        cpu: Hertz::from_ghz(2.4),
    });
    let east = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(60.0));
    let west = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(60.0));
    for (cell, profile, ghz) in [
        (east, NetworkProfile::WiFi, 1.8),
        (east, NetworkProfile::FourG, 1.2),
        (east, NetworkProfile::WiFi, 1.5),
        (east, NetworkProfile::FourG, 1.0),
        (west, NetworkProfile::WiFi, 2.0),
        (west, NetworkProfile::FourG, 1.1),
        (west, NetworkProfile::WiFi, 1.6),
        (west, NetworkProfile::FourG, 1.3),
    ] {
        b.add_device(
            cell,
            Hertz::from_ghz(ghz),
            profile.link(),
            Bytes::from_mb(10.0),
        )?;
    }
    let system = b.build()?;

    // Tracking queries: device d holds its own footage (alpha) and needs
    // the missing trajectory segment (beta) from the device that saw the
    // object next — often across the cell boundary.
    let mut tasks = Vec::new();
    for (j, (owner, source, alpha_kb, beta_kb, deadline_s)) in [
        (0usize, 5usize, 2400.0, 900.0, 3.5),
        (1, 4, 1800.0, 1200.0, 4.0),
        (2, 3, 2000.0, 400.0, 2.0),
        (3, 6, 1500.0, 700.0, 3.0),
        (4, 1, 2600.0, 1000.0, 4.5),
        (5, 2, 2200.0, 500.0, 2.5),
        (6, 7, 1700.0, 600.0, 2.0),
        (7, 0, 2800.0, 1100.0, 5.0),
    ]
    .into_iter()
    .enumerate()
    {
        tasks.push(HolisticTask {
            id: TaskId {
                user: owner,
                index: j,
            },
            owner: DeviceId(owner),
            local_size: Bytes::from_kb(alpha_kb),
            external_size: Bytes::from_kb(beta_kb),
            external_source: Some(DeviceId(source)),
            complexity: 1.0,
            resource: Bytes::from_kb(alpha_kb + beta_kb),
            deadline: Seconds::new(deadline_s),
        });
    }

    let costs = CostTable::build(&system, &tasks)?;
    let (assignment, report) = LpHta::paper().assign_with_report(&system, &tasks, &costs)?;
    let metrics = evaluate_assignment(&tasks, &costs, &assignment)?;

    println!("tracking queries and their placements:");
    println!(
        "{:<8} {:>7} {:>7} {:>9} {:>10} {:>10}",
        "query", "α (kB)", "β (kB)", "deadline", "site", "t (s)"
    );
    println!("{}", "-".repeat(58));
    for (idx, task) in tasks.iter().enumerate() {
        let (site, t) = match assignment.decision(idx).site() {
            Some(site) => (
                site.to_string(),
                format!("{:.3}", costs.at(idx, site).time.value()),
            ),
            None => ("CANCELLED".into(), "-".into()),
        };
        println!(
            "{:<8} {:>7.0} {:>7.0} {:>8.1}s {:>10} {:>10}",
            task.id.to_string(),
            task.local_size.as_kb(),
            task.external_size.as_kb(),
            task.deadline.value(),
            site,
            t,
        );
    }
    println!(
        "\ntotal energy {:.1} J, mean latency {:.3} s, unsatisfied {:.0}%, cancelled {}",
        metrics.total_energy.value(),
        metrics.mean_latency.value(),
        metrics.unsatisfied_rate * 100.0,
        metrics.cancelled,
    );
    println!("ratio-bound certificate: {:.4}", report.ratio_bound);

    // Execute the assignment end-to-end on the discrete-event simulator.
    let exec = assignment.to_executable(&tasks)?;
    let free = simulate(&system, &exec, Contention::None)?;
    let queued = simulate(&system, &exec, Contention::Exclusive)?;
    println!("\nexecution (discrete-event simulation):");
    println!(
        "  unlimited resources: makespan {:.3} s, missed deadlines {:.0}%",
        free.makespan().value(),
        free.deadline_miss_rate() * 100.0,
    );
    println!(
        "  FIFO contention:     makespan {:.3} s, missed deadlines {:.0}%",
        queued.makespan().value(),
        queued.deadline_miss_rate() * 100.0,
    );
    println!(
        "  queueing stretched the makespan {:.2}x",
        queued.makespan().value() / free.makespan().value().max(1e-12)
    );
    Ok(())
}
