//! Intelligent traffic monitoring — the paper's own motivating example:
//! "a user wants to know the average flow rate of vehicles in the whole
//! city, while the data sampled by his mobile device only shows the
//! vehicle flow rate in a small region."
//!
//! Each device monitors an overlapping slice of the city's road segments;
//! city-wide queries (`mean`, `sum`, `max` of segment flow rates) are
//! *divisible* tasks. The example runs the full DTA pipeline of Section IV
//! with both division strategies and checks that the distributed answers
//! equal the centralized ones.
//!
//! Run with:
//!
//! ```text
//! cargo run -p dsmec-core --example traffic_monitoring --release
//! ```

use dsmec_core::costs::CostTable;
use dsmec_core::dta::{
    aggregate_distributed, divide_balanced, divisible_as_holistic, run_dta, DtaConfig,
};
use dsmec_core::hta::{HtaAlgorithm, LpHta};
use dsmec_core::metrics::evaluate_assignment;
use mec_sim::workload::DivisibleScenarioConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The city: 800 road segments of ~100 kB of samples each, monitored
    // by 50 devices with overlapping coverage regions. 60 city-wide
    // statistics queries arrive.
    let mut cfg = DivisibleScenarioConfig::paper_defaults(7);
    cfg.num_items = 800;
    cfg.item_kb = 100.0;
    cfg.tasks_total = 60;
    cfg.items_per_task = (10, 40);
    let city = cfg.generate()?;
    println!(
        "City: {} road segments, {} devices, {} queries\n",
        city.universe.num_items(),
        city.universe.num_devices(),
        city.tasks.len(),
    );

    // --- Correctness: distributed aggregation equals centralized -------
    // Synthetic flow rate per segment (vehicles/min).
    let flows: Vec<f64> = (0..city.universe.num_items())
        .map(|seg| 25.0 + 20.0 * ((seg as f64) * 0.05).sin())
        .collect();
    let required = city.required_universe();
    let coverage = divide_balanced(&city.universe, &required)?;
    let mut checked = 0;
    for query in &city.tasks {
        let distributed = aggregate_distributed(&city, &coverage, query, &flows);
        let central: Vec<f64> = query.items.iter().map(|d| flows[d.0]).collect();
        let expect = query.op.apply(&central);
        assert_eq!(
            distributed.is_some(),
            expect.is_some(),
            "query {} disagreed",
            query.id
        );
        if let (Some(a), Some(b)) = (distributed, expect) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
            checked += 1;
        }
    }
    println!("verified {checked} distributed query answers against centralized evaluation");
    let sample = &city.tasks[0];
    if let Some(answer) = aggregate_distributed(&city, &coverage, sample, &flows) {
        println!(
            "sample query {} ({} over {} segments) = {:.2}\n",
            sample.id,
            sample.op,
            sample.items.len(),
            answer
        );
    }

    // --- Efficiency: DTA vs shipping raw data ---------------------------
    let workload = run_dta(&city, DtaConfig::workload())?;
    let number = run_dta(&city, DtaConfig::number())?;
    let holistic = divisible_as_holistic(&city)?;
    let costs = CostTable::build(&city.system, &holistic)?;
    let a = LpHta::paper().assign(&city.system, &holistic, &costs)?;
    let raw = evaluate_assignment(&holistic, &costs, &a)?;

    println!(
        "{:<22} {:>12} {:>10} {:>16}",
        "strategy", "energy (J)", "devices", "processing (s)"
    );
    println!("{}", "-".repeat(64));
    println!(
        "{:<22} {:>12.1} {:>10} {:>16}",
        "LP-HTA on raw data",
        raw.total_energy.value(),
        "-",
        "-"
    );
    for (name, r) in [("DTA-Workload", &workload), ("DTA-Number", &number)] {
        println!(
            "{:<22} {:>12.1} {:>10} {:>16.3}",
            name,
            r.total_energy.value(),
            r.involved_devices,
            r.processing_time.value(),
        );
    }
    println!(
        "\nDTA energy breakdown (workload): schedule {:.1} J + descriptors {:.3} J + partials {:.1} J",
        workload.schedule_metrics.total_energy.value(),
        workload.descriptor_energy.value(),
        workload.partial_energy.value(),
    );
    println!(
        "raw-data shipping costs {:.1}x the DTA-Workload pipeline",
        raw.total_energy.value() / workload.total_energy.value()
    );
    Ok(())
}
