//! Edge-case tests of the substrate's model surface: degenerate
//! configurations, boundary sizes, and cross-cluster plan structure.

use mec_sim::cost::evaluate;
use mec_sim::radio::NetworkProfile;
use mec_sim::sim::plan::{build_plan, PlanStep, Resource};
use mec_sim::task::{ExecutionSite, HolisticTask, TaskId};
use mec_sim::topology::{Cloud, DeviceId, MecSystem, ResultModel};
use mec_sim::units::{Bytes, Hertz, Seconds};
use mec_sim::workload::ScenarioConfig;

fn two_cluster_system() -> MecSystem {
    let mut b = MecSystem::builder(Cloud {
        cpu: Hertz::from_ghz(2.4),
    });
    let s0 = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
    let s1 = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
    for st in [s0, s1] {
        for _ in 0..2 {
            b.add_device(
                st,
                Hertz::from_ghz(1.5),
                NetworkProfile::FourG.link(),
                Bytes::from_mb(8.0),
            )
            .unwrap();
        }
    }
    b.build().unwrap()
}

fn task(owner: usize, src: Option<usize>) -> HolisticTask {
    HolisticTask {
        id: TaskId {
            user: owner,
            index: 0,
        },
        owner: DeviceId(owner),
        local_size: Bytes::from_kb(1000.0),
        external_size: if src.is_some() {
            Bytes::from_kb(400.0)
        } else {
            Bytes::ZERO
        },
        external_source: src.map(DeviceId),
        complexity: 1.0,
        resource: Bytes::from_kb(1400.0),
        deadline: Seconds::new(30.0),
    }
}

#[test]
fn cross_cluster_device_plan_contains_backhaul_stage() {
    let sys = two_cluster_system();
    let t = task(0, Some(2)); // source in the other cluster
    let plan = build_plan(&sys, &t, ExecutionSite::Device).unwrap();
    let has_bb = plan.steps.iter().any(|s| match s {
        PlanStep::Single(stage) => stage.resource == Resource::StationBackhaul,
        PlanStep::Parallel(branches) => branches
            .iter()
            .flatten()
            .any(|st| st.resource == Resource::StationBackhaul),
    });
    assert!(has_bb, "cross-cluster retrieval must hop the BS backhaul");

    let same = task(0, Some(1));
    let plan = build_plan(&sys, &same, ExecutionSite::Device).unwrap();
    let has_bb = plan
        .steps
        .iter()
        .any(|s| matches!(s, PlanStep::Single(st) if st.resource == Resource::StationBackhaul));
    assert!(!has_bb, "same-cluster retrieval stays inside the cell");
}

#[test]
fn cloud_plan_never_uses_the_bs_backhaul() {
    let sys = two_cluster_system();
    let t = task(0, Some(2));
    let plan = build_plan(&sys, &t, ExecutionSite::Cloud).unwrap();
    for step in &plan.steps {
        let stages: Vec<_> = match step {
            PlanStep::Single(st) => vec![*st],
            PlanStep::Parallel(b) => b.iter().flatten().copied().collect(),
        };
        for st in stages {
            assert_ne!(st.resource, Resource::StationBackhaul);
        }
    }
}

#[test]
fn zero_external_fraction_produces_purely_local_tasks() {
    let mut cfg = ScenarioConfig::paper_defaults(501);
    cfg.external_frac_range = (0.0, 0.0);
    let s = cfg.generate().unwrap();
    for t in &s.tasks {
        assert_eq!(t.external_size, Bytes::ZERO, "{}", t.id);
        assert!(t.external_source.is_none());
    }
}

#[test]
fn single_device_system_generates_without_sources() {
    let mut cfg = ScenarioConfig::paper_defaults(502);
    cfg.num_stations = 1;
    cfg.devices_per_station = 1;
    cfg.tasks_total = 5;
    let s = cfg.generate().unwrap();
    assert_eq!(s.system.num_devices(), 1);
    for t in &s.tasks {
        assert!(t.external_source.is_none(), "nobody else to source from");
    }
}

#[test]
fn tiny_tasks_still_price_consistently() {
    let sys = two_cluster_system();
    let mut t = task(0, None);
    t.local_size = Bytes::new(1.0);
    t.resource = Bytes::new(1.0);
    let c = evaluate(&sys, &t).unwrap();
    for site in ExecutionSite::ALL {
        assert!(c.at(site).time.value() > 0.0);
        assert!(c.at(site).energy.value() >= 0.0);
    }
    // The cloud still pays its latency floor.
    assert!(c.at(ExecutionSite::Cloud).time.value() > 0.25);
}

#[test]
fn constant_result_model_is_size_independent() {
    let mut sys = two_cluster_system();
    sys.result_model = ResultModel::Constant(Bytes::from_kb(7.0));
    let small = evaluate(&sys, &task(0, None)).unwrap();
    let mut big_task = task(0, None);
    big_task.local_size = Bytes::from_kb(4000.0);
    let big = evaluate(&sys, &big_task).unwrap();
    // Station result-download term is identical; only upload/compute grow.
    let link = NetworkProfile::FourG.link();
    let dl = mec_sim::transfer::download_time(&link, Bytes::from_kb(7.0));
    for c in [small, big] {
        let st = c.at(ExecutionSite::Station);
        assert!(st.time.value() > dl.value());
    }
}

#[test]
fn plan_energy_is_nonnegative_everywhere() {
    let s = ScenarioConfig::paper_defaults(503).generate().unwrap();
    for t in s.tasks.iter().take(20) {
        for site in ExecutionSite::ALL {
            let plan = build_plan(&s.system, t, site).unwrap();
            assert!(plan.total_energy().value() >= 0.0);
            assert!(plan.critical_path().value() > 0.0);
        }
    }
}
