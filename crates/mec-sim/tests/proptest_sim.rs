//! Property-based tests over the MEC substrate: bitset algebra laws, cost
//! model monotonicity, and analytic-vs-simulated equivalence.
//!
//! Runs on the in-repo seeded harness ([`detrand::prop`]); failures print
//! the seed to replay via the `DSMEC_PROP_SEED` environment variable.

use detrand::prop::run_cases;
use detrand::{prop_assert, prop_assert_eq, ChaCha8Rng};
use mec_sim::cost::evaluate;
use mec_sim::data::{DataItemId, ItemSet};
use mec_sim::sim::{simulate, Contention};
use mec_sim::task::ExecutionSite;
use mec_sim::units::Bytes;
use mec_sim::workload::ScenarioConfig;

fn item_set(rng: &mut ChaCha8Rng, capacity: usize) -> ItemSet {
    let len = rng.gen_range(0..capacity);
    let ids = (0..len).map(|_| DataItemId(rng.gen_range(0..capacity)));
    ItemSet::from_ids(capacity, ids)
}

#[test]
fn itemset_algebra_laws() {
    run_cases("itemset_algebra_laws", 64, |rng| {
        let a = item_set(rng, 160);
        let b = item_set(rng, 160);
        let c = item_set(rng, 160);
        // Inclusion–exclusion.
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
        // De Morgan via difference: a \ (b ∪ c) = (a \ b) ∩ (a \ c).
        let lhs = a.difference(&b.union(&c));
        let rhs = a.difference(&b).intersection(&a.difference(&c));
        prop_assert_eq!(lhs, rhs);
        // Union commutes and is idempotent.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(&a.union(&a), &a);
        // Difference and intersection partition a.
        prop_assert_eq!(a.difference(&b).len() + a.intersection_len(&b), a.len());
        // Subset relations.
        prop_assert!(a.intersection(&b).is_subset_of(&a));
        prop_assert!(a.is_subset_of(&a.union(&b)));
        prop_assert!(a.difference(&b).is_disjoint(&b));
        Ok(())
    });
}

#[test]
fn itemset_iter_roundtrip() {
    run_cases("itemset_iter_roundtrip", 64, |rng| {
        let a = item_set(rng, 200);
        let rebuilt = ItemSet::from_ids(200, a.iter());
        prop_assert_eq!(&rebuilt, &a);
        let ids: Vec<usize> = a.iter().map(|d| d.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(ids, sorted, "iteration is sorted and duplicate-free");
        Ok(())
    });
}

#[test]
fn cost_is_monotone_in_input_size() {
    run_cases("cost_is_monotone_in_input_size", 64, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let grow = rng.gen_range(1.05..3.0f64);
        let s = ScenarioConfig::paper_defaults(seed).generate().unwrap();
        let mut task = s.tasks[0];
        let base = evaluate(&s.system, &task).unwrap();
        task.local_size = Bytes::new(task.local_size.value() * grow);
        let bigger = evaluate(&s.system, &task).unwrap();
        for site in ExecutionSite::ALL {
            prop_assert!(bigger.at(site).time >= base.at(site).time, "{site}");
            prop_assert!(bigger.at(site).energy >= base.at(site).energy, "{site}");
        }
        Ok(())
    });
}

#[test]
fn energy_ordering_holds_for_generated_tasks() {
    run_cases("energy_ordering_holds_for_generated_tasks", 64, |rng| {
        // The paper argues E_ij1 < E_ij2 < E_ij3 whenever transmission
        // dominates computation; the Section V.A parameters are in that
        // regime, so generated tasks must obey the ordering.
        let seed = rng.gen_range(0u64..200);
        let s = ScenarioConfig::paper_defaults(seed).generate().unwrap();
        for task in s.tasks.iter().take(10) {
            let c = evaluate(&s.system, task).unwrap();
            let e1 = c.at(ExecutionSite::Device).energy;
            let e2 = c.at(ExecutionSite::Station).energy;
            let e3 = c.at(ExecutionSite::Cloud).energy;
            prop_assert!(e1 < e2, "{}: {e1} !< {e2}", task.id);
            prop_assert!(e2 < e3, "{}: {e2} !< {e3}", task.id);
        }
        Ok(())
    });
}

#[test]
fn simulation_agrees_with_cost_model() {
    run_cases("simulation_agrees_with_cost_model", 64, |rng| {
        let mut cfg = ScenarioConfig::paper_defaults(rng.gen_range(0u64..100));
        cfg.tasks_total = 12;
        let s = cfg.generate().unwrap();
        // Mixed assignment: rotate through the sites.
        let assignment: Vec<_> = s
            .tasks
            .iter()
            .enumerate()
            .map(|(k, t)| (*t, ExecutionSite::ALL[k % 3]))
            .collect();
        let report = simulate(&s.system, &assignment, Contention::None).unwrap();
        for ((task, site), result) in assignment.iter().zip(report.results.iter()) {
            let expect = evaluate(&s.system, task).unwrap().at(*site);
            let dt = (result.completion.value() - expect.time.value()).abs();
            prop_assert!(dt < 1e-9 * (1.0 + expect.time.value()));
        }
        Ok(())
    });
}

#[test]
fn deadline_scales_with_factor_range() {
    run_cases("deadline_scales_with_factor_range", 64, |rng| {
        let seed = rng.gen_range(0u64..100);
        let mut tight = ScenarioConfig::paper_defaults(seed);
        tight.deadline_factor_range = (1.0, 1.0);
        let mut loose = ScenarioConfig::paper_defaults(seed);
        loose.deadline_factor_range = (5.0, 5.0);
        let a = tight.generate().unwrap();
        let b = loose.generate().unwrap();
        for (ta, tb) in a.tasks.iter().zip(b.tasks.iter()) {
            prop_assert!(tb.deadline.value() >= ta.deadline.value() * 4.999);
        }
        Ok(())
    });
}
