//! Distributed aggregation operators for *divisible* tasks.
//!
//! Section IV calls a task divisible "if and only if it can be implemented
//! distributedly, i.e. the final result can be obtained by aggregating the
//! partial results" — statistics such as `Sum` or `Count` are the paper's
//! examples. [`AggregateOp`] enumerates such operators and [`Partial`]
//! carries the mergeable intermediate state, so partial results (not raw
//! data) are what travels through the MEC system.

/// A decomposable aggregation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateOp {
    /// Sum of all values.
    Sum,
    /// Number of values.
    Count,
    /// Arithmetic mean (carried as sum + count).
    Mean,
    /// Maximum value.
    Max,
    /// Minimum value.
    Min,
}

impl AggregateOp {
    /// All operators, for generators and exhaustive tests.
    pub const ALL: [AggregateOp; 5] = [
        AggregateOp::Sum,
        AggregateOp::Count,
        AggregateOp::Mean,
        AggregateOp::Max,
        AggregateOp::Min,
    ];

    /// The identity partial for this operator.
    pub fn identity(self) -> Partial {
        match self {
            AggregateOp::Sum => Partial::Sum(0.0),
            AggregateOp::Count => Partial::Count(0),
            AggregateOp::Mean => Partial::Mean { sum: 0.0, count: 0 },
            AggregateOp::Max => Partial::Max(None),
            AggregateOp::Min => Partial::Min(None),
        }
    }

    /// Aggregates a value slice in one shot (the centralized reference
    /// the distributed path must agree with).
    pub fn apply(self, values: &[f64]) -> Option<f64> {
        let mut p = self.identity();
        for &v in values {
            p.absorb(v);
        }
        p.finish()
    }
}

impl std::fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggregateOp::Sum => "sum",
            AggregateOp::Count => "count",
            AggregateOp::Mean => "mean",
            AggregateOp::Max => "max",
            AggregateOp::Min => "min",
        };
        f.write_str(s)
    }
}

/// Mergeable intermediate state of one operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partial {
    /// Running sum.
    Sum(f64),
    /// Running count.
    Count(u64),
    /// Running sum and count for the mean.
    Mean {
        /// Sum of absorbed values.
        sum: f64,
        /// Number of absorbed values.
        count: u64,
    },
    /// Running maximum (`None` until a value arrives).
    Max(Option<f64>),
    /// Running minimum (`None` until a value arrives).
    Min(Option<f64>),
}

impl Partial {
    /// Folds one raw value into the partial.
    pub fn absorb(&mut self, v: f64) {
        match self {
            Partial::Sum(s) => *s += v,
            Partial::Count(c) => *c += 1,
            Partial::Mean { sum, count } => {
                *sum += v;
                *count += 1;
            }
            Partial::Max(m) => *m = Some(m.map_or(v, |x| x.max(v))),
            Partial::Min(m) => *m = Some(m.map_or(v, |x| x.min(v))),
        }
    }

    /// Merges another partial of the *same* operator into this one.
    ///
    /// # Panics
    ///
    /// Panics when the operators differ: merging a `Sum` partial into a
    /// `Max` partial is a logic error.
    pub fn merge(&mut self, other: &Partial) {
        match (self, other) {
            (Partial::Sum(a), Partial::Sum(b)) => *a += b,
            (Partial::Count(a), Partial::Count(b)) => *a += b,
            (Partial::Mean { sum, count }, Partial::Mean { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (Partial::Max(a), Partial::Max(b)) => {
                *a = match (*a, *b) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            (Partial::Min(a), Partial::Min(b)) => {
                *a = match (*a, *b) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                }
            }
            (a, b) => panic!("cannot merge partials of different operators: {a:?} vs {b:?}"),
        }
    }

    /// Final answer; `None` when no value was ever absorbed and the
    /// operator has no empty-input answer (mean/max/min).
    pub fn finish(&self) -> Option<f64> {
        match *self {
            Partial::Sum(s) => Some(s),
            Partial::Count(c) => Some(c as f64),
            Partial::Mean { sum, count } => {
                if count == 0 {
                    None
                } else {
                    Some(sum / count as f64)
                }
            }
            Partial::Max(m) => m,
            Partial::Min(m) => m,
        }
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_enum!(AggregateOp {
    Sum,
    Count,
    Mean,
    Max,
    Min
});
djson::impl_json_enum!(Partial {
    Sum(f64),
    Count(u64),
    Mean { sum: f64, count: u64 },
    Max(Option<f64>),
    Min(Option<f64>),
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_matches_manual() {
        let v = [3.0, -1.0, 4.0, 1.5];
        assert_eq!(AggregateOp::Sum.apply(&v), Some(7.5));
        assert_eq!(AggregateOp::Count.apply(&v), Some(4.0));
        assert_eq!(AggregateOp::Mean.apply(&v), Some(7.5 / 4.0));
        assert_eq!(AggregateOp::Max.apply(&v), Some(4.0));
        assert_eq!(AggregateOp::Min.apply(&v), Some(-1.0));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(AggregateOp::Sum.apply(&[]), Some(0.0));
        assert_eq!(AggregateOp::Count.apply(&[]), Some(0.0));
        assert_eq!(AggregateOp::Mean.apply(&[]), None);
        assert_eq!(AggregateOp::Max.apply(&[]), None);
    }

    #[test]
    fn distributed_equals_centralized_for_every_op() {
        let values = [5.0, 2.0, 9.0, -3.0, 7.0, 7.0];
        for op in AggregateOp::ALL {
            // Split into three unequal shards, aggregate shard-wise, merge.
            let shards = [&values[..2], &values[2..3], &values[3..]];
            let mut merged = op.identity();
            for shard in shards {
                let mut p = op.identity();
                for &v in shard {
                    p.absorb(v);
                }
                merged.merge(&p);
            }
            assert_eq!(merged.finish(), op.apply(&values), "op {op}");
        }
    }

    #[test]
    fn merge_is_commutative() {
        for op in AggregateOp::ALL {
            let mut a = op.identity();
            a.absorb(1.0);
            a.absorb(5.0);
            let mut b = op.identity();
            b.absorb(-2.0);

            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            assert_eq!(ab.finish(), ba.finish(), "op {op}");
        }
    }

    #[test]
    #[should_panic(expected = "different operators")]
    fn merging_mismatched_ops_panics() {
        let mut a = AggregateOp::Sum.identity();
        a.merge(&AggregateOp::Max.identity());
    }

    #[test]
    fn display_names() {
        assert_eq!(AggregateOp::Mean.to_string(), "mean");
    }
}
