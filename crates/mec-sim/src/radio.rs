//! Radio-access-network model.
//!
//! Each mobile device reaches its base station over either 4G or Wi-Fi.
//! The paper parameterizes the experiments with the measured rates and
//! powers of Table I (reproduced in [`NetworkProfile`]); for custom
//! scenarios the Shannon-capacity helper [`shannon_rate`] computes a rate
//! from bandwidth, channel gain, transmit power and noise exactly as the
//! formulas in Section II.B prescribe.

use crate::error::MecError;
use crate::units::{BytesPerSecond, Hertz, Watts};

/// The two wireless technologies of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkProfile {
    /// Cellular: 13.76 Mbps down / 5.85 Mbps up, 7.32 W transmit,
    /// 1.6 W receive.
    FourG,
    /// Wi-Fi: 54.97 Mbps down / 12.88 Mbps up, 15.7 W transmit,
    /// 2.7 W receive.
    WiFi,
}

impl NetworkProfile {
    /// All profiles, for iteration in workload generators and the Table I
    /// reproduction.
    pub const ALL: [NetworkProfile; 2] = [NetworkProfile::FourG, NetworkProfile::WiFi];

    /// Human-readable name used in reports ("4G" / "Wi-Fi").
    pub fn name(self) -> &'static str {
        match self {
            NetworkProfile::FourG => "4G",
            NetworkProfile::WiFi => "Wi-Fi",
        }
    }

    /// Link parameters from Table I.
    pub fn link(self) -> RadioLink {
        match self {
            NetworkProfile::FourG => RadioLink {
                download: BytesPerSecond::from_mbps(13.76),
                upload: BytesPerSecond::from_mbps(5.85),
                tx_power: Watts::new(7.32),
                rx_power: Watts::new(1.6),
            },
            NetworkProfile::WiFi => RadioLink {
                download: BytesPerSecond::from_mbps(54.97),
                upload: BytesPerSecond::from_mbps(12.88),
                tx_power: Watts::new(15.7),
                rx_power: Watts::new(2.7),
            },
        }
    }
}

impl std::fmt::Display for NetworkProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Concrete uplink/downlink parameters of one device's radio link
/// (`r_i^(U)`, `r_i^(D)`, `P_i^(T)`, `P_i^(R)` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioLink {
    /// Downlink rate `r_i^(D)`.
    pub download: BytesPerSecond,
    /// Uplink rate `r_i^(U)`.
    pub upload: BytesPerSecond,
    /// Transmit power `P_i^(T)` drawn while uploading.
    pub tx_power: Watts,
    /// Receive power `P_i^(R)` drawn while downloading.
    pub rx_power: Watts,
}

impl RadioLink {
    /// Builds a custom link from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if a rate or power is non-positive or non-finite.
    pub fn new(
        download: BytesPerSecond,
        upload: BytesPerSecond,
        tx_power: Watts,
        rx_power: Watts,
    ) -> RadioLink {
        for v in [
            download.value(),
            upload.value(),
            tx_power.value(),
            rx_power.value(),
        ] {
            assert!(v.is_finite() && v > 0.0, "link parameters must be positive");
        }
        RadioLink {
            download,
            upload,
            tx_power,
            rx_power,
        }
    }
}

/// Shannon capacity `W · log₂(1 + g·P/ϖ₀)` in bytes per second, the rate
/// formula of Section II.B.
///
/// * `bandwidth` — allocated channel bandwidth `W` (Hz);
/// * `gain` — dimensionless channel gain `g`;
/// * `power` — transmit power `P` (W);
/// * `noise` — white-noise power `ϖ₀` (W).
///
/// # Errors
///
/// Returns [`MecError::InvalidParameter`] when the noise power is zero,
/// negative, or non-finite, when the bandwidth, gain, or power is
/// negative or non-finite, or when the resulting SNR overflows — a NaN
/// here would otherwise poison every downstream cost-table entry.
///
/// # Examples
///
/// ```
/// use mec_sim::radio::shannon_rate;
/// use mec_sim::units::{Hertz, Watts};
///
/// // 10 MHz channel, SNR of 3 (i.e. log2(4) = 2 bits/s/Hz) → 20 Mbit/s.
/// let r = shannon_rate(Hertz::new(10e6), 3.0, Watts::new(1.0), Watts::new(1.0))?;
/// assert!((r.as_mbps() - 20.0).abs() < 1e-9);
///
/// // Zero noise power is a typed error, not a NaN.
/// assert!(shannon_rate(Hertz::new(10e6), 3.0, Watts::new(1.0), Watts::new(0.0)).is_err());
/// # Ok::<(), mec_sim::MecError>(())
/// ```
pub fn shannon_rate(
    bandwidth: Hertz,
    gain: f64,
    power: Watts,
    noise: Watts,
) -> Result<BytesPerSecond, MecError> {
    let invalid = |name: &'static str, reason: String| MecError::InvalidParameter { name, reason };
    if !(noise.value() > 0.0) || !noise.is_finite() {
        return Err(invalid(
            "noise",
            format!("noise power must be positive and finite, got {noise}"),
        ));
    }
    if !bandwidth.is_finite() || bandwidth.value() < 0.0 {
        return Err(invalid(
            "bandwidth",
            format!("bandwidth must be finite and nonnegative, got {bandwidth}"),
        ));
    }
    if !gain.is_finite() || gain < 0.0 {
        return Err(invalid(
            "gain",
            format!("channel gain must be finite and nonnegative, got {gain}"),
        ));
    }
    if !power.is_finite() || power.value() < 0.0 {
        return Err(invalid(
            "power",
            format!("transmit power must be finite and nonnegative, got {power}"),
        ));
    }
    let snr = gain * power.value() / noise.value();
    if !snr.is_finite() {
        return Err(invalid(
            "snr",
            format!("SNR {snr} is not finite (gain {gain}, power {power}, noise {noise})"),
        ));
    }
    let bits_per_second = bandwidth.value() * (1.0 + snr).log2();
    Ok(BytesPerSecond(bits_per_second / 8.0))
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_enum!(NetworkProfile { FourG, WiFi });
djson::impl_json_struct!(RadioLink {
    download,
    upload,
    tx_power,
    rx_power
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_reproduced() {
        let g4 = NetworkProfile::FourG.link();
        assert!((g4.download.as_mbps() - 13.76).abs() < 1e-9);
        assert!((g4.upload.as_mbps() - 5.85).abs() < 1e-9);
        assert_eq!(g4.tx_power, Watts::new(7.32));
        assert_eq!(g4.rx_power, Watts::new(1.6));

        let wifi = NetworkProfile::WiFi.link();
        assert!((wifi.download.as_mbps() - 54.97).abs() < 1e-9);
        assert!((wifi.upload.as_mbps() - 12.88).abs() < 1e-9);
        assert_eq!(wifi.tx_power, Watts::new(15.7));
        assert_eq!(wifi.rx_power, Watts::new(2.7));
    }

    #[test]
    fn wifi_is_faster_but_hungrier() {
        let g4 = NetworkProfile::FourG.link();
        let wifi = NetworkProfile::WiFi.link();
        assert!(wifi.download > g4.download);
        assert!(wifi.upload > g4.upload);
        assert!(wifi.tx_power > g4.tx_power);
    }

    #[test]
    fn shannon_rate_grows_with_everything_good() {
        let rate = |bw, gain, pwr, noise| {
            shannon_rate(Hertz::new(bw), gain, Watts::new(pwr), Watts::new(noise)).unwrap()
        };
        let base = rate(5e6, 1.0, 1.0, 0.5);
        let more_bw = rate(10e6, 1.0, 1.0, 0.5);
        let more_pwr = rate(5e6, 1.0, 4.0, 0.5);
        let more_noise = rate(5e6, 1.0, 1.0, 2.0);
        assert!(more_bw > base);
        assert!(more_pwr > base);
        assert!(more_noise < base);
    }

    #[test]
    fn shannon_rate_rejects_bad_noise() {
        for noise in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err =
                shannon_rate(Hertz::new(1e6), 1.0, Watts::new(1.0), Watts::new(noise)).unwrap_err();
            match err {
                MecError::InvalidParameter { name, .. } => assert_eq!(name, "noise"),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn shannon_rate_rejects_non_finite_inputs() {
        let name_of = |e: MecError| match e {
            MecError::InvalidParameter { name, .. } => name,
            other => panic!("unexpected error {other:?}"),
        };
        let err = shannon_rate(Hertz::new(f64::NAN), 1.0, Watts::new(1.0), Watts::new(1.0));
        assert_eq!(name_of(err.unwrap_err()), "bandwidth");
        let err = shannon_rate(
            Hertz::new(1e6),
            f64::INFINITY,
            Watts::new(1.0),
            Watts::new(1.0),
        );
        assert_eq!(name_of(err.unwrap_err()), "gain");
        let err = shannon_rate(Hertz::new(1e6), -0.5, Watts::new(1.0), Watts::new(1.0));
        assert_eq!(name_of(err.unwrap_err()), "gain");
        let err = shannon_rate(Hertz::new(1e6), 1.0, Watts::new(f64::NAN), Watts::new(1.0));
        assert_eq!(name_of(err.unwrap_err()), "power");
    }

    #[test]
    fn shannon_rate_rejects_overflowing_snr() {
        // gain * power overflows to +inf even though both are finite.
        let err = shannon_rate(
            Hertz::new(1e6),
            f64::MAX,
            Watts::new(f64::MAX),
            Watts::new(1.0),
        )
        .unwrap_err();
        match err {
            MecError::InvalidParameter { name, .. } => assert_eq!(name, "snr"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn names_display() {
        assert_eq!(NetworkProfile::FourG.to_string(), "4G");
        assert_eq!(NetworkProfile::WiFi.to_string(), "Wi-Fi");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn link_rejects_zero_rate() {
        RadioLink::new(
            BytesPerSecond::new(0.0),
            BytesPerSecond::new(1.0),
            Watts::new(1.0),
            Watts::new(1.0),
        );
    }
}
