//! Index-based struct-of-arrays view of a scenario (DESIGN.md §11).
//!
//! The object graph ([`MecSystem`] with per-device structs behind
//! [`DeviceId`] lookups) is the right *construction* interface, but at
//! ROADMAP-item-5 scale (10⁵–10⁶ devices) the hot loops — batch cost
//! pricing, DTA greedy rounds, serve churn ingest — want the fields they
//! touch packed contiguously and addressed by plain `u32` indices. A
//! [`ScenarioArena`] is that view: parallel `Vec`s over devices and
//! stations plus a CSR cluster layout, built once per scenario and read
//! through the typed handles [`DeviceIdx`] / [`StationIdx`] / [`TaskIdx`].
//!
//! Conventions:
//!
//! * Handles are `u32` newtypes; conversion from the `usize` id space is
//!   checked ([`MecError::IndexOverflow`] past `u32::MAX`, which the
//!   debug-assertions CI pass exercises) and a handle is only meaningful
//!   for the arena it was minted for.
//! * The arena is immutable after [`ScenarioArena::from_system`]; it
//!   borrows nothing, so it can be shared freely across `par_map`
//!   workers.
//! * Array order is id order, so arena scans visit entities in exactly
//!   the order the id-based loops they replace did — the bit-identity
//!   argument for every refactored consumer.

use crate::error::MecError;
use crate::radio::RadioLink;
use crate::topology::{DeviceId, MecSystem, StationId};
use crate::units::{Bytes, Hertz};

/// Checked `usize` → `u32` index conversion.
///
/// # Errors
///
/// Returns [`MecError::IndexOverflow`] when `index` exceeds `u32::MAX`.
pub fn to_u32(what: &'static str, index: usize) -> Result<u32, MecError> {
    u32::try_from(index).map_err(|_| MecError::IndexOverflow { what, index })
}

/// Arena handle of a mobile device (row in the device arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceIdx(pub u32);

/// Arena handle of a base station (row in the station arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StationIdx(pub u32);

/// Arena handle of a task (row in a cost matrix / decision array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskIdx(pub u32);

impl DeviceIdx {
    /// The handle as a plain array index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Checked conversion from the `usize` id space.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::IndexOverflow`] past `u32::MAX`.
    pub fn from_id(id: DeviceId) -> Result<DeviceIdx, MecError> {
        Ok(DeviceIdx(to_u32("device index", id.0)?))
    }

    /// Back to the id space.
    #[must_use]
    pub fn id(self) -> DeviceId {
        DeviceId(self.index())
    }
}

impl StationIdx {
    /// The handle as a plain array index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Checked conversion from the `usize` id space.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::IndexOverflow`] past `u32::MAX`.
    pub fn from_id(id: StationId) -> Result<StationIdx, MecError> {
        Ok(StationIdx(to_u32("station index", id.0)?))
    }

    /// Back to the id space.
    #[must_use]
    pub fn id(self) -> StationId {
        StationId(self.index())
    }
}

impl TaskIdx {
    /// The handle as a plain array index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Checked conversion from a task-slice position.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::IndexOverflow`] past `u32::MAX`.
    pub fn from_pos(pos: usize) -> Result<TaskIdx, MecError> {
        Ok(TaskIdx(to_u32("task index", pos)?))
    }
}

/// Struct-of-arrays snapshot of a [`MecSystem`]'s assignment-relevant
/// fields, indexed by [`DeviceIdx`] / [`StationIdx`] rows in id order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioArena {
    // --- devices, row = device id ------------------------------------
    /// Device CPU frequencies `f_i`.
    pub dev_cpu: Vec<Hertz>,
    /// Device radio links (upload/download rate, TX/RX power).
    pub dev_link: Vec<RadioLink>,
    /// Station each device attaches to.
    pub dev_station: Vec<u32>,
    /// Device resource capacities `max_i`.
    pub dev_capacity: Vec<Bytes>,
    // --- stations, row = station id ----------------------------------
    /// Station CPU frequencies `f_s`.
    pub st_cpu: Vec<Hertz>,
    /// Station resource capacities `max_S`.
    pub st_capacity: Vec<Bytes>,
    // --- CSR clusters -------------------------------------------------
    /// Per-station offsets into [`Self::cluster_devices`]
    /// (`len = stations + 1`).
    pub cluster_offsets: Vec<u32>,
    /// Device rows grouped by station, ascending within each cluster.
    pub cluster_devices: Vec<u32>,
}

impl ScenarioArena {
    /// Builds the arena from a system. All indices are checked into
    /// `u32`, so a fleet past 4 × 10⁹ entities fails loudly instead of
    /// truncating.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::IndexOverflow`] when any id exceeds
    /// `u32::MAX`.
    pub fn from_system(system: &MecSystem) -> Result<ScenarioArena, MecError> {
        let devices = system.devices();
        let stations = system.stations();
        to_u32("device count", devices.len())?;
        to_u32("station count", stations.len())?;

        let mut dev_cpu = Vec::with_capacity(devices.len());
        let mut dev_link = Vec::with_capacity(devices.len());
        let mut dev_station = Vec::with_capacity(devices.len());
        let mut dev_capacity = Vec::with_capacity(devices.len());
        for d in devices {
            dev_cpu.push(d.cpu);
            dev_link.push(d.link);
            dev_station.push(to_u32("station index", d.station.0)?);
            dev_capacity.push(d.max_resource);
        }

        let st_cpu = stations.iter().map(|s| s.cpu).collect();
        let st_capacity = stations.iter().map(|s| s.max_resource).collect();

        // CSR clusters: count, prefix-sum, fill — devices are visited in
        // id order, so each cluster's slice stays ascending, matching
        // `MecSystem::cluster`.
        let mut counts = vec![0u32; stations.len()];
        for &st in &dev_station {
            counts[st as usize] += 1;
        }
        let mut cluster_offsets = Vec::with_capacity(stations.len() + 1);
        let mut acc = 0u32;
        cluster_offsets.push(0);
        for &c in &counts {
            acc += c;
            cluster_offsets.push(acc);
        }
        let mut next = cluster_offsets.clone();
        let mut cluster_devices = vec![0u32; devices.len()];
        for (i, &st) in dev_station.iter().enumerate() {
            cluster_devices[next[st as usize] as usize] = to_u32("device index", i)?;
            next[st as usize] += 1;
        }

        Ok(ScenarioArena {
            dev_cpu,
            dev_link,
            dev_station,
            dev_capacity,
            st_cpu,
            st_capacity,
            cluster_offsets,
            cluster_devices,
        })
    }

    /// Number of device rows.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.dev_cpu.len()
    }

    /// Number of station rows.
    #[must_use]
    pub fn num_stations(&self) -> usize {
        self.st_cpu.len()
    }

    /// The station row a device attaches to, `None` out of range.
    #[must_use]
    pub fn station_of(&self, dev: DeviceIdx) -> Option<StationIdx> {
        self.dev_station.get(dev.index()).map(|&s| StationIdx(s))
    }

    /// The device rows of one cluster, ascending; `None` out of range.
    #[must_use]
    pub fn cluster(&self, st: StationIdx) -> Option<&[u32]> {
        let lo = *self.cluster_offsets.get(st.index())? as usize;
        let hi = *self.cluster_offsets.get(st.index() + 1)? as usize;
        self.cluster_devices.get(lo..hi)
    }

    /// True iff both devices attach to the same station; `None` when
    /// either handle is out of range.
    #[must_use]
    pub fn same_cluster(&self, a: DeviceIdx, b: DeviceIdx) -> Option<bool> {
        Some(self.station_of(a)? == self.station_of(b)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ScenarioConfig;

    #[test]
    fn arena_mirrors_system() {
        let s = ScenarioConfig::paper_defaults(7).generate().unwrap();
        let arena = ScenarioArena::from_system(&s.system).unwrap();
        assert_eq!(arena.num_devices(), s.system.num_devices());
        assert_eq!(arena.num_stations(), s.system.num_stations());
        for d in s.system.devices() {
            let idx = DeviceIdx::from_id(d.id).unwrap();
            assert_eq!(arena.dev_cpu[idx.index()], d.cpu);
            assert_eq!(arena.dev_link[idx.index()], d.link);
            assert_eq!(arena.dev_capacity[idx.index()], d.max_resource);
            assert_eq!(arena.station_of(idx).unwrap().id(), d.station);
            assert_eq!(idx.id(), d.id);
        }
        for st in s.system.stations() {
            let idx = StationIdx::from_id(st.id).unwrap();
            assert_eq!(arena.st_cpu[idx.index()], st.cpu);
            assert_eq!(arena.st_capacity[idx.index()], st.max_resource);
            let csr: Vec<DeviceId> = arena
                .cluster(idx)
                .unwrap()
                .iter()
                .map(|&d| DeviceId(d as usize))
                .collect();
            assert_eq!(csr, s.system.cluster(st.id).unwrap());
        }
    }

    #[test]
    fn cluster_slices_partition_devices_in_order() {
        let mut cfg = ScenarioConfig::paper_defaults(3);
        cfg.num_stations = 4;
        cfg.devices_per_station = 7;
        let s = cfg.generate().unwrap();
        let arena = ScenarioArena::from_system(&s.system).unwrap();
        let mut seen = vec![false; arena.num_devices()];
        for st in 0..arena.num_stations() {
            let cluster = arena.cluster(StationIdx(st as u32)).unwrap();
            assert!(cluster.windows(2).all(|w| w[0] < w[1]), "ascending");
            for &d in cluster {
                assert!(!seen[d as usize]);
                seen[d as usize] = true;
                assert_eq!(arena.dev_station[d as usize] as usize, st);
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn out_of_range_handles_are_none() {
        let s = ScenarioConfig::paper_defaults(7).generate().unwrap();
        let arena = ScenarioArena::from_system(&s.system).unwrap();
        let n = arena.num_devices() as u32;
        assert_eq!(arena.station_of(DeviceIdx(n)), None);
        assert_eq!(arena.cluster(StationIdx(99)), None);
        assert_eq!(arena.same_cluster(DeviceIdx(0), DeviceIdx(n)), None);
        assert!(arena.same_cluster(DeviceIdx(0), DeviceIdx(1)).is_some());
    }

    #[test]
    fn overflow_is_a_typed_error() {
        let err = to_u32("task index", u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(err, MecError::IndexOverflow { .. }));
        assert!(err.to_string().contains("task index"));
        assert_eq!(to_u32("ok", 17).unwrap(), 17);
        let err = TaskIdx::from_pos(u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(err, MecError::IndexOverflow { .. }));
    }
}
