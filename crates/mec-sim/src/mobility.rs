//! Mobility: multi-epoch topology drift.
//!
//! The paper assumes a *quasi-static* scenario (Section II, after \[9\]):
//! every device stays with one base station for the whole assignment
//! period. This module generates what happens when that assumption bends
//! — a sequence of epochs in which each device re-associates to a random
//! other station with some probability per epoch, everything else held
//! fixed. The `ext_mobility` experiment uses it to measure how stale a
//! one-shot assignment becomes as devices move (the assumption's price),
//! and how re-running the assignment per epoch recovers it.

use crate::error::MecError;
use crate::task::HolisticTask;
use crate::topology::{Cloud, MecSystem, StationId};
use crate::workload::{Scenario, ScenarioConfig};
use detrand::ChaCha8Rng;

/// Configuration of a dynamic (multi-epoch) scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityConfig {
    /// Epoch-0 topology and task workload.
    pub base: ScenarioConfig,
    /// Number of epochs (including epoch 0).
    pub epochs: usize,
    /// Per-device, per-epoch probability of re-associating to a uniformly
    /// random *other* station.
    pub move_prob: f64,
}

impl MobilityConfig {
    /// A default drifting scenario on the paper topology.
    pub fn paper_defaults(seed: u64) -> MobilityConfig {
        MobilityConfig {
            base: ScenarioConfig::paper_defaults(seed),
            epochs: 5,
            move_prob: 0.2,
        }
    }

    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] for an empty epoch list or
    /// an out-of-range probability.
    pub fn validate(&self) -> Result<(), MecError> {
        self.base.validate()?;
        if self.epochs == 0 {
            return Err(MecError::InvalidParameter {
                name: "epochs",
                reason: "at least one epoch required".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.move_prob) {
            return Err(MecError::InvalidParameter {
                name: "move_prob",
                reason: format!("{} is not a probability", self.move_prob),
            });
        }
        Ok(())
    }

    /// Generates the epoch sequence. Tasks are generated once against the
    /// epoch-0 system (so mobility effects are isolated from workload
    /// noise); each later epoch perturbs only device↔station association.
    ///
    /// # Errors
    ///
    /// Propagates validation and generation errors.
    pub fn generate(&self) -> Result<DynamicScenario, MecError> {
        self.validate()?;
        let Scenario { system, tasks } = self.base.generate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.base.seed ^ 0x6d6f6269_6c697479);
        let k = system.num_stations();
        let mut epochs = vec![system.clone()];
        let mut current = system;
        for _ in 1..self.epochs {
            current = perturb_associations(&current, self.move_prob, k, &mut rng)?;
            epochs.push(current.clone());
        }
        Ok(DynamicScenario { epochs, tasks })
    }
}

/// A topology drifting over epochs with a fixed task workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicScenario {
    /// The system at each epoch; index 0 is the generation-time topology.
    pub epochs: Vec<MecSystem>,
    /// The (fixed) tasks, priced against epoch 0.
    pub tasks: Vec<HolisticTask>,
}

impl DynamicScenario {
    /// Fraction of devices whose station differs between two epochs.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] for out-of-range epochs.
    pub fn churn(&self, from: usize, to: usize) -> Result<f64, MecError> {
        let a = self.epochs.get(from).ok_or(MecError::InvalidParameter {
            name: "from",
            reason: format!("epoch {from} out of range"),
        })?;
        let b = self.epochs.get(to).ok_or(MecError::InvalidParameter {
            name: "to",
            reason: format!("epoch {to} out of range"),
        })?;
        let moved = a
            .devices()
            .iter()
            .zip(b.devices())
            .filter(|(x, y)| x.station != y.station)
            .count();
        Ok(moved as f64 / a.num_devices().max(1) as f64)
    }
}

/// Rebuilds `system` with each device re-associated with probability
/// `move_prob` (uniform among the other stations).
fn perturb_associations(
    system: &MecSystem,
    move_prob: f64,
    k: usize,
    rng: &mut ChaCha8Rng,
) -> Result<MecSystem, MecError> {
    let mut b = MecSystem::builder(Cloud {
        cpu: system.cloud().cpu,
    });
    b.backhaul(system.backhaul)
        .cycle_model(system.cycle_model)
        .result_model(system.result_model);
    for st in system.stations() {
        b.add_station(st.cpu, st.max_resource);
    }
    for d in system.devices() {
        let station = if k > 1 && rng.gen_bool(move_prob) {
            let mut s = rng.gen_range(0..k - 1);
            if s >= d.station.0 {
                s += 1;
            }
            StationId(s)
        } else {
            d.station
        };
        b.add_device(station, d.cpu, d.link, d.max_resource)?;
    }
    b.build()
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(MobilityConfig {
    base,
    epochs,
    move_prob
});
djson::impl_json_struct!(DynamicScenario { epochs, tasks });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_zero_matches_base_scenario() {
        let cfg = MobilityConfig::paper_defaults(17);
        let dynamic = cfg.generate().unwrap();
        let Scenario { system, tasks } = cfg.base.generate().unwrap();
        assert_eq!(dynamic.epochs[0], system);
        assert_eq!(dynamic.tasks, tasks);
        assert_eq!(dynamic.epochs.len(), cfg.epochs);
    }

    #[test]
    fn zero_mobility_freezes_topology() {
        let mut cfg = MobilityConfig::paper_defaults(18);
        cfg.move_prob = 0.0;
        let dynamic = cfg.generate().unwrap();
        for e in 1..dynamic.epochs.len() {
            assert_eq!(dynamic.epochs[e], dynamic.epochs[0]);
            assert_eq!(dynamic.churn(0, e).unwrap(), 0.0);
        }
    }

    #[test]
    fn churn_tracks_move_probability() {
        let mut cfg = MobilityConfig::paper_defaults(19);
        cfg.move_prob = 0.5;
        cfg.epochs = 2;
        let dynamic = cfg.generate().unwrap();
        let churn = dynamic.churn(0, 1).unwrap();
        // 50 devices at p = 0.5: churn should be near 0.5 and never 0.
        assert!(churn > 0.2 && churn < 0.8, "churn {churn}");
    }

    #[test]
    fn devices_keep_their_hardware_when_moving() {
        let mut cfg = MobilityConfig::paper_defaults(20);
        cfg.move_prob = 1.0;
        cfg.epochs = 3;
        let dynamic = cfg.generate().unwrap();
        for e in 1..3 {
            for (a, b) in dynamic.epochs[0]
                .devices()
                .iter()
                .zip(dynamic.epochs[e].devices())
            {
                assert_eq!(a.cpu, b.cpu);
                assert_eq!(a.link, b.link);
                assert_eq!(a.max_resource, b.max_resource);
                assert_eq!(a.id, b.id);
            }
            // Every device moved (k > 1, p = 1).
            assert_eq!(dynamic.churn(e - 1, e).unwrap(), 1.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MobilityConfig::paper_defaults(21).generate().unwrap();
        let b = MobilityConfig::paper_defaults(21).generate().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut cfg = MobilityConfig::paper_defaults(22);
        cfg.epochs = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MobilityConfig::paper_defaults(22);
        cfg.move_prob = 1.5;
        assert!(cfg.validate().is_err());
        let cfg = MobilityConfig::paper_defaults(22);
        assert!(cfg.generate().unwrap().churn(0, 99).is_err());
    }
}
