//! Deterministic open-loop task streams for the online serve mode.
//!
//! The paper's experiments assign one fixed batch; a serving system sees
//! tasks *arrive*. [`StreamConfig`] turns a [`ScenarioConfig`] into a
//! fixed topology plus a seeded sequence of epoch batches: `epochs ×
//! batch` tasks drawn from the same generator as the offline scenarios,
//! released at Poisson arrival times and grouped into micro-batches the
//! assignment loop drains one epoch at a time.
//!
//! Everything is deterministic in the seed — two streams from equal
//! configs are equal, which is what the serve loop's cross-thread
//! fingerprint oracle relies on. Because scenario tasks are dealt
//! round-robin over devices, a `batch` that is a multiple of the device
//! count keeps every cluster's per-epoch task count constant, so the
//! per-station LP shape is stable across epochs and warm-started bases
//! keep fitting (see `dsmec serve`).

use crate::error::MecError;
use crate::task::HolisticTask;
use crate::topology::MecSystem;
use crate::units::Seconds;
use crate::workload::{poisson_arrivals, ScenarioConfig};

/// Configuration of a deterministic task-arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Topology, task physics and the master seed.
    pub scenario: ScenarioConfig,
    /// Number of epoch batches to generate.
    pub epochs: usize,
    /// Tasks per epoch. Multiples of the device count keep per-cluster
    /// LP shapes constant across epochs (best warm-start hit rates).
    pub batch: usize,
    /// Poisson arrival rate, tasks per second.
    pub rate_per_second: f64,
}

impl StreamConfig {
    /// Paper-defaults topology (5 stations × 10 devices) streaming
    /// `epochs` batches of one task per device at 50 tasks/s.
    pub fn paper_defaults(seed: u64, epochs: usize) -> StreamConfig {
        let scenario = ScenarioConfig::paper_defaults(seed);
        let batch = scenario.num_stations * scenario.devices_per_station;
        StreamConfig {
            scenario,
            epochs,
            batch,
            rate_per_second: 50.0,
        }
    }

    /// Generates the deterministic stream: one topology, `epochs` batches
    /// of `batch` tasks each, with strictly increasing arrival times.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] for zero epochs/batch or a
    /// non-positive rate, and propagates scenario-generation errors.
    pub fn generate(&self) -> Result<TaskStream, MecError> {
        if self.epochs == 0 {
            return Err(MecError::InvalidParameter {
                name: "epochs",
                reason: "must be positive".into(),
            });
        }
        if self.batch == 0 {
            return Err(MecError::InvalidParameter {
                name: "batch",
                reason: "must be positive".into(),
            });
        }
        let total =
            self.epochs
                .checked_mul(self.batch)
                .ok_or_else(|| MecError::InvalidParameter {
                    name: "epochs",
                    reason: format!("{} x {} tasks overflows", self.epochs, self.batch),
                })?;
        let mut cfg = self.scenario.clone();
        cfg.tasks_total = total;
        let scenario = cfg.generate()?;
        let arrivals = poisson_arrivals(self.scenario.seed, total, self.rate_per_second)?;
        let batches = scenario
            .tasks
            .chunks(self.batch)
            .zip(arrivals.chunks(self.batch))
            .enumerate()
            .map(|(epoch, (tasks, at))| EpochBatch {
                epoch,
                tasks: tasks.to_vec(),
                arrivals: at.to_vec(),
            })
            .collect();
        Ok(TaskStream {
            system: scenario.system,
            batches,
        })
    }
}

/// One epoch's worth of arrivals: the tasks and their release times,
/// parallel vectors in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochBatch {
    /// Zero-based epoch number.
    pub epoch: usize,
    /// The tasks arriving this epoch.
    pub tasks: Vec<HolisticTask>,
    /// Release times, parallel to `tasks`, strictly increasing across
    /// the whole stream.
    pub arrivals: Vec<Seconds>,
}

impl EpochBatch {
    /// When this epoch's last task arrives — the decision deadline the
    /// serve loop batches against.
    #[must_use]
    pub fn close_time(&self) -> Seconds {
        self.arrivals.last().copied().unwrap_or(Seconds::ZERO)
    }
}

/// A generated stream: the fixed topology and the epoch batches.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskStream {
    /// The MEC system every epoch assigns into.
    pub system: MecSystem,
    /// Epoch batches in arrival order.
    pub batches: Vec<EpochBatch>,
}

impl TaskStream {
    /// Arrival time of the stream's last task (zero for an empty stream)
    /// — the horizon a churn plan should span.
    #[must_use]
    pub fn horizon(&self) -> Seconds {
        self.batches
            .last()
            .map(EpochBatch::close_time)
            .unwrap_or(Seconds::ZERO)
    }
}

djson::impl_json_struct!(StreamConfig {
    scenario,
    epochs,
    batch,
    rate_per_second,
});
djson::impl_json_struct!(EpochBatch {
    epoch,
    tasks,
    arrivals
});
djson::impl_json_struct!(TaskStream { system, batches });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let a = StreamConfig::paper_defaults(11, 4).generate().unwrap();
        let b = StreamConfig::paper_defaults(11, 4).generate().unwrap();
        assert_eq!(a, b);
        let c = StreamConfig::paper_defaults(12, 4).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn batches_keep_per_device_load_constant() {
        // One task per device per epoch: every epoch covers every device
        // exactly once, so per-cluster LP shapes never change.
        let stream = StreamConfig::paper_defaults(3, 3).generate().unwrap();
        assert_eq!(stream.batches.len(), 3);
        let n = stream.system.num_devices();
        for batch in &stream.batches {
            assert_eq!(batch.tasks.len(), n);
            let mut seen = vec![false; n];
            for t in &batch.tasks {
                assert!(!seen[t.owner.0], "device {} twice in epoch", t.owner.0);
                seen[t.owner.0] = true;
            }
        }
    }

    #[test]
    fn arrivals_increase_across_the_whole_stream() {
        let stream = StreamConfig::paper_defaults(9, 5).generate().unwrap();
        let all: Vec<f64> = stream
            .batches
            .iter()
            .flat_map(|b| b.arrivals.iter().map(|s| s.value()))
            .collect();
        assert_eq!(all.len(), 5 * stream.system.num_devices());
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(stream.horizon().value(), *all.last().unwrap());
        assert!(stream.batches[0].close_time().value() < stream.horizon().value());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut cfg = StreamConfig::paper_defaults(1, 0);
        assert!(cfg.generate().is_err());
        cfg.epochs = 2;
        cfg.batch = 0;
        assert!(cfg.generate().is_err());
        cfg.batch = 4;
        cfg.rate_per_second = 0.0;
        assert!(cfg.generate().is_err());
    }

    #[test]
    fn stream_round_trips_through_json() {
        let mut cfg = StreamConfig::paper_defaults(5, 2);
        cfg.scenario.num_stations = 1;
        cfg.scenario.devices_per_station = 3;
        cfg.batch = 3;
        let stream = cfg.generate().unwrap();
        let json = djson::to_string(&stream);
        let back: TaskStream = djson::from_str(&json).unwrap();
        assert_eq!(back, stream);
    }
}
