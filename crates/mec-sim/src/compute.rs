//! Computation model: CPU-cycle demand `λ(y)` and device compute energy
//! `κ·λ(y)·f²` (paper Eq. (2)–(3), after Burd & Brodersen \[14\] and the
//! linear-cost calibration of Munoz et al. \[22\]).
//!
//! The paper lets each task carry its own cycle function `λ_ijl(y)`; the
//! evaluation then instantiates all of them as the *linear* model
//! `λ(y) = λ·y` with `λ = 330 cycles/byte`. [`CycleModel`] captures the
//! linear family with an optional per-task complexity multiplier so
//! heterogeneous operators remain expressible.

use crate::units::{Bytes, Cycles, Hertz, Joules, Seconds};

/// The paper's Section V.A constant: cycles needed per input byte.
pub const LAMBDA_CYCLES_PER_BYTE: f64 = 330.0;

/// The paper's Section V.A constant: the hardware energy coefficient `κ`
/// in `E = κ·cycles·f²` (J·s²/cycle³ formally; the paper quotes 10⁻²⁷).
pub const KAPPA: f64 = 1e-27;

/// Cycle-demand model `λ(y) = base_rate · complexity · y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Cycles per byte for a unit-complexity operator.
    pub cycles_per_byte: f64,
}

impl CycleModel {
    /// The paper's calibration (`λ = 330 cycles/byte`).
    pub fn paper_default() -> CycleModel {
        CycleModel {
            cycles_per_byte: LAMBDA_CYCLES_PER_BYTE,
        }
    }

    /// A custom linear model.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_byte` is not positive and finite.
    pub fn new(cycles_per_byte: f64) -> CycleModel {
        assert!(
            cycles_per_byte.is_finite() && cycles_per_byte > 0.0,
            "cycles per byte must be positive"
        );
        CycleModel { cycles_per_byte }
    }

    /// CPU cycles to process `input` bytes with an operator of the given
    /// `complexity` multiplier (`λ_ij(y)` in the paper).
    pub fn cycles(&self, input: Bytes, complexity: f64) -> Cycles {
        Cycles::new(self.cycles_per_byte * complexity * input.value())
    }

    /// Compute time on a CPU running at `f`: `λ(y)/f`.
    pub fn time(&self, input: Bytes, complexity: f64, f: Hertz) -> Seconds {
        self.cycles(input, complexity) / f
    }

    /// Device compute energy `κ·λ(y)·f²` (paper Eq. (2)). Only mobile
    /// devices pay this; base-station and cloud compute energy is ignored
    /// per Section II.A.
    pub fn device_energy(&self, input: Bytes, complexity: f64, f: Hertz) -> Joules {
        Joules::new(KAPPA * self.cycles(input, complexity).value() * f.value() * f.value())
    }
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel::paper_default()
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(CycleModel { cycles_per_byte });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = CycleModel::paper_default();
        assert_eq!(m.cycles_per_byte, 330.0);
        assert_eq!(m.cycles(Bytes::new(10.0), 1.0), Cycles::new(3300.0));
    }

    #[test]
    fn faster_cpu_is_quicker_but_hungrier() {
        let m = CycleModel::paper_default();
        let x = Bytes::from_kb(3000.0);
        let slow = Hertz::from_ghz(1.0);
        let fast = Hertz::from_ghz(2.0);
        assert!(m.time(x, 1.0, fast) < m.time(x, 1.0, slow));
        // Energy grows with f²: doubling f quadruples energy.
        let e1 = m.device_energy(x, 1.0, slow);
        let e2 = m.device_energy(x, 1.0, fast);
        assert!((e2.value() / e1.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn complexity_scales_linearly() {
        let m = CycleModel::paper_default();
        let x = Bytes::new(1000.0);
        let c1 = m.cycles(x, 1.0);
        let c2 = m.cycles(x, 2.5);
        assert!((c2.value() / c1.value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn magnitudes_match_paper_settings() {
        // 3000 kB at 330 cycles/B on a 1.5 GHz device: t = 0.66 s,
        // E = 1e-27 * 9.9e8 * (1.5e9)^2 ≈ 2.23 J.
        let m = CycleModel::paper_default();
        let x = Bytes::from_kb(3000.0);
        let f = Hertz::from_ghz(1.5);
        let t = m.time(x, 1.0, f);
        assert!((t.value() - 0.66).abs() < 1e-9);
        let e = m.device_energy(x, 1.0, f);
        assert!((e.value() - 2.2275).abs() < 1e-3, "energy {e}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_rate() {
        CycleModel::new(0.0);
    }
}
