//! The fault plane: deterministic, seed-replayable failure injection for
//! the discrete-event executor.
//!
//! A [`FaultPlan`] is a list of faults pinned to *simulated* timestamps:
//! permanent device dropouts, transient radio-link outage windows,
//! link-rate degradation windows and CPU straggler windows. Plans are
//! either hand-built ([`FaultPlan::new`]) or drawn from a seed through
//! [`ChaosConfig`] — the same seed always yields the same plan, so any
//! degraded run replays bit-for-bit.
//!
//! ## Semantics (the determinism contract, DESIGN.md §8)
//!
//! Faults apply at **stage service start**, never mid-flight:
//!
//! * a stage *starting* at or after a device's dropout time on any of
//!   that device's resources fails its task (permanent);
//! * a radio stage starting inside a link-outage window fails its task
//!   with a *transient* marker — the repair layer retries with backoff;
//! * a radio stage starting inside a degradation window is stretched by
//!   `1/factor`; a compute stage starting inside a straggler window is
//!   stretched by `slowdown`. Stretched stages cost proportionally more
//!   energy (power × time).
//!
//! Stations, backhaul pipes and the cloud never fault in this model —
//! the paper's Section II treats them as provisioned infrastructure;
//! churn lives at the device edge.
//!
//! An empty plan never touches the engine's arithmetic: a
//! [`FaultPlan::none`] run is bit-identical to the fault-free executor
//! (asserted by `tests/chaos.rs`).

use crate::error::MecError;
use crate::sim::plan::Resource;
use crate::topology::{DeviceId, MecSystem};
use crate::units::Seconds;
use detrand::ChaCha8Rng;
use std::collections::BTreeSet;

/// A half-open activity window `[from, until)` in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start (inclusive).
    pub from: Seconds,
    /// Window end (exclusive).
    pub until: Seconds,
}

impl Window {
    /// Whether `t` falls inside the window.
    #[must_use]
    pub fn contains(&self, t: f64) -> bool {
        self.from.value() <= t && t < self.until.value()
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The device dies permanently at `at`: every stage starting at or
    /// after `at` on one of its resources fails its task.
    Dropout {
        /// The dying device.
        device: DeviceId,
        /// Time of death.
        at: Seconds,
    },
    /// The device's radio link is unusable during the window; radio
    /// stages starting inside fail transiently (retryable).
    LinkOutage {
        /// The affected device.
        device: DeviceId,
        /// When the link is down.
        window: Window,
    },
    /// The device's radio rate is multiplied by `factor` (in `(0, 1)`)
    /// during the window: radio stages starting inside take `1/factor`
    /// times longer.
    LinkDegraded {
        /// The affected device.
        device: DeviceId,
        /// When the link is degraded.
        window: Window,
        /// Rate multiplier in `(0, 1)`.
        factor: f64,
    },
    /// The device's CPU runs `slowdown` times slower (`> 1`) during the
    /// window: compute stages starting inside are stretched by it.
    Straggler {
        /// The affected device.
        device: DeviceId,
        /// When the CPU drags.
        window: Window,
        /// Duration multiplier `> 1`.
        slowdown: f64,
    },
}

impl Fault {
    /// The device the fault targets.
    #[must_use]
    pub fn device(&self) -> DeviceId {
        match *self {
            Fault::Dropout { device, .. }
            | Fault::LinkOutage { device, .. }
            | Fault::LinkDegraded { device, .. }
            | Fault::Straggler { device, .. } => device,
        }
    }
}

/// Why a stage failed: the distinction the repair layer branches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultHitKind {
    /// Permanent: the device carrying the stage's resource is dead.
    DeviceLost(DeviceId),
    /// Transient: the device's radio was inside an outage window.
    LinkOutage(DeviceId),
}

/// A validated list of faults (see the module docs for semantics).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: guaranteed bit-identical to a fault-free run.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan { faults: Vec::new() }
    }

    /// Wraps and validates a fault list.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] for non-finite or negative
    /// times, inverted windows, degradation factors outside `(0, 1)` or
    /// straggler slowdowns `<= 1`, and [`MecError::UnknownDevice`] for
    /// devices outside `system`.
    pub fn new(system: &MecSystem, faults: Vec<Fault>) -> Result<FaultPlan, MecError> {
        let bad = |reason: String| MecError::InvalidParameter {
            name: "fault",
            reason,
        };
        let check_time = |t: Seconds, what: &str| -> Result<(), MecError> {
            if !(t.is_finite() && t.value() >= 0.0) {
                return Err(bad(format!(
                    "{what} must be nonnegative and finite, got {t}"
                )));
            }
            Ok(())
        };
        let check_window = |w: &Window| -> Result<(), MecError> {
            check_time(w.from, "window start")?;
            check_time(w.until, "window end")?;
            if w.until.value() <= w.from.value() {
                return Err(bad(format!(
                    "window [{}, {}) is empty or inverted",
                    w.from, w.until
                )));
            }
            Ok(())
        };
        for fault in &faults {
            system.device(fault.device())?;
            match fault {
                Fault::Dropout { at, .. } => check_time(*at, "dropout time")?,
                Fault::LinkOutage { window, .. } => check_window(window)?,
                Fault::LinkDegraded { window, factor, .. } => {
                    check_window(window)?;
                    if !(factor.is_finite() && *factor > 0.0 && *factor < 1.0) {
                        return Err(bad(format!(
                            "degradation factor {factor} must be in (0, 1)"
                        )));
                    }
                }
                Fault::Straggler {
                    window, slowdown, ..
                } => {
                    check_window(window)?;
                    if !(slowdown.is_finite() && *slowdown > 1.0) {
                        return Err(bad(format!("straggler slowdown {slowdown} must be > 1")));
                    }
                }
            }
        }
        Ok(FaultPlan { faults })
    }

    /// The injected faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True iff no fault is injected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Devices with a dropout anywhere in the plan — the set the repair
    /// layer treats as unusable for replacement data holders.
    #[must_use]
    pub fn dying_devices(&self) -> BTreeSet<DeviceId> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Dropout { device, .. } => Some(*device),
                _ => None,
            })
            .collect()
    }

    /// What (if anything) kills a stage on `resource` starting at `now`.
    /// Dropouts take precedence over outages — a dead device's radio is
    /// permanently gone, not transiently down.
    #[must_use]
    pub fn hit(&self, resource: Resource, now: f64) -> Option<FaultHitKind> {
        let device = resource.device()?;
        let mut outage = None;
        for fault in &self.faults {
            match fault {
                Fault::Dropout { device: d, at } if *d == device && now >= at.value() => {
                    return Some(FaultHitKind::DeviceLost(*d));
                }
                Fault::LinkOutage { device: d, window }
                    if *d == device && resource.is_radio() && window.contains(now) =>
                {
                    outage = Some(FaultHitKind::LinkOutage(*d));
                }
                _ => {}
            }
        }
        outage
    }

    /// Duration multiplier for a stage on `resource` starting at `now`
    /// (`1.0` when untouched). Overlapping windows compound.
    #[must_use]
    pub fn stretch(&self, resource: Resource, now: f64) -> f64 {
        let Some(device) = resource.device() else {
            return 1.0;
        };
        let mut factor = 1.0;
        for fault in &self.faults {
            match fault {
                Fault::LinkDegraded {
                    device: d,
                    window,
                    factor: rate,
                } if *d == device && resource.is_radio() && window.contains(now) => {
                    factor *= 1.0 / rate;
                }
                Fault::Straggler {
                    device: d,
                    window,
                    slowdown,
                } if *d == device
                    && matches!(resource, Resource::DeviceCpu(_))
                    && window.contains(now) =>
                {
                    factor *= slowdown;
                }
                _ => {}
            }
        }
        factor
    }
}

/// Seeded fault-plan generation knobs. `from_seed` gives the documented
/// defaults; every rate is per-device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed driving every draw (same seed ⇒ same plan).
    pub seed: u64,
    /// Probability a device drops out during the horizon.
    pub dropout_prob: f64,
    /// Probability a device suffers one link-outage window.
    pub outage_prob: f64,
    /// Probability a device suffers one link-degradation window.
    pub degraded_prob: f64,
    /// Probability a device straggles for one window.
    pub straggler_prob: f64,
}

impl ChaosConfig {
    /// The default chaos mix for a seed: 10% dropouts, 20% outages, 20%
    /// degradations, 20% stragglers.
    #[must_use]
    pub fn from_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            dropout_prob: 0.10,
            outage_prob: 0.20,
            degraded_prob: 0.20,
            straggler_prob: 0.20,
        }
    }

    /// Draws a fault plan for `system` over `[0, horizon)`. Devices are
    /// visited in id order and each consumes a fixed number of draws, so
    /// the plan is a pure function of `(config, device count, horizon)`.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] when a probability is
    /// outside `[0, 1]` or the horizon is not positive and finite.
    pub fn generate(&self, system: &MecSystem, horizon: Seconds) -> Result<FaultPlan, MecError> {
        for (name, p) in [
            ("dropout_prob", self.dropout_prob),
            ("outage_prob", self.outage_prob),
            ("degraded_prob", self.degraded_prob),
            ("straggler_prob", self.straggler_prob),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(MecError::InvalidParameter {
                    name: "chaos",
                    reason: format!("{name} {p} must be in [0, 1]"),
                });
            }
        }
        if !(horizon.is_finite() && horizon.value() > 0.0) {
            return Err(MecError::InvalidParameter {
                name: "chaos",
                reason: format!("horizon {horizon} must be positive and finite"),
            });
        }
        let h = horizon.value();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut faults = Vec::new();
        let window = |rng: &mut ChaCha8Rng| {
            let from = rng.gen_range(0.0..h * 0.8);
            let len = rng.gen_range(h * 0.05..h * 0.25);
            Window {
                from: Seconds::new(from),
                until: Seconds::new((from + len).min(h)),
            }
        };
        for device in system.devices() {
            // Each device consumes the same draw sequence regardless of
            // which faults fire, keeping plans stable under rate tweaks.
            let dropout = rng.gen_bool(self.dropout_prob);
            let dropout_at = rng.gen_range(h * 0.1..h);
            let outage = rng.gen_bool(self.outage_prob);
            let outage_window = window(&mut rng);
            let degraded = rng.gen_bool(self.degraded_prob);
            let degraded_window = window(&mut rng);
            let degraded_factor = rng.gen_range(0.2..0.8);
            let straggler = rng.gen_bool(self.straggler_prob);
            let straggler_window = window(&mut rng);
            let straggler_slowdown = rng.gen_range(1.5..4.0);
            if dropout {
                faults.push(Fault::Dropout {
                    device: device.id,
                    at: Seconds::new(dropout_at),
                });
            }
            if outage {
                faults.push(Fault::LinkOutage {
                    device: device.id,
                    window: outage_window,
                });
            }
            if degraded {
                faults.push(Fault::LinkDegraded {
                    device: device.id,
                    window: degraded_window,
                    factor: degraded_factor,
                });
            }
            if straggler {
                faults.push(Fault::Straggler {
                    device: device.id,
                    window: straggler_window,
                    slowdown: straggler_slowdown,
                });
            }
        }
        FaultPlan::new(system, faults)
    }
}

// JSON codecs (djson wire shapes, so plans land in reports/artifacts).
djson::impl_json_struct!(Window { from, until });
djson::impl_json_enum!(Fault {
    Dropout { device: DeviceId, at: Seconds },
    LinkOutage { device: DeviceId, window: Window },
    LinkDegraded {
        device: DeviceId,
        window: Window,
        factor: f64
    },
    Straggler {
        device: DeviceId,
        window: Window,
        slowdown: f64
    },
});
djson::impl_json_enum!(FaultHitKind {
    DeviceLost(DeviceId),
    LinkOutage(DeviceId)
});
djson::impl_json_struct!(FaultPlan { faults });
djson::impl_json_struct!(ChaosConfig {
    seed,
    dropout_prob,
    outage_prob,
    degraded_prob,
    straggler_prob,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ScenarioConfig;

    fn system() -> MecSystem {
        ScenarioConfig::paper_defaults(9).generate().unwrap().system
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let sys = system();
        let cfg = ChaosConfig::from_seed(0xC0FFEE);
        let a = cfg.generate(&sys, Seconds::new(10.0)).unwrap();
        let b = cfg.generate(&sys, Seconds::new(10.0)).unwrap();
        assert_eq!(a, b);
        let c = ChaosConfig::from_seed(0xC0FFEE + 1)
            .generate(&sys, Seconds::new(10.0))
            .unwrap();
        assert_ne!(a, c);
        // The default mix fires on a 50-device system.
        assert!(!a.is_empty());
    }

    #[test]
    fn validation_rejects_malformed_faults() {
        let sys = system();
        let d = DeviceId(0);
        let w = |a: f64, b: f64| Window {
            from: Seconds::new(a),
            until: Seconds::new(b),
        };
        // Unknown device.
        assert!(matches!(
            FaultPlan::new(
                &sys,
                vec![Fault::Dropout {
                    device: DeviceId(999),
                    at: Seconds::new(1.0)
                }]
            ),
            Err(MecError::UnknownDevice(_))
        ));
        // Negative / non-finite times.
        for at in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(FaultPlan::new(
                &sys,
                vec![Fault::Dropout {
                    device: d,
                    at: Seconds::new(at)
                }]
            )
            .is_err());
        }
        // Inverted window.
        assert!(FaultPlan::new(
            &sys,
            vec![Fault::LinkOutage {
                device: d,
                window: w(2.0, 1.0)
            }]
        )
        .is_err());
        // Degradation factor outside (0, 1).
        for factor in [0.0, 1.0, 1.5, f64::NAN] {
            assert!(FaultPlan::new(
                &sys,
                vec![Fault::LinkDegraded {
                    device: d,
                    window: w(0.0, 1.0),
                    factor
                }]
            )
            .is_err());
        }
        // Slowdown must exceed 1.
        assert!(FaultPlan::new(
            &sys,
            vec![Fault::Straggler {
                device: d,
                window: w(0.0, 1.0),
                slowdown: 1.0
            }]
        )
        .is_err());
        // Bad chaos knobs.
        let mut cfg = ChaosConfig::from_seed(1);
        cfg.dropout_prob = 1.5;
        assert!(cfg.generate(&sys, Seconds::new(10.0)).is_err());
        let cfg = ChaosConfig::from_seed(1);
        assert!(cfg.generate(&sys, Seconds::ZERO).is_err());
    }

    #[test]
    fn hit_and_stretch_respect_resource_classes() {
        let sys = system();
        let d = DeviceId(3);
        let w = Window {
            from: Seconds::new(1.0),
            until: Seconds::new(2.0),
        };
        let plan = FaultPlan::new(
            &sys,
            vec![
                Fault::Dropout {
                    device: DeviceId(1),
                    at: Seconds::new(5.0),
                },
                Fault::LinkOutage {
                    device: d,
                    window: w,
                },
                Fault::LinkDegraded {
                    device: d,
                    window: w,
                    factor: 0.5,
                },
                Fault::Straggler {
                    device: d,
                    window: w,
                    slowdown: 3.0,
                },
            ],
        )
        .unwrap();

        // Dropout bites only at/after its time, on any device resource.
        assert_eq!(plan.hit(Resource::DeviceCpu(DeviceId(1)), 4.9), None);
        assert_eq!(
            plan.hit(Resource::DeviceUp(DeviceId(1)), 5.0),
            Some(FaultHitKind::DeviceLost(DeviceId(1)))
        );
        // Outage bites radio stages inside the window only.
        assert_eq!(
            plan.hit(Resource::DeviceUp(d), 1.5),
            Some(FaultHitKind::LinkOutage(d))
        );
        assert_eq!(plan.hit(Resource::DeviceUp(d), 2.0), None); // half-open
        assert_eq!(plan.hit(Resource::DeviceCpu(d), 1.5), None); // CPU unaffected
                                                                 // Stations/backhaul/cloud never fault.
        assert_eq!(plan.hit(Resource::StationBackhaul, 1.5), None);
        assert_eq!(plan.stretch(Resource::CloudCpu, 1.5), 1.0);
        // Degradation stretches radio by 1/factor; straggler stretches CPU.
        assert_eq!(plan.stretch(Resource::DeviceDown(d), 1.5), 2.0);
        assert_eq!(plan.stretch(Resource::DeviceCpu(d), 1.5), 3.0);
        assert_eq!(plan.stretch(Resource::DeviceCpu(d), 2.5), 1.0);
        assert_eq!(plan.dying_devices().len(), 1);
    }

    #[test]
    fn plans_round_trip_through_json() {
        let sys = system();
        let plan = ChaosConfig::from_seed(7)
            .generate(&sys, Seconds::new(8.0))
            .unwrap();
        let json = djson::to_string(&plan);
        let back: FaultPlan = djson::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
