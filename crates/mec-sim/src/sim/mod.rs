//! Discrete-event execution of an assignment.
//!
//! The analytic model of Section II prices every task in isolation. The
//! executor here actually *runs* an assignment through the system as a
//! discrete-event simulation: every radio, device CPU, station CPU and
//! backhaul pipe is a resource, and stages queue FIFO when
//! [`Contention::Exclusive`] is selected. With [`Contention::None`] each
//! resource has unlimited capacity and the simulation reproduces the
//! analytic times exactly — a strong end-to-end check that the cost model
//! and the executor agree.

pub mod fault;
pub mod plan;

use crate::error::MecError;
use crate::task::{ExecutionSite, HolisticTask, TaskId};
use crate::topology::MecSystem;
use crate::units::{Joules, Seconds};
pub use fault::{ChaosConfig, Fault, FaultHitKind, FaultPlan, Window};
use plan::{build_plan, Plan, PlanStep, Resource, Stage};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Resource-contention regime of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Contention {
    /// Unlimited capacity everywhere; matches the paper's analytic model.
    #[default]
    None,
    /// Every exclusive resource serves one stage at a time, FIFO.
    Exclusive,
}

/// Outcome of one task in a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSimResult {
    /// Task identifier.
    pub id: TaskId,
    /// Where it ran.
    pub site: ExecutionSite,
    /// When the task arrived (zero for [`simulate`]).
    pub arrival: Seconds,
    /// Wall-clock completion time.
    pub completion: Seconds,
    /// Sojourn time `completion − arrival` — what the user experiences,
    /// and what the deadline is checked against.
    pub sojourn: Seconds,
    /// System energy spent on the task.
    pub energy: Joules,
    /// Whether the sojourn met the task's deadline.
    pub met_deadline: bool,
}

/// Aggregate outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-task outcomes in input order.
    pub results: Vec<TaskSimResult>,
}

impl SimReport {
    /// Time the last task finishes.
    pub fn makespan(&self) -> Seconds {
        self.results
            .iter()
            .map(|r| r.completion)
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Total system energy.
    pub fn total_energy(&self) -> Joules {
        self.results.iter().map(|r| r.energy).sum()
    }

    /// Mean sojourn time; zero for an empty run.
    pub fn mean_latency(&self) -> Seconds {
        if self.results.is_empty() {
            return Seconds::ZERO;
        }
        self.results.iter().map(|r| r.sojourn).sum::<Seconds>() / self.results.len() as f64
    }

    /// Fraction of tasks missing their deadline; zero for an empty run.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        let missed = self.results.iter().filter(|r| !r.met_deadline).count();
        missed as f64 / self.results.len() as f64
    }
}

/// One fault striking one task: the time and resource where a stage was
/// about to start, and why it could not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultHit {
    /// When the stage would have started.
    pub time: Seconds,
    /// The faulted resource the stage needed.
    pub resource: Resource,
    /// Permanent (device lost) or transient (link outage).
    pub kind: FaultHitKind,
}

/// How one task ended under a fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosOutcome {
    /// The task ran to completion (possibly stretched by degradation or
    /// straggler windows).
    Completed {
        /// Wall-clock completion time.
        completion: Seconds,
        /// `completion − arrival`, checked against the deadline.
        sojourn: Seconds,
        /// Whether the sojourn met the task's deadline.
        met_deadline: bool,
    },
    /// A fault killed the task; energy spent before the hit is still
    /// accounted. Never silently dropped — every input task reports.
    Failed(FaultHit),
}

/// Outcome of one task in a chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosTaskResult {
    /// Task identifier.
    pub id: TaskId,
    /// Where it was assigned to run.
    pub site: ExecutionSite,
    /// When the task arrived.
    pub arrival: Seconds,
    /// System energy spent on the task (up to the fault, if it failed).
    pub energy: Joules,
    /// Completion or failure.
    pub outcome: ChaosOutcome,
}

/// One fault strike, in chronological order — the replayable event
/// sequence a chaos seed is documented by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    /// The task that was struck.
    pub task: TaskId,
    /// The strike itself.
    pub hit: FaultHit,
}

/// Aggregate outcome of a chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSimReport {
    /// Per-task outcomes in input order (every input task appears).
    pub results: Vec<ChaosTaskResult>,
    /// Fault strikes in the order the executor processed them.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSimReport {
    /// Tasks that failed, in input order.
    pub fn failed(&self) -> impl Iterator<Item = &ChaosTaskResult> {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, ChaosOutcome::Failed(_)))
    }

    /// Total system energy across completed and failed tasks.
    pub fn total_energy(&self) -> Joules {
        self.results.iter().map(|r| r.energy).sum()
    }

    /// Time the last completed task finishes (zero if none completed).
    pub fn makespan(&self) -> Seconds {
        self.results
            .iter()
            .filter_map(|r| match r.outcome {
                ChaosOutcome::Completed { completion, .. } => Some(completion),
                ChaosOutcome::Failed(_) => None,
            })
            .fold(Seconds::ZERO, Seconds::max)
    }
}

/// Runs `assignments` through the system under a fault plan. All tasks
/// arrive at time zero.
///
/// # Errors
///
/// Propagates plan-building errors (unknown devices, invalid tasks).
pub fn simulate_chaos(
    system: &MecSystem,
    assignments: &[(HolisticTask, ExecutionSite)],
    contention: Contention,
    faults: &FaultPlan,
) -> Result<ChaosSimReport, MecError> {
    let timed: Vec<(HolisticTask, ExecutionSite, Seconds)> = assignments
        .iter()
        .map(|(t, s)| (*t, *s, Seconds::ZERO))
        .collect();
    simulate_chaos_with_arrivals(system, &timed, contention, faults)
}

/// Runs timed `arrivals` through the system under a fault plan.
///
/// Faults apply at stage service start (module docs of [`fault`]); a
/// struck task reports [`ChaosOutcome::Failed`] with the hit, charging
/// the energy already spent. With an empty plan the completion times,
/// sojourns and energies are bit-identical to
/// [`simulate_with_arrivals`] (asserted by `tests/chaos.rs`).
///
/// # Errors
///
/// Propagates plan-building errors and rejects negative or non-finite
/// arrival times.
pub fn simulate_chaos_with_arrivals(
    system: &MecSystem,
    arrivals: &[(HolisticTask, ExecutionSite, Seconds)],
    contention: Contention,
    faults: &FaultPlan,
) -> Result<ChaosSimReport, MecError> {
    let _span = mec_obs::span("sim/chaos");
    for (task, _, at) in arrivals {
        if !(at.value() >= 0.0 && at.is_finite()) {
            return Err(MecError::InvalidParameter {
                name: "arrival",
                reason: format!("{} arrives at invalid time {at}", task.id),
            });
        }
    }
    let plans: Vec<Plan> = arrivals
        .iter()
        .map(|(t, s, _)| build_plan(system, t, *s))
        .collect::<Result<_, _>>()?;
    let times: Vec<f64> = arrivals.iter().map(|(_, _, at)| at.value()).collect();
    let mut engine = Engine::new(contention, &plans, Some(faults));
    let finish = engine.run_with_arrivals(&times);
    let results = arrivals
        .iter()
        .zip(plans.iter())
        .enumerate()
        .map(|(i, ((task, site, arrival), plan))| {
            let (energy, outcome) = match engine.failed[i] {
                Some(hit) => (Joules::new(engine.energy[i]), ChaosOutcome::Failed(hit)),
                None => {
                    let completion = finish[i];
                    let sojourn = completion - *arrival;
                    // Untouched tasks report the plan's own energy sum so
                    // an empty fault plan is bit-identical to `simulate`.
                    let energy = if engine.touched[i] {
                        Joules::new(engine.energy[i])
                    } else {
                        plan.total_energy()
                    };
                    (
                        energy,
                        ChaosOutcome::Completed {
                            completion,
                            sojourn,
                            met_deadline: sojourn <= task.deadline,
                        },
                    )
                }
            };
            ChaosTaskResult {
                id: task.id,
                site: *site,
                arrival: *arrival,
                energy,
                outcome,
            }
        })
        .collect();
    let events = engine
        .hits
        .iter()
        .map(|&(i, hit)| ChaosEvent {
            task: arrivals[i].0.id,
            hit,
        })
        .collect();
    Ok(ChaosSimReport { results, events })
}

/// Runs `assignments` through the system.
///
/// # Errors
///
/// Propagates plan-building errors (unknown devices, invalid tasks).
///
/// # Examples
///
/// ```
/// use mec_sim::sim::{simulate, Contention};
/// use mec_sim::task::ExecutionSite;
/// use mec_sim::workload::ScenarioConfig;
///
/// let s = ScenarioConfig::paper_defaults(1).generate()?;
/// let assignment: Vec<_> = s.tasks.iter()
///     .map(|t| (*t, ExecutionSite::Device))
///     .collect();
/// let report = simulate(&s.system, &assignment, Contention::None)?;
/// assert_eq!(report.results.len(), s.tasks.len());
/// # Ok::<(), mec_sim::MecError>(())
/// ```
pub fn simulate(
    system: &MecSystem,
    assignments: &[(HolisticTask, ExecutionSite)],
    contention: Contention,
) -> Result<SimReport, MecError> {
    let timed: Vec<(HolisticTask, ExecutionSite, Seconds)> = assignments
        .iter()
        .map(|(t, s)| (*t, *s, Seconds::ZERO))
        .collect();
    simulate_with_arrivals(system, &timed, contention)
}

/// Runs `arrivals` — tasks released at individual times — through the
/// system. A task's plan starts when it arrives; with
/// [`Contention::Exclusive`] it then competes for resources with
/// everything already in flight. Deadlines are checked against the
/// *sojourn* (completion − arrival).
///
/// # Errors
///
/// Propagates plan-building errors and rejects negative or non-finite
/// arrival times.
pub fn simulate_with_arrivals(
    system: &MecSystem,
    arrivals: &[(HolisticTask, ExecutionSite, Seconds)],
    contention: Contention,
) -> Result<SimReport, MecError> {
    for (task, _, at) in arrivals {
        if !(at.value() >= 0.0 && at.is_finite()) {
            return Err(MecError::InvalidParameter {
                name: "arrival",
                reason: format!("{} arrives at invalid time {at}", task.id),
            });
        }
    }
    let plans: Vec<Plan> = arrivals
        .iter()
        .map(|(t, s, _)| build_plan(system, t, *s))
        .collect::<Result<_, _>>()?;
    let times: Vec<f64> = arrivals.iter().map(|(_, _, at)| at.value()).collect();
    let mut engine = Engine::new(contention, &plans, None);
    let finish = engine.run_with_arrivals(&times);
    let results = arrivals
        .iter()
        .zip(plans.iter())
        .zip(finish.iter())
        .map(|(((task, site, arrival), plan), &completion)| {
            let sojourn = completion - *arrival;
            TaskSimResult {
                id: task.id,
                site: *site,
                arrival: *arrival,
                completion,
                sojourn,
                energy: plan.total_energy(),
                met_deadline: sojourn <= task.deadline,
            }
        })
        .collect();
    Ok(SimReport { results })
}

// --- Engine ---------------------------------------------------------------

/// Sentinel `step` value marking a deferred task release.
const START_MARKER: usize = usize::MAX;

/// Where a finished stage belongs inside its task's plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StageRef {
    task: usize,
    step: usize,
    /// Branch index for parallel steps; `usize::MAX` for single stages.
    branch: usize,
    /// Position inside the branch.
    pos: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    stage: StageRef,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Times come from finite durations (build_plan validates every
        // stage), and total_cmp agrees with the usual order on finite
        // values; ties broken by sequence number so completion order is
        // deterministic.
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Default)]
struct ResourceState {
    busy: bool,
    queue: VecDeque<(StageRef, Stage)>,
}

struct Engine<'a> {
    contention: Contention,
    plans: &'a [Plan],
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    resources: HashMap<Resource, ResourceState>,
    /// Remaining unfinished branches per (task, step) for parallel steps.
    open_branches: HashMap<(usize, usize), usize>,
    finish: Vec<f64>,
    /// Injected faults; `None` keeps the fault-free arithmetic untouched.
    faults: Option<&'a FaultPlan>,
    /// First fault hit per task (a struck task never restarts in-sim;
    /// replanning is the repair layer's job).
    failed: Vec<Option<FaultHit>>,
    /// Energy charged at stage service start, per task (raw joules).
    energy: Vec<f64>,
    /// Whether any stage of the task was stretched; untouched completed
    /// tasks report the plan's own energy sum for bit-identity.
    touched: Vec<bool>,
    /// Fault strikes in processing order.
    hits: Vec<(usize, FaultHit)>,
}

impl<'a> Engine<'a> {
    fn new(contention: Contention, plans: &'a [Plan], faults: Option<&'a FaultPlan>) -> Engine<'a> {
        Engine {
            contention,
            plans,
            heap: BinaryHeap::new(),
            seq: 0,
            resources: HashMap::new(),
            open_branches: HashMap::new(),
            finish: vec![0.0; plans.len()],
            faults,
            failed: vec![None; plans.len()],
            energy: vec![0.0; plans.len()],
            touched: vec![false; plans.len()],
            hits: Vec::new(),
        }
    }

    fn run_with_arrivals(&mut self, arrivals: &[f64]) -> Vec<Seconds> {
        for task in 0..self.plans.len() {
            let at = arrivals.get(task).copied().unwrap_or(0.0);
            if at <= 0.0 {
                self.begin_step(task, 0, 0.0);
            } else {
                // A start marker: fires at the arrival time and releases
                // the task's first step.
                self.seq += 1;
                self.heap.push(Reverse(Event {
                    time: at,
                    seq: self.seq,
                    stage: StageRef {
                        task,
                        step: START_MARKER,
                        branch: usize::MAX,
                        pos: 0,
                    },
                }));
            }
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            if ev.stage.step == START_MARKER {
                self.begin_step(ev.stage.task, 0, ev.time);
            } else {
                self.complete_stage(ev);
            }
        }
        self.finish.iter().map(|&t| Seconds::new(t)).collect()
    }

    fn serialized(&self, r: Resource) -> bool {
        self.contention == Contention::Exclusive && r.is_exclusive()
    }

    fn begin_step(&mut self, task: usize, step: usize, now: f64) {
        let Some(plan_step) = self.plans[task].steps.get(step) else {
            self.finish[task] = now;
            return;
        };
        match plan_step {
            PlanStep::Single(stage) => {
                let sref = StageRef {
                    task,
                    step,
                    branch: usize::MAX,
                    pos: 0,
                };
                self.request(sref, *stage, now);
            }
            PlanStep::Parallel(branches) => {
                let live: Vec<usize> = branches
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| !b.is_empty())
                    .map(|(k, _)| k)
                    .collect();
                if live.is_empty() {
                    self.begin_step(task, step + 1, now);
                    return;
                }
                self.open_branches.insert((task, step), live.len());
                for k in live {
                    let stage = branches[k][0];
                    let sref = StageRef {
                        task,
                        step,
                        branch: k,
                        pos: 0,
                    };
                    self.request(sref, stage, now);
                }
            }
        }
    }

    fn request(&mut self, sref: StageRef, stage: Stage, now: f64) {
        if self.serialized(stage.resource) {
            let state = self.resources.entry(stage.resource).or_default();
            if state.busy {
                state.queue.push_back((sref, stage));
                return;
            }
            state.busy = true;
        }
        self.schedule(sref, stage, now);
    }

    /// Starts service of a stage: the point where faults apply. A fault
    /// hit fails the whole task; a degradation/straggler window stretches
    /// the stage (duration and energy alike). With no fault plan the
    /// arithmetic is exactly `now + duration` — nothing is multiplied.
    fn schedule(&mut self, sref: StageRef, stage: Stage, now: f64) {
        if let Some(plan) = self.faults {
            if let Some(kind) = plan.hit(stage.resource, now) {
                self.fail_task(sref, stage, now, kind);
                return;
            }
            let stretch = plan.stretch(stage.resource, now);
            if stretch != 1.0 {
                self.touched[sref.task] = true;
                mec_obs::counter_add("sim/chaos/stretched_stages", 1);
            }
            self.energy[sref.task] += stage.energy.value() * stretch;
            self.seq += 1;
            self.heap.push(Reverse(Event {
                time: now + stage.duration.value() * stretch,
                seq: self.seq,
                stage: sref,
            }));
            return;
        }
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time: now + stage.duration.value(),
            seq: self.seq,
            stage: sref,
        }));
    }

    /// Records the first fault hit on a task and frees the resource its
    /// failing stage was holding. In-flight sibling stages drain through
    /// [`Engine::complete_stage`]'s failed-task guard; queued ones are
    /// skipped by [`Engine::release`].
    fn fail_task(&mut self, sref: StageRef, stage: Stage, now: f64, kind: FaultHitKind) {
        if self.failed[sref.task].is_none() {
            let hit = FaultHit {
                time: Seconds::new(now),
                resource: stage.resource,
                kind,
            };
            self.failed[sref.task] = Some(hit);
            self.hits.push((sref.task, hit));
            mec_obs::counter_add(
                match kind {
                    FaultHitKind::DeviceLost(_) => "sim/chaos/device_lost",
                    FaultHitKind::LinkOutage(_) => "sim/chaos/link_outage",
                },
                1,
            );
        }
        self.release(stage.resource, now);
    }

    /// Frees a serialized resource and starts the next live waiter,
    /// skipping queued stages of tasks that have already failed.
    fn release(&mut self, resource: Resource, now: f64) {
        if !self.serialized(resource) {
            return;
        }
        loop {
            let next = self
                .resources
                .get_mut(&resource)
                .expect("released stage had a resource entry")
                .queue
                .pop_front();
            match next {
                Some((next_ref, _)) if self.failed[next_ref.task].is_some() => continue,
                Some((next_ref, next_stage)) => {
                    // May recurse through fail_task back into release if
                    // the waiter is struck at start; the queue shrinks
                    // every iteration, so this terminates.
                    self.schedule(next_ref, next_stage, now);
                    return;
                }
                None => {
                    self.resources
                        .get_mut(&resource)
                        .expect("released stage had a resource entry")
                        .busy = false;
                    return;
                }
            }
        }
    }

    fn complete_stage(&mut self, ev: Event) {
        let sref = ev.stage;
        let now = ev.time;
        let stage = self.stage_at(sref);

        // Free the resource and start the next waiter.
        self.release(stage.resource, now);

        // A stage of a failed task that was already in flight when the
        // fault struck still drains its resource (above) but no longer
        // advances the task.
        if self.failed[sref.task].is_some() {
            return;
        }

        // Advance the task.
        if sref.branch == usize::MAX {
            self.begin_step(sref.task, sref.step + 1, now);
            return;
        }
        let branches = match &self.plans[sref.task].steps[sref.step] {
            PlanStep::Parallel(b) => b,
            PlanStep::Single(_) => unreachable!("branch ref into a single step"),
        };
        let branch = &branches[sref.branch];
        if sref.pos + 1 < branch.len() {
            let next = branch[sref.pos + 1];
            let next_ref = StageRef {
                pos: sref.pos + 1,
                ..sref
            };
            self.request(next_ref, next, now);
        } else {
            let remaining = self
                .open_branches
                .get_mut(&(sref.task, sref.step))
                .expect("parallel step tracked");
            *remaining -= 1;
            if *remaining == 0 {
                self.open_branches.remove(&(sref.task, sref.step));
                self.begin_step(sref.task, sref.step + 1, now);
            }
        }
    }

    fn stage_at(&self, sref: StageRef) -> Stage {
        match &self.plans[sref.task].steps[sref.step] {
            PlanStep::Single(s) => *s,
            PlanStep::Parallel(b) => b[sref.branch][sref.pos],
        }
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_enum!(Contention { None, Exclusive });
djson::impl_json_struct!(TaskSimResult {
    id,
    site,
    arrival,
    completion,
    sojourn,
    energy,
    met_deadline,
});
djson::impl_json_struct!(SimReport { results });
djson::impl_json_struct!(FaultHit {
    time,
    resource,
    kind
});
djson::impl_json_enum!(ChaosOutcome {
    Completed {
        completion: Seconds,
        sojourn: Seconds,
        met_deadline: bool
    },
    Failed(FaultHit),
});
djson::impl_json_struct!(ChaosTaskResult {
    id,
    site,
    arrival,
    energy,
    outcome
});
djson::impl_json_struct!(ChaosEvent { task, hit });
djson::impl_json_struct!(ChaosSimReport { results, events });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use crate::radio::NetworkProfile;
    use crate::topology::{Cloud, DeviceId, MecSystem};
    use crate::units::{Bytes, Hertz};
    use crate::workload::ScenarioConfig;

    #[test]
    fn contention_free_simulation_matches_analytic_model() {
        let s = ScenarioConfig::paper_defaults(77).generate().unwrap();
        for site in ExecutionSite::ALL {
            let assignment: Vec<_> = s.tasks.iter().map(|t| (*t, site)).collect();
            let report = simulate(&s.system, &assignment, Contention::None).unwrap();
            for (task, result) in s.tasks.iter().zip(report.results.iter()) {
                let expect = cost::evaluate(&s.system, task).unwrap().at(site);
                let dt = (result.completion.value() - expect.time.value()).abs();
                assert!(
                    dt < 1e-9 * (1.0 + expect.time.value()),
                    "{} at {site}",
                    task.id
                );
                let de = (result.energy.value() - expect.energy.value()).abs();
                assert!(
                    de < 1e-9 * (1.0 + expect.energy.value()),
                    "{} at {site}",
                    task.id
                );
            }
        }
    }

    #[test]
    fn exclusive_contention_never_beats_contention_free() {
        let s = ScenarioConfig::paper_defaults(3).generate().unwrap();
        let assignment: Vec<_> = s
            .tasks
            .iter()
            .map(|t| (*t, ExecutionSite::Station))
            .collect();
        let free = simulate(&s.system, &assignment, Contention::None).unwrap();
        let queued = simulate(&s.system, &assignment, Contention::Exclusive).unwrap();
        for (f, q) in free.results.iter().zip(queued.results.iter()) {
            assert!(
                q.completion.value() >= f.completion.value() - 1e-12,
                "{}: queued {} < free {}",
                f.id,
                q.completion,
                f.completion
            );
            // Energy never changes: waiting is free.
            assert!((q.energy.value() - f.energy.value()).abs() < 1e-12);
        }
        assert!(queued.makespan() >= free.makespan());
    }

    #[test]
    fn identical_local_tasks_serialize_on_one_cpu() {
        // Two identical purely-local tasks on the same device: with
        // exclusive contention the second finishes at exactly 2× the
        // compute time.
        let mut b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        let st = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        b.add_device(
            st,
            Hertz::from_ghz(1.0),
            NetworkProfile::WiFi.link(),
            Bytes::from_mb(8.0),
        )
        .unwrap();
        let system = b.build().unwrap();
        let mk = |index| HolisticTask {
            id: crate::task::TaskId { user: 0, index },
            owner: DeviceId(0),
            local_size: Bytes::from_kb(1000.0),
            external_size: Bytes::ZERO,
            external_source: None,
            complexity: 1.0,
            resource: Bytes::from_kb(1000.0),
            deadline: Seconds::new(10.0),
        };
        let assignment = vec![
            (mk(0), ExecutionSite::Device),
            (mk(1), ExecutionSite::Device),
        ];
        let report = simulate(&system, &assignment, Contention::Exclusive).unwrap();
        let unit = 330.0 * 1e6 / 1e9; // cycles / Hz = 0.33 s
        assert!((report.results[0].completion.value() - unit).abs() < 1e-9);
        assert!((report.results[1].completion.value() - 2.0 * unit).abs() < 1e-9);
        assert_eq!(report.makespan(), report.results[1].completion);
    }

    #[test]
    fn report_statistics() {
        let s = ScenarioConfig::paper_defaults(5).generate().unwrap();
        let assignment: Vec<_> = s.tasks.iter().map(|t| (*t, ExecutionSite::Cloud)).collect();
        let report = simulate(&s.system, &assignment, Contention::None).unwrap();
        assert!(report.total_energy() > Joules::ZERO);
        assert!(report.mean_latency() > Seconds::ZERO);
        assert!(report.makespan() >= report.mean_latency());
        let rate = report.deadline_miss_rate();
        assert!((0.0..=1.0).contains(&rate));
        let empty = SimReport { results: vec![] };
        assert_eq!(empty.deadline_miss_rate(), 0.0);
        assert_eq!(empty.mean_latency(), Seconds::ZERO);
    }
}

#[cfg(test)]
mod arrival_tests {
    use super::*;
    use crate::workload::{poisson_arrivals, ScenarioConfig};

    #[test]
    fn contention_free_arrivals_shift_completions_exactly() {
        let mut cfg = ScenarioConfig::paper_defaults(701);
        cfg.tasks_total = 20;
        let s = cfg.generate().unwrap();
        let batch: Vec<_> = s
            .tasks
            .iter()
            .map(|t| (*t, ExecutionSite::Device))
            .collect();
        let base = simulate(&s.system, &batch, Contention::None).unwrap();
        let arrivals = poisson_arrivals(7, s.tasks.len(), 1.0).unwrap();
        let timed: Vec<_> = s
            .tasks
            .iter()
            .zip(arrivals.iter())
            .map(|(t, at)| (*t, ExecutionSite::Device, *at))
            .collect();
        let shifted = simulate_with_arrivals(&s.system, &timed, Contention::None).unwrap();
        for ((b, r), at) in base.results.iter().zip(&shifted.results).zip(&arrivals) {
            let expect = b.completion.value() + at.value();
            assert!(
                (r.completion.value() - expect).abs() < 1e-9 * (1.0 + expect),
                "{}",
                b.id
            );
            // Sojourn is arrival-independent without contention.
            assert!((r.sojourn.value() - b.sojourn.value()).abs() < 1e-9);
            assert_eq!(r.met_deadline, b.met_deadline);
        }
    }

    #[test]
    fn staggered_arrivals_relieve_queueing() {
        // One device, many identical local tasks: batch release queues
        // them all; slow Poisson release (gap > service time) eliminates
        // waiting entirely.
        let mut cfg = ScenarioConfig::paper_defaults(702);
        cfg.num_stations = 1;
        cfg.devices_per_station = 1;
        cfg.tasks_total = 10;
        cfg.external_frac_range = (0.0, 0.0);
        let s = cfg.generate().unwrap();
        let batch: Vec<_> = s
            .tasks
            .iter()
            .map(|t| (*t, ExecutionSite::Device))
            .collect();
        let queued = simulate(&s.system, &batch, Contention::Exclusive).unwrap();
        // Slow arrivals: one task every 100 s, far above any service time.
        let timed: Vec<_> = s
            .tasks
            .iter()
            .enumerate()
            .map(|(k, t)| (*t, ExecutionSite::Device, Seconds::new(100.0 * k as f64)))
            .collect();
        let relaxed = simulate_with_arrivals(&s.system, &timed, Contention::Exclusive).unwrap();
        assert!(relaxed.mean_latency() < queued.mean_latency());
        // With no overlap, queued sojourn equals the contention-free one.
        let free = simulate(&s.system, &batch, Contention::None).unwrap();
        for (r, f) in relaxed.results.iter().zip(free.results.iter()) {
            assert!(
                (r.sojourn.value() - f.sojourn.value()).abs() < 1e-9,
                "{}",
                r.id
            );
        }
    }

    #[test]
    fn negative_arrivals_are_rejected() {
        let mut cfg = ScenarioConfig::paper_defaults(703);
        cfg.tasks_total = 2;
        let s = cfg.generate().unwrap();
        let timed = vec![(s.tasks[0], ExecutionSite::Device, Seconds::new(-1.0))];
        assert!(simulate_with_arrivals(&s.system, &timed, Contention::None).is_err());
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::radio::NetworkProfile;
    use crate::topology::{Cloud, DeviceId, StationId};
    use crate::units::{Bytes, Hertz};
    use crate::workload::ScenarioConfig;

    /// One station, `n` identical devices.
    fn small_system(n: usize) -> MecSystem {
        let mut b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        let st = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        for _ in 0..n {
            b.add_device(
                st,
                Hertz::from_ghz(1.0),
                NetworkProfile::WiFi.link(),
                Bytes::from_mb(8.0),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn local_task(index: usize, owner: usize) -> HolisticTask {
        HolisticTask {
            id: TaskId { user: owner, index },
            owner: DeviceId(owner),
            local_size: Bytes::from_kb(1000.0),
            external_size: Bytes::ZERO,
            external_source: None,
            complexity: 1.0,
            resource: Bytes::from_kb(1000.0),
            deadline: Seconds::new(30.0),
        }
    }

    fn window(from: f64, until: f64) -> Window {
        Window {
            from: Seconds::new(from),
            until: Seconds::new(until),
        }
    }

    #[test]
    fn empty_plan_is_bit_identical_to_fault_free_run() {
        let s = ScenarioConfig::paper_defaults(41).generate().unwrap();
        for contention in [Contention::None, Contention::Exclusive] {
            let assignment: Vec<_> = s
                .tasks
                .iter()
                .enumerate()
                .map(|(k, t)| (*t, ExecutionSite::ALL[k % 3]))
                .collect();
            let base = simulate(&s.system, &assignment, contention).unwrap();
            let chaos =
                simulate_chaos(&s.system, &assignment, contention, &FaultPlan::none()).unwrap();
            assert!(chaos.events.is_empty());
            for (b, c) in base.results.iter().zip(&chaos.results) {
                assert_eq!(b.id, c.id);
                assert_eq!(b.energy.value().to_bits(), c.energy.value().to_bits());
                match c.outcome {
                    ChaosOutcome::Completed {
                        completion,
                        sojourn,
                        met_deadline,
                    } => {
                        assert_eq!(b.completion.value().to_bits(), completion.value().to_bits());
                        assert_eq!(b.sojourn.value().to_bits(), sojourn.value().to_bits());
                        assert_eq!(b.met_deadline, met_deadline);
                    }
                    ChaosOutcome::Failed(hit) => panic!("{}: spurious failure {hit:?}", b.id),
                }
            }
        }
    }

    #[test]
    fn dropout_fails_every_stage_starting_after_it() {
        // Three station offloads from one device, serialized on its
        // uplink. The device dies just after the first upload starts:
        // the queued uploads fail when the radio frees (exercising the
        // recursive release path), and the first task dies later at its
        // result download. Nothing is silently dropped.
        let system = small_system(1);
        let assignment: Vec<_> = (0..3)
            .map(|k| (local_task(k, 0), ExecutionSite::Station))
            .collect();
        let faults = FaultPlan::new(
            &system,
            vec![Fault::Dropout {
                device: DeviceId(0),
                at: Seconds::new(1e-6),
            }],
        )
        .unwrap();
        let report = simulate_chaos(&system, &assignment, Contention::Exclusive, &faults).unwrap();
        assert_eq!(report.results.len(), 3);
        for r in &report.results {
            assert!(
                matches!(
                    r.outcome,
                    ChaosOutcome::Failed(FaultHit {
                        kind: FaultHitKind::DeviceLost(DeviceId(0)),
                        ..
                    })
                ),
                "{}: {:?}",
                r.id,
                r.outcome
            );
        }
        // Queued tasks never started a stage, so they spent nothing; the
        // first task paid for its completed upload.
        assert_eq!(report.results[1].energy, Joules::ZERO);
        assert_eq!(report.results[2].energy, Joules::ZERO);
        assert!(report.results[0].energy > Joules::ZERO);
        // Failure order: the queued uploads die when the radio frees,
        // before the first task reaches its download.
        let order: Vec<usize> = report.events.iter().map(|e| e.task.index).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn outage_is_transient_and_window_scoped() {
        let system = small_system(1);
        let assignment = vec![(local_task(0, 0), ExecutionSite::Station)];
        // Window over the start: the upload fails transiently.
        let hit_plan = FaultPlan::new(
            &system,
            vec![Fault::LinkOutage {
                device: DeviceId(0),
                window: window(0.0, 1.0),
            }],
        )
        .unwrap();
        let report =
            simulate_chaos(&system, &assignment, Contention::Exclusive, &hit_plan).unwrap();
        assert!(matches!(
            report.results[0].outcome,
            ChaosOutcome::Failed(FaultHit {
                kind: FaultHitKind::LinkOutage(DeviceId(0)),
                ..
            })
        ));
        // Window long after the run: bit-identical completion.
        let miss_plan = FaultPlan::new(
            &system,
            vec![Fault::LinkOutage {
                device: DeviceId(0),
                window: window(1000.0, 1001.0),
            }],
        )
        .unwrap();
        let base = simulate(&system, &assignment, Contention::Exclusive).unwrap();
        let report =
            simulate_chaos(&system, &assignment, Contention::Exclusive, &miss_plan).unwrap();
        match report.results[0].outcome {
            ChaosOutcome::Completed { completion, .. } => assert_eq!(
                completion.value().to_bits(),
                base.results[0].completion.value().to_bits()
            ),
            ChaosOutcome::Failed(hit) => panic!("spurious failure {hit:?}"),
        }
    }

    #[test]
    fn straggler_stretches_duration_and_energy_alike() {
        let system = small_system(1);
        let assignment = vec![(local_task(0, 0), ExecutionSite::Device)];
        let base = simulate(&system, &assignment, Contention::None).unwrap();
        let faults = FaultPlan::new(
            &system,
            vec![Fault::Straggler {
                device: DeviceId(0),
                window: window(0.0, 1e6),
                slowdown: 3.0,
            }],
        )
        .unwrap();
        let report = simulate_chaos(&system, &assignment, Contention::None, &faults).unwrap();
        let ChaosOutcome::Completed { completion, .. } = report.results[0].outcome else {
            panic!("straggler must not kill the task");
        };
        let b = &base.results[0];
        assert!((completion.value() - 3.0 * b.completion.value()).abs() < 1e-9);
        assert!((report.results[0].energy.value() - 3.0 * b.energy.value()).abs() < 1e-9);
    }

    #[test]
    fn waiter_queued_behind_a_busy_radio_is_skipped_once_its_task_failed() {
        // Tasks T and U both gather external data from device 2 (its
        // uplink serializes them). U's own upload is struck by an outage
        // at t=0, failing U while its shared-data leg still sits in
        // device 2's queue — the released radio must skip it.
        let system = small_system(3);
        let mk = |index: usize, owner: usize| HolisticTask {
            external_size: Bytes::from_kb(500.0),
            external_source: Some(DeviceId(2)),
            ..local_task(index, owner)
        };
        let assignment = vec![
            (mk(0, 0), ExecutionSite::Station),
            (mk(1, 1), ExecutionSite::Station),
        ];
        let faults = FaultPlan::new(
            &system,
            vec![Fault::LinkOutage {
                device: DeviceId(1),
                window: window(0.0, 1e-9),
            }],
        )
        .unwrap();
        let report = simulate_chaos(&system, &assignment, Contention::Exclusive, &faults).unwrap();
        assert!(matches!(
            report.results[1].outcome,
            ChaosOutcome::Failed(FaultHit {
                kind: FaultHitKind::LinkOutage(DeviceId(1)),
                ..
            })
        ));
        // U never ran a stage: the struck upload and the skipped queued
        // leg both cost nothing.
        assert_eq!(report.results[1].energy, Joules::ZERO);
        // T is untouched and completes exactly as without faults.
        let base = simulate(&system, &assignment[..1], Contention::Exclusive).unwrap();
        match report.results[0].outcome {
            ChaosOutcome::Completed { completion, .. } => assert_eq!(
                completion.value().to_bits(),
                base.results[0].completion.value().to_bits()
            ),
            ChaosOutcome::Failed(hit) => panic!("spurious failure {hit:?}"),
        }
        assert_eq!(
            report.results[0].energy.value().to_bits(),
            base.results[0].energy.value().to_bits()
        );
    }

    #[test]
    fn chaos_report_round_trips_through_json_and_aggregates() {
        let system = small_system(2);
        let assignment = vec![
            (local_task(0, 0), ExecutionSite::Device),
            (local_task(1, 1), ExecutionSite::Station),
        ];
        let faults = FaultPlan::new(
            &system,
            vec![Fault::Dropout {
                device: DeviceId(1),
                at: Seconds::ZERO,
            }],
        )
        .unwrap();
        let report = simulate_chaos(&system, &assignment, Contention::Exclusive, &faults).unwrap();
        assert_eq!(report.failed().count(), 1);
        assert!(report.total_energy() >= Joules::ZERO);
        assert!(report.makespan() > Seconds::ZERO);
        let json = djson::to_string(&report);
        let back: ChaosSimReport = djson::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn non_finite_plans_are_rejected_not_scheduled() {
        // An absurd complexity overflows cycles to infinity; build_plan
        // must refuse rather than hand the executor a non-finite time.
        let system = small_system(1);
        let mut task = local_task(0, 0);
        task.complexity = f64::MAX;
        let err = build_plan(&system, &task, ExecutionSite::Device).unwrap_err();
        assert!(
            matches!(err, MecError::InvalidParameter { name: "plan", .. }),
            "{err}"
        );
        let assignment = vec![(task, ExecutionSite::Device)];
        assert!(simulate(&system, &assignment, Contention::None).is_err());
        assert!(
            simulate_chaos(&system, &assignment, Contention::None, &FaultPlan::none()).is_err()
        );
    }

    #[test]
    fn stations_are_infrastructure_and_never_fault() {
        // A fault naming a station-level resource is inexpressible by
        // construction; hit/stretch on infrastructure is always clean.
        let plan = FaultPlan::none();
        assert_eq!(plan.hit(Resource::StationCpu(StationId(0)), 0.0), None);
        assert_eq!(plan.stretch(Resource::CloudBackhaul, 0.0), 1.0);
    }
}
