//! Discrete-event execution of an assignment.
//!
//! The analytic model of Section II prices every task in isolation. The
//! executor here actually *runs* an assignment through the system as a
//! discrete-event simulation: every radio, device CPU, station CPU and
//! backhaul pipe is a resource, and stages queue FIFO when
//! [`Contention::Exclusive`] is selected. With [`Contention::None`] each
//! resource has unlimited capacity and the simulation reproduces the
//! analytic times exactly — a strong end-to-end check that the cost model
//! and the executor agree.

pub mod plan;

use crate::error::MecError;
use crate::task::{ExecutionSite, HolisticTask, TaskId};
use crate::topology::MecSystem;
use crate::units::{Joules, Seconds};
use plan::{build_plan, Plan, PlanStep, Resource, Stage};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Resource-contention regime of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Contention {
    /// Unlimited capacity everywhere; matches the paper's analytic model.
    #[default]
    None,
    /// Every exclusive resource serves one stage at a time, FIFO.
    Exclusive,
}

/// Outcome of one task in a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSimResult {
    /// Task identifier.
    pub id: TaskId,
    /// Where it ran.
    pub site: ExecutionSite,
    /// When the task arrived (zero for [`simulate`]).
    pub arrival: Seconds,
    /// Wall-clock completion time.
    pub completion: Seconds,
    /// Sojourn time `completion − arrival` — what the user experiences,
    /// and what the deadline is checked against.
    pub sojourn: Seconds,
    /// System energy spent on the task.
    pub energy: Joules,
    /// Whether the sojourn met the task's deadline.
    pub met_deadline: bool,
}

/// Aggregate outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-task outcomes in input order.
    pub results: Vec<TaskSimResult>,
}

impl SimReport {
    /// Time the last task finishes.
    pub fn makespan(&self) -> Seconds {
        self.results
            .iter()
            .map(|r| r.completion)
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Total system energy.
    pub fn total_energy(&self) -> Joules {
        self.results.iter().map(|r| r.energy).sum()
    }

    /// Mean sojourn time; zero for an empty run.
    pub fn mean_latency(&self) -> Seconds {
        if self.results.is_empty() {
            return Seconds::ZERO;
        }
        self.results.iter().map(|r| r.sojourn).sum::<Seconds>() / self.results.len() as f64
    }

    /// Fraction of tasks missing their deadline; zero for an empty run.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        let missed = self.results.iter().filter(|r| !r.met_deadline).count();
        missed as f64 / self.results.len() as f64
    }
}

/// Runs `assignments` through the system.
///
/// # Errors
///
/// Propagates plan-building errors (unknown devices, invalid tasks).
///
/// # Examples
///
/// ```
/// use mec_sim::sim::{simulate, Contention};
/// use mec_sim::task::ExecutionSite;
/// use mec_sim::workload::ScenarioConfig;
///
/// let s = ScenarioConfig::paper_defaults(1).generate()?;
/// let assignment: Vec<_> = s.tasks.iter()
///     .map(|t| (*t, ExecutionSite::Device))
///     .collect();
/// let report = simulate(&s.system, &assignment, Contention::None)?;
/// assert_eq!(report.results.len(), s.tasks.len());
/// # Ok::<(), mec_sim::MecError>(())
/// ```
pub fn simulate(
    system: &MecSystem,
    assignments: &[(HolisticTask, ExecutionSite)],
    contention: Contention,
) -> Result<SimReport, MecError> {
    let timed: Vec<(HolisticTask, ExecutionSite, Seconds)> = assignments
        .iter()
        .map(|(t, s)| (*t, *s, Seconds::ZERO))
        .collect();
    simulate_with_arrivals(system, &timed, contention)
}

/// Runs `arrivals` — tasks released at individual times — through the
/// system. A task's plan starts when it arrives; with
/// [`Contention::Exclusive`] it then competes for resources with
/// everything already in flight. Deadlines are checked against the
/// *sojourn* (completion − arrival).
///
/// # Errors
///
/// Propagates plan-building errors and rejects negative or non-finite
/// arrival times.
pub fn simulate_with_arrivals(
    system: &MecSystem,
    arrivals: &[(HolisticTask, ExecutionSite, Seconds)],
    contention: Contention,
) -> Result<SimReport, MecError> {
    for (task, _, at) in arrivals {
        if !(at.value() >= 0.0 && at.is_finite()) {
            return Err(MecError::InvalidParameter {
                name: "arrival",
                reason: format!("{} arrives at invalid time {at}", task.id),
            });
        }
    }
    let plans: Vec<Plan> = arrivals
        .iter()
        .map(|(t, s, _)| build_plan(system, t, *s))
        .collect::<Result<_, _>>()?;
    let times: Vec<f64> = arrivals.iter().map(|(_, _, at)| at.value()).collect();
    let mut engine = Engine::new(contention, &plans);
    let finish = engine.run_with_arrivals(&times);
    let results = arrivals
        .iter()
        .zip(plans.iter())
        .zip(finish.iter())
        .map(|(((task, site, arrival), plan), &completion)| {
            let sojourn = completion - *arrival;
            TaskSimResult {
                id: task.id,
                site: *site,
                arrival: *arrival,
                completion,
                sojourn,
                energy: plan.total_energy(),
                met_deadline: sojourn <= task.deadline,
            }
        })
        .collect();
    Ok(SimReport { results })
}

// --- Engine ---------------------------------------------------------------

/// Sentinel `step` value marking a deferred task release.
const START_MARKER: usize = usize::MAX;

/// Where a finished stage belongs inside its task's plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StageRef {
    task: usize,
    step: usize,
    /// Branch index for parallel steps; `usize::MAX` for single stages.
    branch: usize,
    /// Position inside the branch.
    pos: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    stage: StageRef,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Times come from finite durations; ties broken by sequence number
        // so completion order is deterministic.
        self.time
            .partial_cmp(&other.time)
            .expect("finite event times")
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Default)]
struct ResourceState {
    busy: bool,
    queue: VecDeque<(StageRef, Stage)>,
}

struct Engine<'a> {
    contention: Contention,
    plans: &'a [Plan],
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    resources: HashMap<Resource, ResourceState>,
    /// Remaining unfinished branches per (task, step) for parallel steps.
    open_branches: HashMap<(usize, usize), usize>,
    finish: Vec<f64>,
}

impl<'a> Engine<'a> {
    fn new(contention: Contention, plans: &'a [Plan]) -> Engine<'a> {
        Engine {
            contention,
            plans,
            heap: BinaryHeap::new(),
            seq: 0,
            resources: HashMap::new(),
            open_branches: HashMap::new(),
            finish: vec![0.0; plans.len()],
        }
    }

    fn run_with_arrivals(&mut self, arrivals: &[f64]) -> Vec<Seconds> {
        for task in 0..self.plans.len() {
            let at = arrivals.get(task).copied().unwrap_or(0.0);
            if at <= 0.0 {
                self.begin_step(task, 0, 0.0);
            } else {
                // A start marker: fires at the arrival time and releases
                // the task's first step.
                self.seq += 1;
                self.heap.push(Reverse(Event {
                    time: at,
                    seq: self.seq,
                    stage: StageRef {
                        task,
                        step: START_MARKER,
                        branch: usize::MAX,
                        pos: 0,
                    },
                }));
            }
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            if ev.stage.step == START_MARKER {
                self.begin_step(ev.stage.task, 0, ev.time);
            } else {
                self.complete_stage(ev);
            }
        }
        self.finish.iter().map(|&t| Seconds::new(t)).collect()
    }

    fn serialized(&self, r: Resource) -> bool {
        self.contention == Contention::Exclusive && r.is_exclusive()
    }

    fn begin_step(&mut self, task: usize, step: usize, now: f64) {
        let Some(plan_step) = self.plans[task].steps.get(step) else {
            self.finish[task] = now;
            return;
        };
        match plan_step {
            PlanStep::Single(stage) => {
                let sref = StageRef {
                    task,
                    step,
                    branch: usize::MAX,
                    pos: 0,
                };
                self.request(sref, *stage, now);
            }
            PlanStep::Parallel(branches) => {
                let live: Vec<usize> = branches
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| !b.is_empty())
                    .map(|(k, _)| k)
                    .collect();
                if live.is_empty() {
                    self.begin_step(task, step + 1, now);
                    return;
                }
                self.open_branches.insert((task, step), live.len());
                for k in live {
                    let stage = branches[k][0];
                    let sref = StageRef {
                        task,
                        step,
                        branch: k,
                        pos: 0,
                    };
                    self.request(sref, stage, now);
                }
            }
        }
    }

    fn request(&mut self, sref: StageRef, stage: Stage, now: f64) {
        if self.serialized(stage.resource) {
            let state = self.resources.entry(stage.resource).or_default();
            if state.busy {
                state.queue.push_back((sref, stage));
                return;
            }
            state.busy = true;
        }
        self.schedule(sref, stage, now);
    }

    fn schedule(&mut self, sref: StageRef, stage: Stage, now: f64) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time: now + stage.duration.value(),
            seq: self.seq,
            stage: sref,
        }));
    }

    fn complete_stage(&mut self, ev: Event) {
        let sref = ev.stage;
        let now = ev.time;
        let stage = self.stage_at(sref);

        // Free the resource and start the next waiter.
        if self.serialized(stage.resource) {
            let state = self
                .resources
                .get_mut(&stage.resource)
                .expect("completed stage had a resource entry");
            if let Some((next_ref, next_stage)) = state.queue.pop_front() {
                self.schedule(next_ref, next_stage, now);
            } else {
                state.busy = false;
            }
        }

        // Advance the task.
        if sref.branch == usize::MAX {
            self.begin_step(sref.task, sref.step + 1, now);
            return;
        }
        let branches = match &self.plans[sref.task].steps[sref.step] {
            PlanStep::Parallel(b) => b,
            PlanStep::Single(_) => unreachable!("branch ref into a single step"),
        };
        let branch = &branches[sref.branch];
        if sref.pos + 1 < branch.len() {
            let next = branch[sref.pos + 1];
            let next_ref = StageRef {
                pos: sref.pos + 1,
                ..sref
            };
            self.request(next_ref, next, now);
        } else {
            let remaining = self
                .open_branches
                .get_mut(&(sref.task, sref.step))
                .expect("parallel step tracked");
            *remaining -= 1;
            if *remaining == 0 {
                self.open_branches.remove(&(sref.task, sref.step));
                self.begin_step(sref.task, sref.step + 1, now);
            }
        }
    }

    fn stage_at(&self, sref: StageRef) -> Stage {
        match &self.plans[sref.task].steps[sref.step] {
            PlanStep::Single(s) => *s,
            PlanStep::Parallel(b) => b[sref.branch][sref.pos],
        }
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_enum!(Contention { None, Exclusive });
djson::impl_json_struct!(TaskSimResult {
    id,
    site,
    arrival,
    completion,
    sojourn,
    energy,
    met_deadline,
});
djson::impl_json_struct!(SimReport { results });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use crate::radio::NetworkProfile;
    use crate::topology::{Cloud, DeviceId, MecSystem};
    use crate::units::{Bytes, Hertz};
    use crate::workload::ScenarioConfig;

    #[test]
    fn contention_free_simulation_matches_analytic_model() {
        let s = ScenarioConfig::paper_defaults(77).generate().unwrap();
        for site in ExecutionSite::ALL {
            let assignment: Vec<_> = s.tasks.iter().map(|t| (*t, site)).collect();
            let report = simulate(&s.system, &assignment, Contention::None).unwrap();
            for (task, result) in s.tasks.iter().zip(report.results.iter()) {
                let expect = cost::evaluate(&s.system, task).unwrap().at(site);
                let dt = (result.completion.value() - expect.time.value()).abs();
                assert!(
                    dt < 1e-9 * (1.0 + expect.time.value()),
                    "{} at {site}",
                    task.id
                );
                let de = (result.energy.value() - expect.energy.value()).abs();
                assert!(
                    de < 1e-9 * (1.0 + expect.energy.value()),
                    "{} at {site}",
                    task.id
                );
            }
        }
    }

    #[test]
    fn exclusive_contention_never_beats_contention_free() {
        let s = ScenarioConfig::paper_defaults(3).generate().unwrap();
        let assignment: Vec<_> = s
            .tasks
            .iter()
            .map(|t| (*t, ExecutionSite::Station))
            .collect();
        let free = simulate(&s.system, &assignment, Contention::None).unwrap();
        let queued = simulate(&s.system, &assignment, Contention::Exclusive).unwrap();
        for (f, q) in free.results.iter().zip(queued.results.iter()) {
            assert!(
                q.completion.value() >= f.completion.value() - 1e-12,
                "{}: queued {} < free {}",
                f.id,
                q.completion,
                f.completion
            );
            // Energy never changes: waiting is free.
            assert!((q.energy.value() - f.energy.value()).abs() < 1e-12);
        }
        assert!(queued.makespan() >= free.makespan());
    }

    #[test]
    fn identical_local_tasks_serialize_on_one_cpu() {
        // Two identical purely-local tasks on the same device: with
        // exclusive contention the second finishes at exactly 2× the
        // compute time.
        let mut b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        let st = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        b.add_device(
            st,
            Hertz::from_ghz(1.0),
            NetworkProfile::WiFi.link(),
            Bytes::from_mb(8.0),
        )
        .unwrap();
        let system = b.build().unwrap();
        let mk = |index| HolisticTask {
            id: crate::task::TaskId { user: 0, index },
            owner: DeviceId(0),
            local_size: Bytes::from_kb(1000.0),
            external_size: Bytes::ZERO,
            external_source: None,
            complexity: 1.0,
            resource: Bytes::from_kb(1000.0),
            deadline: Seconds::new(10.0),
        };
        let assignment = vec![
            (mk(0), ExecutionSite::Device),
            (mk(1), ExecutionSite::Device),
        ];
        let report = simulate(&system, &assignment, Contention::Exclusive).unwrap();
        let unit = 330.0 * 1e6 / 1e9; // cycles / Hz = 0.33 s
        assert!((report.results[0].completion.value() - unit).abs() < 1e-9);
        assert!((report.results[1].completion.value() - 2.0 * unit).abs() < 1e-9);
        assert_eq!(report.makespan(), report.results[1].completion);
    }

    #[test]
    fn report_statistics() {
        let s = ScenarioConfig::paper_defaults(5).generate().unwrap();
        let assignment: Vec<_> = s.tasks.iter().map(|t| (*t, ExecutionSite::Cloud)).collect();
        let report = simulate(&s.system, &assignment, Contention::None).unwrap();
        assert!(report.total_energy() > Joules::ZERO);
        assert!(report.mean_latency() > Seconds::ZERO);
        assert!(report.makespan() >= report.mean_latency());
        let rate = report.deadline_miss_rate();
        assert!((0.0..=1.0).contains(&rate));
        let empty = SimReport { results: vec![] };
        assert_eq!(empty.deadline_miss_rate(), 0.0);
        assert_eq!(empty.mean_latency(), Seconds::ZERO);
    }
}

#[cfg(test)]
mod arrival_tests {
    use super::*;
    use crate::workload::{poisson_arrivals, ScenarioConfig};

    #[test]
    fn contention_free_arrivals_shift_completions_exactly() {
        let mut cfg = ScenarioConfig::paper_defaults(701);
        cfg.tasks_total = 20;
        let s = cfg.generate().unwrap();
        let batch: Vec<_> = s
            .tasks
            .iter()
            .map(|t| (*t, ExecutionSite::Device))
            .collect();
        let base = simulate(&s.system, &batch, Contention::None).unwrap();
        let arrivals = poisson_arrivals(7, s.tasks.len(), 1.0).unwrap();
        let timed: Vec<_> = s
            .tasks
            .iter()
            .zip(arrivals.iter())
            .map(|(t, at)| (*t, ExecutionSite::Device, *at))
            .collect();
        let shifted = simulate_with_arrivals(&s.system, &timed, Contention::None).unwrap();
        for ((b, r), at) in base.results.iter().zip(&shifted.results).zip(&arrivals) {
            let expect = b.completion.value() + at.value();
            assert!(
                (r.completion.value() - expect).abs() < 1e-9 * (1.0 + expect),
                "{}",
                b.id
            );
            // Sojourn is arrival-independent without contention.
            assert!((r.sojourn.value() - b.sojourn.value()).abs() < 1e-9);
            assert_eq!(r.met_deadline, b.met_deadline);
        }
    }

    #[test]
    fn staggered_arrivals_relieve_queueing() {
        // One device, many identical local tasks: batch release queues
        // them all; slow Poisson release (gap > service time) eliminates
        // waiting entirely.
        let mut cfg = ScenarioConfig::paper_defaults(702);
        cfg.num_stations = 1;
        cfg.devices_per_station = 1;
        cfg.tasks_total = 10;
        cfg.external_frac_range = (0.0, 0.0);
        let s = cfg.generate().unwrap();
        let batch: Vec<_> = s
            .tasks
            .iter()
            .map(|t| (*t, ExecutionSite::Device))
            .collect();
        let queued = simulate(&s.system, &batch, Contention::Exclusive).unwrap();
        // Slow arrivals: one task every 100 s, far above any service time.
        let timed: Vec<_> = s
            .tasks
            .iter()
            .enumerate()
            .map(|(k, t)| (*t, ExecutionSite::Device, Seconds::new(100.0 * k as f64)))
            .collect();
        let relaxed = simulate_with_arrivals(&s.system, &timed, Contention::Exclusive).unwrap();
        assert!(relaxed.mean_latency() < queued.mean_latency());
        // With no overlap, queued sojourn equals the contention-free one.
        let free = simulate(&s.system, &batch, Contention::None).unwrap();
        for (r, f) in relaxed.results.iter().zip(free.results.iter()) {
            assert!(
                (r.sojourn.value() - f.sojourn.value()).abs() < 1e-9,
                "{}",
                r.id
            );
        }
    }

    #[test]
    fn negative_arrivals_are_rejected() {
        let mut cfg = ScenarioConfig::paper_defaults(703);
        cfg.tasks_total = 2;
        let s = cfg.generate().unwrap();
        let timed = vec![(s.tasks[0], ExecutionSite::Device, Seconds::new(-1.0))];
        assert!(simulate_with_arrivals(&s.system, &timed, Contention::None).is_err());
    }
}
