//! Execution plans: the series-parallel stage graph a task traverses when
//! it runs at a given site.
//!
//! The analytic cost model (`cost.rs`) collapses each task into closed-form
//! time/energy; the discrete-event executor instead walks the same
//! structure stage by stage, which lets it model *contention* on shared
//! resources (radios, CPUs, backhaul pipes). With contention disabled the
//! two must agree exactly — that equivalence is tested in `sim::tests`.

use crate::error::MecError;
use crate::task::{ExecutionSite, HolisticTask};
use crate::topology::{DeviceId, MecSystem, StationId};
use crate::transfer;
use crate::units::{Joules, Seconds};

/// A schedulable resource in the MEC system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A device's radio uplink.
    DeviceUp(DeviceId),
    /// A device's radio downlink.
    DeviceDown(DeviceId),
    /// A device's CPU.
    DeviceCpu(DeviceId),
    /// A base station's CPU.
    StationCpu(StationId),
    /// The station-to-station backhaul pipe.
    StationBackhaul,
    /// The station-to-cloud backhaul pipe.
    CloudBackhaul,
    /// The cloud's CPU (effectively unbounded parallelism; still a
    /// resource so its busy time is observable).
    CloudCpu,
}

impl Resource {
    /// Whether this resource serializes work when contention is enabled.
    /// The cloud's CPU is modeled as infinitely parallel even then.
    pub fn is_exclusive(self) -> bool {
        !matches!(self, Resource::CloudCpu)
    }

    /// The device this resource belongs to, if any. Station and cloud
    /// resources are infrastructure and never fault.
    pub fn device(self) -> Option<DeviceId> {
        match self {
            Resource::DeviceUp(d) | Resource::DeviceDown(d) | Resource::DeviceCpu(d) => Some(d),
            _ => None,
        }
    }

    /// Whether this resource is a device radio (up- or downlink), the
    /// class link outage/degradation faults apply to.
    pub fn is_radio(self) -> bool {
        matches!(self, Resource::DeviceUp(_) | Resource::DeviceDown(_))
    }
}

/// One timed stage on one resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Resource the stage occupies.
    pub resource: Resource,
    /// Service time (independent of queueing).
    pub duration: Seconds,
    /// System energy attributed to the stage (waiting costs none).
    pub energy: Joules,
}

/// One step of a plan: a single stage or parallel branches that join.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// Run one stage.
    Single(Stage),
    /// Run each branch (a serial stage list) concurrently; the step ends
    /// when the slowest branch ends.
    Parallel(Vec<Vec<Stage>>),
}

/// The full series-parallel plan of one task at one site.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Steps executed in order.
    pub steps: Vec<PlanStep>,
}

impl Plan {
    /// Sum of all stage energies.
    pub fn total_energy(&self) -> Joules {
        let stage_sum = |stages: &[Stage]| stages.iter().map(|s| s.energy).sum::<Joules>();
        self.steps
            .iter()
            .map(|step| match step {
                PlanStep::Single(s) => s.energy,
                PlanStep::Parallel(branches) => {
                    branches.iter().map(|b| stage_sum(b)).sum::<Joules>()
                }
            })
            .sum()
    }

    /// Contention-free end-to-end duration: serial steps add, parallel
    /// steps contribute their slowest branch.
    pub fn critical_path(&self) -> Seconds {
        let branch_sum = |stages: &[Stage]| stages.iter().map(|s| s.duration).sum::<Seconds>();
        self.steps
            .iter()
            .map(|step| match step {
                PlanStep::Single(s) => s.duration,
                PlanStep::Parallel(branches) => branches
                    .iter()
                    .map(|b| branch_sum(b))
                    .fold(Seconds::ZERO, Seconds::max),
            })
            .sum()
    }
}

/// Builds the stage plan of `task` executing at `site`, mirroring the
/// Section II formulas stage by stage.
///
/// # Errors
///
/// Returns topology errors for unknown devices and propagates task
/// validation failures.
pub fn build_plan(
    system: &MecSystem,
    task: &HolisticTask,
    site: ExecutionSite,
) -> Result<Plan, MecError> {
    task.validate()?;
    let owner = system.device(task.owner)?;
    let station = system.station(owner.station)?;
    let bb = system.backhaul.station_to_station;
    let bc = system.backhaul.station_to_cloud;
    let alpha = task.local_size;
    let beta = task.external_size;
    let input = task.input_size();
    let result = system.result_model.result_size(input);
    let cycles = system.cycle_model.cycles(input, task.complexity);

    let external = match task.external_source {
        Some(src) => {
            let d = system.device(src)?;
            Some((d, !system.same_cluster(task.owner, src)?))
        }
        None => None,
    };

    // The external-data leg: source uploads β, optionally hops BS→BS.
    let beta_leg = |to_owner_station: bool| -> Vec<Stage> {
        let mut stages = Vec::new();
        if let Some((src, cross)) = external {
            stages.push(Stage {
                resource: Resource::DeviceUp(src.id),
                duration: transfer::upload_time(&src.link, beta),
                energy: transfer::upload_energy(&src.link, beta),
            });
            if cross && to_owner_station {
                stages.push(Stage {
                    resource: Resource::StationBackhaul,
                    duration: bb.transfer_time(beta),
                    energy: bb.transfer_energy(beta),
                });
            }
        }
        stages
    };

    let mut steps = Vec::new();
    match site {
        ExecutionSite::Device => {
            for s in beta_leg(true) {
                steps.push(PlanStep::Single(s));
            }
            if external.is_some() {
                steps.push(PlanStep::Single(Stage {
                    resource: Resource::DeviceDown(owner.id),
                    duration: transfer::download_time(&owner.link, beta),
                    energy: transfer::download_energy(&owner.link, beta),
                }));
            }
            steps.push(PlanStep::Single(Stage {
                resource: Resource::DeviceCpu(owner.id),
                duration: cycles / owner.cpu,
                energy: system
                    .cycle_model
                    .device_energy(input, task.complexity, owner.cpu),
            }));
        }
        ExecutionSite::Station => {
            let gather = vec![
                beta_leg(true),
                vec![Stage {
                    resource: Resource::DeviceUp(owner.id),
                    duration: transfer::upload_time(&owner.link, alpha),
                    energy: transfer::upload_energy(&owner.link, alpha),
                }],
            ];
            steps.push(PlanStep::Parallel(gather));
            steps.push(PlanStep::Single(Stage {
                resource: Resource::StationCpu(station.id),
                duration: cycles / station.cpu,
                energy: Joules::ZERO, // negligible per Section II.A
            }));
            steps.push(PlanStep::Single(Stage {
                resource: Resource::DeviceDown(owner.id),
                duration: transfer::download_time(&owner.link, result),
                energy: transfer::download_energy(&owner.link, result),
            }));
        }
        ExecutionSite::Cloud => {
            let gather = vec![
                beta_leg(false), // the β copy rides its own station's cloud link
                vec![Stage {
                    resource: Resource::DeviceUp(owner.id),
                    duration: transfer::upload_time(&owner.link, alpha),
                    energy: transfer::upload_energy(&owner.link, alpha),
                }],
            ];
            steps.push(PlanStep::Parallel(gather));
            let haul = input + result;
            steps.push(PlanStep::Single(Stage {
                resource: Resource::CloudBackhaul,
                duration: bc.transfer_time(haul),
                energy: bc.transfer_energy(haul),
            }));
            steps.push(PlanStep::Single(Stage {
                resource: Resource::CloudCpu,
                duration: cycles / system.cloud().cpu,
                energy: Joules::ZERO,
            }));
            steps.push(PlanStep::Single(Stage {
                resource: Resource::DeviceDown(owner.id),
                duration: transfer::download_time(&owner.link, result),
                energy: transfer::download_energy(&owner.link, result),
            }));
        }
    }
    let plan = Plan { steps };
    validate_stages(&plan, task)?;
    Ok(plan)
}

/// Rejects plans whose physics overflowed: a stage duration or energy
/// that is negative or non-finite (e.g. an astronomically large input on
/// a finite-rate link). The executor's event heap orders by time, so a
/// NaN duration would otherwise corrupt the schedule silently.
fn validate_stages(plan: &Plan, task: &HolisticTask) -> Result<(), MecError> {
    let check = |s: &Stage| -> Result<(), MecError> {
        let ok = s.duration.is_finite()
            && s.duration.value() >= 0.0
            && s.energy.is_finite()
            && s.energy.value() >= 0.0;
        if ok {
            Ok(())
        } else {
            Err(MecError::InvalidParameter {
                name: "plan",
                reason: format!(
                    "{} produces an invalid stage on {:?}: duration {}, energy {}",
                    task.id, s.resource, s.duration, s.energy
                ),
            })
        }
    };
    for step in &plan.steps {
        match step {
            PlanStep::Single(s) => check(s)?,
            PlanStep::Parallel(branches) => {
                for b in branches {
                    for s in b {
                        check(s)?;
                    }
                }
            }
        }
    }
    Ok(())
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_enum!(Resource {
    DeviceUp(DeviceId),
    DeviceDown(DeviceId),
    DeviceCpu(DeviceId),
    StationCpu(StationId),
    StationBackhaul,
    CloudBackhaul,
    CloudCpu,
});
djson::impl_json_struct!(Stage {
    resource,
    duration,
    energy
});
djson::impl_json_enum!(PlanStep { Single(Stage), Parallel(Vec<Vec<Stage>>) });
djson::impl_json_struct!(Plan { steps });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use crate::task::TaskId;
    use crate::units::Bytes;
    use crate::workload::ScenarioConfig;

    #[test]
    fn plan_matches_analytic_cost_model_everywhere() {
        let scenario = ScenarioConfig::paper_defaults(1234).generate().unwrap();
        for task in &scenario.tasks {
            let costs = cost::evaluate(&scenario.system, task).unwrap();
            for site in ExecutionSite::ALL {
                let plan = build_plan(&scenario.system, task, site).unwrap();
                let t = plan.critical_path();
                let e = plan.total_energy();
                let c = costs.at(site);
                assert!(
                    (t.value() - c.time.value()).abs() < 1e-9 * (1.0 + c.time.value()),
                    "{} at {site}: plan {t} vs cost {}",
                    task.id,
                    c.time
                );
                assert!(
                    (e.value() - c.energy.value()).abs() < 1e-9 * (1.0 + c.energy.value()),
                    "{} at {site}: plan {e} vs cost {}",
                    task.id,
                    c.energy
                );
            }
        }
    }

    #[test]
    fn purely_local_plan_is_one_stage() {
        let scenario = ScenarioConfig::paper_defaults(5).generate().unwrap();
        let mut task = scenario.tasks[0];
        task.external_size = Bytes::ZERO;
        task.external_source = None;
        task.id = TaskId { user: 0, index: 99 };
        let plan = build_plan(&scenario.system, &task, ExecutionSite::Device).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(matches!(
            plan.steps[0],
            PlanStep::Single(Stage {
                resource: Resource::DeviceCpu(_),
                ..
            })
        ));
    }

    #[test]
    fn cloud_cpu_is_not_exclusive() {
        assert!(!Resource::CloudCpu.is_exclusive());
        assert!(Resource::DeviceUp(DeviceId(0)).is_exclusive());
        assert!(Resource::StationBackhaul.is_exclusive());
    }
}
