//! Three-level MEC topology (paper Fig. 1): mobile devices, base stations
//! with small-scale clouds, and the remote cloud.
//!
//! Devices attach to exactly one base station for the whole assignment
//! period (the paper's quasi-static assumption after \[9\]); a station and
//! its devices form a *cluster*. The topology also carries the system-wide
//! physics — backhaul links, the cycle model and the result-size model —
//! so a [`MecSystem`] is everything a cost evaluator needs.

use crate::backhaul::Backhaul;
use crate::compute::CycleModel;
use crate::error::MecError;
use crate::radio::RadioLink;
use crate::units::{Bytes, Hertz};
use std::fmt;

/// Identifier of a mobile device (index into [`MecSystem::devices`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Identifier of a base station (index into [`MecSystem::stations`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StationId(pub usize);

impl fmt::Display for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bs{}", self.0)
    }
}

/// One mobile device (first level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// The device's id.
    pub id: DeviceId,
    /// Station the device is attached to for the whole period.
    pub station: StationId,
    /// CPU frequency `f_i`.
    pub cpu: Hertz,
    /// Radio link to the station.
    pub link: RadioLink,
    /// Computation-resource capacity `max_i` (memory the paper's `C_ij`
    /// occupations are charged against).
    pub max_resource: Bytes,
}

/// One base station with its small-scale cloud (second level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseStation {
    /// The station's id.
    pub id: StationId,
    /// CPU frequency `f_s`.
    pub cpu: Hertz,
    /// Computation-resource capacity `max_S`.
    pub max_resource: Bytes,
}

/// The remote cloud (third level). Its resources are unconstrained in the
/// paper's model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cloud {
    /// CPU frequency `f_c`.
    pub cpu: Hertz,
}

/// How large a task's result is relative to its input (the paper's
/// `η(y)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResultModel {
    /// `η(y) = ratio · y`; the paper's default uses `ratio = 0.2`.
    Proportional(f64),
    /// A fixed result size regardless of input (the "constant" point of
    /// Fig. 5(b)).
    Constant(Bytes),
}

impl ResultModel {
    /// Result size for an input of `y` bytes.
    pub fn result_size(&self, input: Bytes) -> Bytes {
        match *self {
            ResultModel::Proportional(r) => input * r,
            ResultModel::Constant(b) => b,
        }
    }

    /// The paper's Section V.A default (`η = 0.2`).
    pub fn paper_default() -> ResultModel {
        ResultModel::Proportional(0.2)
    }
}

impl Default for ResultModel {
    fn default() -> Self {
        ResultModel::paper_default()
    }
}

/// A complete three-level MEC system.
#[derive(Debug, Clone, PartialEq)]
pub struct MecSystem {
    devices: Vec<Device>,
    stations: Vec<BaseStation>,
    cloud: Cloud,
    clusters: Vec<Vec<DeviceId>>,
    /// Backhaul link models.
    pub backhaul: Backhaul,
    /// Cycle-demand model shared by all subsystems.
    pub cycle_model: CycleModel,
    /// Result-size model `η`.
    pub result_model: ResultModel,
}

impl MecSystem {
    /// Starts building a system around the given cloud.
    pub fn builder(cloud: Cloud) -> MecSystemBuilder {
        MecSystemBuilder::new(cloud)
    }

    /// All devices, ordered by id.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All base stations, ordered by id.
    pub fn stations(&self) -> &[BaseStation] {
        &self.stations
    }

    /// The remote cloud.
    pub fn cloud(&self) -> Cloud {
        self.cloud
    }

    /// Number of devices (`n`).
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of stations (`k`).
    pub fn num_stations(&self) -> usize {
        self.stations.len()
    }

    /// Looks up a device.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::UnknownDevice`] for an out-of-range id.
    pub fn device(&self, id: DeviceId) -> Result<&Device, MecError> {
        self.devices.get(id.0).ok_or(MecError::UnknownDevice(id))
    }

    /// Looks up a station.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::UnknownStation`] for an out-of-range id.
    pub fn station(&self, id: StationId) -> Result<&BaseStation, MecError> {
        self.stations.get(id.0).ok_or(MecError::UnknownStation(id))
    }

    /// The station a device is attached to.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::UnknownDevice`] for an out-of-range id.
    pub fn station_of(&self, id: DeviceId) -> Result<StationId, MecError> {
        Ok(self.device(id)?.station)
    }

    /// The devices attached to a station (`n_r` of them), ordered by id.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::UnknownStation`] for an out-of-range id.
    pub fn cluster(&self, id: StationId) -> Result<&[DeviceId], MecError> {
        self.clusters
            .get(id.0)
            .map(Vec::as_slice)
            .ok_or(MecError::UnknownStation(id))
    }

    /// True iff both devices attach to the same base station.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::UnknownDevice`] when either id is bad.
    pub fn same_cluster(&self, a: DeviceId, b: DeviceId) -> Result<bool, MecError> {
        Ok(self.station_of(a)? == self.station_of(b)?)
    }
}

/// Incremental [`MecSystem`] construction with validation at `build`.
///
/// # Examples
///
/// ```
/// use mec_sim::topology::{Cloud, MecSystem};
/// use mec_sim::radio::NetworkProfile;
/// use mec_sim::units::{Bytes, Hertz};
///
/// let mut b = MecSystem::builder(Cloud { cpu: Hertz::from_ghz(2.4) });
/// let bs = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
/// b.add_device(bs, Hertz::from_ghz(1.5), NetworkProfile::WiFi.link(), Bytes::from_mb(8.0))?;
/// let system = b.build()?;
/// assert_eq!(system.num_devices(), 1);
/// # Ok::<(), mec_sim::MecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MecSystemBuilder {
    devices: Vec<Device>,
    stations: Vec<BaseStation>,
    cloud: Cloud,
    backhaul: Backhaul,
    cycle_model: CycleModel,
    result_model: ResultModel,
}

impl MecSystemBuilder {
    /// Creates a builder with paper-default backhaul, cycle and result
    /// models.
    pub fn new(cloud: Cloud) -> MecSystemBuilder {
        MecSystemBuilder {
            devices: Vec::new(),
            stations: Vec::new(),
            cloud,
            backhaul: Backhaul::paper_defaults(),
            cycle_model: CycleModel::paper_default(),
            result_model: ResultModel::paper_default(),
        }
    }

    /// Overrides the backhaul model.
    pub fn backhaul(&mut self, backhaul: Backhaul) -> &mut Self {
        self.backhaul = backhaul;
        self
    }

    /// Overrides the cycle model.
    pub fn cycle_model(&mut self, model: CycleModel) -> &mut Self {
        self.cycle_model = model;
        self
    }

    /// Overrides the result-size model.
    pub fn result_model(&mut self, model: ResultModel) -> &mut Self {
        self.result_model = model;
        self
    }

    /// Adds a base station and returns its id.
    pub fn add_station(&mut self, cpu: Hertz, max_resource: Bytes) -> StationId {
        let id = StationId(self.stations.len());
        self.stations.push(BaseStation {
            id,
            cpu,
            max_resource,
        });
        id
    }

    /// Adds a mobile device attached to `station` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::UnknownStation`] when the station has not been
    /// added yet.
    pub fn add_device(
        &mut self,
        station: StationId,
        cpu: Hertz,
        link: RadioLink,
        max_resource: Bytes,
    ) -> Result<DeviceId, MecError> {
        if station.0 >= self.stations.len() {
            return Err(MecError::UnknownStation(station));
        }
        let id = DeviceId(self.devices.len());
        self.devices.push(Device {
            id,
            station,
            cpu,
            link,
            max_resource,
        });
        Ok(id)
    }

    /// Finalizes the system.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::NoStations`] / [`MecError::NoDevices`] for an
    /// empty topology.
    pub fn build(&self) -> Result<MecSystem, MecError> {
        if self.stations.is_empty() {
            return Err(MecError::NoStations);
        }
        if self.devices.is_empty() {
            return Err(MecError::NoDevices);
        }
        let mut clusters = vec![Vec::new(); self.stations.len()];
        for d in &self.devices {
            clusters[d.station.0].push(d.id);
        }
        Ok(MecSystem {
            devices: self.devices.clone(),
            stations: self.stations.clone(),
            cloud: self.cloud,
            clusters,
            backhaul: self.backhaul,
            cycle_model: self.cycle_model,
            result_model: self.result_model,
        })
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_newtype!(DeviceId(usize));
djson::impl_json_newtype!(StationId(usize));
djson::impl_json_struct!(Device {
    id,
    station,
    cpu,
    link,
    max_resource
});
djson::impl_json_struct!(BaseStation {
    id,
    cpu,
    max_resource
});
djson::impl_json_struct!(Cloud { cpu });
djson::impl_json_enum!(ResultModel { Proportional(f64), Constant(Bytes) });
djson::impl_json_struct!(MecSystem {
    devices,
    stations,
    cloud,
    clusters,
    backhaul,
    cycle_model,
    result_model,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::NetworkProfile;

    fn small_system() -> MecSystem {
        let mut b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        let s0 = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        let s1 = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        for (st, profile) in [
            (s0, NetworkProfile::FourG),
            (s0, NetworkProfile::WiFi),
            (s1, NetworkProfile::WiFi),
        ] {
            b.add_device(
                st,
                Hertz::from_ghz(1.5),
                profile.link(),
                Bytes::from_mb(8.0),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn clusters_partition_devices() {
        let sys = small_system();
        assert_eq!(sys.num_devices(), 3);
        assert_eq!(sys.num_stations(), 2);
        assert_eq!(
            sys.cluster(StationId(0)).unwrap(),
            &[DeviceId(0), DeviceId(1)]
        );
        assert_eq!(sys.cluster(StationId(1)).unwrap(), &[DeviceId(2)]);
        let total: usize = (0..2)
            .map(|r| sys.cluster(StationId(r)).unwrap().len())
            .sum();
        assert_eq!(total, sys.num_devices());
    }

    #[test]
    fn same_cluster_queries() {
        let sys = small_system();
        assert!(sys.same_cluster(DeviceId(0), DeviceId(1)).unwrap());
        assert!(!sys.same_cluster(DeviceId(0), DeviceId(2)).unwrap());
        assert!(sys.same_cluster(DeviceId(0), DeviceId(9)).is_err());
    }

    #[test]
    fn unknown_ids_error() {
        let sys = small_system();
        assert_eq!(
            sys.device(DeviceId(17)).unwrap_err(),
            MecError::UnknownDevice(DeviceId(17))
        );
        assert_eq!(
            sys.station(StationId(5)).unwrap_err(),
            MecError::UnknownStation(StationId(5))
        );
        assert!(sys.cluster(StationId(5)).is_err());
    }

    #[test]
    fn builder_rejects_bad_station_reference() {
        let mut b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        let err = b
            .add_device(
                StationId(0),
                Hertz::from_ghz(1.0),
                NetworkProfile::FourG.link(),
                Bytes::from_mb(8.0),
            )
            .unwrap_err();
        assert_eq!(err, MecError::UnknownStation(StationId(0)));
    }

    #[test]
    fn builder_rejects_empty_topology() {
        let b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        assert_eq!(b.build().unwrap_err(), MecError::NoStations);
        let mut b2 = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        b2.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(100.0));
        assert_eq!(b2.build().unwrap_err(), MecError::NoDevices);
    }

    #[test]
    fn result_model_variants() {
        let p = ResultModel::Proportional(0.2);
        assert_eq!(p.result_size(Bytes::new(100.0)), Bytes::new(20.0));
        let c = ResultModel::Constant(Bytes::from_kb(5.0));
        assert_eq!(c.result_size(Bytes::from_mb(3.0)), Bytes::from_kb(5.0));
    }

    #[test]
    fn ids_display() {
        assert_eq!(DeviceId(4).to_string(), "dev4");
        assert_eq!(StationId(2).to_string(), "bs2");
    }
}
