//! Seeded workload generators reproducing the experiment settings of
//! paper Section V.A:
//!
//! * device CPUs uniform in 1–2 GHz, stations at 4 GHz, cloud at 2.4 GHz
//!   (Amazon T2.nano);
//! * each device on 4G or Wi-Fi at random (Table I parameters);
//! * task input data up to a configurable maximum (3000 kB in most
//!   figures), external data 0–0.5× the local data, result size `η = 0.2`;
//! * deadlines drawn as a multiple of the task's best achievable latency,
//!   so tightness is controllable and comparable across scenarios.
//!
//! All generation is deterministic in the seed (ChaCha8), so every figure
//! of the bench harness is exactly reproducible.

use crate::aggregate::AggregateOp;
use crate::cost;
use crate::data::{DataUniverse, ItemSet};
use crate::error::MecError;
use crate::radio::NetworkProfile;
use crate::task::{DivisibleTask, HolisticTask, TaskId};
use crate::topology::{Cloud, DeviceId, MecSystem, ResultModel};
use crate::units::{Bytes, Hertz, Seconds};
use detrand::{ChaCha8Rng, SliceRandom};

/// Configuration of a holistic-task scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// RNG seed; equal configs generate equal scenarios.
    pub seed: u64,
    /// Number of base stations `k`.
    pub num_stations: usize,
    /// Devices attached to each station (`n = k · devices_per_station`).
    pub devices_per_station: usize,
    /// Total number of tasks, distributed round-robin over users.
    pub tasks_total: usize,
    /// Maximum local input size per task, in kB.
    pub max_input_kb: f64,
    /// Local input is uniform in `[min_input_frac, 1] · max_input_kb`.
    pub min_input_frac: f64,
    /// External data is uniform in `[lo, hi] ·` local size (paper: 0–0.5).
    pub external_frac_range: (f64, f64),
    /// Deadline is uniform in `[lo, hi] ·` the task's best latency.
    pub deadline_factor_range: (f64, f64),
    /// Device CPU range in GHz (paper: 1–2).
    pub device_cpu_ghz_range: (f64, f64),
    /// Station CPU in GHz (paper: 4).
    pub station_cpu_ghz: f64,
    /// Cloud CPU in GHz (paper: 2.4, Amazon T2.nano).
    pub cloud_cpu_ghz: f64,
    /// Per-device resource capacity `max_i` in MB.
    pub device_resource_mb: f64,
    /// Per-station resource capacity `max_S` in MB.
    pub station_resource_mb: f64,
    /// `C_ij = resource_factor · (α+β)`.
    pub resource_factor: f64,
    /// Probability a device uses Wi-Fi (otherwise 4G).
    pub wifi_prob: f64,
    /// Result-size model `η`.
    pub result_model: ResultModel,
    /// Operator complexity multiplier range.
    pub complexity_range: (f64, f64),
}

impl ScenarioConfig {
    /// The Section V.A defaults: 5 stations × 10 devices, 100 tasks of up
    /// to 3000 kB, η = 0.2.
    pub fn paper_defaults(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            num_stations: 5,
            devices_per_station: 10,
            tasks_total: 100,
            max_input_kb: 3000.0,
            min_input_frac: 0.25,
            external_frac_range: (0.0, 0.5),
            deadline_factor_range: (1.0, 3.0),
            device_cpu_ghz_range: (1.0, 2.0),
            station_cpu_ghz: 4.0,
            cloud_cpu_ghz: 2.4,
            device_resource_mb: 8.0,
            station_resource_mb: 200.0,
            resource_factor: 1.0,
            wifi_prob: 0.5,
            result_model: ResultModel::paper_default(),
            complexity_range: (1.0, 1.0),
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] describing the first bad
    /// field.
    pub fn validate(&self) -> Result<(), MecError> {
        let bad = |name: &'static str, reason: String| MecError::InvalidParameter { name, reason };
        if self.num_stations == 0 {
            return Err(bad("num_stations", "must be positive".into()));
        }
        if self.devices_per_station == 0 {
            return Err(bad("devices_per_station", "must be positive".into()));
        }
        if self.tasks_total == 0 {
            return Err(bad("tasks_total", "must be positive".into()));
        }
        if !(self.max_input_kb > 0.0) {
            return Err(bad(
                "max_input_kb",
                format!("{} must be positive", self.max_input_kb),
            ));
        }
        if !(0.0 < self.min_input_frac && self.min_input_frac <= 1.0) {
            return Err(bad("min_input_frac", "must be in (0, 1]".into()));
        }
        for (name, (lo, hi)) in [
            ("external_frac_range", self.external_frac_range),
            ("deadline_factor_range", self.deadline_factor_range),
            ("device_cpu_ghz_range", self.device_cpu_ghz_range),
            ("complexity_range", self.complexity_range),
        ] {
            if !(lo.is_finite() && hi.is_finite() && lo <= hi && lo >= 0.0) {
                return Err(bad(name, format!("({lo}, {hi}) is not a valid range")));
            }
        }
        if !(0.0..=1.0).contains(&self.wifi_prob) {
            return Err(bad("wifi_prob", "must be a probability".into()));
        }
        Ok(())
    }

    /// Generates the deterministic scenario for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioConfig::validate`] and topology errors.
    pub fn generate(&self) -> Result<Scenario, MecError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let system = self.generate_system(&mut rng)?;
        let tasks = self.generate_tasks(&system, &mut rng)?;
        Ok(Scenario { system, tasks })
    }

    fn generate_system(&self, rng: &mut ChaCha8Rng) -> Result<MecSystem, MecError> {
        let mut b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(self.cloud_cpu_ghz),
        });
        b.result_model(self.result_model);
        for _ in 0..self.num_stations {
            let st = b.add_station(
                Hertz::from_ghz(self.station_cpu_ghz),
                Bytes::from_mb(self.station_resource_mb),
            );
            for _ in 0..self.devices_per_station {
                let ghz = rng.gen_range(self.device_cpu_ghz_range.0..=self.device_cpu_ghz_range.1);
                let profile = if rng.gen_bool(self.wifi_prob) {
                    NetworkProfile::WiFi
                } else {
                    NetworkProfile::FourG
                };
                b.add_device(
                    st,
                    Hertz::from_ghz(ghz),
                    profile.link(),
                    Bytes::from_mb(self.device_resource_mb),
                )?;
            }
        }
        b.build()
    }

    fn generate_tasks(
        &self,
        system: &MecSystem,
        rng: &mut ChaCha8Rng,
    ) -> Result<Vec<HolisticTask>, MecError> {
        let n = system.num_devices();
        let mut per_user_counter = vec![0usize; n];
        let mut tasks = Vec::with_capacity(self.tasks_total);
        for t in 0..self.tasks_total {
            let user = t % n;
            let owner = DeviceId(user);
            let index = per_user_counter[user];
            per_user_counter[user] += 1;

            let alpha_kb = rng.gen_range(self.min_input_frac..=1.0) * self.max_input_kb;
            let (flo, fhi) = self.external_frac_range;
            let ext_frac = if fhi > flo {
                rng.gen_range(flo..=fhi)
            } else {
                flo
            };
            let beta_kb = ext_frac * alpha_kb;
            let external_source = if beta_kb * 1e3 >= 1.0 && n > 1 {
                // Uniform over the other devices; cross-cluster sources
                // arise naturally from the topology.
                let mut src = rng.gen_range(0..n - 1);
                if src >= user {
                    src += 1;
                }
                Some(DeviceId(src))
            } else {
                None
            };
            let beta_kb = if external_source.is_some() {
                beta_kb
            } else {
                0.0
            };

            let (clo, chi) = self.complexity_range;
            let complexity = if chi > clo {
                rng.gen_range(clo..=chi)
            } else {
                clo
            };

            let mut task = HolisticTask {
                id: TaskId { user, index },
                owner,
                local_size: Bytes::from_kb(alpha_kb),
                external_size: Bytes::from_kb(beta_kb),
                external_source,
                complexity,
                resource: Bytes::from_kb(self.resource_factor * (alpha_kb + beta_kb)),
                deadline: Seconds::new(1.0), // placeholder until priced below
            };
            let costs = cost::evaluate(system, &task)?;
            let (dlo, dhi) = self.deadline_factor_range;
            let factor = if dhi > dlo {
                rng.gen_range(dlo..=dhi)
            } else {
                dlo
            };
            task.deadline = costs.min_time() * factor;
            tasks.push(task);
        }
        Ok(tasks)
    }
}

/// A generated holistic-task scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The MEC system.
    pub system: MecSystem,
    /// The tasks, ordered by generation (round-robin over users).
    pub tasks: Vec<HolisticTask>,
}

/// Configuration of a divisible-task scenario (Section IV): a shared data
/// universe with overlapping per-device holdings, and aggregation tasks
/// over random item subsets.
#[derive(Debug, Clone, PartialEq)]
pub struct DivisibleScenarioConfig {
    /// Topology and physics come from the holistic config.
    pub base: ScenarioConfig,
    /// Number of data items `M` in the universe.
    pub num_items: usize,
    /// Size of each data item/block, in kB.
    pub item_kb: f64,
    /// Each device monitors a contiguous circular *region* of the item
    /// space whose width (as a fraction of the universe) is uniform in
    /// this range — regions overlap, exactly like the overlapping
    /// monitoring areas the paper motivates data sharing with.
    pub region_width: (f64, f64),
    /// Number of divisible tasks to generate.
    pub tasks_total: usize,
    /// Each task needs between these many items (inclusive).
    pub items_per_task: (usize, usize),
    /// Deadline slack multiplier over a serial local processing estimate.
    pub deadline_slack: (f64, f64),
}

impl DivisibleScenarioConfig {
    /// Defaults matching the Fig. 5–6 experiments: a 2000-item universe of
    /// 2000 kB/`num_items`-ish blocks with light replication.
    pub fn paper_defaults(seed: u64) -> DivisibleScenarioConfig {
        DivisibleScenarioConfig {
            base: ScenarioConfig::paper_defaults(seed),
            num_items: 1000,
            item_kb: 100.0,
            region_width: (0.08, 0.2),
            tasks_total: 100,
            items_per_task: (5, 30),
            deadline_slack: (2.0, 5.0),
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] describing the first bad
    /// field.
    pub fn validate(&self) -> Result<(), MecError> {
        self.base.validate()?;
        let bad = |name: &'static str, reason: String| MecError::InvalidParameter { name, reason };
        if self.num_items == 0 {
            return Err(bad("num_items", "must be positive".into()));
        }
        if !(self.item_kb > 0.0) {
            return Err(bad("item_kb", "must be positive".into()));
        }
        let (wlo, whi) = self.region_width;
        if !(wlo.is_finite() && whi.is_finite() && 0.0 < wlo && wlo <= whi && whi <= 1.0) {
            return Err(bad(
                "region_width",
                format!("({wlo}, {whi}) must satisfy 0 < lo <= hi <= 1"),
            ));
        }
        if self.tasks_total == 0 {
            return Err(bad("tasks_total", "must be positive".into()));
        }
        let (lo, hi) = self.items_per_task;
        if lo == 0 || lo > hi || hi > self.num_items {
            return Err(bad(
                "items_per_task",
                format!("({lo}, {hi}) must satisfy 0 < lo <= hi <= num_items"),
            ));
        }
        Ok(())
    }

    /// Generates the deterministic divisible scenario.
    ///
    /// # Errors
    ///
    /// Propagates validation and topology errors.
    pub fn generate(&self) -> Result<DivisibleScenario, MecError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.base.seed ^ 0x9e3779b97f4a7c15);
        let system = self.base.generate_system(&mut rng)?;
        let n = system.num_devices();
        let m = self.num_items;

        // Holdings: each device observes a contiguous circular region of
        // the item space; regions overlap, so items typically have many
        // owners near region centers and few near the edges.
        let mut holdings = vec![ItemSet::new(m); n];
        for holding in holdings.iter_mut() {
            let (wlo, whi) = self.region_width;
            let width = if whi > wlo {
                rng.gen_range(wlo..=whi)
            } else {
                wlo
            };
            let span = ((width * m as f64).round() as usize).clamp(1, m);
            let start = rng.gen_range(0..m);
            for k in 0..span {
                holding.insert(crate::data::DataItemId((start + k) % m));
            }
        }
        // Orphan fix-up: any item no region reached is handed to a random
        // device so the universe invariant (every item owned) holds.
        {
            let mut covered = ItemSet::new(m);
            for h in &holdings {
                covered.union_with(h);
            }
            for item in 0..m {
                let id = crate::data::DataItemId(item);
                if !covered.contains(id) {
                    holdings[rng.gen_range(0..n)].insert(id);
                }
            }
        }
        let item_sizes = vec![Bytes::from_kb(self.item_kb); m];
        let universe = DataUniverse::new(item_sizes, holdings)?;

        // Tasks: random owners, random item subsets, random operators.
        let slowest_cpu = system
            .devices()
            .iter()
            .map(|d| d.cpu)
            .fold(Hertz::new(f64::INFINITY), Hertz::min);
        let mut per_user_counter = vec![0usize; n];
        let mut tasks = Vec::with_capacity(self.tasks_total);
        for t in 0..self.tasks_total {
            let user = t % n;
            per_user_counter[user] += 1;
            let (ilo, ihi) = self.items_per_task;
            let count = rng.gen_range(ilo..=ihi);
            let mut pool: Vec<usize> = (0..m).collect();
            pool.shuffle(&mut rng);
            let items =
                ItemSet::from_ids(m, pool.into_iter().take(count).map(crate::data::DataItemId));
            let op = *AggregateOp::ALL.choose(&mut rng).expect("nonempty");
            let input = universe.set_size(&items);
            let serial_local = system.cycle_model.cycles(input, 1.0) / slowest_cpu;
            let (slo, shi) = self.deadline_slack;
            let slack = if shi > slo {
                rng.gen_range(slo..=shi)
            } else {
                slo
            };
            tasks.push(DivisibleTask {
                id: TaskId {
                    user,
                    index: per_user_counter[user] - 1,
                },
                owner: DeviceId(user),
                op,
                items,
                complexity: 1.0,
                resource: input,
                deadline: serial_local * slack,
            });
        }
        Ok(DivisibleScenario {
            system,
            universe,
            tasks,
        })
    }
}

/// A generated divisible-task scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DivisibleScenario {
    /// The MEC system.
    pub system: MecSystem,
    /// The shared data universe with per-device holdings.
    pub universe: DataUniverse,
    /// The divisible tasks.
    pub tasks: Vec<DivisibleTask>,
}

impl DivisibleScenario {
    /// The union of all tasks' required items — the paper's `D`.
    pub fn required_universe(&self) -> ItemSet {
        let mut d = ItemSet::new(self.universe.num_items());
        for t in &self.tasks {
            d.union_with(&t.items);
        }
        d
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(ScenarioConfig {
    seed,
    num_stations,
    devices_per_station,
    tasks_total,
    max_input_kb,
    min_input_frac,
    external_frac_range,
    deadline_factor_range,
    device_cpu_ghz_range,
    station_cpu_ghz,
    cloud_cpu_ghz,
    device_resource_mb,
    station_resource_mb,
    resource_factor,
    wifi_prob,
    result_model,
    complexity_range,
});
djson::impl_json_struct!(Scenario { system, tasks });
djson::impl_json_struct!(DivisibleScenarioConfig {
    base,
    num_items,
    item_kb,
    region_width,
    tasks_total,
    items_per_task,
    deadline_slack,
});
djson::impl_json_struct!(DivisibleScenario {
    system,
    universe,
    tasks
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = ScenarioConfig::paper_defaults(7).generate().unwrap();
        let b = ScenarioConfig::paper_defaults(7).generate().unwrap();
        assert_eq!(a, b);
        let c = ScenarioConfig::paper_defaults(8).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn paper_defaults_shape() {
        let s = ScenarioConfig::paper_defaults(1).generate().unwrap();
        assert_eq!(s.system.num_stations(), 5);
        assert_eq!(s.system.num_devices(), 50);
        assert_eq!(s.tasks.len(), 100);
        for t in &s.tasks {
            t.validate().unwrap();
            assert!(t.local_size.as_kb() <= 3000.0 + 1e-9);
            assert!(t.external_size.value() <= 0.5 * t.local_size.value() + 1e-6);
        }
    }

    #[test]
    fn deadlines_are_achievable_by_construction() {
        let s = ScenarioConfig::paper_defaults(3).generate().unwrap();
        for t in &s.tasks {
            let costs = cost::evaluate(&s.system, t).unwrap();
            assert!(
                costs.min_time() <= t.deadline,
                "{}: best {} > deadline {}",
                t.id,
                costs.min_time(),
                t.deadline
            );
        }
    }

    #[test]
    fn device_cpus_respect_configured_range() {
        let s = ScenarioConfig::paper_defaults(11).generate().unwrap();
        for d in s.system.devices() {
            let ghz = d.cpu.as_ghz();
            assert!((1.0..=2.0).contains(&ghz), "cpu {ghz} GHz out of range");
        }
    }

    #[test]
    fn tasks_spread_round_robin() {
        let mut cfg = ScenarioConfig::paper_defaults(5);
        cfg.tasks_total = 101; // one device gets an extra task
        let s = cfg.generate().unwrap();
        let mut counts = vec![0usize; s.system.num_devices()];
        for t in &s.tasks {
            counts[t.owner.0] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "round-robin keeps loads within 1");
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut cfg = ScenarioConfig::paper_defaults(1);
        cfg.tasks_total = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ScenarioConfig::paper_defaults(1);
        cfg.wifi_prob = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = ScenarioConfig::paper_defaults(1);
        cfg.external_frac_range = (0.5, 0.1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn divisible_scenario_covers_universe() {
        let cfg = DivisibleScenarioConfig::paper_defaults(9);
        let s = cfg.generate().unwrap();
        assert_eq!(s.universe.num_items(), cfg.num_items);
        assert_eq!(s.tasks.len(), cfg.tasks_total);
        for t in &s.tasks {
            t.validate().unwrap();
        }
        // Every required item is owned by somebody (universe invariant).
        let d = s.required_universe();
        for item in d.iter() {
            assert!(!s.universe.owners(item).is_empty());
        }
    }

    #[test]
    fn divisible_generation_is_deterministic() {
        let a = DivisibleScenarioConfig::paper_defaults(2)
            .generate()
            .unwrap();
        let b = DivisibleScenarioConfig::paper_defaults(2)
            .generate()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn divisible_validation_rejects_bad_ranges() {
        let mut cfg = DivisibleScenarioConfig::paper_defaults(1);
        cfg.items_per_task = (0, 5);
        assert!(cfg.validate().is_err());
        let mut cfg = DivisibleScenarioConfig::paper_defaults(1);
        cfg.items_per_task = (10, 5);
        assert!(cfg.validate().is_err());
        let mut cfg = DivisibleScenarioConfig::paper_defaults(1);
        cfg.num_items = 0;
        assert!(cfg.validate().is_err());
    }
}

/// Poisson arrival times: `n` cumulative exponential inter-arrival gaps
/// at `rate_per_second`, deterministic in the seed. Feed these to
/// [`crate::sim::simulate_with_arrivals`] for open-loop workloads instead
/// of the paper's all-at-once batch.
///
/// # Errors
///
/// Returns [`MecError::InvalidParameter`] for a non-positive rate.
pub fn poisson_arrivals(
    seed: u64,
    n: usize,
    rate_per_second: f64,
) -> Result<Vec<Seconds>, MecError> {
    if !(rate_per_second.is_finite() && rate_per_second > 0.0) {
        return Err(MecError::InvalidParameter {
            name: "rate_per_second",
            reason: format!("{rate_per_second} must be positive"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x706f6973_736f6e21);
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / rate_per_second;
        out.push(Seconds::new(t));
    }
    Ok(out)
}

#[cfg(test)]
mod arrival_tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_sorted_and_deterministic() {
        let a = poisson_arrivals(5, 200, 2.0).unwrap();
        let b = poisson_arrivals(5, 200, 2.0).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // Mean inter-arrival ~ 1/rate: loose statistical check.
        let mean_gap = a.last().unwrap().value() / a.len() as f64;
        assert!((mean_gap - 0.5).abs() < 0.15, "mean gap {mean_gap}");
    }

    #[test]
    fn poisson_rejects_bad_rate() {
        assert!(poisson_arrivals(1, 10, 0.0).is_err());
        assert!(poisson_arrivals(1, 10, f64::NAN).is_err());
    }
}
