//! # mec-sim — a Data-Shared Mobile Edge Computing system substrate
//!
//! Everything "system" about the ICDCS 2019 paper *Task Assignment
//! Algorithms in Data Shared Mobile Edge Computing Systems* lives here:
//! the three-level topology of Fig. 1, the computation and transmission
//! cost models of Section II, the data-sharing model of Section IV, the
//! Section V.A experiment settings as seeded workload generators, and a
//! discrete-event executor that runs assignments with or without resource
//! contention.
//!
//! The companion crate `dsmec-core` implements the paper's assignment
//! *algorithms* on top of this substrate.
//!
//! ```
//! use mec_sim::workload::ScenarioConfig;
//! use mec_sim::cost::evaluate;
//! use mec_sim::task::ExecutionSite;
//!
//! // A Section V.A scenario: 5 stations × 10 devices, 100 tasks.
//! let scenario = ScenarioConfig::paper_defaults(42).generate()?;
//! let costs = evaluate(&scenario.system, &scenario.tasks[0])?;
//! for (site, c) in costs.iter() {
//!     println!("{site}: {:.3} s, {:.3} J", c.time.value(), c.energy.value());
//! }
//! assert!(costs.at(ExecutionSite::Cloud).time > costs.at(ExecutionSite::Device).time);
//! # Ok::<(), mec_sim::MecError>(())
//! ```

// `!(x > 0.0)`-style guards are deliberate NaN catches in validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod arena;
pub mod backhaul;
pub mod battery;
pub mod compute;
pub mod cost;
pub mod data;
pub mod error;
pub mod mobility;
pub mod radio;
pub mod sim;
pub mod stream;
pub mod task;
pub mod topology;
pub mod transfer;
pub mod units;
pub mod workload;

pub use error::MecError;
pub use task::{ExecutionSite, HolisticTask, TaskId};
pub use topology::{DeviceId, MecSystem, StationId};
pub use units::{Bytes, Hertz, Joules, Seconds};
