//! Radio transfer primitives: the time and energy of moving data between
//! a mobile device and its base station (`e_i^(T)`, `e_i^(R)` and the
//! rate terms of Section II.B).
//!
//! The energy of a transfer is the radio's power draw for the duration of
//! the transfer: `e^(T)(X) = P^(T) · X / r^(U)` and
//! `e^(R)(X) = P^(R) · X / r^(D)`.

use crate::radio::RadioLink;
use crate::units::{Bytes, Joules, Seconds};

/// Time for a device to upload `size` bytes to its station.
pub fn upload_time(link: &RadioLink, size: Bytes) -> Seconds {
    size / link.upload
}

/// Energy a device spends uploading `size` bytes (`e^(T)(X)`).
pub fn upload_energy(link: &RadioLink, size: Bytes) -> Joules {
    link.tx_power * upload_time(link, size)
}

/// Time for a device to download `size` bytes from its station.
pub fn download_time(link: &RadioLink, size: Bytes) -> Seconds {
    size / link.download
}

/// Energy a device spends downloading `size` bytes (`e^(R)(X)`).
pub fn download_energy(link: &RadioLink, size: Bytes) -> Joules {
    link.rx_power * download_time(link, size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::NetworkProfile;

    #[test]
    fn four_g_upload_of_one_megabyte() {
        let link = NetworkProfile::FourG.link();
        // 1 MB at 5.85 Mbps = 8e6 bits / 5.85e6 bps ≈ 1.3675 s.
        let t = upload_time(&link, Bytes::from_mb(1.0));
        assert!((t.value() - 8.0 / 5.85).abs() < 1e-9);
        // Energy = 7.32 W × t.
        let e = upload_energy(&link, Bytes::from_mb(1.0));
        assert!((e.value() - 7.32 * 8.0 / 5.85).abs() < 1e-9);
    }

    #[test]
    fn download_is_cheaper_than_upload_per_byte() {
        // Receive power is far below transmit power and downlink is
        // faster, so downloading X costs less energy than uploading X.
        for p in NetworkProfile::ALL {
            let link = p.link();
            let x = Bytes::from_kb(500.0);
            assert!(download_energy(&link, x) < upload_energy(&link, x), "{p}");
        }
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let link = NetworkProfile::WiFi.link();
        assert_eq!(upload_time(&link, Bytes::ZERO), Seconds::ZERO);
        assert_eq!(download_energy(&link, Bytes::ZERO), Joules::ZERO);
    }

    #[test]
    fn linearity_in_size() {
        let link = NetworkProfile::WiFi.link();
        let e1 = upload_energy(&link, Bytes::from_kb(100.0));
        let e2 = upload_energy(&link, Bytes::from_kb(200.0));
        assert!((e2.value() - 2.0 * e1.value()).abs() < 1e-12);
    }
}
