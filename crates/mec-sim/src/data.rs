//! Data-sharing model: the distributed datasets that make this a
//! *Data-Shared* MEC system.
//!
//! Section IV of the paper works over a universe `D = {d₁, …, d_M}` of
//! data items (or blocks, after the caching granularity of \[19\]), with
//! each mobile device `i` owning a subset `D_i`; monitoring regions
//! overlap, so the `D_i` are generally *not* disjoint. [`ItemSet`] is a
//! compact bitset over item indices, and [`DataUniverse`] carries item
//! sizes plus per-device ownership.

use crate::error::MecError;
use crate::topology::DeviceId;
use crate::units::Bytes;
use std::fmt;

/// Identifier of one data item: an index into the universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataItemId(pub usize);

impl fmt::Display for DataItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A set of data items, stored as a fixed-capacity bitset.
///
/// All set algebra the DTA algorithms need (`∩`, `∪`, `∖`, cardinality,
/// subset/disjointness tests) runs word-parallel.
///
/// # Examples
///
/// ```
/// use mec_sim::data::{DataItemId, ItemSet};
///
/// let mut a = ItemSet::new(100);
/// a.insert(DataItemId(3));
/// a.insert(DataItemId(64));
/// let mut b = ItemSet::new(100);
/// b.insert(DataItemId(64));
/// assert_eq!(a.intersection(&b).len(), 1);
/// assert!(b.is_subset_of(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ItemSet {
    capacity: usize,
    words: Vec<u64>,
}

impl fmt::Debug for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ItemSet({} of {}: {{", self.len(), self.capacity)?;
        for (k, id) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            if k >= 16 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}})")
    }
}

impl ItemSet {
    /// Creates an empty set able to hold items `0..capacity`.
    pub fn new(capacity: usize) -> ItemSet {
        ItemSet {
            capacity,
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Creates a set containing every item `0..capacity`.
    pub fn full(capacity: usize) -> ItemSet {
        let mut s = ItemSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Builds a set from item ids.
    ///
    /// # Panics
    ///
    /// Panics if an id is `>= capacity`.
    pub fn from_ids<I: IntoIterator<Item = DataItemId>>(capacity: usize, ids: I) -> ItemSet {
        let mut s = ItemSet::new(capacity);
        for id in ids {
            s.insert(id);
        }
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Capacity (size of the universe the set indexes into).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an item; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id.0 >= capacity`.
    pub fn insert(&mut self, id: DataItemId) -> bool {
        assert!(
            id.0 < self.capacity,
            "item {id} beyond capacity {}",
            self.capacity
        );
        let (w, b) = (id.0 / 64, id.0 % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes an item; returns whether it was present.
    pub fn remove(&mut self, id: DataItemId) -> bool {
        if id.0 >= self.capacity {
            return false;
        }
        let (w, b) = (id.0 / 64, id.0 % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    pub fn contains(&self, id: DataItemId) -> bool {
        if id.0 >= self.capacity {
            return false;
        }
        self.words[id.0 / 64] & (1 << (id.0 % 64)) != 0
    }

    /// Number of items in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∩ other` as a new set.
    ///
    /// # Panics
    ///
    /// Panics when capacities differ.
    pub fn intersection(&self, other: &ItemSet) -> ItemSet {
        self.zip_words(other, |a, b| a & b)
    }

    /// `self ∪ other` as a new set.
    ///
    /// # Panics
    ///
    /// Panics when capacities differ.
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        self.zip_words(other, |a, b| a | b)
    }

    /// `self ∖ other` as a new set.
    ///
    /// # Panics
    ///
    /// Panics when capacities differ.
    pub fn difference(&self, other: &ItemSet) -> ItemSet {
        self.zip_words(other, |a, b| a & !b)
    }

    /// Removes every item of `other` from `self` in place.
    ///
    /// # Panics
    ///
    /// Panics when capacities differ.
    pub fn subtract(&mut self, other: &ItemSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Adds every item of `other` to `self` in place.
    ///
    /// # Panics
    ///
    /// Panics when capacities differ.
    pub fn union_with(&mut self, other: &ItemSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// `|self ∩ other|` without allocating.
    ///
    /// # Panics
    ///
    /// Panics when capacities differ.
    pub fn intersection_len(&self, other: &ItemSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True iff every item of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics when capacities differ.
    pub fn is_subset_of(&self, other: &ItemSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// True iff the sets share no item.
    ///
    /// # Panics
    ///
    /// Panics when capacities differ.
    pub fn is_disjoint(&self, other: &ItemSet) -> bool {
        self.intersection_len(other) == 0
    }

    /// The backing bit words, least-significant item first. Word `w`
    /// covers items `64·w .. 64·w+63`; bits beyond `capacity` are zero.
    /// Exposed so flat scans (e.g. [`HoldingsMatrix`]) can run
    /// word-parallel without going through per-item iteration.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over the member ids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    fn zip_words(&self, other: &ItemSet, f: impl Fn(u64, u64) -> u64) -> ItemSet {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let words = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        ItemSet {
            capacity: self.capacity,
            words,
        }
    }
}

/// Ascending iterator over an [`ItemSet`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a ItemSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = DataItemId;

    fn next(&mut self) -> Option<DataItemId> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(DataItemId(self.word * 64 + b));
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a ItemSet {
    type Item = DataItemId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<DataItemId> for ItemSet {
    /// Collects ids into a set sized to the largest id seen.
    fn from_iter<I: IntoIterator<Item = DataItemId>>(iter: I) -> ItemSet {
        let ids: Vec<DataItemId> = iter.into_iter().collect();
        let capacity = ids.iter().map(|i| i.0 + 1).max().unwrap_or(0);
        ItemSet::from_ids(capacity, ids)
    }
}

/// The shared data universe `D` plus every device's holdings `D_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct DataUniverse {
    item_sizes: Vec<Bytes>,
    holdings: Vec<ItemSet>,
}

impl DataUniverse {
    /// Builds a universe from per-item sizes and per-device holdings
    /// (indexed by `DeviceId.0`).
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] when a holding's capacity
    /// disagrees with the number of items, an item size is non-positive,
    /// or some item is owned by no device (the union of holdings must
    /// cover the universe or tasks could never be served).
    pub fn new(item_sizes: Vec<Bytes>, holdings: Vec<ItemSet>) -> Result<DataUniverse, MecError> {
        let m = item_sizes.len();
        if let Some(bad) = item_sizes.iter().find(|s| !(s.value() > 0.0)) {
            return Err(MecError::InvalidParameter {
                name: "item_sizes",
                reason: format!("item size {bad} must be positive"),
            });
        }
        for (i, h) in holdings.iter().enumerate() {
            if h.capacity() != m {
                return Err(MecError::InvalidParameter {
                    name: "holdings",
                    reason: format!(
                        "device {i} holding capacity {} != universe size {m}",
                        h.capacity()
                    ),
                });
            }
        }
        let mut covered = ItemSet::new(m);
        for h in &holdings {
            covered.union_with(h);
        }
        if covered.len() != m {
            return Err(MecError::InvalidParameter {
                name: "holdings",
                reason: format!("{} of {m} items are owned by no device", m - covered.len()),
            });
        }
        Ok(DataUniverse {
            item_sizes,
            holdings,
        })
    }

    /// Number of items `M` in the universe.
    pub fn num_items(&self) -> usize {
        self.item_sizes.len()
    }

    /// Number of devices with holdings.
    pub fn num_devices(&self) -> usize {
        self.holdings.len()
    }

    /// Size of one item.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn item_size(&self, id: DataItemId) -> Bytes {
        self.item_sizes[id.0]
    }

    /// Total size of a set of items.
    pub fn set_size(&self, set: &ItemSet) -> Bytes {
        set.iter().map(|id| self.item_size(id)).sum()
    }

    /// The holdings `D_i` of one device.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::UnknownDevice`] for an out-of-range device.
    pub fn holdings(&self, device: DeviceId) -> Result<&ItemSet, MecError> {
        self.holdings
            .get(device.0)
            .ok_or(MecError::UnknownDevice(device))
    }

    /// `UD_i = D ∩ D_i` for a required set `D` (paper Section IV.A).
    ///
    /// # Errors
    ///
    /// Returns [`MecError::UnknownDevice`] for an out-of-range device.
    pub fn usable(&self, device: DeviceId, required: &ItemSet) -> Result<ItemSet, MecError> {
        Ok(self.holdings(device)?.intersection(required))
    }

    /// Devices owning a given item, ascending.
    ///
    /// One call scans every device's bitset; algorithms that look owners
    /// up in a loop should build an [`OwnersIndex`] once instead.
    pub fn owners(&self, id: DataItemId) -> Vec<DeviceId> {
        self.holdings
            .iter()
            .enumerate()
            .filter(|(_, h)| h.contains(id))
            .map(|(i, _)| DeviceId(i))
            .collect()
    }
}

/// Word-major holdings matrix: word `w` of *every* device's holdings laid
/// out contiguously (`words[w·n + i]` for device `i`), so a scan over all
/// devices for one item word is a cache-linear pass (DESIGN.md §11). The
/// DTA greedy rounds seed and maintain per-device usable counts through
/// this layout instead of re-intersecting every holdings bitset per
/// round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoldingsMatrix {
    num_devices: usize,
    words_per_set: usize,
    words: Vec<u64>,
}

impl HoldingsMatrix {
    /// Transposes a universe's holdings into word-major order.
    pub fn build(universe: &DataUniverse) -> HoldingsMatrix {
        let n = universe.num_devices();
        let words_per_set = universe.num_items().div_ceil(64);
        let mut words = vec![0u64; words_per_set * n];
        for (i, h) in universe.holdings.iter().enumerate() {
            for (w, &word) in h.words().iter().enumerate() {
                words[w * n + i] = word;
            }
        }
        HoldingsMatrix {
            num_devices: n,
            words_per_set,
            words,
        }
    }

    /// Number of devices (columns).
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Words per holdings set (rows).
    pub fn words_per_set(&self) -> usize {
        self.words_per_set
    }

    /// Word `w` of every device's holdings, indexed by device id.
    ///
    /// # Panics
    ///
    /// Panics if `w >= words_per_set`.
    pub fn word_row(&self, w: usize) -> &[u64] {
        &self.words[w * self.num_devices..(w + 1) * self.num_devices]
    }

    /// `|D_i ∩ set|` for every device: one contiguous row pass per
    /// nonzero word of `set`.
    ///
    /// # Panics
    ///
    /// Panics when `set` was built for a different universe (word count
    /// mismatch), mirroring the [`ItemSet`] capacity assertions.
    pub fn usable_counts(&self, set: &ItemSet) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_devices];
        self.fold_counts(&mut counts, set, false);
        counts
    }

    /// Decrements `counts[i]` by `|D_i ∩ removed|` for every device —
    /// the exact drop in usable counts when `removed ⊆ residual` leaves
    /// the residual set.
    ///
    /// # Panics
    ///
    /// Panics on word-count mismatch with the universe, or (in debug
    /// builds, via overflow checks) when a count underflows — i.e. when
    /// `removed` was not a subset of the residual the counts track.
    pub fn subtract_counts(&self, counts: &mut [u32], removed: &ItemSet) {
        self.fold_counts(counts, removed, true);
    }

    fn fold_counts(&self, counts: &mut [u32], set: &ItemSet, subtract: bool) {
        assert_eq!(
            set.words().len(),
            self.words_per_set,
            "capacity mismatch between item set and holdings matrix"
        );
        assert_eq!(counts.len(), self.num_devices, "one count per device");
        for (w, &sw) in set.words().iter().enumerate() {
            if sw == 0 {
                continue;
            }
            for (c, &hw) in counts.iter_mut().zip(self.word_row(w)) {
                let overlap = (hw & sw).count_ones();
                if subtract {
                    *c -= overlap;
                } else {
                    *c += overlap;
                }
            }
        }
    }
}

/// CSR index `item → owning devices` (ascending device id per item),
/// replacing the `O(devices × words)` scan of [`DataUniverse::owners`]
/// for algorithms that look owners up inside a loop (DESIGN.md §11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnersIndex {
    offsets: Vec<u32>,
    owners: Vec<u32>,
}

impl OwnersIndex {
    /// Builds the index in two passes (count, then fill); device ids per
    /// item come out ascending because devices are scanned in id order.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::IndexOverflow`] when device count or total
    /// ownership pairs exceed the `u32` handle space.
    pub fn build(universe: &DataUniverse) -> Result<OwnersIndex, MecError> {
        let m = universe.num_items();
        let pairs: usize = universe.holdings.iter().map(ItemSet::len).sum();
        crate::arena::to_u32("ownership pair count", pairs)?;
        let mut offsets = vec![0u32; m + 1];
        for h in &universe.holdings {
            for id in h.iter() {
                offsets[id.0 + 1] += 1;
            }
        }
        for w in 1..=m {
            offsets[w] += offsets[w - 1];
        }
        let mut cursor: Vec<u32> = offsets[..m].to_vec();
        let mut owners = vec![0u32; pairs];
        for (i, h) in universe.holdings.iter().enumerate() {
            let dev = crate::arena::to_u32("device index", i)?;
            for id in h.iter() {
                owners[cursor[id.0] as usize] = dev;
                cursor[id.0] += 1;
            }
        }
        Ok(OwnersIndex { offsets, owners })
    }

    /// Devices owning `id`, ascending; empty for out-of-range ids.
    pub fn owners(&self, id: DataItemId) -> &[u32] {
        match (self.offsets.get(id.0), self.offsets.get(id.0 + 1)) {
            (Some(&a), Some(&b)) => &self.owners[a as usize..b as usize],
            _ => &[],
        }
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_newtype!(DataItemId(usize));
djson::impl_json_struct!(ItemSet { capacity, words });
djson::impl_json_struct!(DataUniverse {
    item_sizes,
    holdings
});

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<DataItemId> {
        v.iter().map(|&i| DataItemId(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = ItemSet::new(130);
        assert!(s.insert(DataItemId(0)));
        assert!(s.insert(DataItemId(129)));
        assert!(!s.insert(DataItemId(0)), "reinsert reports false");
        assert!(s.contains(DataItemId(129)));
        assert!(!s.contains(DataItemId(64)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(DataItemId(0)));
        assert!(!s.remove(DataItemId(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = ItemSet::from_ids(10, ids(&[1, 2, 3, 7]));
        let b = ItemSet::from_ids(10, ids(&[3, 7, 9]));
        assert_eq!(a.intersection(&b).len(), 2);
        assert_eq!(a.union(&b).len(), 5);
        assert_eq!(a.difference(&b).len(), 2);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_subset_of(&b));
        assert!(a.intersection(&b).is_subset_of(&a));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn full_and_trim() {
        let f = ItemSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(DataItemId(69)));
        assert!(!f.contains(DataItemId(70)));
    }

    #[test]
    fn iterator_ascends() {
        let s = ItemSet::from_ids(200, ids(&[150, 3, 64, 65]));
        let got: Vec<usize> = s.iter().map(|d| d.0).collect();
        assert_eq!(got, vec![3, 64, 65, 150]);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: ItemSet = ids(&[5, 2]).into_iter().collect();
        assert_eq!(s.capacity(), 6);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn insert_out_of_range_panics() {
        ItemSet::new(4).insert(DataItemId(4));
    }

    #[test]
    fn universe_validates_coverage() {
        let sizes = vec![Bytes::new(10.0); 4];
        // Item 3 owned by nobody → error.
        let holdings = vec![
            ItemSet::from_ids(4, ids(&[0, 1])),
            ItemSet::from_ids(4, ids(&[1, 2])),
        ];
        assert!(DataUniverse::new(sizes.clone(), holdings).is_err());

        let holdings = vec![
            ItemSet::from_ids(4, ids(&[0, 1, 3])),
            ItemSet::from_ids(4, ids(&[1, 2])),
        ];
        let u = DataUniverse::new(sizes, holdings).unwrap();
        assert_eq!(u.num_items(), 4);
        assert_eq!(u.owners(DataItemId(1)), vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(
            u.set_size(&ItemSet::from_ids(4, ids(&[0, 2]))),
            Bytes::new(20.0)
        );
    }

    #[test]
    fn usable_intersects_holdings() {
        let sizes = vec![Bytes::new(1.0); 5];
        let holdings = vec![
            ItemSet::from_ids(5, ids(&[0, 1, 2])),
            ItemSet::from_ids(5, ids(&[2, 3, 4])),
        ];
        let u = DataUniverse::new(sizes, holdings).unwrap();
        let required = ItemSet::from_ids(5, ids(&[1, 2, 3]));
        assert_eq!(u.usable(DeviceId(0), &required).unwrap().len(), 2);
        assert_eq!(u.usable(DeviceId(1), &required).unwrap().len(), 2);
        assert!(u.usable(DeviceId(7), &required).is_err());
    }

    #[test]
    fn holdings_matrix_counts_match_per_device_intersections() {
        let sizes = vec![Bytes::new(1.0); 130];
        let holdings = vec![
            ItemSet::from_ids(130, ids(&[0, 63, 64, 129])),
            ItemSet::from_ids(130, (0..130).map(DataItemId)),
            ItemSet::from_ids(130, ids(&[64, 65])),
        ];
        let u = DataUniverse::new(sizes, holdings.clone()).unwrap();
        let matrix = HoldingsMatrix::build(&u);
        assert_eq!(matrix.num_devices(), 3);
        assert_eq!(matrix.words_per_set(), 3);
        let required = ItemSet::from_ids(130, ids(&[0, 64, 65, 128]));
        let counts = matrix.usable_counts(&required);
        for (i, h) in holdings.iter().enumerate() {
            assert_eq!(counts[i] as usize, h.intersection_len(&required));
        }
        // Subtracting a subset of the tracked set keeps counts exact.
        let mut counts = counts;
        let removed = ItemSet::from_ids(130, ids(&[64, 128]));
        matrix.subtract_counts(&mut counts, &removed);
        let residual = required.difference(&removed);
        for (i, h) in holdings.iter().enumerate() {
            assert_eq!(counts[i] as usize, h.intersection_len(&residual));
        }
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn holdings_matrix_rejects_foreign_sets() {
        let sizes = vec![Bytes::new(1.0); 4];
        let u = DataUniverse::new(sizes, vec![ItemSet::full(4)]).unwrap();
        HoldingsMatrix::build(&u).usable_counts(&ItemSet::new(130));
    }

    #[test]
    fn owners_index_matches_owners_scan() {
        let sizes = vec![Bytes::new(1.0); 70];
        let holdings = vec![
            ItemSet::from_ids(70, ids(&[0, 5, 69])),
            ItemSet::from_ids(70, (0..70).map(DataItemId)),
            ItemSet::from_ids(70, ids(&[5, 6])),
        ];
        let u = DataUniverse::new(sizes, holdings).unwrap();
        let index = OwnersIndex::build(&u).unwrap();
        for item in 0..70 {
            let id = DataItemId(item);
            let via_scan: Vec<u32> = u.owners(id).iter().map(|d| d.0 as u32).collect();
            assert_eq!(index.owners(id), via_scan.as_slice(), "item {item}");
        }
        assert!(index.owners(DataItemId(70)).is_empty(), "out of range");
    }

    #[test]
    fn universe_rejects_bad_sizes_and_capacity() {
        assert!(DataUniverse::new(vec![Bytes::new(0.0)], vec![ItemSet::full(1)]).is_err());
        assert!(
            DataUniverse::new(vec![Bytes::new(1.0)], vec![ItemSet::new(2)]).is_err(),
            "capacity mismatch must be rejected"
        );
    }
}
