//! Error types for the `mec-sim` crate.

use crate::topology::{DeviceId, StationId};
use std::error::Error;
use std::fmt;

/// Errors raised while assembling or querying a MEC system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MecError {
    /// Referenced a device that does not exist.
    UnknownDevice(DeviceId),
    /// Referenced a base station that does not exist.
    UnknownStation(StationId),
    /// A system must contain at least one base station.
    NoStations,
    /// A system must contain at least one mobile device.
    NoDevices,
    /// A workload parameter was out of its valid range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// An entity index does not fit the arena's `u32` handle space
    /// (DESIGN.md §11).
    IndexOverflow {
        /// Which index space overflowed.
        what: &'static str,
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for MecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MecError::UnknownDevice(id) => write!(f, "unknown device {id}"),
            MecError::UnknownStation(id) => write!(f, "unknown base station {id}"),
            MecError::NoStations => write!(f, "a MEC system needs at least one base station"),
            MecError::NoDevices => write!(f, "a MEC system needs at least one mobile device"),
            MecError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MecError::IndexOverflow { what, index } => {
                write!(f, "{what} {index} does not fit a u32 arena handle")
            }
        }
    }
}

impl Error for MecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = MecError::UnknownDevice(DeviceId(3));
        assert!(e.to_string().contains("device"));
        let e = MecError::InvalidParameter {
            name: "tasks_total",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("tasks_total"));
    }
}
