//! Backhaul model: the wired links between base stations (`t_{B,B}`,
//! `e_{B,B}`) and between a base station and the remote cloud (`t_{B,C}`,
//! `e_{B,C}`).
//!
//! The paper fixes the propagation delays (15 ms between base stations
//! after \[15\], 250 ms to the cloud after the Amazon measurement \[16\]) and
//! asserts the orderings `t_{B,C} ≫ t_{B,B}` and `e_{B,C} > e_{B,B}`; the
//! per-byte terms below make both transfers size-sensitive while
//! preserving those orderings.

use crate::units::{Bytes, BytesPerSecond, Joules, Seconds};

/// One wired link: fixed latency plus size-proportional serialization time
/// and energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackhaulLink {
    /// Fixed one-way latency.
    pub latency: Seconds,
    /// Serialization bandwidth.
    pub bandwidth: BytesPerSecond,
    /// Energy drawn per transferred byte (J/B), covering switches and
    /// amplifiers along the path.
    pub energy_per_byte: f64,
}

impl BackhaulLink {
    /// Builds a link.
    ///
    /// # Panics
    ///
    /// Panics if latency is negative, bandwidth is not positive or the
    /// energy coefficient is negative.
    pub fn new(latency: Seconds, bandwidth: BytesPerSecond, energy_per_byte: f64) -> Self {
        assert!(latency.value() >= 0.0, "latency must be nonnegative");
        assert!(bandwidth.value() > 0.0, "bandwidth must be positive");
        assert!(
            energy_per_byte >= 0.0,
            "energy per byte must be nonnegative"
        );
        BackhaulLink {
            latency,
            bandwidth,
            energy_per_byte,
        }
    }

    /// Time to move `size` bytes across the link: `latency + size/bw`.
    pub fn transfer_time(&self, size: Bytes) -> Seconds {
        self.latency + size / self.bandwidth
    }

    /// Energy to move `size` bytes across the link.
    pub fn transfer_energy(&self, size: Bytes) -> Joules {
        Joules::new(self.energy_per_byte * size.value())
    }
}

/// The backhaul of a whole MEC deployment: one station-to-station link
/// model and one station-to-cloud link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backhaul {
    /// Link between any two base stations (`t_{B,B}`, `e_{B,B}`).
    pub station_to_station: BackhaulLink,
    /// Link from any base station to the cloud (`t_{B,C}`, `e_{B,C}`).
    pub station_to_cloud: BackhaulLink,
}

impl Backhaul {
    /// The paper's Section V.A parameters: 15 ms between base stations
    /// \[15\] and 250 ms to the cloud (Amazon T2.nano ping, \[16\]), with
    /// per-byte terms chosen to preserve `e_{B,C} > e_{B,B}`.
    pub fn paper_defaults() -> Backhaul {
        Backhaul {
            station_to_station: BackhaulLink::new(
                Seconds::from_ms(15.0),
                BytesPerSecond::from_mbps(1000.0),
                5e-8,
            ),
            station_to_cloud: BackhaulLink::new(
                Seconds::from_ms(250.0),
                BytesPerSecond::from_mbps(150.0),
                5e-7,
            ),
        }
    }
}

impl Default for Backhaul {
    fn default() -> Self {
        Backhaul::paper_defaults()
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(BackhaulLink {
    latency,
    bandwidth,
    energy_per_byte
});
djson::impl_json_struct!(Backhaul {
    station_to_station,
    station_to_cloud
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_is_slower_and_hungrier_than_peer_stations() {
        let b = Backhaul::paper_defaults();
        let x = Bytes::from_mb(3.0);
        assert!(b.station_to_cloud.transfer_time(x) > b.station_to_station.transfer_time(x));
        assert!(b.station_to_cloud.transfer_energy(x) > b.station_to_station.transfer_energy(x));
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let b = Backhaul::paper_defaults();
        assert_eq!(
            b.station_to_station.transfer_time(Bytes::ZERO),
            Seconds::from_ms(15.0)
        );
        assert_eq!(
            b.station_to_station.transfer_energy(Bytes::ZERO),
            Joules::ZERO
        );
    }

    #[test]
    fn transfer_time_is_affine_in_size() {
        let l = BackhaulLink::new(Seconds::from_ms(10.0), BytesPerSecond::new(1000.0), 1e-9);
        let t1 = l.transfer_time(Bytes::new(1000.0));
        let t2 = l.transfer_time(Bytes::new(2000.0));
        assert!((t2.value() - t1.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rejects_zero_bandwidth() {
        BackhaulLink::new(Seconds::ZERO, BytesPerSecond::new(0.0), 0.0);
    }
}
