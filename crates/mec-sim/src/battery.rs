//! Battery model: per-device energy attribution and fleet lifetime.
//!
//! The paper's Section IV.B motivates DTA-Number with "saving energy for
//! the majority of mobile devices". The system-level energy metric cannot
//! see that distinction — it needs *per-device* attribution: who paid for
//! each upload, download and computation. [`attribute_energy`] decomposes
//! a task's energy onto the devices involved (backhaul energy is
//! infrastructure and charged to nobody), and [`BatteryFleet`] folds
//! attributions into remaining charge and lifetime statistics.

use crate::error::MecError;
use crate::task::{ExecutionSite, HolisticTask};
use crate::topology::{DeviceId, MecSystem};
use crate::transfer;
use crate::units::Joules;

/// Energy one device spends on one task execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceShare {
    /// The paying device.
    pub device: DeviceId,
    /// Battery energy it spends.
    pub energy: Joules,
}

/// Splits `E_ijl` onto the devices that pay it: the external-data source
/// pays its upload, the owner pays its radio traffic and (for local
/// execution) the computation. Backhaul energy is infrastructure and not
/// attributed.
///
/// The attributed device total never exceeds the system total
/// `E_ijl` (property-tested), the difference being the backhaul term.
///
/// # Errors
///
/// Propagates task validation and topology errors.
pub fn attribute_energy(
    system: &MecSystem,
    task: &HolisticTask,
    site: ExecutionSite,
) -> Result<Vec<DeviceShare>, MecError> {
    task.validate()?;
    let owner = system.device(task.owner)?;
    let alpha = task.local_size;
    let beta = task.external_size;
    let input = task.input_size();
    let result = system.result_model.result_size(input);

    let mut shares: Vec<DeviceShare> = Vec::new();
    let mut pay = |device: DeviceId, energy: Joules| {
        if energy > Joules::ZERO {
            match shares.iter_mut().find(|s| s.device == device) {
                Some(s) => s.energy += energy,
                None => shares.push(DeviceShare { device, energy }),
            }
        }
    };

    // The external source always pays its upload of β.
    if let Some(src) = task.external_source {
        let src_dev = system.device(src)?;
        pay(src, transfer::upload_energy(&src_dev.link, beta));
    }

    match site {
        ExecutionSite::Device => {
            if task.external_source.is_some() {
                pay(task.owner, transfer::download_energy(&owner.link, beta));
            }
            pay(
                task.owner,
                system
                    .cycle_model
                    .device_energy(input, task.complexity, owner.cpu),
            );
        }
        ExecutionSite::Station | ExecutionSite::Cloud => {
            pay(task.owner, transfer::upload_energy(&owner.link, alpha));
            pay(task.owner, transfer::download_energy(&owner.link, result));
        }
    }
    Ok(shares)
}

/// A fleet of device batteries.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryFleet {
    capacity: Vec<Joules>,
    remaining: Vec<Joules>,
}

impl BatteryFleet {
    /// Creates a fleet with one battery of `capacity` per device.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] for a non-positive capacity.
    pub fn uniform(system: &MecSystem, capacity: Joules) -> Result<BatteryFleet, MecError> {
        if !(capacity.value() > 0.0) {
            return Err(MecError::InvalidParameter {
                name: "capacity",
                reason: format!("{capacity} must be positive"),
            });
        }
        let n = system.num_devices();
        Ok(BatteryFleet {
            capacity: vec![capacity; n],
            remaining: vec![capacity; n],
        })
    }

    /// Number of batteries.
    pub fn len(&self) -> usize {
        self.remaining.len()
    }

    /// True iff the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Remaining charge of one device.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::UnknownDevice`] for a bad id.
    pub fn remaining(&self, device: DeviceId) -> Result<Joules, MecError> {
        self.remaining
            .get(device.0)
            .copied()
            .ok_or(MecError::UnknownDevice(device))
    }

    /// Drains shares; charge floors at zero.
    pub fn drain(&mut self, shares: &[DeviceShare]) {
        for s in shares {
            if let Some(r) = self.remaining.get_mut(s.device.0) {
                *r = (*r - s.energy).max(Joules::ZERO);
            }
        }
    }

    /// Devices whose battery is exhausted.
    pub fn depleted(&self) -> Vec<DeviceId> {
        self.remaining
            .iter()
            .enumerate()
            .filter(|(_, r)| r.value() <= 0.0)
            .map(|(i, _)| DeviceId(i))
            .collect()
    }

    /// Smallest remaining fraction across the fleet (1.0 = untouched).
    pub fn min_remaining_fraction(&self) -> f64 {
        self.remaining
            .iter()
            .zip(self.capacity.iter())
            .map(|(r, c)| r.value() / c.value())
            .fold(1.0_f64, f64::min)
    }

    /// Number of devices whose drain stayed below `fraction` of capacity.
    pub fn devices_below_drain(&self, fraction: f64) -> usize {
        self.remaining
            .iter()
            .zip(self.capacity.iter())
            .filter(|(r, c)| (c.value() - r.value()) / c.value() < fraction)
            .count()
    }
}

/// Repeats an assignment's per-round drain until the first battery dies;
/// returns the number of completed rounds (fleet lifetime in rounds,
/// capped at `max_rounds`).
///
/// # Errors
///
/// Propagates attribution errors.
pub fn rounds_until_first_depletion(
    system: &MecSystem,
    executions: &[(HolisticTask, ExecutionSite)],
    fleet: &mut BatteryFleet,
    max_rounds: usize,
) -> Result<usize, MecError> {
    // Pre-compute one round's aggregate drain.
    let mut round: Vec<DeviceShare> = Vec::new();
    for (task, site) in executions {
        for share in attribute_energy(system, task, *site)? {
            match round.iter_mut().find(|s| s.device == share.device) {
                Some(s) => s.energy += share.energy,
                None => round.push(share),
            }
        }
    }
    for r in 0..max_rounds {
        if !fleet.depleted().is_empty() {
            return Ok(r);
        }
        fleet.drain(&round);
    }
    Ok(max_rounds)
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(DeviceShare { device, energy });
djson::impl_json_struct!(BatteryFleet {
    capacity,
    remaining
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use crate::units::Seconds;
    use crate::workload::ScenarioConfig;

    fn scenario() -> crate::workload::Scenario {
        let mut cfg = ScenarioConfig::paper_defaults(111);
        cfg.tasks_total = 30;
        cfg.generate().unwrap()
    }

    #[test]
    fn attribution_never_exceeds_system_energy() {
        let s = scenario();
        for task in &s.tasks {
            let costs = cost::evaluate(&s.system, task).unwrap();
            for site in ExecutionSite::ALL {
                let shares = attribute_energy(&s.system, task, site).unwrap();
                let attributed: f64 = shares.iter().map(|sh| sh.energy.value()).sum();
                let system_total = costs.at(site).energy.value();
                assert!(
                    attributed <= system_total + 1e-9,
                    "{} at {site}: attributed {attributed} > system {system_total}",
                    task.id
                );
                // Devices pay everything except backhaul, so the gap is
                // exactly the backhaul energy — in particular, for local
                // same-cluster execution the two must be equal.
                if site == ExecutionSite::Device {
                    let cross = task
                        .external_source
                        .map(|src| !s.system.same_cluster(task.owner, src).unwrap())
                        .unwrap_or(false);
                    if !cross {
                        assert!((attributed - system_total).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn offloading_shifts_cost_but_owner_still_pays_radio() {
        let s = scenario();
        let task = s
            .tasks
            .iter()
            .find(|t| t.external_source.is_some())
            .unwrap();
        let local = attribute_energy(&s.system, task, ExecutionSite::Device).unwrap();
        let station = attribute_energy(&s.system, task, ExecutionSite::Station).unwrap();
        let owner_local = local
            .iter()
            .find(|s| s.device == task.owner)
            .unwrap()
            .energy;
        let owner_station = station
            .iter()
            .find(|s| s.device == task.owner)
            .unwrap()
            .energy;
        assert!(owner_local > Joules::ZERO);
        assert!(owner_station > Joules::ZERO);
        // The source pays the same β upload either way.
        let src = task.external_source.unwrap();
        let src_local = local.iter().find(|s| s.device == src).unwrap().energy;
        let src_station = station.iter().find(|s| s.device == src).unwrap().energy;
        assert!((src_local.value() - src_station.value()).abs() < 1e-12);
    }

    #[test]
    fn fleet_drains_and_reports() {
        let s = scenario();
        let mut fleet = BatteryFleet::uniform(&s.system, Joules::new(100.0)).unwrap();
        assert_eq!(fleet.len(), s.system.num_devices());
        assert!(!fleet.is_empty());
        assert_eq!(fleet.min_remaining_fraction(), 1.0);
        fleet.drain(&[DeviceShare {
            device: DeviceId(0),
            energy: Joules::new(40.0),
        }]);
        assert_eq!(fleet.remaining(DeviceId(0)).unwrap(), Joules::new(60.0));
        assert!(fleet.depleted().is_empty());
        assert!((fleet.min_remaining_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(fleet.devices_below_drain(0.5), fleet.len());
        fleet.drain(&[DeviceShare {
            device: DeviceId(0),
            energy: Joules::new(100.0),
        }]);
        assert_eq!(fleet.depleted(), vec![DeviceId(0)]);
        assert!(fleet.remaining(DeviceId(999)).is_err());
    }

    #[test]
    fn lifetime_counts_rounds() {
        let s = scenario();
        let executions: Vec<_> = s
            .tasks
            .iter()
            .map(|t| (*t, ExecutionSite::Device))
            .collect();
        let mut fleet = BatteryFleet::uniform(&s.system, Joules::new(50.0)).unwrap();
        let rounds =
            rounds_until_first_depletion(&s.system, &executions, &mut fleet, 10_000).unwrap();
        assert!(rounds > 0, "one round cannot kill a 50 J battery here");
        assert!(rounds < 10_000, "drain must eventually deplete somebody");
        assert!(!fleet.depleted().is_empty());
    }

    #[test]
    fn tiny_deadline_task_is_rejected_by_validation() {
        let s = scenario();
        let mut bad = s.tasks[0];
        bad.deadline = Seconds::ZERO;
        assert!(attribute_energy(&s.system, &bad, ExecutionSite::Device).is_err());
    }

    #[test]
    fn uniform_rejects_nonpositive_capacity() {
        let s = scenario();
        assert!(BatteryFleet::uniform(&s.system, Joules::ZERO).is_err());
    }
}
