//! Typed physical quantities used throughout the MEC cost model.
//!
//! The paper's formulas mix data sizes, CPU cycles, frequencies, times,
//! energies and powers; newtypes keep those dimensions straight at compile
//! time (`Bytes / BytesPerSecond = Seconds`, `Watts * Seconds = Joules`,
//! `Cycles / Hertz = Seconds`, …) so a unit bug becomes a type error.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        // Transparent on the wire: a quantity is just its number.
        ::djson::impl_json_newtype!($name(f64));

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a quantity from a raw value in base units.
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// The raw value in base units.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// True iff the value is finite (not NaN or ±∞).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Component-wise maximum.
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Component-wise minimum.
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// A data size in bytes.
    Bytes,
    "B"
);
quantity!(
    /// A CPU work amount in cycles.
    Cycles,
    "cycles"
);
quantity!(
    /// A CPU frequency in hertz (cycles per second).
    Hertz,
    "Hz"
);
quantity!(
    /// A time span in seconds.
    Seconds,
    "s"
);
quantity!(
    /// An energy amount in joules.
    Joules,
    "J"
);
quantity!(
    /// A power in watts (joules per second).
    Watts,
    "W"
);
quantity!(
    /// A data rate in bytes per second.
    BytesPerSecond,
    "B/s"
);

impl Bytes {
    /// Constructs from kilobytes (`1 kB = 1000 B`), the unit the paper's
    /// experiment section uses ("3000kb" etc.).
    pub fn from_kb(kb: f64) -> Bytes {
        Bytes(kb * 1e3)
    }

    /// Constructs from megabytes (`1 MB = 1e6 B`).
    pub fn from_mb(mb: f64) -> Bytes {
        Bytes(mb * 1e6)
    }

    /// The value in kilobytes.
    pub fn as_kb(self) -> f64 {
        self.0 / 1e3
    }
}

impl Hertz {
    /// Constructs from gigahertz.
    pub fn from_ghz(ghz: f64) -> Hertz {
        Hertz(ghz * 1e9)
    }

    /// The value in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }
}

impl Seconds {
    /// Constructs from milliseconds.
    pub fn from_ms(ms: f64) -> Seconds {
        Seconds(ms * 1e-3)
    }

    /// The value in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 * 1e3
    }
}

impl BytesPerSecond {
    /// Constructs from megabits per second (`1 Mbps = 1e6/8 B/s`), the
    /// unit of the paper's Table I.
    pub fn from_mbps(mbps: f64) -> BytesPerSecond {
        BytesPerSecond(mbps * 1e6 / 8.0)
    }

    /// The value in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 * 8.0 / 1e6
    }
}

// --- Cross-type physics -------------------------------------------------

impl Div<BytesPerSecond> for Bytes {
    /// Transfer time: `size / rate`.
    type Output = Seconds;
    fn div(self, rate: BytesPerSecond) -> Seconds {
        Seconds(self.0 / rate.0)
    }
}

impl Div<Hertz> for Cycles {
    /// Compute time: `cycles / frequency`.
    type Output = Seconds;
    fn div(self, f: Hertz) -> Seconds {
        Seconds(self.0 / f.0)
    }
}

impl Mul<Seconds> for Watts {
    /// Energy: `power × time`.
    type Output = Joules;
    fn mul(self, t: Seconds) -> Joules {
        Joules(self.0 * t.0)
    }
}

impl Mul<Watts> for Seconds {
    /// Energy: `time × power`.
    type Output = Joules;
    fn mul(self, p: Watts) -> Joules {
        Joules(self.0 * p.0)
    }
}

impl Mul<Seconds> for Hertz {
    /// Work done: `frequency × time = cycles`.
    type Output = Cycles;
    fn mul(self, t: Seconds) -> Cycles {
        Cycles(self.0 * t.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_has_right_dimension() {
        let t = Bytes::from_mb(1.0) / BytesPerSecond::from_mbps(8.0);
        assert!((t.value() - 1.0).abs() < 1e-12, "1 MB at 8 Mbps is 1 s");
    }

    #[test]
    fn compute_time_has_right_dimension() {
        let t = Cycles::new(2e9) / Hertz::from_ghz(2.0);
        assert!((t.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_power_times_time() {
        let e = Watts::new(7.32) * Seconds::new(2.0);
        assert!((e.value() - 14.64).abs() < 1e-12);
        let e2 = Seconds::new(2.0) * Watts::new(7.32);
        assert_eq!(e, e2);
    }

    #[test]
    fn unit_constructors_round_trip() {
        assert_eq!(Bytes::from_kb(3000.0).as_kb(), 3000.0);
        assert_eq!(Hertz::from_ghz(1.5).as_ghz(), 1.5);
        assert_eq!(Seconds::from_ms(250.0).as_ms(), 250.0);
        let r = BytesPerSecond::from_mbps(13.76);
        assert!((r.as_mbps() - 13.76).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Joules::new(1.0) + Joules::new(2.0);
        assert_eq!(a, Joules::new(3.0));
        assert!(Joules::new(2.0) > Joules::new(1.0));
        let mut acc = Seconds::ZERO;
        acc += Seconds::new(0.5);
        acc -= Seconds::new(0.25);
        assert_eq!(acc, Seconds::new(0.25));
        assert_eq!(-Seconds::new(1.0), Seconds::new(-1.0));
        assert_eq!(Bytes::new(6.0) / Bytes::new(3.0), 2.0);
        assert_eq!(Bytes::new(2.0) * 3.0, Bytes::new(6.0));
        assert_eq!(3.0 * Bytes::new(2.0), Bytes::new(6.0));
        assert_eq!(Bytes::new(6.0) / 3.0, Bytes::new(2.0));
        assert_eq!(Bytes::new(1.0).max(Bytes::new(2.0)), Bytes::new(2.0));
        assert_eq!(Bytes::new(1.0).min(Bytes::new(2.0)), Bytes::new(1.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Joules = (1..=4).map(|i| Joules::new(i as f64)).sum();
        assert_eq!(total, Joules::new(10.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Bytes::new(12.0).to_string(), "12 B");
        assert_eq!(Watts::new(7.32).to_string(), "7.32 W");
    }

    #[test]
    fn frequency_times_time_is_cycles() {
        let work = Hertz::from_ghz(2.0) * Seconds::new(0.5);
        assert_eq!(work, Cycles::new(1e9));
    }
}
