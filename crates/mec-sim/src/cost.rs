//! The per-task, per-site cost model: `t_ijl` and `E_ijl` for
//! `l ∈ {device, station, cloud}`, implementing every formula of paper
//! Section II verbatim.
//!
//! * **Device** (`l=1`): retrieve the external data `β` from its source
//!   (through one or two base stations), then compute locally. Energy =
//!   retrieval radio energy + `κλ(α+β)f_i²` compute energy.
//! * **Station** (`l=2`): the source uploads `β` and the owner uploads `α`
//!   in parallel (the slower one gates), the station computes, the result
//!   `η(α+β)` is downloaded by the owner. Station compute energy is
//!   negligible per Section II.A.
//! * **Cloud** (`l=3`): both inputs are uploaded, forwarded over the
//!   station–cloud backhaul together with the result, the cloud computes,
//!   the owner downloads the result.

use crate::arena::{DeviceIdx, ScenarioArena};
use crate::error::MecError;
use crate::radio::RadioLink;
use crate::task::{ExecutionSite, HolisticTask};
use crate::topology::MecSystem;
use crate::transfer;
use crate::units::{Hertz, Joules, Seconds};

/// Delay and energy of running one task at one site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteCost {
    /// Total delay `t_ijl = t^(C) + t^(R)`.
    pub time: Seconds,
    /// Total system energy `E_ijl` (paper Eq. (5)).
    pub energy: Joules,
}

/// Costs of one task across all three candidate sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCosts {
    per_site: [SiteCost; 3],
}

impl TaskCosts {
    /// Cost at one site.
    pub fn at(&self, site: ExecutionSite) -> SiteCost {
        self.per_site[site.index()]
    }

    /// Iterates `(site, cost)` in the paper's `l = 1, 2, 3` order.
    pub fn iter(&self) -> impl Iterator<Item = (ExecutionSite, SiteCost)> + '_ {
        ExecutionSite::ALL.iter().map(move |&s| (s, self.at(s)))
    }

    /// The site with the smallest energy among those meeting `deadline`;
    /// `None` when no site meets it.
    pub fn cheapest_feasible(&self, deadline: Seconds) -> Option<ExecutionSite> {
        self.iter()
            .filter(|(_, c)| c.time <= deadline)
            .min_by(|a, b| {
                a.1.energy
                    .partial_cmp(&b.1.energy)
                    .expect("finite energies")
            })
            .map(|(s, _)| s)
    }

    /// The smallest achievable delay over all sites.
    pub fn min_time(&self) -> Seconds {
        self.per_site
            .iter()
            .map(|c| c.time)
            .fold(Seconds::new(f64::INFINITY), Seconds::min)
    }

    /// The smallest energy over all sites.
    pub fn min_energy(&self) -> Joules {
        self.per_site
            .iter()
            .map(|c| c.energy)
            .fold(Joules::new(f64::INFINITY), Joules::min)
    }
}

/// Evaluates `t_ijl` and `E_ijl` for every site (Section II formulas).
///
/// # Errors
///
/// Returns [`MecError::UnknownDevice`] / [`MecError::UnknownStation`] when
/// the task references devices outside the system, and propagates
/// [`HolisticTask::validate`] failures.
///
/// # Examples
///
/// ```
/// use mec_sim::cost::evaluate;
/// use mec_sim::workload::ScenarioConfig;
/// use mec_sim::task::ExecutionSite;
///
/// let scenario = ScenarioConfig::paper_defaults(42).generate()?;
/// let costs = evaluate(&scenario.system, &scenario.tasks[0])?;
/// assert!(costs.at(ExecutionSite::Cloud).energy > costs.at(ExecutionSite::Device).energy);
/// # Ok::<(), mec_sim::MecError>(())
/// ```
pub fn evaluate(system: &MecSystem, task: &HolisticTask) -> Result<TaskCosts, MecError> {
    task.validate()?;
    let owner = system.device(task.owner)?;
    let station = system.station(owner.station)?;

    // External-data facts (absent when β = 0).
    let external = match task.external_source {
        Some(src) => {
            let src_dev = system.device(src)?;
            let cross = !system.same_cluster(task.owner, src)?;
            Some((src_dev.link, cross))
        }
        None => None,
    };

    Ok(site_costs(
        system,
        task,
        &owner.link,
        owner.cpu,
        station.cpu,
        external,
    ))
}

/// Resolved per-task lookups for the arena batch path: the owner's device
/// row and, when the task has external data, the source's row plus
/// whether retrieval crosses clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostFacts {
    /// The task owner's device row.
    pub owner: DeviceIdx,
    /// `(source row, crosses clusters)` when `β > 0`.
    pub external: Option<(DeviceIdx, bool)>,
}

/// Validates `task` against `system` and resolves the device rows the
/// cost kernel needs — the exact checks (and error order) of
/// [`evaluate`], split out so a batch builder can run them serially once
/// and then price tasks with the infallible kernel, chunked across
/// threads.
///
/// # Errors
///
/// Exactly [`evaluate`]'s errors, plus [`MecError::IndexOverflow`] for
/// ids past the `u32` handle space.
pub fn resolve(system: &MecSystem, task: &HolisticTask) -> Result<CostFacts, MecError> {
    task.validate()?;
    let owner = system.device(task.owner)?;
    system.station(owner.station)?;
    let external = match task.external_source {
        Some(src) => {
            system.device(src)?;
            let cross = !system.same_cluster(task.owner, src)?;
            Some((DeviceIdx::from_id(src)?, cross))
        }
        None => None,
    };
    Ok(CostFacts {
        owner: DeviceIdx::from_id(task.owner)?,
        external,
    })
}

/// Prices one task from pre-resolved [`CostFacts`], reading device and
/// station fields from the arena rows — bit-identical to [`evaluate`]
/// because both call the same [`site_costs`] kernel with the same values.
///
/// # Panics
///
/// Panics if `facts` or `arena` were not built from `system` (row indices
/// out of range).
#[must_use]
#[inline]
pub fn evaluate_resolved(
    system: &MecSystem,
    arena: &ScenarioArena,
    task: &HolisticTask,
    facts: CostFacts,
) -> TaskCosts {
    let owner = facts.owner.index();
    let station = arena.dev_station[owner] as usize;
    let external = facts
        .external
        .map(|(src, cross)| (arena.dev_link[src.index()], cross));
    site_costs(
        system,
        task,
        &arena.dev_link[owner],
        arena.dev_cpu[owner],
        arena.st_cpu[station],
        external,
    )
}

/// The Section II arithmetic shared by [`evaluate`] and
/// [`evaluate_resolved`]: every formula in one place so the struct path
/// and the arena path cannot drift.
#[inline]
fn site_costs(
    system: &MecSystem,
    task: &HolisticTask,
    owner_link: &RadioLink,
    owner_cpu: Hertz,
    station_cpu: Hertz,
    external: Option<(RadioLink, bool)>,
) -> TaskCosts {
    let cloud = system.cloud();
    let bb = system.backhaul.station_to_station;
    let bc = system.backhaul.station_to_cloud;

    let alpha = task.local_size;
    let beta = task.external_size;
    let input = task.input_size();
    let result = system.result_model.result_size(input);
    let cycles = |_: ()| system.cycle_model.cycles(input, task.complexity);

    // --- l = 1: the owner's mobile device -----------------------------
    let device_cost = {
        let (t_r, e_r) = match external {
            Some((src_link, cross)) => {
                let mut t = transfer::upload_time(&src_link, beta)
                    + transfer::download_time(owner_link, beta);
                let mut e = transfer::upload_energy(&src_link, beta)
                    + transfer::download_energy(owner_link, beta);
                if cross {
                    t += bb.transfer_time(beta);
                    e += bb.transfer_energy(beta);
                }
                (t, e)
            }
            None => (Seconds::ZERO, Joules::ZERO),
        };
        let t_c = cycles(()) / owner_cpu;
        let e_c = system
            .cycle_model
            .device_energy(input, task.complexity, owner_cpu);
        SiteCost {
            time: t_r + t_c,
            energy: e_r + e_c,
        }
    };

    // --- l = 2: the connected base station -----------------------------
    let station_cost = {
        let beta_leg = match external {
            Some((src_link, cross)) => {
                let mut t = transfer::upload_time(&src_link, beta);
                if cross {
                    t += bb.transfer_time(beta);
                }
                t
            }
            None => Seconds::ZERO,
        };
        let alpha_leg = transfer::upload_time(owner_link, alpha);
        let gather = beta_leg.max(alpha_leg);
        let t_r = gather + transfer::download_time(owner_link, result);

        let mut e_r = transfer::upload_energy(owner_link, alpha)
            + transfer::download_energy(owner_link, result);
        if let Some((src_link, cross)) = external {
            e_r += transfer::upload_energy(&src_link, beta);
            if cross {
                e_r += bb.transfer_energy(beta);
            }
        }
        let t_c = cycles(()) / station_cpu;
        SiteCost {
            time: t_r + t_c,
            energy: e_r,
        }
    };

    // --- l = 3: the remote cloud ----------------------------------------
    let cloud_cost = {
        let beta_leg = match external {
            Some((src_link, _)) => transfer::upload_time(&src_link, beta),
            None => Seconds::ZERO,
        };
        let alpha_leg = transfer::upload_time(owner_link, alpha);
        let gather = beta_leg.max(alpha_leg);
        let haul = input + result;
        let t_r = gather + transfer::download_time(owner_link, result) + bc.transfer_time(haul);

        let mut e_r = transfer::upload_energy(owner_link, alpha)
            + transfer::download_energy(owner_link, result)
            + bc.transfer_energy(haul);
        if let Some((src_link, _)) = external {
            e_r += transfer::upload_energy(&src_link, beta);
        }
        let t_c = cycles(()) / cloud.cpu;
        SiteCost {
            time: t_r + t_c,
            energy: e_r,
        }
    };

    TaskCosts {
        per_site: [device_cost, station_cost, cloud_cost],
    }
}

/// Flat struct-of-arrays cost table: `times`/`energies` hold one stride-3
/// row per task (`l = device, station, cloud` order), so batch consumers
/// scan two contiguous `Vec<f64>`s instead of chasing per-task structs
/// (DESIGN.md §11).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostMatrix {
    times: Vec<f64>,
    energies: Vec<f64>,
}

impl CostMatrix {
    /// An empty matrix with room for `n` task rows.
    #[must_use]
    pub fn with_capacity(n: usize) -> CostMatrix {
        CostMatrix {
            times: Vec::with_capacity(3 * n),
            energies: Vec::with_capacity(3 * n),
        }
    }

    /// Prices every task serially: one [`resolve`] pass (first error
    /// wins, in task order) and one kernel pass — the reference the
    /// chunked parallel builders must be bit-identical to.
    ///
    /// # Errors
    ///
    /// Exactly the per-task [`resolve`] errors, first task first.
    pub fn build(
        system: &MecSystem,
        arena: &ScenarioArena,
        tasks: &[HolisticTask],
    ) -> Result<CostMatrix, MecError> {
        let mut m = CostMatrix::with_capacity(tasks.len());
        for task in tasks {
            let facts = resolve(system, task)?;
            m.push(evaluate_resolved(system, arena, task, facts));
        }
        Ok(m)
    }

    /// Appends one task row.
    #[inline]
    pub fn push(&mut self, costs: TaskCosts) {
        for c in costs.per_site {
            self.times.push(c.time.value());
            self.energies.push(c.energy.value());
        }
    }

    /// Moves every row of `other` onto the end of `self`, preserving row
    /// order — how chunked parallel builders concatenate their pieces
    /// back into one task-ordered table.
    pub fn append(&mut self, other: &mut CostMatrix) {
        self.times.append(&mut other.times);
        self.energies.append(&mut other.energies);
    }

    /// Number of task rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len() / 3
    }

    /// True iff no rows have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Cost of task `idx` at `site`; `None` out of range.
    #[must_use]
    pub fn site(&self, idx: usize, site: ExecutionSite) -> Option<SiteCost> {
        let at = 3 * idx + site.index();
        Some(SiteCost {
            time: Seconds::new(*self.times.get(at)?),
            energy: Joules::new(*self.energies.get(at)?),
        })
    }

    /// All three site costs of task `idx`; `None` out of range.
    #[must_use]
    pub fn task_costs(&self, idx: usize) -> Option<TaskCosts> {
        let row = self.times.get(3 * idx..3 * idx + 3)?;
        let erow = self.energies.get(3 * idx..3 * idx + 3)?;
        let site = |l: usize| SiteCost {
            time: Seconds::new(row[l]),
            energy: Joules::new(erow[l]),
        };
        Some(TaskCosts {
            per_site: [site(0), site(1), site(2)],
        })
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(SiteCost { time, energy });
djson::impl_json_struct!(TaskCosts { per_site });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::NetworkProfile;
    use crate::task::TaskId;
    use crate::topology::{Cloud, DeviceId, MecSystem, ResultModel};
    use crate::units::{Bytes, Hertz};

    /// Two stations, two devices each. Device CPUs 1.5 GHz, WiFi links.
    fn system() -> MecSystem {
        let mut b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        let s0 = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        let s1 = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        for st in [s0, s0, s1, s1] {
            b.add_device(
                st,
                Hertz::from_ghz(1.5),
                NetworkProfile::WiFi.link(),
                Bytes::from_mb(8.0),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn task(owner: usize, src: Option<usize>, alpha_kb: f64, beta_kb: f64) -> HolisticTask {
        HolisticTask {
            id: TaskId {
                user: owner,
                index: 0,
            },
            owner: DeviceId(owner),
            local_size: Bytes::from_kb(alpha_kb),
            external_size: Bytes::from_kb(beta_kb),
            external_source: src.map(DeviceId),
            complexity: 1.0,
            resource: Bytes::from_kb(alpha_kb + beta_kb),
            deadline: Seconds::new(60.0),
        }
    }

    #[test]
    fn energy_ordering_matches_paper_assumption() {
        // E_ij1 < E_ij2 < E_ij3 for data-local tasks: local compute is far
        // cheaper than radio, and the cloud path hauls the most bytes.
        let sys = system();
        let costs = evaluate(&sys, &task(0, Some(1), 2500.0, 500.0)).unwrap();
        let e1 = costs.at(ExecutionSite::Device).energy;
        let e2 = costs.at(ExecutionSite::Station).energy;
        let e3 = costs.at(ExecutionSite::Cloud).energy;
        assert!(e1 < e2, "device {e1} < station {e2}");
        assert!(e2 < e3, "station {e2} < cloud {e3}");
    }

    #[test]
    fn purely_local_task_pays_no_radio_at_device() {
        let sys = system();
        let costs = evaluate(&sys, &task(0, None, 3000.0, 0.0)).unwrap();
        let dev = costs.at(ExecutionSite::Device);
        // Expected: only compute. 3 MB · 330 c/B / 1.5 GHz = 0.66 s.
        assert!((dev.time.value() - 0.66).abs() < 1e-9);
        let e_compute =
            sys.cycle_model
                .device_energy(Bytes::from_kb(3000.0), 1.0, Hertz::from_ghz(1.5));
        assert!((dev.energy.value() - e_compute.value()).abs() < 1e-12);
    }

    #[test]
    fn cross_cluster_retrieval_costs_more_than_same_cluster() {
        let sys = system();
        let same = evaluate(&sys, &task(0, Some(1), 2000.0, 800.0)).unwrap();
        let cross = evaluate(&sys, &task(0, Some(2), 2000.0, 800.0)).unwrap();
        for site in [ExecutionSite::Device, ExecutionSite::Station] {
            assert!(
                cross.at(site).energy > same.at(site).energy,
                "{site}: cross-cluster must add backhaul energy"
            );
            assert!(cross.at(site).time >= same.at(site).time);
        }
        // The cloud path is identical either way (no BS–BS leg).
        let c_same = same.at(ExecutionSite::Cloud);
        let c_cross = cross.at(ExecutionSite::Cloud);
        assert!((c_same.energy.value() - c_cross.energy.value()).abs() < 1e-12);
    }

    #[test]
    fn station_gather_is_max_of_parallel_uploads() {
        // With a huge β and tiny α the gather is gated by the β leg.
        let sys = system();
        let costs = evaluate(&sys, &task(0, Some(1), 1.0, 4000.0)).unwrap();
        let link = NetworkProfile::WiFi.link();
        let beta_t = transfer::upload_time(&link, Bytes::from_kb(4000.0));
        let station = costs.at(ExecutionSite::Station);
        // time = gather + result download + compute
        let result = sys.result_model.result_size(Bytes::from_kb(4001.0));
        let expect = beta_t
            + transfer::download_time(&link, result)
            + sys.cycle_model.cycles(Bytes::from_kb(4001.0), 1.0) / Hertz::from_ghz(4.0);
        assert!((station.time.value() - expect.value()).abs() < 1e-9);
    }

    #[test]
    fn cloud_latency_includes_backhaul_floor() {
        let sys = system();
        let costs = evaluate(&sys, &task(0, None, 10.0, 0.0)).unwrap();
        // Even a tiny task pays the 250 ms station→cloud latency.
        assert!(costs.at(ExecutionSite::Cloud).time.value() > 0.25);
    }

    #[test]
    fn cheapest_feasible_respects_deadline() {
        let sys = system();
        let t = task(0, None, 3000.0, 0.0);
        let costs = evaluate(&sys, &t).unwrap();
        // Generous deadline → device (cheapest energy).
        assert_eq!(
            costs.cheapest_feasible(Seconds::new(60.0)),
            Some(ExecutionSite::Device)
        );
        // Impossible deadline → none.
        assert_eq!(costs.cheapest_feasible(Seconds::new(1e-6)), None);
        assert!(costs.min_time() <= costs.at(ExecutionSite::Device).time);
        assert!(costs.min_energy() <= costs.at(ExecutionSite::Cloud).energy);
    }

    #[test]
    fn constant_result_model_is_honored() {
        let mut sys = system();
        sys.result_model = ResultModel::Constant(Bytes::from_kb(1.0));
        let big = evaluate(&sys, &task(0, None, 5000.0, 0.0)).unwrap();
        sys.result_model = ResultModel::Proportional(0.2);
        let prop = evaluate(&sys, &task(0, None, 5000.0, 0.0)).unwrap();
        // A 1 kB constant result is far cheaper to return than 1000 kB.
        assert!(big.at(ExecutionSite::Station).energy < prop.at(ExecutionSite::Station).energy);
    }

    #[test]
    fn invalid_task_is_rejected() {
        let sys = system();
        let mut t = task(0, Some(1), 100.0, 100.0);
        t.external_source = Some(DeviceId(0)); // self-sourcing
        assert!(evaluate(&sys, &t).is_err());
        let t2 = task(9, None, 100.0, 0.0); // unknown owner
        assert!(evaluate(&sys, &t2).is_err());
    }
}
