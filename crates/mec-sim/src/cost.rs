//! The per-task, per-site cost model: `t_ijl` and `E_ijl` for
//! `l ∈ {device, station, cloud}`, implementing every formula of paper
//! Section II verbatim.
//!
//! * **Device** (`l=1`): retrieve the external data `β` from its source
//!   (through one or two base stations), then compute locally. Energy =
//!   retrieval radio energy + `κλ(α+β)f_i²` compute energy.
//! * **Station** (`l=2`): the source uploads `β` and the owner uploads `α`
//!   in parallel (the slower one gates), the station computes, the result
//!   `η(α+β)` is downloaded by the owner. Station compute energy is
//!   negligible per Section II.A.
//! * **Cloud** (`l=3`): both inputs are uploaded, forwarded over the
//!   station–cloud backhaul together with the result, the cloud computes,
//!   the owner downloads the result.

use crate::error::MecError;
use crate::task::{ExecutionSite, HolisticTask};
use crate::topology::MecSystem;
use crate::transfer;
use crate::units::{Joules, Seconds};

/// Delay and energy of running one task at one site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteCost {
    /// Total delay `t_ijl = t^(C) + t^(R)`.
    pub time: Seconds,
    /// Total system energy `E_ijl` (paper Eq. (5)).
    pub energy: Joules,
}

/// Costs of one task across all three candidate sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCosts {
    per_site: [SiteCost; 3],
}

impl TaskCosts {
    /// Cost at one site.
    pub fn at(&self, site: ExecutionSite) -> SiteCost {
        self.per_site[site.index()]
    }

    /// Iterates `(site, cost)` in the paper's `l = 1, 2, 3` order.
    pub fn iter(&self) -> impl Iterator<Item = (ExecutionSite, SiteCost)> + '_ {
        ExecutionSite::ALL.iter().map(move |&s| (s, self.at(s)))
    }

    /// The site with the smallest energy among those meeting `deadline`;
    /// `None` when no site meets it.
    pub fn cheapest_feasible(&self, deadline: Seconds) -> Option<ExecutionSite> {
        self.iter()
            .filter(|(_, c)| c.time <= deadline)
            .min_by(|a, b| {
                a.1.energy
                    .partial_cmp(&b.1.energy)
                    .expect("finite energies")
            })
            .map(|(s, _)| s)
    }

    /// The smallest achievable delay over all sites.
    pub fn min_time(&self) -> Seconds {
        self.per_site
            .iter()
            .map(|c| c.time)
            .fold(Seconds::new(f64::INFINITY), Seconds::min)
    }

    /// The smallest energy over all sites.
    pub fn min_energy(&self) -> Joules {
        self.per_site
            .iter()
            .map(|c| c.energy)
            .fold(Joules::new(f64::INFINITY), Joules::min)
    }
}

/// Evaluates `t_ijl` and `E_ijl` for every site (Section II formulas).
///
/// # Errors
///
/// Returns [`MecError::UnknownDevice`] / [`MecError::UnknownStation`] when
/// the task references devices outside the system, and propagates
/// [`HolisticTask::validate`] failures.
///
/// # Examples
///
/// ```
/// use mec_sim::cost::evaluate;
/// use mec_sim::workload::ScenarioConfig;
/// use mec_sim::task::ExecutionSite;
///
/// let scenario = ScenarioConfig::paper_defaults(42).generate()?;
/// let costs = evaluate(&scenario.system, &scenario.tasks[0])?;
/// assert!(costs.at(ExecutionSite::Cloud).energy > costs.at(ExecutionSite::Device).energy);
/// # Ok::<(), mec_sim::MecError>(())
/// ```
pub fn evaluate(system: &MecSystem, task: &HolisticTask) -> Result<TaskCosts, MecError> {
    task.validate()?;
    let owner = system.device(task.owner)?;
    let station = system.station(owner.station)?;
    let cloud = system.cloud();
    let bb = system.backhaul.station_to_station;
    let bc = system.backhaul.station_to_cloud;

    let alpha = task.local_size;
    let beta = task.external_size;
    let input = task.input_size();
    let result = system.result_model.result_size(input);
    let cycles = |_: ()| system.cycle_model.cycles(input, task.complexity);

    // External-data facts (absent when β = 0).
    let external = match task.external_source {
        Some(src) => {
            let src_dev = system.device(src)?;
            let cross = !system.same_cluster(task.owner, src)?;
            Some((src_dev.link, cross))
        }
        None => None,
    };

    // --- l = 1: the owner's mobile device -----------------------------
    let device_cost = {
        let (t_r, e_r) = match external {
            Some((src_link, cross)) => {
                let mut t = transfer::upload_time(&src_link, beta)
                    + transfer::download_time(&owner.link, beta);
                let mut e = transfer::upload_energy(&src_link, beta)
                    + transfer::download_energy(&owner.link, beta);
                if cross {
                    t += bb.transfer_time(beta);
                    e += bb.transfer_energy(beta);
                }
                (t, e)
            }
            None => (Seconds::ZERO, Joules::ZERO),
        };
        let t_c = cycles(()) / owner.cpu;
        let e_c = system
            .cycle_model
            .device_energy(input, task.complexity, owner.cpu);
        SiteCost {
            time: t_r + t_c,
            energy: e_r + e_c,
        }
    };

    // --- l = 2: the connected base station -----------------------------
    let station_cost = {
        let beta_leg = match external {
            Some((src_link, cross)) => {
                let mut t = transfer::upload_time(&src_link, beta);
                if cross {
                    t += bb.transfer_time(beta);
                }
                t
            }
            None => Seconds::ZERO,
        };
        let alpha_leg = transfer::upload_time(&owner.link, alpha);
        let gather = beta_leg.max(alpha_leg);
        let t_r = gather + transfer::download_time(&owner.link, result);

        let mut e_r = transfer::upload_energy(&owner.link, alpha)
            + transfer::download_energy(&owner.link, result);
        if let Some((src_link, cross)) = external {
            e_r += transfer::upload_energy(&src_link, beta);
            if cross {
                e_r += bb.transfer_energy(beta);
            }
        }
        let t_c = cycles(()) / station.cpu;
        SiteCost {
            time: t_r + t_c,
            energy: e_r,
        }
    };

    // --- l = 3: the remote cloud ----------------------------------------
    let cloud_cost = {
        let beta_leg = match external {
            Some((src_link, _)) => transfer::upload_time(&src_link, beta),
            None => Seconds::ZERO,
        };
        let alpha_leg = transfer::upload_time(&owner.link, alpha);
        let gather = beta_leg.max(alpha_leg);
        let haul = input + result;
        let t_r = gather + transfer::download_time(&owner.link, result) + bc.transfer_time(haul);

        let mut e_r = transfer::upload_energy(&owner.link, alpha)
            + transfer::download_energy(&owner.link, result)
            + bc.transfer_energy(haul);
        if let Some((src_link, _)) = external {
            e_r += transfer::upload_energy(&src_link, beta);
        }
        let t_c = cycles(()) / cloud.cpu;
        SiteCost {
            time: t_r + t_c,
            energy: e_r,
        }
    };

    Ok(TaskCosts {
        per_site: [device_cost, station_cost, cloud_cost],
    })
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(SiteCost { time, energy });
djson::impl_json_struct!(TaskCosts { per_site });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::NetworkProfile;
    use crate::task::TaskId;
    use crate::topology::{Cloud, DeviceId, MecSystem, ResultModel};
    use crate::units::{Bytes, Hertz};

    /// Two stations, two devices each. Device CPUs 1.5 GHz, WiFi links.
    fn system() -> MecSystem {
        let mut b = MecSystem::builder(Cloud {
            cpu: Hertz::from_ghz(2.4),
        });
        let s0 = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        let s1 = b.add_station(Hertz::from_ghz(4.0), Bytes::from_mb(200.0));
        for st in [s0, s0, s1, s1] {
            b.add_device(
                st,
                Hertz::from_ghz(1.5),
                NetworkProfile::WiFi.link(),
                Bytes::from_mb(8.0),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn task(owner: usize, src: Option<usize>, alpha_kb: f64, beta_kb: f64) -> HolisticTask {
        HolisticTask {
            id: TaskId {
                user: owner,
                index: 0,
            },
            owner: DeviceId(owner),
            local_size: Bytes::from_kb(alpha_kb),
            external_size: Bytes::from_kb(beta_kb),
            external_source: src.map(DeviceId),
            complexity: 1.0,
            resource: Bytes::from_kb(alpha_kb + beta_kb),
            deadline: Seconds::new(60.0),
        }
    }

    #[test]
    fn energy_ordering_matches_paper_assumption() {
        // E_ij1 < E_ij2 < E_ij3 for data-local tasks: local compute is far
        // cheaper than radio, and the cloud path hauls the most bytes.
        let sys = system();
        let costs = evaluate(&sys, &task(0, Some(1), 2500.0, 500.0)).unwrap();
        let e1 = costs.at(ExecutionSite::Device).energy;
        let e2 = costs.at(ExecutionSite::Station).energy;
        let e3 = costs.at(ExecutionSite::Cloud).energy;
        assert!(e1 < e2, "device {e1} < station {e2}");
        assert!(e2 < e3, "station {e2} < cloud {e3}");
    }

    #[test]
    fn purely_local_task_pays_no_radio_at_device() {
        let sys = system();
        let costs = evaluate(&sys, &task(0, None, 3000.0, 0.0)).unwrap();
        let dev = costs.at(ExecutionSite::Device);
        // Expected: only compute. 3 MB · 330 c/B / 1.5 GHz = 0.66 s.
        assert!((dev.time.value() - 0.66).abs() < 1e-9);
        let e_compute =
            sys.cycle_model
                .device_energy(Bytes::from_kb(3000.0), 1.0, Hertz::from_ghz(1.5));
        assert!((dev.energy.value() - e_compute.value()).abs() < 1e-12);
    }

    #[test]
    fn cross_cluster_retrieval_costs_more_than_same_cluster() {
        let sys = system();
        let same = evaluate(&sys, &task(0, Some(1), 2000.0, 800.0)).unwrap();
        let cross = evaluate(&sys, &task(0, Some(2), 2000.0, 800.0)).unwrap();
        for site in [ExecutionSite::Device, ExecutionSite::Station] {
            assert!(
                cross.at(site).energy > same.at(site).energy,
                "{site}: cross-cluster must add backhaul energy"
            );
            assert!(cross.at(site).time >= same.at(site).time);
        }
        // The cloud path is identical either way (no BS–BS leg).
        let c_same = same.at(ExecutionSite::Cloud);
        let c_cross = cross.at(ExecutionSite::Cloud);
        assert!((c_same.energy.value() - c_cross.energy.value()).abs() < 1e-12);
    }

    #[test]
    fn station_gather_is_max_of_parallel_uploads() {
        // With a huge β and tiny α the gather is gated by the β leg.
        let sys = system();
        let costs = evaluate(&sys, &task(0, Some(1), 1.0, 4000.0)).unwrap();
        let link = NetworkProfile::WiFi.link();
        let beta_t = transfer::upload_time(&link, Bytes::from_kb(4000.0));
        let station = costs.at(ExecutionSite::Station);
        // time = gather + result download + compute
        let result = sys.result_model.result_size(Bytes::from_kb(4001.0));
        let expect = beta_t
            + transfer::download_time(&link, result)
            + sys.cycle_model.cycles(Bytes::from_kb(4001.0), 1.0) / Hertz::from_ghz(4.0);
        assert!((station.time.value() - expect.value()).abs() < 1e-9);
    }

    #[test]
    fn cloud_latency_includes_backhaul_floor() {
        let sys = system();
        let costs = evaluate(&sys, &task(0, None, 10.0, 0.0)).unwrap();
        // Even a tiny task pays the 250 ms station→cloud latency.
        assert!(costs.at(ExecutionSite::Cloud).time.value() > 0.25);
    }

    #[test]
    fn cheapest_feasible_respects_deadline() {
        let sys = system();
        let t = task(0, None, 3000.0, 0.0);
        let costs = evaluate(&sys, &t).unwrap();
        // Generous deadline → device (cheapest energy).
        assert_eq!(
            costs.cheapest_feasible(Seconds::new(60.0)),
            Some(ExecutionSite::Device)
        );
        // Impossible deadline → none.
        assert_eq!(costs.cheapest_feasible(Seconds::new(1e-6)), None);
        assert!(costs.min_time() <= costs.at(ExecutionSite::Device).time);
        assert!(costs.min_energy() <= costs.at(ExecutionSite::Cloud).energy);
    }

    #[test]
    fn constant_result_model_is_honored() {
        let mut sys = system();
        sys.result_model = ResultModel::Constant(Bytes::from_kb(1.0));
        let big = evaluate(&sys, &task(0, None, 5000.0, 0.0)).unwrap();
        sys.result_model = ResultModel::Proportional(0.2);
        let prop = evaluate(&sys, &task(0, None, 5000.0, 0.0)).unwrap();
        // A 1 kB constant result is far cheaper to return than 1000 kB.
        assert!(big.at(ExecutionSite::Station).energy < prop.at(ExecutionSite::Station).energy);
    }

    #[test]
    fn invalid_task_is_rejected() {
        let sys = system();
        let mut t = task(0, Some(1), 100.0, 100.0);
        t.external_source = Some(DeviceId(0)); // self-sourcing
        assert!(evaluate(&sys, &t).is_err());
        let t2 = task(9, None, 100.0, 0.0); // unknown owner
        assert!(evaluate(&sys, &t2).is_err());
    }
}
