//! Task model.
//!
//! A computation task in the paper is the tuple
//! `T_ij = (op_ij, LD_ij, ED_ij, L_ij, C_ij, T_ij)`: an operator, local
//! input data, *external* input data held elsewhere, the location of that
//! external data, a resource occupation and a deadline. Holistic tasks
//! ([`HolisticTask`]) must run on a single subsystem; divisible tasks
//! ([`DivisibleTask`]) can be decomposed along the data and aggregated.

use crate::aggregate::AggregateOp;
use crate::data::ItemSet;
use crate::error::MecError;
use crate::topology::DeviceId;
use crate::units::{Bytes, Seconds};
use std::fmt;

/// Identifier of a task: the `j`-th task raised by user `i` (paper
/// `T_ij`). Users are identified with their mobile device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId {
    /// The raising user/device index `i`.
    pub user: usize,
    /// The per-user task index `j`.
    pub index: usize,
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T[{},{}]", self.user, self.index)
    }
}

/// The subsystem a holistic task runs on (the paper's `l ∈ {1,2,3}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExecutionSite {
    /// `l = 1`: the raising user's own mobile device.
    Device,
    /// `l = 2`: the base station the device is attached to.
    Station,
    /// `l = 3`: the remote cloud.
    Cloud,
}

impl ExecutionSite {
    /// All sites in the paper's `l = 1, 2, 3` order.
    pub const ALL: [ExecutionSite; 3] = [
        ExecutionSite::Device,
        ExecutionSite::Station,
        ExecutionSite::Cloud,
    ];

    /// The paper's numeric level (1, 2 or 3).
    pub fn level(self) -> usize {
        match self {
            ExecutionSite::Device => 1,
            ExecutionSite::Station => 2,
            ExecutionSite::Cloud => 3,
        }
    }

    /// Index into 3-element per-site arrays (0, 1 or 2).
    pub fn index(self) -> usize {
        self.level() - 1
    }
}

impl fmt::Display for ExecutionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecutionSite::Device => "device",
            ExecutionSite::Station => "station",
            ExecutionSite::Cloud => "cloud",
        };
        f.write_str(s)
    }
}

/// A holistic computation task: all input data must be gathered at one
/// subsystem before processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HolisticTask {
    /// Task identifier.
    pub id: TaskId,
    /// The raising device (where `LD_ij` resides and results return to).
    pub owner: DeviceId,
    /// Size `α_ij = |LD_ij|` of the local input data.
    pub local_size: Bytes,
    /// Size `β_ij = |ED_ij|` of the external input data.
    pub external_size: Bytes,
    /// Location `L_ij` of the external data; `None` iff `external_size`
    /// is zero.
    pub external_source: Option<DeviceId>,
    /// Operator complexity multiplier applied to the cycle model's
    /// cycles-per-byte (1.0 for the paper's linear calibration).
    pub complexity: f64,
    /// Resource occupation `C_ij` (charged against `max_i`/`max_S`).
    pub resource: Bytes,
    /// Deadline `T_ij`.
    pub deadline: Seconds,
}

impl HolisticTask {
    /// Total input size `α_ij + β_ij`.
    pub fn input_size(&self) -> Bytes {
        self.local_size + self.external_size
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] when sizes are negative or
    /// non-finite, when `external_size > 0` without a source (or vice
    /// versa), when the source is the owner itself, or when the deadline
    /// is not positive.
    pub fn validate(&self) -> Result<(), MecError> {
        let bad = |name: &'static str, reason: String| MecError::InvalidParameter { name, reason };
        for (name, v) in [
            ("local_size", self.local_size.value()),
            ("external_size", self.external_size.value()),
            ("resource", self.resource.value()),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(bad(
                    name,
                    format!("{v} must be a nonnegative finite number"),
                ));
            }
        }
        if !(self.complexity.is_finite() && self.complexity > 0.0) {
            return Err(bad(
                "complexity",
                format!("{} must be positive", self.complexity),
            ));
        }
        if !(self.deadline.value() > 0.0) {
            return Err(bad(
                "deadline",
                format!("{} must be positive", self.deadline),
            ));
        }
        match (self.external_size.value() > 0.0, self.external_source) {
            (true, None) => Err(bad(
                "external_source",
                "external data present but no source device given".into(),
            )),
            (false, Some(_)) => Err(bad(
                "external_source",
                "source device given but external size is zero".into(),
            )),
            (true, Some(src)) if src == self.owner => Err(bad(
                "external_source",
                format!("external source {src} equals the owner"),
            )),
            _ => Ok(()),
        }
    }
}

/// A divisible computation task: an aggregation over a set of data items
/// that may be scattered over many devices.
#[derive(Debug, Clone, PartialEq)]
pub struct DivisibleTask {
    /// Task identifier.
    pub id: TaskId,
    /// The raising device (partial results are aggregated toward it).
    pub owner: DeviceId,
    /// The aggregation operator `op_ij`.
    pub op: AggregateOp,
    /// The items the task must process (`LD_ij ∪ ED_ij` as item ids).
    pub items: ItemSet,
    /// Operator complexity multiplier.
    pub complexity: f64,
    /// Resource occupation `C_ij`.
    pub resource: Bytes,
    /// Deadline `T_ij`.
    pub deadline: Seconds,
}

impl DivisibleTask {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidParameter`] when the item set is empty,
    /// the complexity is not positive, or the deadline is not positive.
    pub fn validate(&self) -> Result<(), MecError> {
        if self.items.is_empty() {
            return Err(MecError::InvalidParameter {
                name: "items",
                reason: "a divisible task must reference at least one data item".into(),
            });
        }
        if !(self.complexity.is_finite() && self.complexity > 0.0) {
            return Err(MecError::InvalidParameter {
                name: "complexity",
                reason: format!("{} must be positive", self.complexity),
            });
        }
        if !(self.deadline.value() > 0.0) {
            return Err(MecError::InvalidParameter {
                name: "deadline",
                reason: format!("{} must be positive", self.deadline),
            });
        }
        Ok(())
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(TaskId { user, index });
djson::impl_json_enum!(ExecutionSite {
    Device,
    Station,
    Cloud
});
djson::impl_json_struct!(HolisticTask {
    id,
    owner,
    local_size,
    external_size,
    external_source,
    complexity,
    resource,
    deadline,
});
djson::impl_json_struct!(DivisibleTask {
    id,
    owner,
    op,
    items,
    complexity,
    resource,
    deadline
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataItemId;

    fn task() -> HolisticTask {
        HolisticTask {
            id: TaskId { user: 0, index: 0 },
            owner: DeviceId(0),
            local_size: Bytes::from_kb(2000.0),
            external_size: Bytes::from_kb(500.0),
            external_source: Some(DeviceId(1)),
            complexity: 1.0,
            resource: Bytes::from_kb(2500.0),
            deadline: Seconds::new(5.0),
        }
    }

    #[test]
    fn valid_task_passes() {
        assert!(task().validate().is_ok());
        assert_eq!(task().input_size(), Bytes::from_kb(2500.0));
    }

    #[test]
    fn external_consistency_is_enforced() {
        let mut t = task();
        t.external_source = None;
        assert!(t.validate().is_err(), "size without source");

        let mut t = task();
        t.external_size = Bytes::ZERO;
        assert!(t.validate().is_err(), "source without size");

        let mut t = task();
        t.external_source = Some(t.owner);
        assert!(t.validate().is_err(), "self-sourcing");

        let mut t = task();
        t.external_size = Bytes::ZERO;
        t.external_source = None;
        assert!(t.validate().is_ok(), "purely local task");
    }

    #[test]
    fn bad_numbers_are_rejected() {
        let mut t = task();
        t.local_size = Bytes::new(-1.0);
        assert!(t.validate().is_err());
        let mut t = task();
        t.deadline = Seconds::ZERO;
        assert!(t.validate().is_err());
        let mut t = task();
        t.complexity = 0.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn site_levels_match_paper() {
        assert_eq!(ExecutionSite::Device.level(), 1);
        assert_eq!(ExecutionSite::Station.level(), 2);
        assert_eq!(ExecutionSite::Cloud.level(), 3);
        assert_eq!(ExecutionSite::ALL[0].index(), 0);
        assert_eq!(ExecutionSite::Cloud.to_string(), "cloud");
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId { user: 2, index: 5 }.to_string(), "T[2,5]");
    }

    #[test]
    fn divisible_validation() {
        let t = DivisibleTask {
            id: TaskId { user: 0, index: 0 },
            owner: DeviceId(0),
            op: AggregateOp::Sum,
            items: ItemSet::from_ids(4, [DataItemId(1)]),
            complexity: 1.0,
            resource: Bytes::from_kb(100.0),
            deadline: Seconds::new(2.0),
        };
        assert!(t.validate().is_ok());
        let mut bad = t.clone();
        bad.items = ItemSet::new(4);
        assert!(bad.validate().is_err());
    }
}
