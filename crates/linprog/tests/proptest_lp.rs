//! Property-based tests: on randomly generated feasible bounded LPs the two
//! backends must agree, produce feasible points, and respect basic
//! invariances of linear programming.
//!
//! Runs on the in-repo seeded harness ([`detrand::prop`]); failures print
//! the seed to replay via the `DSMEC_PROP_SEED` environment variable.

use detrand::prop::run_cases;
use detrand::{prop_assert, prop_assert_eq, ChaCha8Rng};
use linprog::{solve, ConstraintSense, LpProblem, LpStatus, Solver};

/// A random LP that is feasible (the origin satisfies every row) and
/// bounded (every variable lives in `[0, 1]`).
#[derive(Debug, Clone)]
struct RandomLp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

impl RandomLp {
    fn build(&self) -> LpProblem {
        let n = self.objective.len();
        let mut lp = LpProblem::new(n);
        lp.set_objective(self.objective.clone()).unwrap();
        for (coeffs, rhs) in &self.rows {
            let terms: Vec<(usize, f64)> =
                coeffs.iter().enumerate().map(|(j, &a)| (j, a)).collect();
            lp.add_constraint(terms, ConstraintSense::Le, *rhs).unwrap();
        }
        for v in 0..n {
            lp.set_bounds(v, 0.0, 1.0).unwrap();
        }
        lp
    }
}

fn random_lp(rng: &mut ChaCha8Rng) -> RandomLp {
    let n = rng.gen_range(2usize..8);
    let m = rng.gen_range(1usize..5);
    let objective = (0..n).map(|_| rng.gen_range(-2.0..2.0f64)).collect();
    let rows = (0..m)
        .map(|_| {
            let coeffs = (0..n).map(|_| rng.gen_range(-2.0..2.0f64)).collect();
            (coeffs, rng.gen_range(0.5..6.0f64))
        })
        .collect();
    RandomLp { objective, rows }
}

/// Like [`random_lp`], but with strictly positive costs (then negated) so
/// the `≤` rows actually bind at the optimum and duals are informative.
fn random_lp_for_duals(rng: &mut ChaCha8Rng) -> RandomLp {
    let n = rng.gen_range(2usize..6);
    let m = rng.gen_range(1usize..4);
    let objective = (0..n).map(|_| -rng.gen_range(0.1..2.0f64)).collect();
    let rows = (0..m)
        .map(|_| {
            let coeffs = (0..n).map(|_| rng.gen_range(0.1..2.0f64)).collect();
            (coeffs, rng.gen_range(0.5..4.0f64))
        })
        .collect();
    RandomLp { objective, rows }
}

#[test]
fn backends_agree_and_are_feasible() {
    run_cases("backends_agree_and_are_feasible", 64, |rng| {
        let rlp = random_lp(rng);
        let lp = rlp.build();
        let spx = solve(&lp, Solver::Simplex).unwrap();
        let ipm = solve(&lp, Solver::InteriorPoint).unwrap();
        prop_assert_eq!(spx.status, LpStatus::Optimal);
        prop_assert_eq!(ipm.status, LpStatus::Optimal);
        let scale = 1.0 + spx.objective.abs();
        prop_assert!(
            (spx.objective - ipm.objective).abs() < 1e-5 * scale,
            "simplex {} vs ipm {}",
            spx.objective,
            ipm.objective
        );
        prop_assert!(lp.max_violation(&spx.x) < 1e-6);
        prop_assert!(lp.max_violation(&ipm.x) < 1e-6);
        Ok(())
    });
}

#[test]
fn objective_scaling_scales_optimum() {
    run_cases("objective_scaling_scales_optimum", 64, |rng| {
        let rlp = random_lp(rng);
        let k = rng.gen_range(0.1..10.0f64);
        let lp = rlp.build();
        let base = solve(&lp, Solver::Simplex).unwrap();

        let mut scaled = rlp.clone();
        for c in &mut scaled.objective {
            *c *= k;
        }
        let scaled_sol = solve(&scaled.build(), Solver::Simplex).unwrap();
        let tol = 1e-6 * (1.0 + base.objective.abs()) * k.max(1.0);
        prop_assert!(
            (scaled_sol.objective - k * base.objective).abs() < tol,
            "scaling by {k}: {} vs {}",
            scaled_sol.objective,
            k * base.objective
        );
        Ok(())
    });
}

#[test]
fn redundant_constraint_changes_nothing() {
    run_cases("redundant_constraint_changes_nothing", 64, |rng| {
        let rlp = random_lp(rng);
        let lp = rlp.build();
        let base = solve(&lp, Solver::Simplex).unwrap();

        // x_j <= 1 already holds through the bounds; summing gives a row
        // that can never bind more tightly than the box.
        let mut lp2 = rlp.build();
        let n = rlp.objective.len();
        lp2.add_constraint(
            (0..n).map(|j| (j, 1.0)).collect(),
            ConstraintSense::Le,
            n as f64 + 1.0,
        )
        .unwrap();
        let with_redundant = solve(&lp2, Solver::Simplex).unwrap();
        prop_assert!(
            (base.objective - with_redundant.objective).abs() < 1e-7 * (1.0 + base.objective.abs())
        );
        Ok(())
    });
}

#[test]
fn optimum_never_exceeds_any_feasible_point() {
    run_cases("optimum_never_exceeds_any_feasible_point", 64, |rng| {
        let rlp = random_lp(rng);
        let lp = rlp.build();
        let sol = solve(&lp, Solver::Simplex).unwrap();
        // The origin is always feasible here, so optimum <= c·0 = 0.
        prop_assert!(sol.objective <= 1e-9);
        Ok(())
    });
}

/// Dual values really are rhs sensitivities: perturbing a binding
/// row's rhs by ε moves the optimum by ≈ yᵢ·ε.
#[test]
fn duals_are_rhs_sensitivities() {
    run_cases("duals_are_rhs_sensitivities", 32, |rng| {
        let rlp = random_lp_for_duals(rng);
        let lp = rlp.build();
        let base = solve(&lp, Solver::Simplex).unwrap();
        prop_assert_eq!(base.status, LpStatus::Optimal);
        let duals = base.duals.clone().expect("simplex must report duals");
        let eps = 1e-4;
        for (i, (coeffs, rhs)) in rlp.rows.iter().enumerate() {
            let mut perturbed = rlp.clone();
            perturbed.rows[i] = (coeffs.clone(), rhs + eps);
            let sol = solve(&perturbed.build(), Solver::Simplex).unwrap();
            if sol.status != LpStatus::Optimal {
                continue;
            }
            let predicted = base.objective + duals[i] * eps;
            // Degenerate bases can break the first-order prediction, so
            // allow a loose band; the sign and magnitude must agree for
            // well-behaved rows.
            prop_assert!(
                (sol.objective - predicted).abs() < 1e-2 * (1.0 + base.objective.abs()),
                "row {i}: predicted {predicted}, got {}",
                sol.objective
            );
            // A <= row in a minimization can only have a nonpositive
            // shadow price: relaxing it cannot hurt.
            prop_assert!(duals[i] <= 1e-7, "dual {} positive", duals[i]);
        }
        Ok(())
    });
}
