//! Differential coverage for the sparse revised simplex: on MPS fixtures,
//! degenerate presolve cases, and randomized instances, the revised
//! backend must agree with the dense simplex oracle and the interior-point
//! method on status, objective, and feasibility — and warm starts must
//! never change the answer.

use detrand::prop::run_cases;
use detrand::{prop_assert, prop_assert_eq, ChaCha8Rng};
use linprog::mps::{parse_mps, write_mps};
use linprog::presolve::presolve_and_solve;
use linprog::revised::solve_revised_from;
use linprog::{solve, solve_from, ConstraintSense, LpProblem, LpStatus, Solver};

/// The MPS reference problem from the `mps_presolve` suite: every row
/// sense and bound type the dialect supports.
fn reference_problem() -> LpProblem {
    let mut lp = LpProblem::new(2);
    lp.set_objective(vec![1.0, 2.0]).unwrap();
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Ge, 1.0)
        .unwrap();
    lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Le, 2.0)
        .unwrap();
    lp.add_constraint(vec![(0, 1.0), (1, 2.0)], ConstraintSense::Eq, 2.0)
        .unwrap();
    lp.set_bounds(0, 0.0, 3.0).unwrap();
    lp.set_bounds(1, 0.0, 5.0).unwrap();
    lp
}

fn assert_backends_agree(lp: &LpProblem, label: &str) {
    let dense = solve(lp, Solver::Simplex).unwrap();
    let revised = solve(lp, Solver::Revised).unwrap();
    assert_eq!(
        revised.status, dense.status,
        "{label}: status mismatch (dense {:?}, revised {:?})",
        dense.status, revised.status
    );
    if dense.status != LpStatus::Optimal {
        return;
    }
    let scale = 1.0 + dense.objective.abs();
    assert!(
        (revised.objective - dense.objective).abs() < 1e-6 * scale,
        "{label}: objective dense {} vs revised {}",
        dense.objective,
        revised.objective
    );
    assert!(
        lp.max_violation(&revised.x) < 1e-6,
        "{label}: revised point violates constraints by {}",
        lp.max_violation(&revised.x)
    );
    let ipm = solve(lp, Solver::InteriorPoint).unwrap();
    assert!(
        (revised.objective - ipm.objective).abs() < 1e-5 * scale,
        "{label}: objective ipm {} vs revised {}",
        ipm.objective,
        revised.objective
    );
}

#[test]
fn revised_matches_oracles_on_mps_fixtures() {
    let lp = reference_problem();
    assert_backends_agree(&lp, "reference problem");

    // Round-trip through the MPS writer/parser and re-check: the revised
    // backend must be insensitive to the serialization detour.
    let text = write_mps(&lp, "REF");
    let back = parse_mps(&text).unwrap();
    assert_backends_agree(&back, "reference problem after MPS round trip");

    let direct = solve(&lp, Solver::Revised).unwrap();
    let round_tripped = solve(&back, Solver::Revised).unwrap();
    assert!(
        (direct.objective - round_tripped.objective).abs() < 1e-8 * (1.0 + direct.objective.abs()),
        "MPS round trip moved the revised objective: {} vs {}",
        direct.objective,
        round_tripped.objective
    );
}

#[test]
fn revised_handles_degenerate_presolve_cases() {
    // All variables fixed by bounds: nothing for the simplex to do but
    // confirm feasibility of the only point.
    let mut fixed = LpProblem::new(2);
    fixed.set_objective(vec![3.0, 4.0]).unwrap();
    fixed
        .add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 10.0)
        .unwrap();
    fixed.set_bounds(0, 1.0, 1.0).unwrap();
    fixed.set_bounds(1, 2.0, 2.0).unwrap();
    assert_backends_agree(&fixed, "fully fixed variables");
    let via_presolve = presolve_and_solve(&fixed, Solver::Revised).unwrap();
    assert_eq!(via_presolve.status, LpStatus::Optimal);
    assert!((via_presolve.objective - 11.0).abs() < 1e-9);

    // Conflicting singleton rows: infeasible, and every backend says so.
    let mut squeezed = LpProblem::new(1);
    squeezed.set_objective(vec![1.0]).unwrap();
    squeezed
        .add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 1.0)
        .unwrap();
    squeezed
        .add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 2.0)
        .unwrap();
    let revised = solve(&squeezed, Solver::Revised).unwrap();
    assert_eq!(revised.status, LpStatus::Infeasible);

    // Redundant duplicated rows make the basis degenerate; termination
    // and agreement must survive the ties.
    let mut degenerate = LpProblem::new(2);
    degenerate.set_objective(vec![-1.0, -1.0]).unwrap();
    for _ in 0..3 {
        degenerate
            .add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 2.0)
            .unwrap();
    }
    degenerate
        .add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 2.0)
        .unwrap();
    assert_backends_agree(&degenerate, "duplicated degenerate rows");

    // The vacuous row presolve emits for row-free reductions.
    let mut vacuous = LpProblem::new(1);
    vacuous.set_objective(vec![1.0]).unwrap();
    vacuous
        .add_constraint(vec![(0, 0.0)], ConstraintSense::Le, 1.0)
        .unwrap();
    vacuous.set_bounds(0, 0.5, 2.0).unwrap();
    assert_backends_agree(&vacuous, "vacuous presolve row");
}

/// The random family from the property suite: feasible at the origin,
/// bounded in `[0,1]^n`.
fn random_lp(rng: &mut ChaCha8Rng) -> LpProblem {
    let n = rng.gen_range(2usize..8);
    let m = rng.gen_range(1usize..5);
    let mut lp = LpProblem::new(n);
    lp.set_objective((0..n).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .unwrap();
    for _ in 0..m {
        let terms: Vec<(usize, f64)> = (0..n).map(|j| (j, rng.gen_range(-2.0..2.0))).collect();
        lp.add_constraint(terms, ConstraintSense::Le, rng.gen_range(0.5..6.0))
            .unwrap();
    }
    for v in 0..n {
        lp.set_bounds(v, 0.0, 1.0).unwrap();
    }
    lp
}

#[test]
fn revised_agrees_with_both_oracles_on_random_instances() {
    run_cases("revised_vs_oracles", 64, |rng| {
        let lp = random_lp(rng);
        let dense = solve(&lp, Solver::Simplex).map_err(|e| e.to_string())?;
        let revised = solve(&lp, Solver::Revised).map_err(|e| e.to_string())?;
        prop_assert_eq!(dense.status, LpStatus::Optimal);
        prop_assert_eq!(revised.status, LpStatus::Optimal);
        let scale = 1.0 + dense.objective.abs();
        prop_assert!(
            (revised.objective - dense.objective).abs() < 1e-6 * scale,
            "dense {} vs revised {}",
            dense.objective,
            revised.objective
        );
        prop_assert!(lp.max_violation(&revised.x) < 1e-6);
        Ok(())
    });
}

#[test]
fn warm_started_solves_match_cold_solves_on_random_instances() {
    run_cases("revised_warm_vs_cold", 48, |rng| {
        // A base instance and a same-shape neighbor (what adjacent sweep
        // points look like): chain the base's basis into the neighbor and
        // demand the cold answer.
        let base = random_lp(rng);
        let mut neighbor = base.clone();
        let nudge = rng.gen_range(-0.2..0.2);
        let n = neighbor.num_vars();
        let mut objective = neighbor.objective().to_vec();
        objective[rng.gen_range(0..n)] += nudge;
        neighbor
            .set_objective(objective)
            .map_err(|e| e.to_string())?;

        let seed = solve_from(&base, None).map_err(|e| e.to_string())?;
        prop_assert_eq!(seed.solution.status, LpStatus::Optimal);
        let Some(basis) = seed.basis else {
            return Ok(()); // no exportable basis (artificial stuck); nothing to chain
        };
        let warm = solve_revised_from(&neighbor, Some(&basis)).map_err(|e| e.to_string())?;
        let cold = solve_revised_from(&neighbor, None).map_err(|e| e.to_string())?;
        prop_assert_eq!(warm.solution.status, cold.solution.status);
        if cold.solution.status == LpStatus::Optimal {
            let scale = 1.0 + cold.solution.objective.abs();
            prop_assert!(
                (warm.solution.objective - cold.solution.objective).abs() < 1e-7 * scale,
                "warm {} vs cold {} (warm_used: {})",
                warm.solution.objective,
                cold.solution.objective,
                warm.warm_used
            );
            prop_assert!(neighbor.max_violation(&warm.solution.x) < 1e-6);
        }
        Ok(())
    });
}
