//! Coverage for the MPS reader/writer and the presolve layer: malformed
//! inputs fail with errors (never panics or silent misparses), empty and
//! degenerate problems resolve outright, and presolve-then-solve agrees
//! with solving the original problem on both backends.

use detrand::prop::run_cases;
use detrand::{prop_assert, ChaCha8Rng};
use linprog::mps::{parse_mps, write_mps};
use linprog::presolve::{presolve, presolve_and_solve, PresolveOutcome};
use linprog::{solve, ConstraintSense, LpProblem, LpStatus, Solver};

/// A 2-variable LP exercising every row sense and bound type the MPS
/// dialect supports: min x0 + 2 x1 s.t. x0 + x1 ≥ 1, x0 − x1 ≤ 2,
/// x0 + 2 x1 = 2, 0 ≤ x0 ≤ 3, x1 free below 5.
fn reference_problem() -> LpProblem {
    let mut lp = LpProblem::new(2);
    lp.set_objective(vec![1.0, 2.0]).unwrap();
    lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Ge, 1.0)
        .unwrap();
    lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Le, 2.0)
        .unwrap();
    lp.add_constraint(vec![(0, 1.0), (1, 2.0)], ConstraintSense::Eq, 2.0)
        .unwrap();
    lp.set_bounds(0, 0.0, 3.0).unwrap();
    lp.set_bounds(1, 0.0, 5.0).unwrap();
    lp
}

#[test]
fn mps_round_trips_and_solves_identically() {
    let lp = reference_problem();
    let text = write_mps(&lp, "REF");
    let back = parse_mps(&text).unwrap();
    assert_eq!(back.num_vars(), lp.num_vars());
    assert_eq!(back.num_constraints(), lp.num_constraints());
    for solver in [Solver::Simplex, Solver::InteriorPoint] {
        let a = solve(&lp, solver).unwrap();
        let b = solve(&back, solver).unwrap();
        assert_eq!(a.status, LpStatus::Optimal, "{solver:?}");
        assert_eq!(b.status, LpStatus::Optimal, "{solver:?}");
        assert!(
            (a.objective - b.objective).abs() < 1e-8 * (1.0 + a.objective.abs()),
            "{solver:?}: {} vs {} after the MPS round trip",
            a.objective,
            b.objective
        );
    }
}

#[test]
fn malformed_mps_inputs_error_instead_of_misparsing() {
    let cases: &[(&str, &str)] = &[
        ("empty input", ""),
        ("no sections", "NAME  X\nENDATA\n"),
        (
            "unknown row in COLUMNS",
            "NAME X\nROWS\n N  COST\n L  R0\nCOLUMNS\n    X0  NOPE  1.0\nRHS\nENDATA\n",
        ),
        (
            "bad number",
            "NAME X\nROWS\n N  COST\n L  R0\nCOLUMNS\n    X0  R0  one\nRHS\nENDATA\n",
        ),
        (
            "RANGES unsupported",
            "NAME X\nROWS\n N  COST\n L  R0\nRANGES\nENDATA\n",
        ),
        (
            "unknown bound tag",
            "NAME X\nROWS\n N  COST\n L  R0\nCOLUMNS\n    X0  R0  1\nRHS\nBOUNDS\n XX BND  X0  1\nENDATA\n",
        ),
        (
            "duplicate objective row",
            "NAME X\nROWS\n N  COST\n N  COST2\nCOLUMNS\nRHS\nENDATA\n",
        ),
        (
            "rhs for unknown row",
            "NAME X\nROWS\n N  COST\n L  R0\nCOLUMNS\n    X0  R0  1\nRHS\n    RHS  R9  1\nENDATA\n",
        ),
    ];
    for (label, text) in cases {
        assert!(
            parse_mps(text).is_err(),
            "{label}: parsed without error:\n{text}"
        );
    }
}

#[test]
fn mps_writer_output_is_stable_and_parseable() {
    // A problem with zero objective coefficients and zero RHS rows —
    // the writer skips those entries and the parser must still accept
    // the result.
    let mut lp = LpProblem::new(2);
    lp.set_objective(vec![0.0, 1.0]).unwrap();
    lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 0.0)
        .unwrap();
    let text = write_mps(&lp, "SPARSE");
    let back = parse_mps(&text).unwrap();
    assert_eq!(back.num_vars(), 2);
    assert_eq!(back.num_constraints(), 1);
    let sol = solve(&back, Solver::Simplex).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
}

#[test]
fn presolve_resolves_degenerate_problems_outright() {
    // All variables fixed: presolve must fully solve the problem.
    let mut fixed = LpProblem::new(2);
    fixed.set_objective(vec![3.0, 4.0]).unwrap();
    fixed.set_bounds(0, 1.0, 1.0).unwrap();
    fixed.set_bounds(1, 2.0, 2.0).unwrap();
    match presolve(&fixed).unwrap() {
        PresolveOutcome::Solved(sol) => {
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_eq!(sol.x, vec![1.0, 2.0]);
            assert!((sol.objective - 11.0).abs() < 1e-12);
        }
        other => panic!("expected Solved, got {other:?}"),
    }

    // An empty row with an impossible RHS: infeasible before any solve.
    let mut infeasible = LpProblem::new(1);
    infeasible
        .add_constraint(Vec::new(), ConstraintSense::Ge, 1.0)
        .unwrap();
    assert!(matches!(
        presolve(&infeasible).unwrap(),
        PresolveOutcome::Infeasible
    ));

    // Conflicting singleton rows: x ≤ 1 and x ≥ 2 squeeze the bounds
    // into an empty interval.
    let mut squeezed = LpProblem::new(1);
    squeezed.set_objective(vec![1.0]).unwrap();
    squeezed
        .add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 1.0)
        .unwrap();
    squeezed
        .add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 2.0)
        .unwrap();
    assert!(matches!(
        presolve(&squeezed).unwrap(),
        PresolveOutcome::Infeasible
    ));

    // A problem with no constraints at all still solves (at its lower
    // bounds, costs being positive).
    let mut unconstrained = LpProblem::new(2);
    unconstrained.set_objective(vec![1.0, 1.0]).unwrap();
    unconstrained.set_bounds(0, 0.5, 4.0).unwrap();
    unconstrained.set_bounds(1, 0.25, 4.0).unwrap();
    let sol = presolve_and_solve(&unconstrained, Solver::Simplex).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - 0.75).abs() < 1e-9, "{}", sol.objective);
    assert_eq!(sol.x.len(), 2, "restore maps back to original variables");
}

/// A random LP in [0,1]^n with Le rows satisfiable at the origin — the
/// same family the backend-agreement property suite uses, plus a few
/// fixed variables and singleton rows so presolve has real work to do.
fn random_presolvable(rng: &mut ChaCha8Rng) -> LpProblem {
    let n = rng.gen_range(2..7usize);
    let m = rng.gen_range(1..5usize);
    let mut lp = LpProblem::new(n);
    lp.set_objective((0..n).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .unwrap();
    for _ in 0..m {
        let terms: Vec<(usize, f64)> = (0..n).map(|j| (j, rng.gen_range(-2.0..2.0))).collect();
        lp.add_constraint(terms, ConstraintSense::Le, rng.gen_range(0.5..6.0))
            .unwrap();
    }
    for v in 0..n {
        lp.set_bounds(v, 0.0, 1.0).unwrap();
    }
    // A fixed variable (substituted out) and a singleton row (folded
    // into bounds) exercise the restore path.
    lp.set_bounds(0, 0.5, 0.5).unwrap();
    if n > 1 {
        lp.add_constraint(vec![(1, 1.0)], ConstraintSense::Le, rng.gen_range(0.3..1.0))
            .unwrap();
    }
    lp
}

#[test]
fn presolve_then_solve_matches_direct_solve_on_both_backends() {
    run_cases("presolve_equivalence", 48, |rng| {
        let lp = random_presolvable(rng);
        for solver in [Solver::Simplex, Solver::InteriorPoint] {
            let direct = solve(&lp, solver).map_err(|e| e.to_string())?;
            let via = presolve_and_solve(&lp, solver).map_err(|e| e.to_string())?;
            prop_assert!(
                direct.status == via.status,
                "{solver:?}: status {:?} vs {:?}",
                direct.status,
                via.status
            );
            if direct.status == LpStatus::Optimal {
                prop_assert!(
                    (direct.objective - via.objective).abs()
                        < 1e-6 * (1.0 + direct.objective.abs()),
                    "{solver:?}: objective {} vs {}",
                    direct.objective,
                    via.objective
                );
                prop_assert!(
                    via.x.len() == lp.num_vars(),
                    "{solver:?}: restored point has wrong arity"
                );
                prop_assert!(
                    lp.max_violation(&via.x) < 1e-6,
                    "{solver:?}: restored point violates the original problem by {}",
                    lp.max_violation(&via.x)
                );
            }
        }
        Ok(())
    });
}
