//! MPS interchange format: read and write linear programs in the classic
//! fixed-field MPS dialect (ROWS / COLUMNS / RHS / BOUNDS sections).
//!
//! This makes the solver instantly testable against any external LP tool
//! and lets the bench harness dump LP-HTA relaxations for offline
//! inspection. Only the features the rest of the crate can express are
//! supported: minimization, `N`/`L`/`G`/`E` rows, and `UP`/`LO`/`FX`/`BV`
//! bounds.

use crate::error::LpError;
use crate::problem::{ConstraintSense, LpProblem};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes a problem to MPS text.
///
/// Row `i` is named `R{i}`, the objective row `COST`, and column `j`
/// `X{j}` — names round-trip through [`parse_mps`].
pub fn write_mps(lp: &LpProblem, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "NAME          {name}");
    let _ = writeln!(out, "ROWS");
    let _ = writeln!(out, " N  COST");
    for (i, c) in lp.constraints().iter().enumerate() {
        let tag = match c.sense {
            ConstraintSense::Le => 'L',
            ConstraintSense::Ge => 'G',
            ConstraintSense::Eq => 'E',
        };
        let _ = writeln!(out, " {tag}  R{i}");
    }

    let _ = writeln!(out, "COLUMNS");
    for j in 0..lp.num_vars() {
        let cj = lp.objective()[j];
        if cj != 0.0 {
            let _ = writeln!(out, "    X{j}  COST  {cj}");
        }
        for (i, c) in lp.constraints().iter().enumerate() {
            for &(col, a) in &c.terms {
                if col == j && a != 0.0 {
                    let _ = writeln!(out, "    X{j}  R{i}  {a}");
                }
            }
        }
    }

    let _ = writeln!(out, "RHS");
    for (i, c) in lp.constraints().iter().enumerate() {
        if c.rhs != 0.0 {
            let _ = writeln!(out, "    RHS  R{i}  {}", c.rhs);
        }
    }

    let _ = writeln!(out, "BOUNDS");
    for (j, b) in lp.bounds().iter().enumerate() {
        if b.lower == b.upper {
            let _ = writeln!(out, " FX BND  X{j}  {}", b.lower);
            continue;
        }
        if b.lower != 0.0 {
            let _ = writeln!(out, " LO BND  X{j}  {}", b.lower);
        }
        if b.upper.is_finite() {
            let _ = writeln!(out, " UP BND  X{j}  {}", b.upper);
        }
    }
    let _ = writeln!(out, "ENDATA");
    out
}

/// Parses MPS text into a problem.
///
/// # Errors
///
/// Returns [`LpError::NumericalFailure`] with a description when the
/// input is not well-formed MPS (unknown row, bad number, missing
/// sections).
pub fn parse_mps(text: &str) -> Result<LpProblem, LpError> {
    let bad = |_why: &'static str| LpError::NumericalFailure("malformed MPS input");

    #[derive(Clone, Copy, PartialEq)]
    enum Section {
        None,
        Rows,
        Columns,
        Rhs,
        Bounds,
    }

    let mut section = Section::None;
    let mut objective_row: Option<String> = None;
    // name -> (sense, order index)
    let mut rows: HashMap<String, (ConstraintSense, usize)> = HashMap::new();
    let mut row_order: Vec<String> = Vec::new();
    // column name -> order index
    let mut cols: HashMap<String, usize> = HashMap::new();
    let mut col_order: Vec<String> = Vec::new();
    // (col, row) -> coeff ; objective separately
    let mut entries: HashMap<(usize, usize), f64> = HashMap::new();
    let mut objective: HashMap<usize, f64> = HashMap::new();
    let mut rhs: HashMap<usize, f64> = HashMap::new();
    // bounds to apply after sizes are known
    let mut bounds: Vec<(String, usize, f64)> = Vec::new();

    for raw in text.lines() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        if !raw.starts_with(' ') {
            let mut words = line.split_whitespace();
            match words.next() {
                Some("NAME") => continue,
                Some("ROWS") => section = Section::Rows,
                Some("COLUMNS") => section = Section::Columns,
                Some("RHS") => section = Section::Rhs,
                Some("BOUNDS") => section = Section::Bounds,
                Some("RANGES") => return Err(bad("RANGES not supported")),
                Some("ENDATA") => break,
                _ => return Err(bad("unknown section")),
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match section {
            Section::None => return Err(bad("data before any section")),
            Section::Rows => {
                let [tag, name] = fields.as_slice() else {
                    return Err(bad("ROWS line needs two fields"));
                };
                match *tag {
                    "N" => objective_row = Some((*name).to_string()),
                    "L" | "G" | "E" => {
                        let sense = match *tag {
                            "L" => ConstraintSense::Le,
                            "G" => ConstraintSense::Ge,
                            _ => ConstraintSense::Eq,
                        };
                        rows.insert((*name).to_string(), (sense, row_order.len()));
                        row_order.push((*name).to_string());
                    }
                    _ => return Err(bad("unknown row tag")),
                }
            }
            Section::Columns => {
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(bad("COLUMNS line needs col + (row, value) pairs"));
                }
                let col_name = fields[0];
                let col = *cols.entry(col_name.to_string()).or_insert_with(|| {
                    col_order.push(col_name.to_string());
                    col_order.len() - 1
                });
                for pair in fields[1..].chunks(2) {
                    let value: f64 = pair[1].parse().map_err(|_| bad("bad number"))?;
                    if Some(pair[0]) == objective_row.as_deref() {
                        *objective.entry(col).or_insert(0.0) += value;
                    } else {
                        let &(_, r) = rows.get(pair[0]).ok_or(bad("unknown row"))?;
                        *entries.entry((col, r)).or_insert(0.0) += value;
                    }
                }
            }
            Section::Rhs => {
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(bad("RHS line needs set + (row, value) pairs"));
                }
                for pair in fields[1..].chunks(2) {
                    let value: f64 = pair[1].parse().map_err(|_| bad("bad number"))?;
                    let &(_, r) = rows.get(pair[0]).ok_or(bad("unknown row"))?;
                    rhs.insert(r, value);
                }
            }
            Section::Bounds => {
                let [tag, _set, col_name, rest @ ..] = fields.as_slice() else {
                    return Err(bad("BOUNDS line too short"));
                };
                let col = *cols.get(*col_name).ok_or(bad("unknown column"))?;
                let value = match (*tag, rest) {
                    ("BV", _) => 1.0,
                    (_, [v]) => v.parse().map_err(|_| bad("bad bound"))?,
                    _ => return Err(bad("bound needs a value")),
                };
                bounds.push(((*tag).to_string(), col, value));
            }
        }
    }

    if objective_row.is_none() {
        return Err(bad("missing N row"));
    }
    if col_order.is_empty() {
        return Err(bad("no columns"));
    }

    let mut lp = LpProblem::new(col_order.len());
    let mut c = vec![0.0; col_order.len()];
    for (col, v) in objective {
        c[col] = v;
    }
    lp.set_objective(c)?;
    for (r, name) in row_order.iter().enumerate() {
        let (sense, _) = rows[name];
        let terms: Vec<(usize, f64)> = entries
            .iter()
            .filter(|((_, row), _)| *row == r)
            .map(|((col, _), v)| (*col, *v))
            .collect();
        lp.add_constraint(terms, sense, rhs.get(&r).copied().unwrap_or(0.0))?;
    }
    for (tag, col, value) in bounds {
        let current = lp.bounds()[col];
        match tag.as_str() {
            "UP" => lp.set_bounds(col, current.lower, value)?,
            "LO" => lp.set_bounds(col, value, current.upper)?,
            "FX" => lp.set_bounds(col, value, value)?,
            "BV" => lp.set_bounds(col, 0.0, 1.0)?,
            _ => return Err(bad("unknown bound tag")),
        }
    }
    Ok(lp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, Solver};

    fn toy() -> LpProblem {
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![-1.0, -2.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Ge, -2.0)
            .unwrap();
        lp.set_bounds(0, 0.0, 3.0).unwrap();
        lp.set_bounds(1, 0.5, 3.0).unwrap();
        lp
    }

    #[test]
    fn round_trip_preserves_optimum() {
        let lp = toy();
        let text = write_mps(&lp, "TOY");
        let parsed = parse_mps(&text).unwrap();
        let a = solve(&lp, Solver::Simplex).unwrap();
        let b = solve(&parsed, Solver::Simplex).unwrap();
        assert!(
            (a.objective - b.objective).abs() < 1e-9,
            "{} vs {}",
            a.objective,
            b.objective
        );
    }

    #[test]
    fn writes_all_sections() {
        let text = write_mps(&toy(), "TOY");
        for section in ["NAME", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA"] {
            assert!(text.contains(section), "missing {section}");
        }
        assert!(text.contains(" L  R0"));
        assert!(text.contains(" G  R1"));
    }

    #[test]
    fn parses_hand_written_mps() {
        let text = "\
NAME          SAMPLE
ROWS
 N  COST
 L  LIM1
 E  EQ1
COLUMNS
    X0  COST  1.0  LIM1  1.0
    X1  COST  2.0  LIM1  1.0
    X1  EQ1  1.0
RHS
    RHS  LIM1  10.0  EQ1  3.0
BOUNDS
 UP BND  X0  8.0
ENDATA
";
        let lp = parse_mps(text).unwrap();
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 2);
        let sol = solve(&lp, Solver::Simplex).unwrap();
        // min x0 + 2 x1 with x1 = 3 fixed by EQ1, x0 >= 0 → 6.
        assert!((sol.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_mps("garbage\n").is_err());
        assert!(
            parse_mps("ROWS\n L  R0\nENDATA\n").is_err(),
            "no N row / columns"
        );
        let unknown_row = "\
NAME X
ROWS
 N  COST
COLUMNS
    X0  NOPE  1.0
ENDATA
";
        assert!(parse_mps(unknown_row).is_err());
    }

    #[test]
    fn binary_bound_is_unit_box() {
        let text = "\
NAME B
ROWS
 N  COST
 L  R0
COLUMNS
    X0  COST  -1.0  R0  1.0
RHS
    RHS  R0  9.0
BOUNDS
 BV BND  X0
ENDATA
";
        let lp = parse_mps(text).unwrap();
        let sol = solve(&lp, Solver::Simplex).unwrap();
        assert!((sol.objective - (-1.0)).abs() < 1e-9);
    }
}
