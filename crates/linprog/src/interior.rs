//! Mehrotra predictor–corrector primal–dual interior-point method.
//!
//! This is the "interior points method" the paper's LP-HTA Step 1 calls for
//! (it cites Karmarkar's polynomial-time algorithm; Mehrotra's
//! predictor–corrector is the modern practical descendant used by every
//! production LP solver). It operates on the same [`StandardForm`]
//! `min cᵀx, Ax = b, 0 ≤ x ≤ u` as the simplex backend:
//!
//! * upper-bounded variables get a slack `w = u − x` with its own dual `s`;
//! * each Newton step reduces to the normal equations `A Θ Aᵀ Δy = r`,
//!   solved by dense Cholesky with adaptive diagonal regularization;
//! * the predictor chooses the centering parameter `σ = (μ_aff/μ)³`, the
//!   corrector re-solves with the second-order complementarity terms.

use crate::error::LpError;
use crate::matrix::{dot, norm_inf, Matrix};
use crate::problem::{LpProblem, LpSolution, LpStatus};
use crate::standard::StandardForm;

/// Tunable parameters of the interior-point solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpmOptions {
    /// Relative feasibility/optimality tolerance.
    pub tolerance: f64,
    /// Hard cap on Newton iterations.
    pub max_iterations: usize,
    /// Fraction of the maximal step actually taken (< 1 keeps iterates
    /// strictly interior).
    pub step_scale: f64,
}

impl Default for IpmOptions {
    fn default() -> Self {
        IpmOptions {
            tolerance: 1e-8,
            max_iterations: 200,
            step_scale: 0.9995,
        }
    }
}

/// Solves `lp` with default options.
///
/// # Errors
///
/// Returns [`LpError::NumericalFailure`] when the normal-equation systems
/// stay singular even after heavy regularization.
///
/// # Examples
///
/// ```
/// use linprog::{LpProblem, ConstraintSense, interior};
///
/// let mut lp = LpProblem::new(2);
/// lp.set_objective(vec![-1.0, -2.0])?;
/// lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)?;
/// lp.set_bounds(0, 0.0, 3.0)?;
/// lp.set_bounds(1, 0.0, 3.0)?;
/// let sol = interior::solve_interior_point(&lp)?;
/// assert!(sol.is_optimal());
/// assert!((sol.objective - (-7.0)).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_interior_point(lp: &LpProblem) -> Result<LpSolution, LpError> {
    solve_interior_point_with(lp, IpmOptions::default())
}

/// Solves `lp` with explicit [`IpmOptions`].
///
/// # Errors
///
/// See [`solve_interior_point`].
pub fn solve_interior_point_with(lp: &LpProblem, opts: IpmOptions) -> Result<LpSolution, LpError> {
    let _timer = mec_obs::span("linprog/interior/solve");
    let sol = solve_inner(lp, opts)?;
    mec_obs::counter_add("linprog/interior/solves", 1);
    mec_obs::counter_add("linprog/interior/iterations", sol.iterations as u64);
    if sol.status == LpStatus::IterationLimit {
        mec_obs::counter_add("linprog/interior/iteration_limit", 1);
    }
    if mec_obs::enabled() {
        mec_obs::observe("linprog/interior/residual", lp.max_violation(&sol.x));
    }
    Ok(sol)
}

fn solve_inner(lp: &LpProblem, opts: IpmOptions) -> Result<LpSolution, LpError> {
    // Once per solve, so it nests under linprog/interior/solve without
    // flooding the flight-recorder ring the way a per-iteration span would.
    let presolve_timer = mec_obs::span("linprog/interior/presolve");
    let sf = StandardForm::from_problem(lp);

    // Presolve: columns fixed at zero (upper bound ~ 0 after the lower-bound
    // shift) have an empty relative interior and would keep the barrier from
    // converging; drop them and scatter zeros back afterwards. LP-HTA
    // produces such columns whenever a site is deadline-infeasible.
    let active: Vec<usize> = (0..sf.num_cols())
        .filter(|&j| sf.upper[j] > 1e-12)
        .collect();
    if active.len() == sf.num_cols() {
        drop(presolve_timer);
        let mut ipm = Ipm::new(&sf, opts);
        return ipm.run(&sf);
    }
    mec_obs::counter_add("linprog/interior/presolve/reduced", 1);

    let m = sf.num_rows();
    let mut a = Matrix::zeros(m, active.len().max(1));
    let mut c = vec![0.0; active.len().max(1)];
    let mut upper = vec![f64::INFINITY; active.len().max(1)];
    for (k, &j) in active.iter().enumerate() {
        for i in 0..m {
            a[(i, k)] = sf.a[(i, j)];
        }
        c[k] = sf.c[j];
        upper[k] = sf.upper[j];
    }
    let reduced = StandardForm {
        a,
        b: sf.b.clone(),
        c,
        upper,
        num_structural: active.len().max(1),
        shift: vec![0.0; active.len().max(1)],
        objective_offset: 0.0,
    };
    drop(presolve_timer);
    let mut ipm = Ipm::new(&reduced, opts);
    let inner = ipm.run(&reduced)?;

    // Scatter back to the full standard-form coordinates.
    let mut x_std = vec![0.0; sf.num_cols()];
    for (k, &j) in active.iter().enumerate() {
        x_std[j] = inner.x.get(k).copied().unwrap_or(0.0);
    }
    let x = sf.recover(&x_std);
    let objective = sf.original_objective(&x_std);
    Ok(LpSolution {
        status: inner.status,
        x,
        objective,
        iterations: inner.iterations,
        duals: inner.duals.clone(),
    })
}

/// One Newton direction `(Δx, Δw, Δy, Δz, Δs)`.
type Direction = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

struct Ipm {
    opts: IpmOptions,
    a: Matrix,
    b: Vec<f64>,
    c: Vec<f64>,
    upper: Vec<f64>,
    n: usize,
    m: usize,
    // Primal and dual iterates.
    x: Vec<f64>,
    w: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    s: Vec<f64>,
    iterations: usize,
}

impl Ipm {
    fn new(sf: &StandardForm, opts: IpmOptions) -> Ipm {
        let m = sf.num_rows();
        let n = sf.num_cols();
        let upper = sf.upper.clone();

        // Simple well-scaled interior starting point.
        let b_scale = 1.0 + norm_inf(&sf.b);
        let mut x = vec![b_scale.max(1.0); n];
        let mut w = vec![0.0; n];
        for j in 0..n {
            if upper[j].is_finite() {
                x[j] = (upper[j] * 0.5).max(upper[j].min(1e-4));
                if x[j] <= 0.0 {
                    x[j] = 1e-8;
                }
                w[j] = (upper[j] - x[j]).max(1e-8);
            }
        }
        let z = vec![1.0 + norm_inf(&sf.c); n];
        let s: Vec<f64> = (0..n)
            .map(|j| {
                if upper[j].is_finite() {
                    1.0 + norm_inf(&sf.c)
                } else {
                    0.0
                }
            })
            .collect();

        Ipm {
            opts,
            a: sf.a.clone(),
            b: sf.b.clone(),
            c: sf.c.clone(),
            upper,
            n,
            m,
            x,
            w,
            y: vec![0.0; m],
            z,
            s,
            iterations: 0,
        }
    }

    fn bounded(&self, j: usize) -> bool {
        self.upper[j].is_finite()
    }

    fn mu(&self) -> f64 {
        let mut total = dot(&self.x, &self.z);
        let mut count = self.n;
        for j in 0..self.n {
            if self.bounded(j) {
                total += self.w[j] * self.s[j];
                count += 1;
            }
        }
        total / count as f64
    }

    fn residuals(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // r_p = b − A x
        let ax = self.a.mul_vec(&self.x);
        let r_p: Vec<f64> = self.b.iter().zip(ax.iter()).map(|(b, a)| b - a).collect();
        // r_u = u − x − w  (bounded columns only)
        let r_u: Vec<f64> = (0..self.n)
            .map(|j| {
                if self.bounded(j) {
                    self.upper[j] - self.x[j] - self.w[j]
                } else {
                    0.0
                }
            })
            .collect();
        // r_d = c − Aᵀy − z + s
        let aty = self.a.mul_vec_transposed(&self.y);
        let r_d: Vec<f64> = (0..self.n)
            .map(|j| self.c[j] - aty[j] - self.z[j] + self.s[j])
            .collect();
        (r_p, r_u, r_d)
    }

    fn converged(&self, r_p: &[f64], r_u: &[f64], r_d: &[f64]) -> bool {
        let tol = self.opts.tolerance;
        let primal_ok = norm_inf(r_p) <= tol * (1.0 + norm_inf(&self.b));
        let upper_ok = norm_inf(r_u) <= tol * (1.0 + norm_inf(&self.upper_finite()));
        let dual_ok = norm_inf(r_d) <= tol * (1.0 + norm_inf(&self.c));
        let p_obj = dot(&self.c, &self.x);
        let d_obj = dot(&self.b, &self.y)
            - (0..self.n)
                .filter(|&j| self.bounded(j))
                .map(|j| self.upper[j] * self.s[j])
                .sum::<f64>();
        let gap_ok = (p_obj - d_obj).abs() <= tol * (1.0 + p_obj.abs());
        primal_ok && upper_ok && dual_ok && gap_ok
    }

    fn upper_finite(&self) -> Vec<f64> {
        self.upper
            .iter()
            .map(|u| if u.is_finite() { *u } else { 0.0 })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn newton_direction(
        &self,
        chol: &Matrix,
        theta_inv: &[f64],
        r_p: &[f64],
        r_u: &[f64],
        r_d: &[f64],
        r_xz: &[f64],
        r_ws: &[f64],
    ) -> Direction {
        // rhs_x[j] = r_d − r_xz/x + (r_ws − s·r_u)/w  (bounded part optional)
        let mut rhs_x = vec![0.0; self.n];
        for j in 0..self.n {
            let mut v = r_d[j] - r_xz[j] / self.x[j];
            if self.bounded(j) {
                v += (r_ws[j] - self.s[j] * r_u[j]) / self.w[j];
            }
            rhs_x[j] = v;
        }
        // Normal equations: (A Θ Aᵀ) Δy = r_p + A Θ rhs_x, Θ = D⁻¹.
        let mut rhs_y = vec![0.0; self.m];
        let scaled: Vec<f64> = (0..self.n).map(|j| theta_inv[j] * rhs_x[j]).collect();
        let a_scaled = self.a.mul_vec(&scaled);
        for i in 0..self.m {
            rhs_y[i] = r_p[i] + a_scaled[i];
        }
        let dy = Matrix::cholesky_solve(chol, &rhs_y);

        // Δx = Θ (AᵀΔy − rhs_x)
        let at_dy = self.a.mul_vec_transposed(&dy);
        let dx: Vec<f64> = (0..self.n)
            .map(|j| theta_inv[j] * (at_dy[j] - rhs_x[j]))
            .collect();

        // Δz = (r_xz − z Δx)/x ; Δw = r_u − Δx ; Δs = (r_ws − s Δw)/w
        let mut dz = vec![0.0; self.n];
        let mut dw = vec![0.0; self.n];
        let mut ds = vec![0.0; self.n];
        for j in 0..self.n {
            dz[j] = (r_xz[j] - self.z[j] * dx[j]) / self.x[j];
            if self.bounded(j) {
                dw[j] = r_u[j] - dx[j];
                ds[j] = (r_ws[j] - self.s[j] * dw[j]) / self.w[j];
            }
        }
        (dx, dw, dy, dz, ds)
    }

    /// Largest `α ∈ (0, 1]` keeping `v + α dv > 0` componentwise over the
    /// positive variables.
    fn max_step(&self, primal: bool, dx: &[f64], dw: &[f64], dz: &[f64], ds: &[f64]) -> f64 {
        let mut alpha = 1.0_f64;
        for j in 0..self.n {
            if primal {
                if dx[j] < 0.0 {
                    alpha = alpha.min(-self.x[j] / dx[j]);
                }
                if self.bounded(j) && dw[j] < 0.0 {
                    alpha = alpha.min(-self.w[j] / dw[j]);
                }
            } else {
                if dz[j] < 0.0 {
                    alpha = alpha.min(-self.z[j] / dz[j]);
                }
                if self.bounded(j) && ds[j] < 0.0 {
                    alpha = alpha.min(-self.s[j] / ds[j]);
                }
            }
        }
        alpha
    }

    fn run(&mut self, sf: &StandardForm) -> Result<LpSolution, LpError> {
        for iter in 0..self.opts.max_iterations {
            self.iterations = iter + 1;
            let (r_p, r_u, r_d) = self.residuals();
            if self.converged(&r_p, &r_u, &r_d) {
                return Ok(self.solution(sf, LpStatus::Optimal));
            }

            // Diagonal scaling D = Z/X + S/W; Θ = D⁻¹ (clamped for safety).
            let mut theta_inv = vec![0.0; self.n];
            for j in 0..self.n {
                let mut d = self.z[j] / self.x[j];
                if self.bounded(j) {
                    d += self.s[j] / self.w[j];
                }
                theta_inv[j] = (1.0 / d).clamp(1e-14, 1e14);
            }

            // Factor A Θ Aᵀ, regularizing on failure. Counters, not spans:
            // this runs every Newton iteration, and per-iteration events
            // would evict the coarse spans from the flight-recorder ring.
            mec_obs::counter_add("linprog/interior/factorizations", 1);
            let mut gram = self.a.scaled_gram(&theta_inv);
            let mut reg = 0.0;
            let chol = loop {
                if let Some(l) = gram.cholesky() {
                    break l;
                }
                mec_obs::counter_add("linprog/interior/regularizations", 1);
                reg = if reg == 0.0 {
                    1e-10 * (1.0 + gram.max_abs())
                } else {
                    reg * 100.0
                };
                if reg > 1e6 * (1.0 + gram.max_abs()) {
                    return Err(LpError::NumericalFailure(
                        "normal equations stayed singular despite regularization",
                    ));
                }
                gram.add_diagonal(reg);
            };

            let mu = self.mu();

            // Predictor (affine-scaling) direction: σ = 0.
            let r_xz_aff: Vec<f64> = (0..self.n).map(|j| -self.x[j] * self.z[j]).collect();
            let r_ws_aff: Vec<f64> = (0..self.n)
                .map(|j| {
                    if self.bounded(j) {
                        -self.w[j] * self.s[j]
                    } else {
                        0.0
                    }
                })
                .collect();
            let (dx_a, dw_a, _dy_a, dz_a, ds_a) =
                self.newton_direction(&chol, &theta_inv, &r_p, &r_u, &r_d, &r_xz_aff, &r_ws_aff);

            let ap = self.max_step(true, &dx_a, &dw_a, &dz_a, &ds_a);
            let ad = self.max_step(false, &dx_a, &dw_a, &dz_a, &ds_a);

            // μ after the affine step → centering parameter σ.
            let mut mu_aff_total = 0.0;
            let mut count = 0usize;
            for j in 0..self.n {
                mu_aff_total += (self.x[j] + ap * dx_a[j]) * (self.z[j] + ad * dz_a[j]);
                count += 1;
                if self.bounded(j) {
                    mu_aff_total += (self.w[j] + ap * dw_a[j]) * (self.s[j] + ad * ds_a[j]);
                    count += 1;
                }
            }
            let mu_aff = (mu_aff_total / count as f64).max(0.0);
            let sigma = if mu > 0.0 {
                (mu_aff / mu).powi(3).clamp(0.0, 1.0)
            } else {
                0.0
            };

            // Corrector: include second-order terms.
            let r_xz: Vec<f64> = (0..self.n)
                .map(|j| sigma * mu - self.x[j] * self.z[j] - dx_a[j] * dz_a[j])
                .collect();
            let r_ws: Vec<f64> = (0..self.n)
                .map(|j| {
                    if self.bounded(j) {
                        sigma * mu - self.w[j] * self.s[j] - dw_a[j] * ds_a[j]
                    } else {
                        0.0
                    }
                })
                .collect();
            let (dx, dw, dy, dz, ds) =
                self.newton_direction(&chol, &theta_inv, &r_p, &r_u, &r_d, &r_xz, &r_ws);

            let ap = (self.opts.step_scale * self.max_step(true, &dx, &dw, &dz, &ds)).min(1.0);
            let ad = (self.opts.step_scale * self.max_step(false, &dx, &dw, &dz, &ds)).min(1.0);

            for j in 0..self.n {
                self.x[j] += ap * dx[j];
                self.z[j] += ad * dz[j];
                if self.bounded(j) {
                    self.w[j] += ap * dw[j];
                    self.s[j] += ad * ds[j];
                }
            }
            for i in 0..self.m {
                self.y[i] += ad * dy[i];
            }
        }
        Ok(self.solution(sf, LpStatus::IterationLimit))
    }

    fn solution(&self, sf: &StandardForm, status: LpStatus) -> LpSolution {
        // Snap tiny interior residue to the bounds before reporting.
        let snapped: Vec<f64> = (0..self.n)
            .map(|j| {
                let mut v = self.x[j];
                if v < 1e-9 {
                    v = 0.0;
                }
                if self.bounded(j) && (self.upper[j] - v).abs() < 1e-9 {
                    v = self.upper[j];
                }
                v
            })
            .collect();
        let x = sf.recover(&snapped);
        let objective = sf.original_objective(&snapped);
        let duals = if status == LpStatus::Optimal {
            Some(self.y.clone())
        } else {
            None
        };
        LpSolution {
            status,
            x,
            objective,
            iterations: self.iterations,
            duals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintSense;
    use crate::simplex::solve_simplex;

    #[test]
    fn agrees_with_simplex_on_triangle() {
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![-1.0, -2.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        lp.set_bounds(0, 0.0, 3.0).unwrap();
        lp.set_bounds(1, 0.0, 3.0).unwrap();
        let ipm = solve_interior_point(&lp).unwrap();
        let spx = solve_simplex(&lp).unwrap();
        assert!(ipm.is_optimal());
        assert!((ipm.objective - spx.objective).abs() < 1e-6);
    }

    #[test]
    fn equality_and_bounds() {
        // min 2x + 3y + z  s.t.  x + y + z = 1, 0 <= each <= 1 → z = 1.
        let mut lp = LpProblem::new(3);
        lp.set_objective(vec![2.0, 3.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintSense::Eq, 1.0)
            .unwrap();
        for v in 0..3 {
            lp.set_bounds(v, 0.0, 1.0).unwrap();
        }
        let sol = solve_interior_point(&lp).unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective - 1.0).abs() < 1e-6);
        assert!((sol.x[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn degenerate_bounds_fixed_variable() {
        // A variable fixed by bounds: 0 <= x <= 0.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![-5.0, -1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 2.0)
            .unwrap();
        lp.set_bounds(0, 0.0, 0.0).unwrap();
        lp.set_bounds(1, 0.0, 5.0).unwrap();
        let sol = solve_interior_point(&lp).unwrap();
        assert!(sol.is_optimal());
        assert!(sol.x[0].abs() < 1e-6);
        assert!((sol.objective - (-2.0)).abs() < 1e-5);
    }

    #[test]
    fn respects_iteration_limit_option() {
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Ge, 1.0)
            .unwrap();
        let opts = IpmOptions {
            max_iterations: 1,
            ..IpmOptions::default()
        };
        let sol = solve_interior_point_with(&lp, opts).unwrap();
        assert_eq!(sol.status, LpStatus::IterationLimit);
    }

    #[test]
    fn iteration_limit_is_recorded_as_an_obs_counter() {
        let _guard = mec_obs::TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        mec_obs::reset();
        mec_obs::set_enabled(true);
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Ge, 1.0)
            .unwrap();
        let opts = IpmOptions {
            max_iterations: 1,
            ..IpmOptions::default()
        };
        let sol = solve_interior_point_with(&lp, opts).unwrap();
        mec_obs::set_enabled(false);
        let snap = mec_obs::snapshot();
        assert_eq!(sol.status, LpStatus::IterationLimit);
        // Other tests may record concurrently while tracing is on, so the
        // counters are lower-bounded rather than matched exactly.
        assert!(
            snap.counter("linprog/interior/iteration_limit")
                .unwrap_or(0)
                >= 1
        );
        assert!(snap.counter("linprog/interior/solves").unwrap_or(0) >= 1);
        assert!(snap.counter("linprog/interior/iterations").unwrap_or(0) >= 1);
    }

    #[test]
    fn larger_random_problem_matches_simplex() {
        // A pseudo-random feasible LP compared against the simplex answer.
        // Deterministic LCG so the test is stable.
        let mut seed = 0x2545f4914f6cdd1d_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 20;
        let m = 8;
        let mut lp = LpProblem::new(n);
        let c: Vec<f64> = (0..n).map(|_| next() * 4.0 - 2.0).collect();
        lp.set_objective(c).unwrap();
        for _ in 0..m {
            let terms: Vec<(usize, f64)> = (0..n).map(|j| (j, next() * 2.0)).collect();
            // rhs large enough to be feasible at x = 0.
            lp.add_constraint(terms, ConstraintSense::Le, 5.0 + next() * 5.0)
                .unwrap();
        }
        for v in 0..n {
            lp.set_bounds(v, 0.0, 1.0).unwrap();
        }
        let ipm = solve_interior_point(&lp).unwrap();
        let spx = solve_simplex(&lp).unwrap();
        assert!(ipm.is_optimal(), "ipm status {:?}", ipm.status);
        assert!(spx.is_optimal());
        assert!(
            (ipm.objective - spx.objective).abs() < 1e-5 * (1.0 + spx.objective.abs()),
            "ipm {} vs simplex {}",
            ipm.objective,
            spx.objective
        );
    }
}
