//! Problem description types: a small modelling layer for linear programs
//! of the form
//!
//! ```text
//! minimize    cᵀ x
//! subject to  aᵢᵀ x  {≤, =, ≥}  bᵢ      for every constraint i
//!             lⱼ ≤ xⱼ ≤ uⱼ               for every variable j
//! ```
//!
//! The builder does not assume any particular solver; both the simplex and
//! the interior-point backends consume the same [`LpProblem`].

use crate::error::LpError;

/// Sense of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintSense {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx = b`
    Eq,
    /// `aᵀx ≥ b`
    Ge,
}

/// One linear constraint row, stored sparsely as `(column, coefficient)`
/// pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficients; columns may appear at most once.
    pub terms: Vec<(usize, f64)>,
    /// Constraint sense.
    pub sense: ConstraintSense,
    /// Right-hand side.
    pub rhs: f64,
}

/// Bounds of one variable. `upper` may be `f64::INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Lower bound (finite).
    pub lower: f64,
    /// Upper bound, possibly `+∞`.
    pub upper: f64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            lower: 0.0,
            upper: f64::INFINITY,
        }
    }
}

/// A linear program in minimization form.
///
/// # Examples
///
/// ```
/// use linprog::{LpProblem, ConstraintSense};
///
/// // minimize  -x - 2y   s.t.  x + y <= 4,  0 <= x,y <= 3
/// let mut lp = LpProblem::new(2);
/// lp.set_objective(vec![-1.0, -2.0]).unwrap();
/// lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0).unwrap();
/// lp.set_bounds(0, 0.0, 3.0).unwrap();
/// lp.set_bounds(1, 0.0, 3.0).unwrap();
/// assert_eq!(lp.num_vars(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    bounds: Vec<Bounds>,
}

impl LpProblem {
    /// Creates a problem with `num_vars` variables, zero objective and
    /// default bounds `0 ≤ x < ∞`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars == 0`.
    pub fn new(num_vars: usize) -> Self {
        assert!(num_vars > 0, "an LP needs at least one variable");
        LpProblem {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
            bounds: vec![Bounds::default(); num_vars],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The variable bounds.
    pub fn bounds(&self) -> &[Bounds] {
        &self.bounds
    }

    /// Sets the full objective vector (minimization).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::DimensionMismatch`] if `c.len() != num_vars`, and
    /// [`LpError::InvalidNumber`] if any coefficient is non-finite.
    pub fn set_objective(&mut self, c: Vec<f64>) -> Result<(), LpError> {
        if c.len() != self.num_vars {
            return Err(LpError::DimensionMismatch {
                expected: self.num_vars,
                got: c.len(),
            });
        }
        if let Some(&bad) = c.iter().find(|v| !v.is_finite()) {
            return Err(LpError::InvalidNumber(bad));
        }
        self.objective = c;
        Ok(())
    }

    /// Sets one objective coefficient.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::VariableOutOfRange`] for a bad index and
    /// [`LpError::InvalidNumber`] for a non-finite coefficient.
    pub fn set_objective_coeff(&mut self, var: usize, coeff: f64) -> Result<(), LpError> {
        if var >= self.num_vars {
            return Err(LpError::VariableOutOfRange {
                var,
                num_vars: self.num_vars,
            });
        }
        if !coeff.is_finite() {
            return Err(LpError::InvalidNumber(coeff));
        }
        self.objective[var] = coeff;
        Ok(())
    }

    /// Adds a constraint row given sparse `(column, coefficient)` terms.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::VariableOutOfRange`] when a term references an
    /// unknown column, [`LpError::DuplicateTerm`] when a column repeats and
    /// [`LpError::InvalidNumber`] when a coefficient or the right-hand side
    /// is non-finite.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(usize, f64)>,
        sense: ConstraintSense,
        rhs: f64,
    ) -> Result<usize, LpError> {
        if !rhs.is_finite() {
            return Err(LpError::InvalidNumber(rhs));
        }
        let mut seen = vec![false; self.num_vars];
        for &(col, coeff) in &terms {
            if col >= self.num_vars {
                return Err(LpError::VariableOutOfRange {
                    var: col,
                    num_vars: self.num_vars,
                });
            }
            if !coeff.is_finite() {
                return Err(LpError::InvalidNumber(coeff));
            }
            if seen[col] {
                return Err(LpError::DuplicateTerm { col });
            }
            seen[col] = true;
        }
        self.constraints.push(Constraint { terms, sense, rhs });
        Ok(self.constraints.len() - 1)
    }

    /// Sets the bounds of one variable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::VariableOutOfRange`] for a bad index,
    /// [`LpError::InvalidNumber`] for a NaN bound or non-finite lower bound,
    /// and [`LpError::InfeasibleBounds`] when `lower > upper`.
    pub fn set_bounds(&mut self, var: usize, lower: f64, upper: f64) -> Result<(), LpError> {
        if var >= self.num_vars {
            return Err(LpError::VariableOutOfRange {
                var,
                num_vars: self.num_vars,
            });
        }
        if lower.is_nan() || upper.is_nan() || !lower.is_finite() && lower != f64::NEG_INFINITY {
            return Err(LpError::InvalidNumber(lower));
        }
        if !lower.is_finite() {
            return Err(LpError::InvalidNumber(lower));
        }
        if lower > upper {
            return Err(LpError::InfeasibleBounds { var, lower, upper });
        }
        self.bounds[var] = Bounds { lower, upper };
        Ok(())
    }

    /// Evaluates the objective at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars);
        crate::matrix::dot(&self.objective, x)
    }

    /// Largest violation of any constraint or bound at `x`; a feasible
    /// point reports a value `≤ tol` for suitable tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars`.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars);
        let mut worst = 0.0_f64;
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j]).sum();
            let v = match c.sense {
                ConstraintSense::Le => lhs - c.rhs,
                ConstraintSense::Ge => c.rhs - lhs,
                ConstraintSense::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(v);
        }
        for (j, b) in self.bounds.iter().enumerate() {
            worst = worst.max(b.lower - x[j]);
            if b.upper.is_finite() {
                worst = worst.max(x[j] - b.upper);
            }
        }
        worst
    }
}

/// Status of a solve attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The iteration limit was reached before convergence.
    IterationLimit,
}

impl std::fmt::Display for LpStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
            LpStatus::IterationLimit => "iteration limit reached",
        };
        f.write_str(s)
    }
}

/// Result of a successful solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Primal point (meaningful when `status == Optimal`).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Iterations used by the backend.
    pub iterations: usize,
    /// Dual values (shadow prices) per constraint row, when the backend
    /// produced them at optimality: `duals[i] ≈ ∂objective/∂rhs_i`. For a
    /// minimization, a binding `≤` capacity row has a nonpositive dual
    /// (more capacity cannot increase the optimum). `None` when the
    /// backend did not derive duals (e.g. after presolve rewrote rows).
    pub duals: Option<Vec<f64>>,
}

impl LpSolution {
    /// True iff the backend proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_everything() {
        let mut lp = LpProblem::new(2);
        assert!(lp.set_objective(vec![1.0]).is_err());
        assert!(lp.set_objective(vec![1.0, f64::NAN]).is_err());
        assert!(lp.set_objective(vec![1.0, 2.0]).is_ok());
        assert!(lp.set_objective_coeff(5, 1.0).is_err());
        assert!(lp
            .add_constraint(vec![(0, 1.0), (0, 2.0)], ConstraintSense::Le, 1.0)
            .is_err());
        assert!(lp
            .add_constraint(vec![(7, 1.0)], ConstraintSense::Le, 1.0)
            .is_err());
        assert!(lp
            .add_constraint(vec![(0, 1.0)], ConstraintSense::Le, f64::INFINITY)
            .is_err());
        assert!(lp.set_bounds(0, 2.0, 1.0).is_err());
        assert!(lp.set_bounds(0, f64::NEG_INFINITY, 1.0).is_err());
        assert!(lp.set_bounds(0, 0.0, f64::INFINITY).is_ok());
    }

    #[test]
    fn violation_is_zero_inside_feasible_region() {
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        lp.set_bounds(0, 0.0, 3.0).unwrap();
        lp.set_bounds(1, 0.0, 3.0).unwrap();
        assert_eq!(lp.max_violation(&[1.0, 1.0]), 0.0);
        assert!(lp.max_violation(&[3.5, 3.0]) > 0.0);
    }

    #[test]
    fn objective_value_is_dot_product() {
        let mut lp = LpProblem::new(3);
        lp.set_objective(vec![1.0, -2.0, 0.5]).unwrap();
        assert_eq!(lp.objective_value(&[2.0, 1.0, 4.0]), 2.0 - 2.0 + 2.0);
    }

    #[test]
    fn status_displays() {
        assert_eq!(LpStatus::Optimal.to_string(), "optimal");
        assert_eq!(LpStatus::Infeasible.to_string(), "infeasible");
    }
}
