//! Basis factorization for the revised simplex: a dense LU decomposition
//! (partial pivoting) of the `m × m` basis matrix, extended between
//! refactorizations by a product-form **eta file**.
//!
//! After a pivot replaces basic column `r` with entering column `a_q`,
//! the new basis is `B' = B · F` where `F` is the identity except column
//! `r = α = B⁻¹ a_q`. Its inverse is the eta matrix `E` (identity except
//! column `r`), so
//!
//! * **FTRAN** `B'⁻¹ v`: LU-solve, then apply the etas oldest → newest;
//! * **BTRAN** `B'⁻ᵀ v`: apply the transposed etas newest → oldest, then
//!   LU-transpose-solve.
//!
//! Etas store only the nonzeros of `α`, so a sparse pivot column costs
//! O(nnz) to record and apply instead of the dense simplex's O(m²)
//! basis-inverse row update. The eta file is bounded by the caller's
//! refactorization interval; [`BasisFactor::refactorize`] rebuilds the LU
//! from scratch and clears it.

use crate::error::LpError;

/// Dense LU factors of an `m × m` matrix with partial (row) pivoting:
/// `P A = L U`, stored packed in one square buffer.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Row-major packed `L` (unit diagonal, below) and `U` (on/above).
    lu: Vec<f64>,
    /// `perm[i]` = source row of permuted row `i`.
    perm: Vec<usize>,
}

/// Pivots smaller than this are treated as singular.
const SINGULAR_TOL: f64 = 1e-12;

impl LuFactors {
    /// Factors a dense row-major `n × n` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::NumericalFailure`] when the matrix is singular
    /// to working precision.
    pub fn factor(n: usize, a: &[f64]) -> Result<LuFactors, LpError> {
        assert_eq!(a.len(), n * n);
        let mut lu = a.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at/below k.
            let mut best = k;
            let mut best_abs = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > best_abs {
                    best = i;
                    best_abs = v;
                }
            }
            if best_abs <= SINGULAR_TOL {
                return Err(LpError::NumericalFailure("singular basis matrix"));
            }
            if best != k {
                perm.swap(k, best);
                for c in 0..n {
                    lu.swap(k * n + c, best * n + c);
                }
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        lu[i * n + c] -= factor * lu[k * n + c];
                    }
                }
            }
        }
        Ok(LuFactors { n, lu, perm })
    }

    /// The identity factorization (empty basis of artificial columns).
    #[must_use]
    pub fn identity(n: usize) -> LuFactors {
        let mut lu = vec![0.0; n * n];
        for i in 0..n {
            lu[i * n + i] = 1.0;
        }
        LuFactors {
            n,
            lu,
            perm: (0..n).collect(),
        }
    }

    /// Solves `A x = v` in place.
    pub fn solve(&self, v: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(v.len(), n);
        // Apply the row permutation: w = P v.
        let mut w: Vec<f64> = self.perm.iter().map(|&p| v[p]).collect();
        // Forward: L y = w (unit diagonal).
        for i in 1..n {
            let mut acc = w[i];
            let row = &self.lu[i * n..i * n + i];
            for (k, &l) in row.iter().enumerate() {
                acc -= l * w[k];
            }
            w[i] = acc;
        }
        // Backward: U x = y.
        for i in (0..n).rev() {
            let mut acc = w[i];
            let row = &self.lu[i * n..(i + 1) * n];
            for (k, &u) in row.iter().enumerate().skip(i + 1) {
                acc -= u * w[k];
            }
            w[i] = acc / row[i];
        }
        v.copy_from_slice(&w);
    }

    /// Solves `Aᵀ x = v` in place.
    pub fn solve_transposed(&self, v: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(v.len(), n);
        let mut w = v.to_vec();
        // Forward: Uᵀ y = v (U is upper, so Uᵀ is lower with the
        // diagonal of U).
        for i in 0..n {
            let mut acc = w[i];
            for k in 0..i {
                acc -= self.lu[k * n + i] * w[k];
            }
            w[i] = acc / self.lu[i * n + i];
        }
        // Backward: Lᵀ z = y (unit diagonal).
        for i in (0..n).rev() {
            let mut acc = w[i];
            for k in (i + 1)..n {
                acc -= self.lu[k * n + i] * w[k];
            }
            w[i] = acc;
        }
        // Undo the permutation: x = Pᵀ z.
        for (i, &p) in self.perm.iter().enumerate() {
            v[p] = w[i];
        }
    }
}

/// One product-form eta: basic position `row` was replaced by a column
/// whose FTRAN image was `α`; only `α`'s nonzeros are stored.
#[derive(Debug, Clone)]
struct Eta {
    row: usize,
    /// `α_row` — the pivot element.
    pivot: f64,
    /// Off-pivot nonzeros of `α` as `(position, value)`.
    entries: Vec<(usize, f64)>,
}

/// An LU factorization of the basis plus the eta file accumulated since
/// the last refactorization.
#[derive(Debug, Clone)]
pub struct BasisFactor {
    lu: LuFactors,
    etas: Vec<Eta>,
    /// Total stored eta nonzeros (pivot + off-pivot), for observability.
    eta_nnz: usize,
}

impl BasisFactor {
    /// The identity basis (all-artificial start).
    #[must_use]
    pub fn identity(m: usize) -> BasisFactor {
        BasisFactor {
            lu: LuFactors::identity(m),
            etas: Vec::new(),
            eta_nnz: 0,
        }
    }

    /// Adopts an existing LU factorization with an empty eta file. Warm
    /// starts use this to reuse the acceptance probe's factorization
    /// instead of factoring the same matrix a second time.
    #[must_use]
    pub fn from_lu(lu: LuFactors) -> BasisFactor {
        BasisFactor {
            lu,
            etas: Vec::new(),
            eta_nnz: 0,
        }
    }

    /// Factors the dense row-major `m × m` basis matrix, clearing the eta
    /// file.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::NumericalFailure`] for a singular basis.
    pub fn refactorize(&mut self, m: usize, basis_dense: &[f64]) -> Result<(), LpError> {
        self.lu = LuFactors::factor(m, basis_dense)?;
        self.etas.clear();
        self.eta_nnz = 0;
        Ok(())
    }

    /// Number of etas accumulated since the last refactorization.
    #[must_use]
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Total nonzeros stored across the eta file.
    #[must_use]
    pub fn eta_nnz(&self) -> usize {
        self.eta_nnz
    }

    /// Records a pivot: basic position `row` was replaced by the column
    /// whose FTRAN image is `alpha`.
    ///
    /// # Panics
    ///
    /// Panics (debug) when the pivot element is numerically zero — the
    /// ratio test guarantees it is not.
    pub fn push_eta(&mut self, row: usize, alpha: &[f64]) {
        let pivot = alpha[row];
        debug_assert!(pivot.abs() > 0.0, "zero pivot reached push_eta");
        let entries: Vec<(usize, f64)> = alpha
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != row && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.eta_nnz += entries.len() + 1;
        self.etas.push(Eta {
            row,
            pivot,
            entries,
        });
    }

    /// FTRAN: `x ← B⁻¹ x` for the current basis.
    pub fn ftran(&self, x: &mut [f64]) {
        self.lu.solve(x);
        for eta in &self.etas {
            let t = x[eta.row];
            if t != 0.0 {
                x[eta.row] = t / eta.pivot;
                for &(i, v) in &eta.entries {
                    x[i] -= (v / eta.pivot) * t;
                }
            }
        }
    }

    /// BTRAN: `x ← B⁻ᵀ x` for the current basis.
    pub fn btran(&self, x: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut acc = x[eta.row];
            for &(i, v) in &eta.entries {
                acc -= v * x[i];
            }
            x[eta.row] = acc / eta.pivot;
        }
        self.lu.solve_transposed(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mul(n: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn lu_solves_forward_and_transposed() {
        let a = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let lu = LuFactors::factor(3, &a).unwrap();
        let mut x = [8.0, -11.0, -3.0];
        lu.solve(&mut x);
        let ax = mul(3, &a, &x);
        for (got, want) in ax.iter().zip([8.0, -11.0, -3.0]) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
        // Transposed solve against Aᵀ y = b.
        let mut y = [1.0, 2.0, 3.0];
        lu.solve_transposed(&mut y);
        let at: Vec<f64> = (0..9).map(|k| a[(k % 3) * 3 + k / 3]).collect();
        let aty = mul(3, &at, &y);
        for (got, want) in aty.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn lu_detects_singularity() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(LuFactors::factor(2, &a).is_err());
    }

    #[test]
    fn eta_updates_track_column_replacement() {
        // Start from B = I, replace position 1 with a = (1, 2, 1)ᵀ:
        // B' = [e0, a, e2]. Check FTRAN/BTRAN against the explicit B'.
        let mut f = BasisFactor::identity(3);
        let mut alpha = [1.0, 2.0, 1.0]; // B⁻¹ a = a for B = I
        f.push_eta(1, &alpha);
        assert_eq!(f.eta_count(), 1);
        assert_eq!(f.eta_nnz(), 3);

        let b_new = [1.0, 1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 1.0, 1.0];
        let v = [3.0, 4.0, 5.0];
        let mut x = v;
        f.ftran(&mut x);
        let bx = mul(3, &b_new, &x);
        for (got, want) in bx.iter().zip(v) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }

        let mut y = v;
        f.btran(&mut y);
        let bt: Vec<f64> = (0..9).map(|k| b_new[(k % 3) * 3 + k / 3]).collect();
        let bty = mul(3, &bt, &y);
        for (got, want) in bty.iter().zip(v) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }

        // A second replacement on top of the first: position 2 with the
        // column whose FTRAN image is alpha2.
        let a2 = [0.5, 0.0, 2.0];
        alpha = a2;
        f.ftran(&mut alpha);
        f.push_eta(2, &alpha);
        let b2 = [1.0, 1.0, 0.5, 0.0, 2.0, 0.0, 0.0, 1.0, 2.0];
        let mut x2 = [1.0, -2.0, 0.5];
        f.ftran(&mut x2);
        let b2x = mul(3, &b2, &x2);
        for (got, want) in b2x.iter().zip([1.0, -2.0, 0.5]) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn refactorize_replaces_the_eta_file() {
        let mut f = BasisFactor::identity(2);
        f.push_eta(0, &[2.0, 1.0]);
        assert_eq!(f.eta_count(), 1);
        let basis = [3.0, 1.0, 1.0, 2.0];
        f.refactorize(2, &basis).unwrap();
        assert_eq!(f.eta_count(), 0);
        assert_eq!(f.eta_nnz(), 0);
        let mut x = [5.0, 5.0];
        f.ftran(&mut x);
        let bx = mul(2, &basis, &x);
        for (got, want) in bx.iter().zip([5.0, 5.0]) {
            assert!((got - want).abs() < 1e-12);
        }
        assert!(f.refactorize(2, &[1.0, 1.0, 1.0, 1.0]).is_err());
    }
}
