//! Dense, row-major matrix and the small amount of numerical linear algebra
//! the LP solvers need: products, transposes, Gauss–Jordan inversion and a
//! Cholesky factorization for the interior-point normal equations.
//!
//! The matrices appearing in the MEC assignment LPs are small (a few hundred
//! rows), so a straightforward dense representation is both simpler and —
//! for these sizes — faster than a sparse one.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use linprog::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.nrows(), 2);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        for r in 0..self.nrows.min(12) {
            write!(f, "  [")?;
            for c in 0..self.ncols.min(12) {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < self.ncols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.ncols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.nrows > 12 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        assert!(nrows > 0 && ncols > 0, "matrix dimensions must be nonzero");
        Matrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let ncols = rows[0].len();
        assert!(ncols > 0, "rows must be nonempty");
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            nrows: rows.len(),
            ncols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "shape does not match data");
        Matrix { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrow of one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.ncols;
        &self.data[start..start + self.ncols]
    }

    /// Mutable borrow of one row as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.ncols;
        &mut self.data[start..start + self.ncols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.nrows).map(|r| self[(r, c)]).collect()
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "dimension mismatch in mul_vec");
        let mut out = vec![0.0; self.nrows];
        for r in 0..self.nrows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            out[r] = acc;
        }
        out
    }

    /// Transposed matrix–vector product `Aᵀ y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.nrows()`.
    pub fn mul_vec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.nrows, "dimension mismatch in mul_vec_transposed");
        let mut out = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let row = self.row(r);
            let yr = y[r];
            if yr == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += a * yr;
            }
        }
        out
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_mat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.ncols, other.nrows, "dimension mismatch in mul_mat");
        let mut out = Matrix::zeros(self.nrows, other.ncols);
        for r in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(r);
                for (o, b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Computes `A Θ Aᵀ` for a diagonal matrix `Θ` given by `theta`,
    /// the workhorse of the interior-point normal equations.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != self.ncols()`.
    pub fn scaled_gram(&self, theta: &[f64]) -> Matrix {
        assert_eq!(theta.len(), self.ncols, "theta length mismatch");
        let m = self.nrows;
        let mut out = Matrix::zeros(m, m);
        // out[i][j] = sum_k A[i][k] * theta[k] * A[j][k]; exploit symmetry.
        for i in 0..m {
            let ri = self.row(i);
            for j in i..m {
                let rj = self.row(j);
                let mut acc = 0.0;
                for k in 0..self.ncols {
                    let aik = ri[k];
                    if aik == 0.0 {
                        continue;
                    }
                    acc += aik * theta[k] * rj[k];
                }
                out[(i, j)] = acc;
                out[(j, i)] = acc;
            }
        }
        out
    }

    /// In-place Cholesky factorization `A = L Lᵀ` of a symmetric
    /// positive-definite matrix; returns the lower-triangular factor.
    ///
    /// # Errors
    ///
    /// Returns `None` when the matrix is not (numerically) positive
    /// definite. Callers typically respond by regularizing the diagonal.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.nrows, self.ncols, "cholesky requires a square matrix");
        let n = self.nrows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `L Lᵀ x = b` given the lower-triangular Cholesky factor `L`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
        let n = l.nrows;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward substitution: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            let row = l.row(i);
            for k in 0..i {
                sum -= row[k] * y[k];
            }
            y[i] = sum / row[i];
        }
        // Backward substitution: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        x
    }

    /// Inverts the matrix with Gauss–Jordan elimination and partial
    /// pivoting. Used for periodic basis refactorization in the simplex.
    ///
    /// # Errors
    ///
    /// Returns `None` when the matrix is (numerically) singular.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.nrows, self.ncols, "inverse requires a square matrix");
        let n = self.nrows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[(col, col)].abs();
            for r in (col + 1)..n {
                let v = a[(r, col)].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p = a[(col, col)];
            for c in 0..n {
                a[(col, c)] /= p;
                inv[(col, c)] /= p;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                if factor == 0.0 {
                    continue;
                }
                for c in 0..n {
                    let ac = a[(col, c)];
                    let ic = inv[(col, c)];
                    a[(r, c)] -= factor * ac;
                    inv[(r, c)] -= factor * ic;
                }
            }
        }
        Some(inv)
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        let ncols = self.ncols;
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        let (a, b) = self.data.split_at_mut(hi * ncols);
        a[lo * ncols..lo * ncols + ncols].swap_with_slice(&mut b[..ncols]);
    }

    /// Adds `value` to every diagonal entry (Tikhonov regularization).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.nrows.min(self.ncols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Maximum absolute entry; zero matrices report `0.0`.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.nrows && c < self.ncols, "index out of bounds");
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.nrows && c < self.ncols, "index out of bounds");
        &mut self.data[r * self.ncols + c]
    }
}

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm of a slice; empty slices report `0.0`.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vector_is_vector() {
        let i = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.mul_vec(&x), x);
    }

    #[test]
    fn from_rows_indexes_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_mat_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul_mat(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn mul_vec_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, -1.0, 4.0]]);
        let y = vec![2.0, 3.0];
        assert_eq!(a.mul_vec_transposed(&y), a.transpose().mul_vec(&y));
    }

    #[test]
    fn scaled_gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 1.0, -1.0]]);
        let theta = vec![2.0, 0.5, 1.0];
        let explicit = {
            let mut d = Matrix::zeros(3, 3);
            for i in 0..3 {
                d[(i, i)] = theta[i];
            }
            a.mul_mat(&d).mul_mat(&a.transpose())
        };
        let fast = a.scaled_gram(&theta);
        for i in 0..2 {
            for j in 0..2 {
                assert!((explicit[(i, j)] - fast[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = M Mᵀ with M well-conditioned is SPD.
        let m = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[0.5, -1.0, 2.5]]);
        let a = m.mul_mat(&m.transpose());
        let l = a.cholesky().expect("SPD matrix must factor");
        let b = vec![1.0, 2.0, 3.0];
        let x = Matrix::cholesky_solve(&l, &b);
        let ax = a.mul_vec(&x);
        for (lhs, rhs) in ax.iter().zip(b.iter()) {
            assert!((lhs - rhs).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().expect("invertible");
        let prod = a.mul_mat(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inverse_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.swap_rows(0, 1);
        assert_eq!(m, Matrix::from_rows(&[&[3.0, 4.0], &[1.0, 2.0]]));
    }

    #[test]
    fn norms_behave() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
