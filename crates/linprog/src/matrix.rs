//! Dense, row-major matrix and the small amount of numerical linear algebra
//! the LP solvers need: products, transposes, Gauss–Jordan inversion and a
//! Cholesky factorization for the interior-point normal equations.
//!
//! The matrices appearing in the MEC assignment LPs are small (a few hundred
//! rows), so a straightforward dense representation is both simpler and —
//! for these sizes — faster than a sparse one.
//!
//! The O(n²)–O(n³) kernels (`transpose`, `mul_mat`, `scaled_gram`,
//! `cholesky`, `inverse`) switch to row-partitioned multi-threaded paths
//! above the size thresholds in [`crate::par`]; every parallel path performs
//! the same per-entry arithmetic in the same order as its serial twin, so
//! results are bit-identical for any thread count.

use crate::par;
use std::fmt;
use std::ops::{Index, IndexMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// A dense, row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use linprog::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.nrows(), 2);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        for r in 0..self.nrows.min(12) {
            write!(f, "  [")?;
            for c in 0..self.ncols.min(12) {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < self.ncols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.ncols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.nrows > 12 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        assert!(nrows > 0 && ncols > 0, "matrix dimensions must be nonzero");
        Matrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let ncols = rows[0].len();
        assert!(ncols > 0, "rows must be nonempty");
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            nrows: rows.len(),
            ncols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "shape does not match data");
        Matrix { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrow of one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.ncols;
        &self.data[start..start + self.ncols]
    }

    /// Mutable borrow of one row as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.ncols;
        &mut self.data[start..start + self.ncols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.nrows).map(|r| self[(r, c)]).collect()
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let workers = par::plan_workers(self.ncols, par::PAR_MIN_ROWS);
        if workers <= 1 {
            self.transpose_serial()
        } else {
            self.transpose_parallel(workers)
        }
    }

    fn transpose_serial(&self) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Parallel transpose: each worker fills a strided share of the output
    /// rows (= input columns). Pure copies, so trivially bit-identical.
    fn transpose_parallel(&self, workers: usize) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        let shared = par::SharedRows::new(&mut t.data, self.nrows);
        let body = move |w: usize| {
            let mut c = w;
            while c < self.ncols {
                // Safety: output row `c` is owned exclusively by worker
                // `c % workers` for the lifetime of the scope.
                let orow = unsafe { shared.row_mut(c) };
                for r in 0..self.nrows {
                    orow[r] = self[(r, c)];
                }
                c += workers;
            }
        };
        par::run_workers(workers, &body);
        t
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "dimension mismatch in mul_vec");
        let mut out = vec![0.0; self.nrows];
        for r in 0..self.nrows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            out[r] = acc;
        }
        out
    }

    /// Transposed matrix–vector product `Aᵀ y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.nrows()`.
    pub fn mul_vec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(
            y.len(),
            self.nrows,
            "dimension mismatch in mul_vec_transposed"
        );
        let mut out = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let row = self.row(r);
            let yr = y[r];
            if yr == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += a * yr;
            }
        }
        out
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_mat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.ncols, other.nrows, "dimension mismatch in mul_mat");
        let workers = par::plan_workers(self.nrows, par::PAR_MIN_ROWS);
        if workers <= 1 {
            self.mul_mat_serial(other)
        } else {
            self.mul_mat_parallel(other, workers)
        }
    }

    fn mul_mat_serial(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.nrows, other.ncols);
        for r in 0..self.nrows {
            Matrix::mul_mat_row(self.row(r), other, out.row_mut(r));
        }
        out
    }

    /// One output row of `A B`: `orow += self_row[k] * B[k][·]` in
    /// increasing `k`. Shared by the serial and parallel paths so their
    /// per-row arithmetic is literally the same code.
    fn mul_mat_row(arow: &[f64], other: &Matrix, orow: &mut [f64]) {
        for (k, &a) in arow.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let brow = other.row(k);
            for (o, b) in orow.iter_mut().zip(brow.iter()) {
                *o += a * b;
            }
        }
    }

    /// Parallel product: output rows are independent, each worker owns a
    /// strided share of them.
    fn mul_mat_parallel(&self, other: &Matrix, workers: usize) -> Matrix {
        let mut out = Matrix::zeros(self.nrows, other.ncols);
        let shared = par::SharedRows::new(&mut out.data, other.ncols);
        let body = move |w: usize| {
            let mut r = w;
            while r < self.nrows {
                // Safety: output row `r` is owned exclusively by worker
                // `r % workers` for the lifetime of the scope.
                let orow = unsafe { shared.row_mut(r) };
                Matrix::mul_mat_row(self.row(r), other, orow);
                r += workers;
            }
        };
        par::run_workers(workers, &body);
        out
    }

    /// Computes `A Θ Aᵀ` for a diagonal matrix `Θ` given by `theta`,
    /// the workhorse of the interior-point normal equations.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != self.ncols()`.
    pub fn scaled_gram(&self, theta: &[f64]) -> Matrix {
        assert_eq!(theta.len(), self.ncols, "theta length mismatch");
        let workers = par::plan_workers(self.nrows, par::PAR_MIN_ROWS);
        if workers <= 1 {
            self.scaled_gram_serial(theta)
        } else {
            self.scaled_gram_parallel(theta, workers)
        }
    }

    fn scaled_gram_serial(&self, theta: &[f64]) -> Matrix {
        let m = self.nrows;
        let mut out = Matrix::zeros(m, m);
        for i in 0..m {
            self.scaled_gram_upper_row(theta, i, out.row_mut(i));
        }
        Matrix::mirror_upper(&mut out);
        out
    }

    /// Fills `out_row[j]` for `j >= i` with
    /// `sum_k A[i][k] * theta[k] * A[j][k]` — one upper-triangle row of the
    /// scaled Gram matrix. Shared by the serial and parallel paths.
    fn scaled_gram_upper_row(&self, theta: &[f64], i: usize, out_row: &mut [f64]) {
        let m = self.nrows;
        let ri = self.row(i);
        for j in i..m {
            let rj = self.row(j);
            let mut acc = 0.0;
            for k in 0..self.ncols {
                let aik = ri[k];
                if aik == 0.0 {
                    continue;
                }
                acc += aik * theta[k] * rj[k];
            }
            out_row[j] = acc;
        }
    }

    /// Copies the strict upper triangle onto the lower one.
    fn mirror_upper(out: &mut Matrix) {
        let m = out.nrows;
        for i in 0..m {
            for j in (i + 1)..m {
                out[(j, i)] = out[(i, j)];
            }
        }
    }

    /// Parallel scaled Gram: workers fill strided upper-triangle rows
    /// (striding balances the shrinking row lengths), then the lower
    /// triangle is mirrored serially. Each entry's accumulation order is
    /// identical to the serial path.
    fn scaled_gram_parallel(&self, theta: &[f64], workers: usize) -> Matrix {
        let m = self.nrows;
        let mut out = Matrix::zeros(m, m);
        {
            let shared = par::SharedRows::new(&mut out.data, m);
            let body = move |w: usize| {
                let mut i = w;
                while i < m {
                    // Safety: output row `i` is owned exclusively by worker
                    // `i % workers` for the lifetime of the scope.
                    let orow = unsafe { shared.row_mut(i) };
                    self.scaled_gram_upper_row(theta, i, orow);
                    i += workers;
                }
            };
            par::run_workers(workers, &body);
        }
        Matrix::mirror_upper(&mut out);
        out
    }

    /// In-place Cholesky factorization `A = L Lᵀ` of a symmetric
    /// positive-definite matrix; returns the lower-triangular factor.
    ///
    /// # Errors
    ///
    /// Returns `None` when the matrix is not (numerically) positive
    /// definite. Callers typically respond by regularizing the diagonal.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.nrows, self.ncols, "cholesky requires a square matrix");
        let workers = par::plan_workers(self.nrows, par::PAR_MIN_FACTOR_ROWS);
        if workers <= 1 {
            self.cholesky_serial()
        } else {
            self.cholesky_parallel(workers)
        }
    }

    fn cholesky_serial(&self) -> Option<Matrix> {
        let n = self.nrows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Parallel Cholesky: a fixed worker team walks the columns together.
    /// Per column `j`, worker 0 produces the diagonal entry, a barrier
    /// publishes it, then each worker fills its strided share of the
    /// below-diagonal entries `l[(i, j)]`, and a second barrier closes the
    /// column. Every entry evaluates the same expression with the same
    /// `k`-order as the serial (row-ordered) factorization — the two
    /// schedules compute entries in different sequence but each entry only
    /// reads entries finished in both, so the result is bit-identical.
    fn cholesky_parallel(&self, workers: usize) -> Option<Matrix> {
        let n = self.nrows;
        let mut l = Matrix::zeros(n, n);
        let failed = AtomicBool::new(false);
        let barrier = Barrier::new(workers);
        {
            let shared = par::SharedRows::new(&mut l.data, n);
            let failed = &failed;
            let barrier = &barrier;
            let body = move |w: usize| {
                for j in 0..n {
                    if w == 0 {
                        // Safety: only worker 0 touches row `j` between the
                        // closing barrier of column j-1 and the barrier below.
                        let lrow_j = unsafe { shared.row_mut(j) };
                        let mut sum = self[(j, j)];
                        for k in 0..j {
                            sum -= lrow_j[k] * lrow_j[k];
                        }
                        if sum <= 0.0 || !sum.is_finite() {
                            failed.store(true, Ordering::Relaxed);
                        } else {
                            lrow_j[j] = sum.sqrt();
                        }
                    }
                    barrier.wait();
                    // All workers observe the flag after the same barrier,
                    // so they abandon the team together (no deadlock).
                    if failed.load(Ordering::Relaxed) {
                        return;
                    }
                    // Safety: row `j` is only read below this point.
                    let lrow_j = unsafe { shared.row(j) };
                    let diag = lrow_j[j];
                    let mut i = j + 1 + w;
                    while i < n {
                        // Safety: row `i` (i > j) is owned by worker
                        // `(i - j - 1) % workers` until the next barrier.
                        let lrow_i = unsafe { shared.row_mut(i) };
                        let mut sum = self[(i, j)];
                        for k in 0..j {
                            sum -= lrow_i[k] * lrow_j[k];
                        }
                        lrow_i[j] = sum / diag;
                        i += workers;
                    }
                    barrier.wait();
                }
            };
            par::run_workers(workers, &body);
        }
        if failed.load(Ordering::Relaxed) {
            None
        } else {
            Some(l)
        }
    }

    /// Solves `L Lᵀ x = b` given the lower-triangular Cholesky factor `L`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
        let n = l.nrows;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward substitution: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            let row = l.row(i);
            for k in 0..i {
                sum -= row[k] * y[k];
            }
            y[i] = sum / row[i];
        }
        // Backward substitution: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        x
    }

    /// Inverts the matrix with Gauss–Jordan elimination and partial
    /// pivoting. Used for periodic basis refactorization in the simplex.
    ///
    /// # Errors
    ///
    /// Returns `None` when the matrix is (numerically) singular.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.nrows, self.ncols, "inverse requires a square matrix");
        let workers = par::plan_workers(self.nrows, par::PAR_MIN_FACTOR_ROWS);
        if workers <= 1 {
            self.inverse_serial()
        } else {
            self.inverse_parallel(workers)
        }
    }

    fn inverse_serial(&self) -> Option<Matrix> {
        let n = self.nrows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[(col, col)].abs();
            for r in (col + 1)..n {
                let v = a[(r, col)].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p = a[(col, col)];
            for c in 0..n {
                a[(col, c)] /= p;
                inv[(col, c)] /= p;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                if factor == 0.0 {
                    continue;
                }
                for c in 0..n {
                    let ac = a[(col, c)];
                    let ic = inv[(col, c)];
                    a[(r, c)] -= factor * ac;
                    inv[(r, c)] -= factor * ic;
                }
            }
        }
        Some(inv)
    }

    /// Parallel Gauss–Jordan inverse: per pivot column, worker 0 performs
    /// the pivot search, row swap and pivot-row normalization (identical
    /// scan order to the serial path, so pivot choices are identical), a
    /// barrier publishes the pivot row, then every worker eliminates its
    /// strided share of the remaining rows with the serial path's exact
    /// per-row arithmetic, and a second barrier closes the column.
    fn inverse_parallel(&self, workers: usize) -> Option<Matrix> {
        let n = self.nrows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        let failed = AtomicBool::new(false);
        let barrier = Barrier::new(workers);
        {
            let sa = par::SharedRows::new(&mut a.data, n);
            let si = par::SharedRows::new(&mut inv.data, n);
            let sa = &sa;
            let si = &si;
            let failed = &failed;
            let barrier = &barrier;
            let body = move |w: usize| {
                for col in 0..n {
                    if w == 0 {
                        // Safety: only worker 0 touches any row between the
                        // closing barrier of col-1 and the barrier below.
                        let mut pivot = col;
                        let mut best = unsafe { sa.row(col) }[col].abs();
                        for r in (col + 1)..n {
                            let v = unsafe { sa.row(r) }[col].abs();
                            if v > best {
                                best = v;
                                pivot = r;
                            }
                        }
                        if best < 1e-12 {
                            failed.store(true, Ordering::Relaxed);
                        } else {
                            if pivot != col {
                                unsafe {
                                    sa.row_mut(pivot).swap_with_slice(sa.row_mut(col));
                                    si.row_mut(pivot).swap_with_slice(si.row_mut(col));
                                }
                            }
                            let arow = unsafe { sa.row_mut(col) };
                            let irow = unsafe { si.row_mut(col) };
                            let p = arow[col];
                            for c in 0..n {
                                arow[c] /= p;
                                irow[c] /= p;
                            }
                        }
                    }
                    barrier.wait();
                    // All workers observe the flag after the same barrier,
                    // so they abandon the team together (no deadlock).
                    if failed.load(Ordering::Relaxed) {
                        return;
                    }
                    // Safety: the pivot row `col` is only read below.
                    let prow_a = unsafe { sa.row(col) };
                    let prow_i = unsafe { si.row(col) };
                    let mut r = w;
                    while r < n {
                        if r != col {
                            // Safety: row `r` is owned by worker
                            // `r % workers` until the next barrier.
                            let arow = unsafe { sa.row_mut(r) };
                            let factor = arow[col];
                            if factor != 0.0 {
                                let irow = unsafe { si.row_mut(r) };
                                for c in 0..n {
                                    arow[c] -= factor * prow_a[c];
                                    irow[c] -= factor * prow_i[c];
                                }
                            }
                        }
                        r += workers;
                    }
                    barrier.wait();
                }
            };
            par::run_workers(workers, &body);
        }
        if failed.load(Ordering::Relaxed) {
            None
        } else {
            Some(inv)
        }
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        let ncols = self.ncols;
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        let (a, b) = self.data.split_at_mut(hi * ncols);
        a[lo * ncols..lo * ncols + ncols].swap_with_slice(&mut b[..ncols]);
    }

    /// Adds `value` to every diagonal entry (Tikhonov regularization).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.nrows.min(self.ncols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Maximum absolute entry; zero matrices report `0.0`.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.nrows && c < self.ncols, "index out of bounds");
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.nrows && c < self.ncols, "index out of bounds");
        &mut self.data[r * self.ncols + c]
    }
}

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm of a slice; empty slices report `0.0`.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vector_is_vector() {
        let i = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.mul_vec(&x), x);
    }

    #[test]
    fn from_rows_indexes_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_mat_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul_mat(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn mul_vec_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, -1.0, 4.0]]);
        let y = vec![2.0, 3.0];
        assert_eq!(a.mul_vec_transposed(&y), a.transpose().mul_vec(&y));
    }

    #[test]
    fn scaled_gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 1.0, -1.0]]);
        let theta = vec![2.0, 0.5, 1.0];
        let explicit = {
            let mut d = Matrix::zeros(3, 3);
            for i in 0..3 {
                d[(i, i)] = theta[i];
            }
            a.mul_mat(&d).mul_mat(&a.transpose())
        };
        let fast = a.scaled_gram(&theta);
        for i in 0..2 {
            for j in 0..2 {
                assert!((explicit[(i, j)] - fast[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = M Mᵀ with M well-conditioned is SPD.
        let m = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[0.5, -1.0, 2.5]]);
        let a = m.mul_mat(&m.transpose());
        let l = a.cholesky().expect("SPD matrix must factor");
        let b = vec![1.0, 2.0, 3.0];
        let x = Matrix::cholesky_solve(&l, &b);
        let ax = a.mul_vec(&x);
        for (lhs, rhs) in ax.iter().zip(b.iter()) {
            assert!((lhs - rhs).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().expect("invertible");
        let prod = a.mul_mat(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inverse_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.swap_rows(0, 1);
        assert_eq!(m, Matrix::from_rows(&[&[3.0, 4.0], &[1.0, 2.0]]));
    }

    #[test]
    fn norms_behave() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    /// Deterministic pseudo-random dense matrix (xorshift, no external RNG).
    fn pseudo_random(nrows: usize, ncols: usize, mut state: u64) -> Matrix {
        let mut data = Vec::with_capacity(nrows * ncols);
        for _ in 0..nrows * ncols {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to roughly [-1, 1] with plenty of mantissa variety.
            data.push((state as f64 / u64::MAX as f64) * 2.0 - 1.0);
        }
        Matrix::from_vec(nrows, ncols, data)
    }

    #[test]
    fn parallel_transpose_is_bit_identical() {
        let m = pseudo_random(97, 113, 0xA11CE);
        for workers in [2, 3, 4] {
            assert_eq!(m.transpose_parallel(workers), m.transpose_serial());
        }
    }

    #[test]
    fn parallel_mul_mat_is_bit_identical() {
        let a = pseudo_random(96, 70, 1);
        let b = pseudo_random(70, 88, 2);
        for workers in [2, 3, 4] {
            assert_eq!(a.mul_mat_parallel(&b, workers), a.mul_mat_serial(&b));
        }
    }

    #[test]
    fn parallel_scaled_gram_is_bit_identical() {
        let a = pseudo_random(90, 120, 3);
        let theta: Vec<f64> = (0..120).map(|k| 0.25 + (k % 17) as f64).collect();
        for workers in [2, 3, 4] {
            assert_eq!(
                a.scaled_gram_parallel(&theta, workers),
                a.scaled_gram_serial(&theta)
            );
        }
    }

    #[test]
    fn parallel_cholesky_is_bit_identical() {
        // M Mᵀ + n·I is comfortably SPD.
        let m = pseudo_random(120, 120, 4);
        let mut spd = m.mul_mat(&m.transpose());
        spd.add_diagonal(120.0);
        let serial = spd.cholesky_serial().expect("SPD must factor");
        for workers in [2, 3, 4] {
            assert_eq!(spd.cholesky_parallel(workers), Some(serial.clone()));
        }
    }

    #[test]
    fn parallel_cholesky_rejects_indefinite_without_deadlock() {
        let mut a = pseudo_random(64, 64, 5);
        // Symmetrize, then force indefiniteness with a negative diagonal.
        a = a.mul_mat(&a.transpose());
        a.add_diagonal(-1e6);
        assert!(a.cholesky_parallel(4).is_none());
        assert!(a.cholesky_serial().is_none());
    }

    #[test]
    fn parallel_inverse_is_bit_identical() {
        let mut m = pseudo_random(110, 110, 6);
        // Diagonal dominance keeps the matrix safely invertible.
        m.add_diagonal(110.0);
        let serial = m.inverse_serial().expect("invertible");
        for workers in [2, 3, 4] {
            assert_eq!(m.inverse_parallel(workers), Some(serial.clone()));
        }
    }

    #[test]
    fn parallel_inverse_detects_singularity_without_deadlock() {
        let mut m = pseudo_random(80, 80, 7);
        // Make row 1 an exact copy of row 0 → rank deficient.
        let row0 = m.row(0).to_vec();
        m.row_mut(1).copy_from_slice(&row0);
        // Singular detection depends on pivot breakdown; a duplicated row
        // guarantees it within the first two columns' eliminations.
        assert_eq!(m.inverse_parallel(4), m.inverse_serial());
    }

    #[test]
    fn public_kernels_match_above_threshold() {
        // Above PAR_MIN_ROWS the public entry points may take the parallel
        // path (depending on the configured thread count); whatever they
        // pick must agree bit-for-bit with the serial reference.
        let a = pseudo_random(par::PAR_MIN_ROWS + 8, par::PAR_MIN_ROWS + 8, 8);
        assert_eq!(a.transpose(), a.transpose_serial());
        assert_eq!(a.mul_mat(&a), a.mul_mat_serial(&a));
        let theta = vec![1.5; a.ncols()];
        assert_eq!(a.scaled_gram(&theta), a.scaled_gram_serial(&theta));
        let mut spd = a.mul_mat(&a.transpose());
        spd.add_diagonal(a.nrows() as f64);
        assert_eq!(spd.cholesky(), spd.cholesky_serial());
        assert_eq!(spd.inverse(), spd.inverse_serial());
    }
}
