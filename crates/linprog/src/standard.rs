//! Conversion of an [`LpProblem`] into the *standard
//! computational form* shared by both solver backends:
//!
//! ```text
//! minimize    cᵀ x
//! subject to  A x = b
//!             0 ≤ xⱼ ≤ uⱼ        (uⱼ may be +∞)
//! ```
//!
//! Lower bounds are shifted away, `≤`/`≥` rows receive slack/surplus
//! columns, and the objective offset caused by the shift is remembered so
//! solutions can be mapped back to the user's variables.

use crate::matrix::Matrix;
use crate::problem::{ConstraintSense, LpProblem};

/// A linear program in standard computational form, plus the bookkeeping
/// needed to translate solutions back to the original problem.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Dense constraint matrix, `m × n_total`.
    pub a: Matrix,
    /// Right-hand side, length `m`.
    pub b: Vec<f64>,
    /// Objective over all columns (structural + slack), length `n_total`.
    pub c: Vec<f64>,
    /// Upper bounds per column (lower bounds are all zero).
    pub upper: Vec<f64>,
    /// Number of structural (user) variables; they occupy the first
    /// `num_structural` columns.
    pub num_structural: usize,
    /// Shift applied to each structural variable (its original lower bound).
    pub shift: Vec<f64>,
    /// Constant added to the standard-form objective to recover the
    /// original objective value.
    pub objective_offset: f64,
}

impl StandardForm {
    /// Builds the standard form of `lp`.
    ///
    /// # Panics
    ///
    /// Panics if the problem has no constraints (the solvers need at least
    /// one row; add a redundant one if necessary).
    pub fn from_problem(lp: &LpProblem) -> StandardForm {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        assert!(m > 0, "standard form requires at least one constraint row");

        let num_slacks = lp
            .constraints()
            .iter()
            .filter(|c| c.sense != ConstraintSense::Eq)
            .count();
        let n_total = n + num_slacks;

        let mut a = Matrix::zeros(m, n_total);
        let mut b = vec![0.0; m];
        let mut c = vec![0.0; n_total];
        let mut upper = vec![f64::INFINITY; n_total];
        let mut shift = vec![0.0; n];

        for (j, bound) in lp.bounds().iter().enumerate() {
            shift[j] = bound.lower;
            upper[j] = if bound.upper.is_finite() {
                bound.upper - bound.lower
            } else {
                f64::INFINITY
            };
        }

        c[..n].copy_from_slice(lp.objective());
        let objective_offset = crate::matrix::dot(lp.objective(), &shift);

        let mut slack_col = n;
        for (i, row) in lp.constraints().iter().enumerate() {
            let mut rhs = row.rhs;
            for &(j, coeff) in &row.terms {
                a[(i, j)] = coeff;
                rhs -= coeff * shift[j];
            }
            match row.sense {
                ConstraintSense::Le => {
                    a[(i, slack_col)] = 1.0;
                    slack_col += 1;
                }
                ConstraintSense::Ge => {
                    a[(i, slack_col)] = -1.0;
                    slack_col += 1;
                }
                ConstraintSense::Eq => {}
            }
            b[i] = rhs;
        }

        StandardForm {
            a,
            b,
            c,
            upper,
            num_structural: n,
            shift,
            objective_offset,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.a.nrows()
    }

    /// Total number of columns (structural + slack).
    pub fn num_cols(&self) -> usize {
        self.a.ncols()
    }

    /// Maps a standard-form point back to the original variable space.
    pub fn recover(&self, x_std: &[f64]) -> Vec<f64> {
        (0..self.num_structural)
            .map(|j| x_std[j] + self.shift[j])
            .collect()
    }

    /// Objective value in the *original* problem for a standard-form point.
    pub fn original_objective(&self, x_std: &[f64]) -> f64 {
        crate::matrix::dot(&self.c, x_std) + self.objective_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintSense, LpProblem};

    fn toy() -> LpProblem {
        // minimize x + y  s.t.  x + 2y >= 4,  x - y = 1,  1 <= x <= 5, y >= 0
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], ConstraintSense::Ge, 4.0)
            .unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Eq, 1.0)
            .unwrap();
        lp.set_bounds(0, 1.0, 5.0).unwrap();
        lp
    }

    #[test]
    fn shapes_and_slacks() {
        let sf = StandardForm::from_problem(&toy());
        assert_eq!(sf.num_rows(), 2);
        // 2 structural + 1 surplus (only the Ge row needs one).
        assert_eq!(sf.num_cols(), 3);
        assert_eq!(sf.num_structural, 2);
        // Surplus column has coefficient -1 in row 0, 0 in row 1.
        assert_eq!(sf.a[(0, 2)], -1.0);
        assert_eq!(sf.a[(1, 2)], 0.0);
    }

    #[test]
    fn lower_bound_shift_adjusts_rhs_and_offset() {
        let sf = StandardForm::from_problem(&toy());
        // x >= 1 shifts rhs: row0 4 - 1 = 3, row1 1 - 1 = 0.
        assert_eq!(sf.b, vec![3.0, 0.0]);
        assert_eq!(sf.shift, vec![1.0, 0.0]);
        assert_eq!(sf.objective_offset, 1.0);
        // x in [1,5] becomes x' in [0,4].
        assert_eq!(sf.upper[0], 4.0);
        assert_eq!(sf.upper[1], f64::INFINITY);
    }

    #[test]
    fn recover_round_trips() {
        let sf = StandardForm::from_problem(&toy());
        let x_std = vec![1.5, 0.0, 0.0];
        let x = sf.recover(&x_std);
        assert_eq!(x, vec![2.5, 0.0]);
        assert!((sf.original_objective(&x_std) - 2.5).abs() < 1e-12);
    }
}
