//! Thread-pool configuration and the scoped-parallelism primitives behind
//! the dense kernels in [`crate::matrix`].
//!
//! The workspace pins no external parallelism crate (the build must work
//! from a vendored, offline dependency set), so the primitives here are
//! built on `std::thread::scope`:
//!
//! * [`run_workers`] — spawn a small worker team for one parallel region;
//!   each worker receives its index and typically processes a strided or
//!   chunked share of the rows.
//! * [`SharedRows`] — an unsafe-but-audited shared view of a mutable
//!   `f64` buffer that lets workers write *disjoint* row ranges without a
//!   lock. Every call site partitions rows statically, so no two workers
//!   ever alias a slot.
//!
//! **Determinism contract:** parallel kernels perform exactly the same
//! per-row floating-point operations in exactly the same order as their
//! serial counterparts — work is split *across* rows, never inside a
//! reduction — so results are bit-identical for any thread count.
//!
//! The global thread count is resolved, in order, from
//! [`set_threads`], the `DSMEC_THREADS` environment variable, and
//! [`std::thread::available_parallelism`].

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Row count below which the one-shot kernels (`mul_mat`, `transpose`,
/// `scaled_gram`) stay serial: below this the spawn overhead dominates.
pub const PAR_MIN_ROWS: usize = 64;

/// Dimension below which the synchronization-heavy factorizations
/// (`cholesky`, `inverse`) stay serial; they pay two barrier waits per
/// column, so they need substantially more work per column to win.
pub const PAR_MIN_FACTOR_ROWS: usize = 192;

/// 0 = "not explicitly configured": fall back to the environment / CPU.
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("DSMEC_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Sets the number of worker threads used by the dense kernels.
/// `0` restores the default (environment / available parallelism).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The number of worker threads the dense kernels will use.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Runs `body(worker_index)` on `n_workers` threads (the last share runs
/// on the calling thread) and joins them all. Panics in workers propagate
/// to the caller after the scope joins.
pub(crate) fn run_workers(n_workers: usize, body: &(dyn Fn(usize) + Sync)) {
    if n_workers <= 1 {
        body(0);
        return;
    }
    std::thread::scope(|scope| {
        for w in 1..n_workers {
            scope.spawn(move || body(w));
        }
        body(0);
    });
}

/// The worker count a kernel over `rows` rows should use: the configured
/// thread count, capped so every worker owns at least a few rows, or 1
/// when `rows` is under `min_rows`.
pub(crate) fn plan_workers(rows: usize, min_rows: usize) -> usize {
    if rows < min_rows {
        return 1;
    }
    threads().min(rows / 8).max(1)
}

/// A shared view of a mutable `f64` buffer, handed to worker threads so
/// each can write its own statically assigned rows without locking.
///
/// # Safety contract
///
/// [`SharedRows::row_mut`] hands out `&mut [f64]` aliases into the same
/// buffer; callers must guarantee that no two workers ever touch the same
/// row between two synchronization points (scope join or barrier). Every
/// use in this crate partitions rows by `row % n_workers` or by contiguous
/// chunks, which satisfies the contract by construction.
pub(crate) struct SharedRows<'a> {
    ptr: *mut f64,
    len: usize,
    row_len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

unsafe impl Sync for SharedRows<'_> {}

impl<'a> SharedRows<'a> {
    /// Wraps `data`, interpreted as rows of `row_len` entries.
    pub(crate) fn new(data: &'a mut [f64], row_len: usize) -> Self {
        debug_assert!(row_len > 0 && data.len().is_multiple_of(row_len));
        SharedRows {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            row_len,
            _marker: PhantomData,
        }
    }

    /// Mutable access to row `r`.
    ///
    /// # Safety
    ///
    /// The caller must ensure no other thread reads or writes row `r`
    /// until the next synchronization point (see the type-level contract).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn row_mut(&self, r: usize) -> &mut [f64] {
        let start = r * self.row_len;
        debug_assert!(start + self.row_len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), self.row_len)
    }

    /// Read-only access to row `r`.
    ///
    /// # Safety
    ///
    /// The caller must ensure no other thread *writes* row `r` until the
    /// next synchronization point.
    pub(crate) unsafe fn row(&self, r: usize) -> &[f64] {
        let start = r * self.row_len;
        debug_assert!(start + self.row_len <= self.len);
        std::slice::from_raw_parts(self.ptr.add(start), self.row_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_config_round_trips() {
        let before = threads();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0); // restore default resolution
        assert!(threads() >= 1);
        let _ = before;
    }

    #[test]
    fn run_workers_covers_all_indices() {
        use std::sync::Mutex;
        let seen = Mutex::new(vec![false; 5]);
        run_workers(5, &|w| {
            seen.lock().unwrap()[w] = true;
        });
        assert!(seen.lock().unwrap().iter().all(|&s| s));
    }

    #[test]
    fn plan_workers_respects_threshold() {
        assert_eq!(plan_workers(10, PAR_MIN_ROWS), 1);
        set_threads(4);
        assert!(plan_workers(1024, PAR_MIN_ROWS) >= 1);
        set_threads(0);
    }

    #[test]
    fn shared_rows_disjoint_writes() {
        let mut data = vec![0.0f64; 8 * 4];
        let shared = SharedRows::new(&mut data, 4);
        run_workers(4, &|w| {
            for r in (w..8).step_by(4) {
                let row = unsafe { shared.row_mut(r) };
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (r * 4 + c) as f64;
                }
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }
}
