//! Two-phase revised simplex with bounded variables.
//!
//! Works on the [`StandardForm`] `min cᵀx, Ax = b, 0 ≤ x ≤ u` produced from
//! an [`LpProblem`]. Phase 1 minimizes the sum of artificial variables to
//! find a feasible basis; phase 2 optimizes the true objective. Nonbasic
//! variables may rest at either bound, and bound flips are handled without
//! basis changes. The basis inverse is maintained explicitly with eta
//! updates and periodically refactorized for numerical hygiene.

use crate::error::LpError;
use crate::matrix::Matrix;
use crate::problem::{LpProblem, LpSolution, LpStatus};
use crate::standard::StandardForm;

const PIVOT_TOL: f64 = 1e-9;
const COST_TOL: f64 = 1e-7;
const FEAS_TOL: f64 = 1e-7;
const REFACTOR_EVERY: usize = 128;
/// After this many consecutive degenerate pivots, switch to Bland's rule.
const BLAND_TRIGGER: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// Solves `lp` with the two-phase revised simplex method.
///
/// # Errors
///
/// Returns [`LpError::NumericalFailure`] when basis refactorization fails
/// irrecoverably. Infeasibility and unboundedness are reported through the
/// returned [`LpSolution::status`], not as errors.
///
/// # Examples
///
/// ```
/// use linprog::{LpProblem, ConstraintSense, simplex};
///
/// // max x + y  (i.e. min -x - y)  s.t.  x + y <= 4, x <= 3, y <= 3
/// let mut lp = LpProblem::new(2);
/// lp.set_objective(vec![-1.0, -1.0])?;
/// lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)?;
/// lp.set_bounds(0, 0.0, 3.0)?;
/// lp.set_bounds(1, 0.0, 3.0)?;
/// let sol = simplex::solve_simplex(&lp)?;
/// assert!(sol.is_optimal());
/// assert!((sol.objective - (-4.0)).abs() < 1e-8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_simplex(lp: &LpProblem) -> Result<LpSolution, LpError> {
    let _timer = mec_obs::span("linprog/simplex/solve");
    let sf = StandardForm::from_problem(lp);
    let mut state = SimplexState::new(&sf);
    let sol = state.run(&sf)?;
    mec_obs::counter_add("linprog/simplex/solves", 1);
    mec_obs::counter_add("linprog/simplex/iterations", sol.iterations as u64);
    mec_obs::counter_add("linprog/simplex/pivots", state.pivots as u64);
    if sol.status == LpStatus::IterationLimit {
        mec_obs::counter_add("linprog/simplex/iteration_limit", 1);
    }
    if mec_obs::enabled() {
        mec_obs::observe("linprog/simplex/residual", lp.max_violation(&sol.x));
    }
    Ok(sol)
}

struct SimplexState {
    /// Full constraint matrix including artificial columns, rows flipped so
    /// that the right-hand side is nonnegative.
    a: Matrix,
    b: Vec<f64>,
    upper: Vec<f64>,
    /// Phase-2 costs over all columns (zero for artificials).
    cost: Vec<f64>,
    /// Phase-1 costs (one for artificials, zero otherwise).
    phase1_cost: Vec<f64>,
    num_real: usize,
    m: usize,
    n_total: usize,
    basis: Vec<usize>,
    state: Vec<VarState>,
    /// +1/−1 per row: whether `new()` flipped it to make the rhs
    /// nonnegative (duals must be unflipped on the way out).
    row_flip: Vec<f64>,
    b_inv: Matrix,
    x_basic: Vec<f64>,
    pivots_since_refactor: usize,
    degenerate_streak: usize,
    iterations: usize,
    /// Basis changes applied across both phases (ratio-test iterations
    /// that only flip a bound are not pivots).
    pivots: usize,
}

impl SimplexState {
    fn new(sf: &StandardForm) -> SimplexState {
        let m = sf.num_rows();
        let num_real = sf.num_cols();
        let n_total = num_real + m;

        let mut a = Matrix::zeros(m, n_total);
        let mut b = sf.b.clone();
        let mut row_flip = vec![1.0; m];
        for i in 0..m {
            let flip = if b[i] < 0.0 { -1.0 } else { 1.0 };
            row_flip[i] = flip;
            b[i] *= flip;
            for j in 0..num_real {
                a[(i, j)] = flip * sf.a[(i, j)];
            }
            a[(i, num_real + i)] = 1.0;
        }

        let mut upper = sf.upper.clone();
        upper.extend(std::iter::repeat_n(f64::INFINITY, m));

        let mut cost = sf.c.clone();
        cost.extend(std::iter::repeat_n(0.0, m));

        let mut phase1_cost = vec![0.0; n_total];
        for item in phase1_cost.iter_mut().skip(num_real) {
            *item = 1.0;
        }

        let basis: Vec<usize> = (num_real..n_total).collect();
        let mut state = vec![VarState::AtLower; n_total];
        for (row, &col) in basis.iter().enumerate() {
            state[col] = VarState::Basic(row);
        }

        SimplexState {
            x_basic: b.clone(),
            a,
            b,
            upper,
            cost,
            phase1_cost,
            num_real,
            m,
            n_total,
            basis,
            state,
            row_flip,
            b_inv: Matrix::identity(m),
            pivots_since_refactor: 0,
            degenerate_streak: 0,
            iterations: 0,
            pivots: 0,
        }
    }

    fn run(&mut self, sf: &StandardForm) -> Result<LpSolution, LpError> {
        let limit = 200 * (self.m + self.n_total).max(100);

        // Phase 1: drive the artificials to zero.
        let p1 = self.optimize(Phase::One, limit)?;
        if p1 == RunOutcome::IterationLimit {
            return Ok(self.solution(sf, LpStatus::IterationLimit));
        }
        let infeas: f64 = self
            .basis
            .iter()
            .enumerate()
            .filter(|&(_, &col)| col >= self.num_real)
            .map(|(row, _)| self.x_basic[row])
            .sum();
        if infeas > FEAS_TOL * (1.0 + crate::matrix::norm_inf(&self.b)) {
            return Ok(self.solution(sf, LpStatus::Infeasible));
        }
        self.drive_out_artificials();
        // Pin artificials to zero for phase 2.
        for j in self.num_real..self.n_total {
            self.upper[j] = 0.0;
        }

        // Phase 2: true objective.
        let p2 = self.optimize(Phase::Two, limit)?;
        let status = match p2 {
            RunOutcome::Optimal => LpStatus::Optimal,
            RunOutcome::Unbounded => LpStatus::Unbounded,
            RunOutcome::IterationLimit => LpStatus::IterationLimit,
        };
        Ok(self.solution(sf, status))
    }

    fn current_cost(&self, phase: Phase) -> &[f64] {
        match phase {
            Phase::One => &self.phase1_cost,
            Phase::Two => &self.cost,
        }
    }

    fn optimize(&mut self, phase: Phase, limit: usize) -> Result<RunOutcome, LpError> {
        loop {
            if self.iterations >= limit {
                return Ok(RunOutcome::IterationLimit);
            }
            self.iterations += 1;

            if self.pivots_since_refactor >= REFACTOR_EVERY {
                self.refactorize()?;
            }

            // Dual prices y = B⁻ᵀ c_B.
            let c_b: Vec<f64> = self
                .basis
                .iter()
                .map(|&col| self.current_cost(phase)[col])
                .collect();
            let y = self.b_inv.mul_vec_transposed(&c_b);

            let use_bland = self.degenerate_streak >= BLAND_TRIGGER;
            let entering = self.price(phase, &y, use_bland);
            let Some((enter_col, _reduced)) = entering else {
                return Ok(RunOutcome::Optimal);
            };

            let col_vec = self.a.col(enter_col);
            let alpha = self.b_inv.mul_vec(&col_vec);
            let from_lower = self.state[enter_col] == VarState::AtLower;

            match self.ratio_test(enter_col, &alpha, from_lower, use_bland) {
                Ratio::Unbounded => {
                    return Ok(match phase {
                        // Phase 1 objective is bounded below by zero, so an
                        // unbounded ray here is a numerical artifact.
                        Phase::One => RunOutcome::IterationLimit,
                        Phase::Two => RunOutcome::Unbounded,
                    });
                }
                Ratio::BoundFlip(t) => {
                    self.apply_bound_flip(enter_col, &alpha, from_lower, t);
                }
                Ratio::Pivot { row, t } => {
                    self.apply_pivot(enter_col, &alpha, from_lower, row, t);
                }
            }
        }
    }

    /// Chooses the entering column; Dantzig rule normally, Bland's rule when
    /// a degenerate streak suggests cycling.
    fn price(&self, phase: Phase, y: &[f64], bland: bool) -> Option<(usize, f64)> {
        let cost = self.current_cost(phase);
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.n_total {
            let dir = match self.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
            };
            // Artificials never re-enter once pinned (upper == 0 at lower).
            if self.upper[j] <= 0.0 && self.state[j] == VarState::AtLower && j >= self.num_real {
                continue;
            }
            let d = cost[j] - crate::matrix::dot(y, &self.a.col(j));
            let improving = d * dir < -COST_TOL;
            if !improving {
                continue;
            }
            if bland {
                return Some((j, d));
            }
            let score = d.abs();
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((j, score));
            }
        }
        best
    }

    fn ratio_test(&self, enter_col: usize, alpha: &[f64], from_lower: bool, bland: bool) -> Ratio {
        // t is how far the entering variable moves away from its bound.
        let mut t_max = self.upper[enter_col];
        let mut leave: Option<usize> = None;

        for i in 0..self.m {
            let a_i = if from_lower { alpha[i] } else { -alpha[i] };
            // Basic value decreases toward 0 when a_i > 0, increases toward
            // its upper bound when a_i < 0.
            let (limit, active) = if a_i > PIVOT_TOL {
                (self.x_basic[i] / a_i, true)
            } else if a_i < -PIVOT_TOL {
                let ub = self.upper[self.basis[i]];
                if ub.is_finite() {
                    ((ub - self.x_basic[i]) / (-a_i), true)
                } else {
                    (f64::INFINITY, false)
                }
            } else {
                (f64::INFINITY, false)
            };
            if !active {
                continue;
            }
            let limit = limit.max(0.0);
            let replace = match leave {
                None => limit < t_max - PIVOT_TOL,
                Some(r) => {
                    limit < t_max - PIVOT_TOL
                        || (limit < t_max + PIVOT_TOL && bland && self.basis[i] < self.basis[r])
                }
            };
            if replace {
                t_max = limit.min(t_max);
                leave = Some(i);
            } else if leave.is_none() && limit <= t_max {
                t_max = limit;
                leave = Some(i);
            }
        }

        if t_max.is_infinite() {
            return Ratio::Unbounded;
        }
        match leave {
            Some(row) if t_max <= self.upper[enter_col] + PIVOT_TOL => {
                if t_max >= self.upper[enter_col] - PIVOT_TOL && self.upper[enter_col].is_finite() {
                    // The entering variable reaches its opposite bound first
                    // (or simultaneously): prefer the cheaper bound flip.
                    if self.upper[enter_col] <= t_max {
                        return Ratio::BoundFlip(self.upper[enter_col]);
                    }
                }
                Ratio::Pivot { row, t: t_max }
            }
            Some(row) => Ratio::Pivot { row, t: t_max },
            None => Ratio::BoundFlip(self.upper[enter_col]),
        }
    }

    fn apply_bound_flip(&mut self, col: usize, alpha: &[f64], from_lower: bool, t: f64) {
        let dir = if from_lower { 1.0 } else { -1.0 };
        for i in 0..self.m {
            self.x_basic[i] -= dir * t * alpha[i];
        }
        self.state[col] = if from_lower {
            VarState::AtUpper
        } else {
            VarState::AtLower
        };
        if t <= PIVOT_TOL {
            self.degenerate_streak += 1;
        } else {
            self.degenerate_streak = 0;
        }
    }

    fn apply_pivot(
        &mut self,
        enter_col: usize,
        alpha: &[f64],
        from_lower: bool,
        row: usize,
        t: f64,
    ) {
        let dir = if from_lower { 1.0 } else { -1.0 };
        let leaving_col = self.basis[row];
        self.pivots += 1;

        // New basic values.
        for i in 0..self.m {
            self.x_basic[i] -= dir * t * alpha[i];
        }
        let enter_value = if from_lower {
            t
        } else {
            self.upper[enter_col] - t
        };
        self.x_basic[row] = enter_value;

        // Leaving variable rests at whichever bound it hit.
        let a_r = if from_lower { alpha[row] } else { -alpha[row] };
        self.state[leaving_col] = if a_r > 0.0 {
            VarState::AtLower
        } else {
            VarState::AtUpper
        };
        self.state[enter_col] = VarState::Basic(row);
        self.basis[row] = enter_col;

        // Eta update of the basis inverse.
        let pivot = alpha[row];
        let b_inv_row: Vec<f64> = self.b_inv.row(row).to_vec();
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = alpha[i] / pivot;
            if factor == 0.0 {
                continue;
            }
            let target = self.b_inv.row_mut(i);
            for (tv, rv) in target.iter_mut().zip(b_inv_row.iter()) {
                *tv -= factor * rv;
            }
        }
        for v in self.b_inv.row_mut(row) {
            *v /= pivot;
        }

        self.pivots_since_refactor += 1;
        if t <= PIVOT_TOL {
            self.degenerate_streak += 1;
        } else {
            self.degenerate_streak = 0;
        }
    }

    /// Pivots zero-valued artificial variables out of the basis where a
    /// nonzero pivot in a real column exists; fully redundant rows keep
    /// their artificial (pinned at zero).
    fn drive_out_artificials(&mut self) {
        for row in 0..self.m {
            if self.basis[row] < self.num_real {
                continue;
            }
            if self.x_basic[row].abs() > FEAS_TOL {
                continue; // handled by the infeasibility check
            }
            let b_inv_row: Vec<f64> = self.b_inv.row(row).to_vec();
            let candidate = (0..self.num_real).find(|&j| {
                matches!(self.state[j], VarState::AtLower | VarState::AtUpper)
                    && crate::matrix::dot(&b_inv_row, &self.a.col(j)).abs() > 1e-7
            });
            if let Some(j) = candidate {
                let alpha = self.b_inv.mul_vec(&self.a.col(j));
                let from_lower = self.state[j] == VarState::AtLower;
                self.apply_pivot(j, &alpha, from_lower, row, 0.0);
                // A degenerate pivot: fix the entering value explicitly.
                let value = match self.state[self.basis[row]] {
                    _ if from_lower => 0.0,
                    _ => self.upper[j],
                };
                self.x_basic[row] = value;
            }
        }
    }

    fn refactorize(&mut self) -> Result<(), LpError> {
        let mut basis_mat = Matrix::zeros(self.m, self.m);
        for (k, &col) in self.basis.iter().enumerate() {
            for i in 0..self.m {
                basis_mat[(i, k)] = self.a[(i, col)];
            }
        }
        let inv = basis_mat.inverse().ok_or(LpError::NumericalFailure(
            "singular basis during refactorization",
        ))?;
        self.b_inv = inv;
        // Recompute basic values from scratch: x_B = B⁻¹ (b − N x_N).
        let mut rhs = self.b.clone();
        for j in 0..self.n_total {
            if self.state[j] == VarState::AtUpper && self.upper[j] > 0.0 {
                let u = self.upper[j];
                for i in 0..self.m {
                    rhs[i] -= self.a[(i, j)] * u;
                }
            }
        }
        self.x_basic = self.b_inv.mul_vec(&rhs);
        self.pivots_since_refactor = 0;
        Ok(())
    }

    fn solution(&self, sf: &StandardForm, status: LpStatus) -> LpSolution {
        // Duals: y = B⁻ᵀ c_B in the flipped row space; undo the row
        // flips so duals refer to the user's right-hand sides.
        let duals = if status == LpStatus::Optimal {
            let c_b: Vec<f64> = self.basis.iter().map(|&col| self.cost[col]).collect();
            let y = self.b_inv.mul_vec_transposed(&c_b);
            Some(
                y.iter()
                    .zip(self.row_flip.iter())
                    .map(|(v, f)| v * f)
                    .collect(),
            )
        } else {
            None
        };
        let mut x_std = vec![0.0; self.num_real];
        for (j, item) in x_std.iter_mut().enumerate() {
            *item = match self.state[j] {
                VarState::Basic(row) => self.x_basic[row].max(0.0),
                VarState::AtLower => 0.0,
                VarState::AtUpper => self.upper[j],
            };
        }
        let x = sf.recover(&x_std);
        let objective = sf.original_objective(&x_std);
        LpSolution {
            status,
            x,
            objective,
            iterations: self.iterations,
            duals,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    One,
    Two,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ratio {
    Pivot { row: usize, t: f64 },
    BoundFlip(f64),
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintSense;

    fn assert_optimal(sol: &LpSolution, objective: f64, tol: f64) {
        assert_eq!(
            sol.status,
            LpStatus::Optimal,
            "expected optimal, got {:?}",
            sol
        );
        assert!(
            (sol.objective - objective).abs() < tol,
            "objective {} != expected {objective}",
            sol.objective
        );
    }

    #[test]
    fn maximize_over_triangle() {
        // min -x - 2y s.t. x + y <= 4, x <= 3, y <= 3. Optimum at (1,3): -7.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![-1.0, -2.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        lp.set_bounds(0, 0.0, 3.0).unwrap();
        lp.set_bounds(1, 0.0, 3.0).unwrap();
        let sol = solve_simplex(&lp).unwrap();
        assert_optimal(&sol, -7.0, 1e-8);
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 2, x - y = 0 → x = y = 1, objective 2.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Eq, 0.0)
            .unwrap();
        let sol = solve_simplex(&lp).unwrap();
        assert_optimal(&sol, 2.0, 1e-8);
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2 simultaneously.
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 2.0)
            .unwrap();
        let sol = solve_simplex(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x s.t. x >= 1, x unbounded above.
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![-1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 1.0)
            .unwrap();
        let sol = solve_simplex(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn lower_bounds_shift() {
        // min x + y s.t. x + y >= 4, x >= 1.5, y >= 0 → objective 4.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Ge, 4.0)
            .unwrap();
        lp.set_bounds(0, 1.5, f64::INFINITY).unwrap();
        let sol = solve_simplex(&lp).unwrap();
        assert_optimal(&sol, 4.0, 1e-8);
        assert!(sol.x[0] >= 1.5 - 1e-9);
    }

    #[test]
    fn upper_bounds_respected() {
        // min -x s.t. x <= 10 (row), 0 <= x <= 2 (bound) → x = 2.
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![-1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 10.0)
            .unwrap();
        lp.set_bounds(0, 0.0, 2.0).unwrap();
        let sol = solve_simplex(&lp).unwrap();
        assert_optimal(&sol, -2.0, 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![-1.0, -1.0]).unwrap();
        for rhs in [2.0, 2.0, 2.0] {
            lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, rhs)
                .unwrap();
        }
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 2.0)
            .unwrap();
        lp.add_constraint(vec![(1, 1.0)], ConstraintSense::Le, 2.0)
            .unwrap();
        let sol = solve_simplex(&lp).unwrap();
        assert_optimal(&sol, -2.0, 1e-8);
    }

    #[test]
    fn transportation_like_problem() {
        // 2 supplies, 3 demands; classic transportation LP.
        // supply: s0 = 20, s1 = 30; demand: 10, 25, 15
        // costs: [[2,3,1],[5,4,8]] → optimal = 10*2 + 25*4 (no) compute:
        // ship s0: d2 (cost1) 15, d0 (2) 5 ; s1: d0 5, d1 25 →
        // 15*1 + 5*2 + 5*5 + 25*4 = 15+10+25+100 = 150. Check alternatives:
        // s0→d0 10(20), s0→d2 10(10), s1→d1 25(100), s1→d2 5(40) = 170. So 150.
        let cost = [2.0, 3.0, 1.0, 5.0, 4.0, 8.0]; // x[i*3+j]
        let mut lp = LpProblem::new(6);
        lp.set_objective(cost.to_vec()).unwrap();
        lp.add_constraint(
            vec![(0, 1.0), (1, 1.0), (2, 1.0)],
            ConstraintSense::Le,
            20.0,
        )
        .unwrap();
        lp.add_constraint(
            vec![(3, 1.0), (4, 1.0), (5, 1.0)],
            ConstraintSense::Le,
            30.0,
        )
        .unwrap();
        lp.add_constraint(vec![(0, 1.0), (3, 1.0)], ConstraintSense::Eq, 10.0)
            .unwrap();
        lp.add_constraint(vec![(1, 1.0), (4, 1.0)], ConstraintSense::Eq, 25.0)
            .unwrap();
        lp.add_constraint(vec![(2, 1.0), (5, 1.0)], ConstraintSense::Eq, 15.0)
            .unwrap();
        let sol = solve_simplex(&lp).unwrap();
        assert_optimal(&sol, 150.0, 1e-7);
    }

    #[test]
    fn assignment_relaxation_is_integral() {
        // LP relaxation of a 3x3 assignment problem has an integral optimum.
        let cost = [4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0];
        let mut lp = LpProblem::new(9);
        lp.set_objective(cost.to_vec()).unwrap();
        for i in 0..3 {
            lp.add_constraint(
                (0..3).map(|j| (i * 3 + j, 1.0)).collect(),
                ConstraintSense::Eq,
                1.0,
            )
            .unwrap();
            lp.add_constraint(
                (0..3).map(|j| (j * 3 + i, 1.0)).collect(),
                ConstraintSense::Eq,
                1.0,
            )
            .unwrap();
        }
        for v in 0..9 {
            lp.set_bounds(v, 0.0, 1.0).unwrap();
        }
        let sol = solve_simplex(&lp).unwrap();
        // Optimal assignment: (0,1)=1, (1,0)? costs: rows are workers.
        // Hungarian: pick 1 + 2 + 2 = 5 via (0,1),(1,0)... (1,0)=2,(2,2)=2 → 5.
        assert_optimal(&sol, 5.0, 1e-7);
        for v in &sol.x {
            assert!(v.abs() < 1e-6 || (v - 1.0).abs() < 1e-6, "fractional {v}");
        }
    }
}
