//! Compressed sparse column (CSC) matrices and the sparse standard form
//! consumed by the revised simplex backend in [`crate::revised`].
//!
//! The HTA relaxation matrix is extremely sparse — every variable appears
//! in one assignment row and at most one capacity row — so the dense
//! `Matrix` in [`crate::standard`] wastes both memory (`m × n` zeros) and
//! time (dense column gathers during pricing). [`CscMatrix`] stores only
//! the nonzeros, column-major, and [`SparseStandardForm`] mirrors the
//! exact semantics of [`crate::standard::StandardForm`] — same slack
//! signs, same lower-bound shift, same objective offset — without ever
//! materialising a dense matrix.
//!
//! The one parallel kernel here ([`CscMatrix::transpose_mul_vec`], used
//! for full pricing) follows the `par` determinism contract: work is
//! split *across* columns, never inside a per-column reduction, so the
//! result is bit-identical for any thread count.

use crate::par::{self, SharedRows, PAR_MIN_ROWS};
use crate::problem::{ConstraintSense, LpProblem};

/// A sparse matrix in compressed-sparse-column form.
///
/// Row indices within each column are strictly increasing; values may be
/// zero only if explicitly stored (builders here never store zeros).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    /// `col_ptr[j]..col_ptr[j + 1]` indexes column `j`'s entries.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CscMatrix {
    /// Builds from per-column `(row, value)` lists. Entries with a zero
    /// value are dropped; rows within a column must be strictly
    /// increasing.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range or non-increasing row index.
    #[must_use]
    pub fn from_columns(nrows: usize, columns: &[Vec<(usize, f64)>]) -> CscMatrix {
        let ncols = columns.len();
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::new();
        let mut vals = Vec::new();
        col_ptr.push(0);
        for col in columns {
            let mut prev: Option<usize> = None;
            for &(r, v) in col {
                assert!(r < nrows, "row {r} out of range ({nrows} rows)");
                assert!(
                    prev.is_none_or(|p| r > p),
                    "rows within a column must be strictly increasing"
                );
                prev = Some(r);
                if v != 0.0 {
                    row_idx.push(r);
                    vals.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            vals,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Column `j` as parallel `(rows, values)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.vals[s..e])
    }

    /// Sparse dot product of column `j` with a dense vector.
    #[must_use]
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&r, &v)| y[r] * v).sum()
    }

    /// Scatters column `j` into a dense vector (overwriting only the
    /// column's nonzero rows; the caller zeroes the buffer).
    pub fn scatter_col(&self, j: usize, out: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            out[r] = v;
        }
    }

    /// `Aᵀ y`: one sparse dot per column. Columns are chunked across the
    /// configured worker threads above the [`PAR_MIN_ROWS`] threshold;
    /// each output element is produced by the same per-column reduction
    /// regardless of thread count (the `par` determinism contract).
    #[must_use]
    pub fn transpose_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.nrows);
        let mut out = vec![0.0; self.ncols];
        let workers = par::plan_workers(self.ncols, PAR_MIN_ROWS);
        if workers <= 1 {
            for (j, o) in out.iter_mut().enumerate() {
                *o = self.col_dot(j, y);
            }
            return out;
        }
        let chunk = self.ncols.div_ceil(workers);
        let shared = SharedRows::new(&mut out, 1);
        par::run_workers(workers, &|w| {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(self.ncols);
            for j in start..end {
                // Disjoint by construction: worker `w` owns exactly
                // columns `start..end`.
                let slot = unsafe { shared.row_mut(j) };
                slot[0] = self.col_dot(j, y);
            }
        });
        out
    }
}

/// The standard form `min cᵀx, Ax = b, 0 ≤ x ≤ u` built sparsely from an
/// [`LpProblem`], semantically identical to
/// [`crate::standard::StandardForm`]: variables are shifted by their lower
/// bounds, `≤` rows gain a `+1` slack, `≥` rows a `−1` slack, equalities
/// none.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseStandardForm {
    /// Constraint matrix over structural + slack columns.
    pub a: CscMatrix,
    /// Right-hand side, adjusted for the lower-bound shift.
    pub b: Vec<f64>,
    /// Objective over all columns (zero for slacks).
    pub c: Vec<f64>,
    /// Upper bounds in shifted space (`+∞` preserved; slacks unbounded).
    pub upper: Vec<f64>,
    /// Number of structural (original) variables.
    pub num_structural: usize,
    /// The shift applied per structural variable (its lower bound).
    pub shift: Vec<f64>,
    /// `c · shift`: added back by [`Self::original_objective`].
    pub objective_offset: f64,
}

impl SparseStandardForm {
    /// Converts a problem to sparse standard form.
    ///
    /// # Panics
    ///
    /// Panics if the problem has no constraints (callers run presolve or
    /// add a vacuous row first, matching the dense path).
    #[must_use]
    pub fn from_problem(lp: &LpProblem) -> SparseStandardForm {
        let m = lp.num_constraints();
        assert!(m > 0, "standard form needs at least one constraint row");
        let n = lp.num_vars();
        let shift: Vec<f64> = lp.bounds().iter().map(|bd| bd.lower).collect();
        let num_slacks = lp
            .constraints()
            .iter()
            .filter(|c| c.sense != ConstraintSense::Eq)
            .count();
        let total = n + num_slacks;

        let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); total];
        let mut b = Vec::with_capacity(m);
        let mut slack = n;
        for (i, row) in lp.constraints().iter().enumerate() {
            let mut rhs = row.rhs;
            // Terms may arrive in any column order; per-column row lists
            // stay sorted because `i` only ever increases.
            for &(j, aij) in &row.terms {
                columns[j].push((i, aij));
                rhs -= aij * shift[j];
            }
            b.push(rhs);
            match row.sense {
                ConstraintSense::Le => {
                    columns[slack].push((i, 1.0));
                    slack += 1;
                }
                ConstraintSense::Ge => {
                    columns[slack].push((i, -1.0));
                    slack += 1;
                }
                ConstraintSense::Eq => {}
            }
        }

        let mut c = vec![0.0; total];
        c[..n].copy_from_slice(lp.objective());
        let mut upper = vec![f64::INFINITY; total];
        for (j, bd) in lp.bounds().iter().enumerate() {
            upper[j] = if bd.upper.is_finite() {
                bd.upper - bd.lower
            } else {
                f64::INFINITY
            };
        }
        let objective_offset = crate::matrix::dot(lp.objective(), &shift);

        SparseStandardForm {
            a: CscMatrix::from_columns(m, &columns),
            b,
            c,
            upper,
            num_structural: n,
            shift,
            objective_offset,
        }
    }

    /// Number of constraint rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.a.nrows()
    }

    /// Number of columns (structural + slacks).
    #[must_use]
    pub fn num_cols(&self) -> usize {
        self.a.ncols()
    }

    /// Maps a standard-form point back to the original variable space.
    ///
    /// # Panics
    ///
    /// Panics if `x_std` has fewer than `num_structural` entries.
    #[must_use]
    pub fn recover(&self, x_std: &[f64]) -> Vec<f64> {
        (0..self.num_structural)
            .map(|j| x_std[j] + self.shift[j])
            .collect()
    }

    /// The original objective value at a standard-form point.
    #[must_use]
    pub fn original_objective(&self, x_std: &[f64]) -> f64 {
        let direct: f64 = (0..self.num_structural).map(|j| self.c[j] * x_std[j]).sum();
        direct + self.objective_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardForm;

    fn sample_lp() -> LpProblem {
        // min x − 2y + z, x + y ≤ 4, y − z ≥ −1, x + z = 2,
        // 1 ≤ x ≤ 3, 0 ≤ y ≤ 2, z free above 0.5.
        let mut lp = LpProblem::new(3);
        lp.set_objective(vec![1.0, -2.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        lp.add_constraint(vec![(1, 1.0), (2, -1.0)], ConstraintSense::Ge, -1.0)
            .unwrap();
        lp.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        lp.set_bounds(0, 1.0, 3.0).unwrap();
        lp.set_bounds(1, 0.0, 2.0).unwrap();
        lp.set_bounds(2, 0.5, f64::INFINITY).unwrap();
        lp
    }

    #[test]
    fn csc_round_trips_columns() {
        let cols = vec![
            vec![(0, 1.0), (2, -3.0)],
            vec![],
            vec![(1, 2.0), (2, 0.0)], // explicit zero dropped
        ];
        let a = CscMatrix::from_columns(3, &cols);
        assert_eq!((a.nrows(), a.ncols(), a.nnz()), (3, 3, 3));
        assert_eq!(a.col(0), (&[0usize, 2][..], &[1.0, -3.0][..]));
        assert_eq!(a.col(1), (&[][..], &[][..]));
        assert_eq!(a.col(2), (&[1usize][..], &[2.0][..]));
        assert_eq!(a.col_dot(0, &[1.0, 1.0, 2.0]), 1.0 - 6.0);
        let mut dense = vec![0.0; 3];
        a.scatter_col(0, &mut dense);
        assert_eq!(dense, vec![1.0, 0.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn csc_rejects_unsorted_rows() {
        let _ = CscMatrix::from_columns(3, &[vec![(2, 1.0), (0, 1.0)]]);
    }

    #[test]
    fn transpose_mul_matches_serial_for_any_worker_count() {
        let cols: Vec<Vec<(usize, f64)>> = (0..200)
            .map(|j| {
                let start = j % 31;
                (start..(start + 5).min(37))
                    .map(|r| (r, ((j * r + 1) as f64).sin() + 1.5))
                    .collect()
            })
            .collect();
        let a = CscMatrix::from_columns(37, &cols);
        let y: Vec<f64> = (0..37).map(|i| (i as f64).cos()).collect();
        let serial: Vec<f64> = (0..a.ncols()).map(|j| a.col_dot(j, &y)).collect();
        par::set_threads(4);
        let parallel = a.transpose_mul_vec(&y);
        par::set_threads(0);
        assert_eq!(serial, parallel, "bit-identical per the par contract");
    }

    #[test]
    fn sparse_standard_form_matches_dense() {
        let lp = sample_lp();
        let dense = StandardForm::from_problem(&lp);
        let sparse = SparseStandardForm::from_problem(&lp);
        assert_eq!(sparse.num_rows(), dense.num_rows());
        assert_eq!(sparse.num_cols(), dense.num_cols());
        assert_eq!(sparse.num_structural, dense.num_structural);
        assert_eq!(sparse.b, dense.b);
        assert_eq!(sparse.c, dense.c);
        assert_eq!(sparse.upper, dense.upper);
        assert_eq!(sparse.shift, dense.shift);
        assert_eq!(sparse.objective_offset, dense.objective_offset);
        for j in 0..sparse.num_cols() {
            let mut col = vec![0.0; sparse.num_rows()];
            sparse.a.scatter_col(j, &mut col);
            for i in 0..sparse.num_rows() {
                assert_eq!(col[i], dense.a[(i, j)], "entry ({i}, {j})");
            }
        }
        let x_std = vec![0.5; sparse.num_cols()];
        assert_eq!(sparse.recover(&x_std), dense.recover(&x_std));
        assert!(
            (sparse.original_objective(&x_std) - dense.original_objective(&x_std)).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "at least one constraint")]
    fn sparse_standard_form_rejects_empty() {
        let lp = LpProblem::new(1);
        let _ = SparseStandardForm::from_problem(&lp);
    }
}
