//! Presolve: cheap, provably safe problem reductions applied before a
//! solver runs. The reductions implemented here are the classic ones that
//! matter for LP-HTA-shaped problems:
//!
//! * **fixed variables** (`lower == upper`) are substituted out;
//! * **empty rows** are checked for consistency and dropped;
//! * **row singletons** (`a·x ≤ b` with one term) are folded into the
//!   variable's bounds;
//! * **forcing rows** whose bound activity already implies satisfaction
//!   are dropped.
//!
//! [`Presolved::restore`] maps a reduced solution back to the original
//! variable space.

use crate::error::LpError;
use crate::problem::{ConstraintSense, LpProblem, LpSolution, LpStatus};

/// Outcome of presolving: either a reduced problem plus restore data, or
/// an immediate verdict.
#[derive(Debug)]
pub enum PresolveOutcome {
    /// A (possibly) smaller problem remains to be solved.
    Reduced(Presolved),
    /// Presolve proved infeasibility outright.
    Infeasible,
    /// Presolve fixed every variable; the full solution is known.
    Solved(LpSolution),
}

/// A reduced problem together with the bookkeeping to undo the reduction.
#[derive(Debug)]
pub struct Presolved {
    /// The reduced problem.
    pub problem: LpProblem,
    /// For each original variable: either its fixed value or its column
    /// in the reduced problem.
    mapping: Vec<VarFate>,
    /// Objective contribution of the fixed variables.
    fixed_objective: f64,
    original_vars: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarFate {
    Fixed(f64),
    Kept(usize),
}

const FIX_TOL: f64 = 1e-12;

/// Applies the reductions to `lp`.
///
/// # Errors
///
/// Propagates construction errors from rebuilding the reduced problem
/// (none are expected for a valid input).
pub fn presolve(lp: &LpProblem) -> Result<PresolveOutcome, LpError> {
    let n = lp.num_vars();

    // Working copies of the bounds, tightened by singleton rows.
    let mut lower: Vec<f64> = lp.bounds().iter().map(|b| b.lower).collect();
    let mut upper: Vec<f64> = lp.bounds().iter().map(|b| b.upper).collect();
    let mut keep_row = vec![true; lp.num_constraints()];

    for (r, c) in lp.constraints().iter().enumerate() {
        let live: Vec<&(usize, f64)> = c.terms.iter().filter(|(_, a)| a.abs() > 0.0).collect();
        match live.len() {
            0 => {
                // Empty row: either trivially true or infeasible.
                let violated = match c.sense {
                    ConstraintSense::Le => 0.0 > c.rhs + FIX_TOL,
                    ConstraintSense::Ge => 0.0 < c.rhs - FIX_TOL,
                    ConstraintSense::Eq => c.rhs.abs() > FIX_TOL,
                };
                if violated {
                    return Ok(PresolveOutcome::Infeasible);
                }
                keep_row[r] = false;
            }
            1 => {
                // Singleton row folds into bounds.
                let &(j, a) = live[0];
                let b = c.rhs / a;
                match (c.sense, a > 0.0) {
                    (ConstraintSense::Le, true) | (ConstraintSense::Ge, false) => {
                        upper[j] = upper[j].min(b);
                    }
                    (ConstraintSense::Le, false) | (ConstraintSense::Ge, true) => {
                        lower[j] = lower[j].max(b);
                    }
                    (ConstraintSense::Eq, _) => {
                        lower[j] = lower[j].max(b);
                        upper[j] = upper[j].min(b);
                    }
                }
                keep_row[r] = false;
            }
            _ => {}
        }
    }

    for j in 0..n {
        if lower[j] > upper[j] + FIX_TOL {
            return Ok(PresolveOutcome::Infeasible);
        }
    }

    // Decide each variable's fate.
    let mut mapping = Vec::with_capacity(n);
    let mut kept = 0usize;
    let mut fixed_objective = 0.0;
    for j in 0..n {
        if (upper[j] - lower[j]).abs() <= FIX_TOL {
            mapping.push(VarFate::Fixed(lower[j]));
            fixed_objective += lp.objective()[j] * lower[j];
        } else {
            mapping.push(VarFate::Kept(kept));
            kept += 1;
        }
    }

    if kept == 0 {
        // Everything fixed: verify the remaining rows directly.
        let x: Vec<f64> = mapping
            .iter()
            .map(|f| match f {
                VarFate::Fixed(v) => *v,
                VarFate::Kept(_) => unreachable!("kept == 0"),
            })
            .collect();
        if lp.max_violation(&x) > 1e-7 {
            return Ok(PresolveOutcome::Infeasible);
        }
        let objective = lp.objective_value(&x);
        return Ok(PresolveOutcome::Solved(LpSolution {
            status: LpStatus::Optimal,
            x,
            objective,
            iterations: 0,
            duals: None,
        }));
    }

    // Rebuild the reduced problem.
    let mut reduced = LpProblem::new(kept);
    let mut c_red = vec![0.0; kept];
    for j in 0..n {
        if let VarFate::Kept(col) = mapping[j] {
            c_red[col] = lp.objective()[j];
            reduced.set_bounds(col, lower[j], upper[j])?;
        }
    }
    reduced.set_objective(c_red)?;

    for (r, row) in lp.constraints().iter().enumerate() {
        if !keep_row[r] {
            continue;
        }
        let mut rhs = row.rhs;
        let mut terms = Vec::new();
        for &(j, a) in &row.terms {
            match mapping[j] {
                VarFate::Fixed(v) => rhs -= a * v,
                VarFate::Kept(col) => terms.push((col, a)),
            }
        }
        if terms.is_empty() {
            let violated = match row.sense {
                ConstraintSense::Le => 0.0 > rhs + 1e-7,
                ConstraintSense::Ge => 0.0 < rhs - 1e-7,
                ConstraintSense::Eq => rhs.abs() > 1e-7,
            };
            if violated {
                return Ok(PresolveOutcome::Infeasible);
            }
            continue;
        }
        reduced.add_constraint(terms, row.sense, rhs)?;
    }

    // A reduced problem with zero rows still needs one row for the
    // solvers' standard form; add a vacuous one.
    if reduced.num_constraints() == 0 {
        reduced.add_constraint(vec![(0, 0.0)], ConstraintSense::Le, 1.0)?;
    }

    Ok(PresolveOutcome::Reduced(Presolved {
        problem: reduced,
        mapping,
        fixed_objective,
        original_vars: n,
    }))
}

impl Presolved {
    /// Maps a reduced-space solution back to the original variables.
    pub fn restore(&self, reduced: &LpSolution) -> LpSolution {
        let mut x = vec![0.0; self.original_vars];
        for (j, fate) in self.mapping.iter().enumerate() {
            x[j] = match fate {
                VarFate::Fixed(v) => *v,
                VarFate::Kept(col) => reduced.x[*col],
            };
        }
        LpSolution {
            status: reduced.status,
            objective: reduced.objective + self.fixed_objective,
            x,
            iterations: reduced.iterations,
            // Row identities changed during presolve; do not pretend the
            // reduced duals map onto the original rows.
            duals: None,
        }
    }
}

/// The block-angular structure [`detect_blocks`] found: groups of columns
/// that interact only through a small set of coupling rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockStructure {
    /// Column groups, each sorted ascending, ordered by smallest member.
    /// Columns inside a block share at least one *local* row (support ≤
    /// the threshold) with another member; columns in different blocks
    /// only ever meet in coupling rows.
    pub blocks: Vec<Vec<usize>>,
    /// Rows whose support exceeds the threshold — the rows that couple
    /// the blocks together (e.g. the per-station capacity row C3 in the
    /// HTA relaxation, which touches every task of the cluster).
    pub coupling_rows: Vec<usize>,
}

/// Detects block-angular structure: treats every row with at most
/// `max_support` nonzeros as *local* and unions its columns; wider rows
/// are reported as coupling rows. For the HTA cluster relaxation (each
/// task contributes a 3-variable assignment row, devices add narrow
/// capacity rows, and the station capacity row spans the whole cluster)
/// this recovers the per-task/per-device blocks hanging off the single
/// station coupling row.
#[must_use]
pub fn detect_blocks(lp: &LpProblem, max_support: usize) -> BlockStructure {
    let n = lp.num_vars();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut j: usize) -> usize {
        while parent[j] != j {
            parent[j] = parent[parent[j]]; // path halving
            j = parent[j];
        }
        j
    }

    let mut coupling_rows = Vec::new();
    for (r, row) in lp.constraints().iter().enumerate() {
        let live: Vec<usize> = row
            .terms
            .iter()
            .filter(|(_, a)| a.abs() > 0.0)
            .map(|&(j, _)| j)
            .collect();
        if live.len() > max_support {
            coupling_rows.push(r);
            continue;
        }
        for w in live.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                // Union by smaller root keeps block ordering deterministic.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi] = lo;
            }
        }
    }

    let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let root = find(&mut parent, j);
        by_root[root].push(j);
    }
    let blocks: Vec<Vec<usize>> = by_root.into_iter().filter(|b| !b.is_empty()).collect();
    BlockStructure {
        blocks,
        coupling_rows,
    }
}

/// One block of a block-angular problem extracted as a standalone
/// [`LpProblem`] by [`extract_block`], with the column mapping back to
/// the original problem.
#[derive(Debug, Clone)]
pub struct BlockProblem {
    /// The standalone subproblem over the block's columns (renumbered to
    /// `0..columns.len()`), containing every row fully supported by the
    /// block. Rows that touch other blocks — the coupling rows — are
    /// omitted; reconciling them is the caller's serial pass.
    pub problem: LpProblem,
    /// Original column index of each subproblem column, ascending.
    pub columns: Vec<usize>,
}

/// Extracts block `block` of `structure` as a standalone problem whose
/// solution (and exported basis) can be chained across adjacent instances
/// independently of the other blocks — the per-block warm-solve unit the
/// online serve loop shards over. Only rows whose live support lies
/// entirely inside the block are carried; with all coupling rows slack at
/// the blockwise optimum, the blockwise objectives sum to the full
/// problem's optimum.
///
/// # Errors
///
/// Returns [`LpError::VariableOutOfRange`] when `block` does not index a
/// block of `structure`, and propagates construction errors when
/// `structure` does not describe `lp` (stale column indices).
pub fn extract_block(
    lp: &LpProblem,
    structure: &BlockStructure,
    block: usize,
) -> Result<BlockProblem, LpError> {
    let Some(columns) = structure.blocks.get(block) else {
        return Err(LpError::VariableOutOfRange {
            var: block,
            num_vars: structure.blocks.len(),
        });
    };
    let mut local = vec![usize::MAX; lp.num_vars()];
    for (sub, &j) in columns.iter().enumerate() {
        if j >= lp.num_vars() {
            return Err(LpError::VariableOutOfRange {
                var: j,
                num_vars: lp.num_vars(),
            });
        }
        local[j] = sub;
    }
    let mut problem = LpProblem::new(columns.len());
    let mut objective = Vec::with_capacity(columns.len());
    for (sub, &j) in columns.iter().enumerate() {
        objective.push(lp.objective()[j]);
        let b = &lp.bounds()[j];
        problem.set_bounds(sub, b.lower, b.upper)?;
    }
    problem.set_objective(objective)?;
    for row in lp.constraints() {
        let live: Vec<(usize, f64)> = row
            .terms
            .iter()
            .filter(|(_, a)| a.abs() > 0.0)
            .copied()
            .collect();
        if live.is_empty() || !live.iter().all(|&(j, _)| local[j] != usize::MAX) {
            continue;
        }
        let terms: Vec<(usize, f64)> = live.into_iter().map(|(j, a)| (local[j], a)).collect();
        problem.add_constraint(terms, row.sense, row.rhs)?;
    }
    // The solvers' standard form wants at least one row; a block held
    // together only by bounds gets a vacuous one.
    if problem.num_constraints() == 0 {
        problem.add_constraint(vec![(0, 0.0)], ConstraintSense::Le, 1.0)?;
    }
    Ok(BlockProblem {
        problem,
        columns: columns.clone(),
    })
}

/// Convenience wrapper: presolve, solve the reduction with `solver`, and
/// restore.
///
/// # Errors
///
/// Propagates solver errors.
pub fn presolve_and_solve(lp: &LpProblem, solver: crate::Solver) -> Result<LpSolution, LpError> {
    match presolve(lp)? {
        PresolveOutcome::Infeasible => Ok(LpSolution {
            status: LpStatus::Infeasible,
            x: vec![0.0; lp.num_vars()],
            objective: 0.0,
            iterations: 0,
            duals: None,
        }),
        PresolveOutcome::Solved(sol) => Ok(sol),
        PresolveOutcome::Reduced(p) => {
            let inner = crate::solve(&p.problem, solver)?;
            Ok(p.restore(&inner))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, ConstraintSense, LpProblem, Solver};

    #[test]
    fn fixed_variables_are_substituted() {
        // min x + 2y, x fixed at 1.5, y in [0, 3], x + y <= 4.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 2.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        lp.set_bounds(0, 1.5, 1.5).unwrap();
        lp.set_bounds(1, 0.0, 3.0).unwrap();
        let out = presolve_and_solve(&lp, Solver::Simplex).unwrap();
        assert!(out.is_optimal());
        assert!((out.objective - 1.5).abs() < 1e-9);
        assert_eq!(out.x[0], 1.5);
    }

    #[test]
    fn singleton_rows_become_bounds() {
        // min -x s.t. 2x <= 6, x <= 10 bound → x = 3.
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![-1.0]).unwrap();
        lp.add_constraint(vec![(0, 2.0)], ConstraintSense::Le, 6.0)
            .unwrap();
        lp.set_bounds(0, 0.0, 10.0).unwrap();
        let out = presolve_and_solve(&lp, Solver::Simplex).unwrap();
        assert!((out.objective - (-3.0)).abs() < 1e-9);
    }

    #[test]
    fn contradictory_singletons_are_infeasible() {
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 5.0)
            .unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 2.0)
            .unwrap();
        match presolve(&lp).unwrap() {
            PresolveOutcome::Infeasible => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn fully_fixed_problem_is_solved_in_presolve() {
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![3.0, 4.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 10.0)
            .unwrap();
        lp.set_bounds(0, 2.0, 2.0).unwrap();
        lp.set_bounds(1, 1.0, 1.0).unwrap();
        match presolve(&lp).unwrap() {
            PresolveOutcome::Solved(sol) => {
                assert!((sol.objective - 10.0).abs() < 1e-12);
                assert_eq!(sol.x, vec![2.0, 1.0]);
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn fully_fixed_infeasible_is_detected() {
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 5.0)
            .unwrap();
        lp.set_bounds(0, 1.0, 1.0).unwrap();
        match presolve(&lp).unwrap() {
            PresolveOutcome::Infeasible => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn presolved_solution_matches_direct_solve() {
        // A mixed problem with one fixed variable, one singleton row.
        let mut lp = LpProblem::new(3);
        lp.set_objective(vec![1.0, -2.0, 0.5]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintSense::Le, 5.0)
            .unwrap();
        lp.add_constraint(vec![(1, 2.0)], ConstraintSense::Le, 3.0)
            .unwrap();
        lp.set_bounds(0, 0.5, 0.5).unwrap();
        lp.set_bounds(1, 0.0, 4.0).unwrap();
        lp.set_bounds(2, 0.0, 4.0).unwrap();
        let direct = solve(&lp, Solver::Simplex).unwrap();
        let pres = presolve_and_solve(&lp, Solver::Simplex).unwrap();
        assert!((direct.objective - pres.objective).abs() < 1e-9);
        assert!(lp.max_violation(&pres.x) < 1e-9);
    }

    #[test]
    fn detect_blocks_separates_block_angular_structure() {
        // Two 2-variable blocks plus one coupling row over everything —
        // the miniature of an HTA cluster: narrow assignment rows, one
        // wide station-capacity row.
        let mut lp = LpProblem::new(4);
        lp.set_objective(vec![1.0; 4]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 1.0)
            .unwrap();
        lp.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, 1.0)
            .unwrap();
        lp.add_constraint(
            vec![(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
            ConstraintSense::Le,
            3.0,
        )
        .unwrap();
        let structure = super::detect_blocks(&lp, 3);
        assert_eq!(structure.blocks, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(structure.coupling_rows, vec![2]);
    }

    #[test]
    fn detect_blocks_merges_through_shared_local_rows() {
        // A chain of narrow rows links all columns into one block; no row
        // exceeds the support threshold, so nothing couples.
        let mut lp = LpProblem::new(3);
        lp.set_objective(vec![1.0; 3]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![(1, 1.0), (2, -1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        let structure = super::detect_blocks(&lp, 3);
        assert_eq!(structure.blocks, vec![vec![0, 1, 2]]);
        assert!(structure.coupling_rows.is_empty());

        // Explicit zeros do not join columns.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0; 2]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 0.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        let structure = super::detect_blocks(&lp, 3);
        assert_eq!(structure.blocks.len(), 2);
    }

    #[test]
    fn extracted_blocks_solve_independently_and_chain_warm() {
        // The block-angular miniature again: two assignment blocks under
        // one slack coupling row. Blockwise optima must sum to the full
        // optimum, and each block's exported basis must warm-start its
        // own next solve.
        let mut lp = LpProblem::new(4);
        lp.set_objective(vec![1.0, 2.0, 3.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 1.0)
            .unwrap();
        lp.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, 1.0)
            .unwrap();
        lp.add_constraint(
            vec![(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
            ConstraintSense::Le,
            3.0,
        )
        .unwrap();
        for j in 0..4 {
            lp.set_bounds(j, 0.0, 1.0).unwrap();
        }
        let structure = super::detect_blocks(&lp, 3);
        assert_eq!(structure.blocks.len(), 2);
        let full = solve(&lp, Solver::Simplex).unwrap();
        let mut blockwise = 0.0;
        for k in 0..structure.blocks.len() {
            let sub = super::extract_block(&lp, &structure, k).unwrap();
            assert_eq!(sub.problem.num_vars(), 2);
            let cold = crate::solve_from(&sub.problem, None).unwrap();
            assert!(cold.solution.is_optimal());
            blockwise += cold.solution.objective;
            let basis = cold.basis.expect("optimal revised solve exports a basis");
            let warm = crate::solve_from(&sub.problem, Some(&basis)).unwrap();
            assert!(warm.warm_used, "block {k} must chain its own basis");
            assert!((warm.solution.objective - cold.solution.objective).abs() < 1e-9);
        }
        assert!((blockwise - full.objective).abs() < 1e-9);
        // Out-of-range blocks are a typed error, not a panic.
        assert!(super::extract_block(&lp, &structure, 9).is_err());
    }

    #[test]
    fn empty_rows_are_dropped_or_rejected() {
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![1.0]).unwrap();
        lp.add_constraint(vec![], ConstraintSense::Le, 1.0).unwrap(); // 0 <= 1 ok
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 0.5)
            .unwrap();
        let out = presolve_and_solve(&lp, Solver::Simplex).unwrap();
        assert!((out.objective - 0.5).abs() < 1e-9);

        let mut bad = LpProblem::new(1);
        bad.set_objective(vec![1.0]).unwrap();
        bad.add_constraint(vec![], ConstraintSense::Ge, 1.0)
            .unwrap(); // 0 >= 1
        match presolve(&bad).unwrap() {
            PresolveOutcome::Infeasible => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }
}
