//! Error types for the `linprog` crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A vector had the wrong length for this problem.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Observed length.
        got: usize,
    },
    /// A variable index exceeded the number of variables.
    VariableOutOfRange {
        /// Offending index.
        var: usize,
        /// Number of variables in the problem.
        num_vars: usize,
    },
    /// A constraint mentioned the same column twice.
    DuplicateTerm {
        /// Offending column.
        col: usize,
    },
    /// A coefficient, bound or right-hand side was NaN or infinite where a
    /// finite number is required.
    InvalidNumber(f64),
    /// Variable bounds with `lower > upper`.
    InfeasibleBounds {
        /// Offending variable.
        var: usize,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// A warm-start basis whose recorded shape does not fit the problem
    /// being solved (or disagrees with its own status vector, which is
    /// possible because the dimensions are public). The solver never
    /// fails on this — it falls back to the crash basis — but reports
    /// the rejection through `SolveOutcome::warm_rejection` so churn
    /// events that invalidate a chained basis are observable.
    BasisShapeMismatch {
        /// Rows recorded in the rejected basis.
        basis_rows: usize,
        /// Columns actually carried by the rejected basis' status vector.
        basis_cols: usize,
        /// Constraint rows of the problem being solved.
        lp_rows: usize,
        /// Standard-form columns of the problem being solved.
        lp_cols: usize,
    },
    /// The solver encountered a numerically singular system it could not
    /// recover from.
    NumericalFailure(&'static str),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            LpError::VariableOutOfRange { var, num_vars } => {
                write!(
                    f,
                    "variable index {var} out of range for {num_vars} variables"
                )
            }
            LpError::DuplicateTerm { col } => {
                write!(f, "constraint mentions column {col} more than once")
            }
            LpError::InvalidNumber(v) => write!(f, "non-finite number {v} in problem data"),
            LpError::InfeasibleBounds { var, lower, upper } => {
                write!(
                    f,
                    "variable {var} has lower bound {lower} above upper bound {upper}"
                )
            }
            LpError::BasisShapeMismatch {
                basis_rows,
                basis_cols,
                lp_rows,
                lp_cols,
            } => {
                write!(
                    f,
                    "warm basis shape {basis_rows}x{basis_cols} does not fit \
                     problem shape {lp_rows}x{lp_cols}"
                )
            }
            LpError::NumericalFailure(what) => write!(f, "numerical failure: {what}"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LpError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = LpError::InfeasibleBounds {
            var: 1,
            lower: 2.0,
            upper: 1.0,
        };
        assert!(e.to_string().contains("variable 1"));
    }
}
