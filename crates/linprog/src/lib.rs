//! # linprog — a linear-programming substrate
//!
//! Self-contained LP solvers backing the LP-HTA task-assignment algorithm
//! of the Data-Shared MEC reproduction. Three interchangeable backends
//! solve the same [`LpProblem`]:
//!
//! * [`revised::solve_revised`] — sparse revised simplex over a CSC
//!   matrix ([`sparse::CscMatrix`]) with an LU-factored basis extended by
//!   a product-form eta file ([`basis::BasisFactor`]); supports warm
//!   starts from a previous [`Basis`] via [`solve_from`] (the default for
//!   LP-HTA, whose constraint matrix is extremely sparse);
//! * [`simplex::solve_simplex`] — two-phase dense simplex with bounded
//!   variables (exact vertex solutions; used as the reference oracle);
//! * [`interior::solve_interior_point`] — Mehrotra predictor–corrector
//!   primal–dual interior-point method (the paper's Step 1 cites
//!   Karmarkar's interior-point algorithm).
//!
//! Problems are stated as minimization with row constraints of any sense
//! and per-variable bounds:
//!
//! ```
//! use linprog::{LpProblem, ConstraintSense, Solver, solve};
//!
//! // minimize -x - 2y  subject to  x + y <= 4,  0 <= x,y <= 3
//! let mut lp = LpProblem::new(2);
//! lp.set_objective(vec![-1.0, -2.0])?;
//! lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)?;
//! lp.set_bounds(0, 0.0, 3.0)?;
//! lp.set_bounds(1, 0.0, 3.0)?;
//!
//! let sol = solve(&lp, Solver::InteriorPoint)?;
//! assert!(sol.is_optimal());
//! assert!((sol.objective - (-7.0)).abs() < 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Numerical kernels index several parallel arrays by row/column; the
// "use an iterator" suggestion obscures them. `!(x > 0)`-style guards are
// deliberate NaN catches.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod basis;
pub mod error;
pub mod interior;
pub mod matrix;
pub mod mps;
pub mod par;
pub mod presolve;
pub mod problem;
pub mod revised;
pub mod simplex;
pub mod sparse;
pub mod standard;

pub use error::LpError;
pub use par::{set_threads, threads};
pub use problem::{Bounds, Constraint, ConstraintSense, LpProblem, LpSolution, LpStatus};
pub use revised::{Basis, BasisVarStatus, SolveOutcome};

/// Which backend to use for a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Solver {
    /// Mehrotra predictor–corrector interior-point method (default; what
    /// the paper's Step 1 prescribes).
    #[default]
    InteriorPoint,
    /// Two-phase dense simplex with bounded variables.
    Simplex,
    /// Sparse revised simplex (LU-factored basis, eta updates, warm
    /// starts). Falls back to the dense simplex on numerical failure.
    Revised,
}

impl std::fmt::Display for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Solver::InteriorPoint => f.write_str("interior-point"),
            Solver::Simplex => f.write_str("simplex"),
            Solver::Revised => f.write_str("revised-simplex"),
        }
    }
}

/// Solves `lp` with the chosen backend. The interior-point backend falls
/// back to the simplex automatically when it stalls before reaching its
/// tolerance, so callers always receive a definite status.
///
/// # Errors
///
/// Returns [`LpError::NumericalFailure`] only when *both* applicable
/// backends fail numerically.
pub fn solve(lp: &LpProblem, solver: Solver) -> Result<LpSolution, LpError> {
    match solver {
        Solver::Simplex => simplex::solve_simplex(lp),
        Solver::Revised => match revised::solve_revised(lp) {
            Ok(sol) => Ok(sol),
            // A singular basis the eta file cannot recover from; the
            // dense oracle keeps its own inverse and gets the verdict.
            Err(_) => simplex::solve_simplex(lp),
        },
        Solver::InteriorPoint => {
            let attempt = interior::solve_interior_point(lp);
            match attempt {
                Ok(sol) if sol.status == LpStatus::Optimal => Ok(sol),
                // IPMs are poor at certifying infeasibility; let the
                // simplex deliver the verdict on any non-optimal outcome.
                Ok(_) | Err(_) => simplex::solve_simplex(lp),
            }
        }
    }
}

/// Solves `lp` with the sparse revised simplex, optionally warm-starting
/// from a [`Basis`] returned by a previous call, and returns the final
/// basis alongside the solution so sweeps can chain adjacent points.
///
/// Falls back to the dense simplex on numerical failure; the fallback
/// reports `warm_used: false` and no basis (dense solves don't export
/// one), so a chain simply goes cold at that point.
///
/// # Errors
///
/// Returns [`LpError::NumericalFailure`] only when both the revised and
/// the dense backend fail.
pub fn solve_from(lp: &LpProblem, warm: Option<&Basis>) -> Result<SolveOutcome, LpError> {
    match revised::solve_revised_from(lp, warm) {
        Ok(outcome) => Ok(outcome),
        Err(_) => simplex::solve_simplex(lp).map(|solution| SolveOutcome {
            solution,
            basis: None,
            warm_used: false,
            warm_rejection: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_display() {
        assert_eq!(Solver::InteriorPoint.to_string(), "interior-point");
        assert_eq!(Solver::Simplex.to_string(), "simplex");
        assert_eq!(Solver::Revised.to_string(), "revised-simplex");
        assert_eq!(Solver::default(), Solver::InteriorPoint);
    }

    #[test]
    fn dispatch_reaches_all_backends() {
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 2.0)
            .unwrap();
        for solver in [Solver::Simplex, Solver::InteriorPoint, Solver::Revised] {
            let sol = solve(&lp, solver).unwrap();
            assert!(sol.is_optimal(), "{solver} failed");
            assert!((sol.objective - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn solve_from_chains_bases_across_calls() {
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![-1.0, -2.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        lp.set_bounds(0, 0.0, 3.0).unwrap();
        lp.set_bounds(1, 0.0, 3.0).unwrap();
        let cold = solve_from(&lp, None).unwrap();
        assert!(cold.solution.is_optimal());
        assert!(!cold.warm_used);
        let basis = cold.basis.expect("optimal solve exports a basis");
        let warm = solve_from(&lp, Some(&basis)).unwrap();
        assert!(warm.warm_used);
        assert!((warm.solution.objective - cold.solution.objective).abs() < 1e-9);
    }

    #[test]
    fn infeasible_is_certified_via_fallback() {
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 3.0)
            .unwrap();
        let sol = solve(&lp, Solver::InteriorPoint).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }
}
