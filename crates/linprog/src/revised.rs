//! Sparse revised simplex with bounded variables and warm starts.
//!
//! Algorithmically this mirrors [`crate::simplex`] — same two phases,
//! Dantzig pricing with Bland's anti-cycling fallback, bound flips, and
//! tolerances — but the substrate is sparse: the constraint matrix lives
//! in a [`CscMatrix`], and instead of maintaining a dense `m × m` basis
//! inverse it factors only the basis (LU with partial pivoting) and
//! extends the factorization between periodic refactorizations with a
//! product-form eta file ([`crate::basis::BasisFactor`]). Pricing is a
//! sparse `Aᵀy` product, so an iteration costs O(nnz + m²) instead of the
//! dense method's O(n·m + m²) with a much larger constant.
//!
//! On top of the cold solve, [`solve_revised_from`] accepts a [`Basis`]
//! from a previous solve of a *similar* problem (same shape, nearby data
//! — e.g. the previous point of a bench sweep). When the warm basis is
//! still nonsingular and primal feasible, phase 1 is skipped entirely;
//! otherwise the solver falls back to a cold start. Every solve returns
//! its final basis so callers can chain.
//!
//! **Determinism:** given the same problem and the same (or no) warm
//! basis, the solve is bit-deterministic for any thread count — the only
//! parallel kernel is the per-column pricing product, which follows the
//! `par` contract.

use crate::basis::{BasisFactor, LuFactors};
use crate::error::LpError;
use crate::problem::{LpProblem, LpSolution, LpStatus};
use crate::sparse::{CscMatrix, SparseStandardForm};

const PIVOT_TOL: f64 = 1e-9;
const COST_TOL: f64 = 1e-7;
const FEAS_TOL: f64 = 1e-7;
const REFACTOR_EVERY: usize = 128;
/// After this many consecutive degenerate pivots, switch to Bland's rule.
const BLAND_TRIGGER: usize = 64;

/// Where one standard-form column rests in a basis snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisVarStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
}

/// A simplex basis snapshot over the standard-form columns (structural
/// variables followed by slacks; artificials are never part of a
/// snapshot). Opaque beyond its dimensions: obtain one from
/// [`solve_revised_from`] and feed it back to warm-start a similar
/// problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Constraint rows of the problem the snapshot came from.
    pub num_rows: usize,
    /// Standard-form columns (structural + slacks).
    pub num_cols: usize,
    statuses: Vec<BasisVarStatus>,
    /// Pivots accumulated since the chain's last scheduled
    /// refactorization, carried across warm solves so a long chain
    /// refactorizes on the *cumulative* count (see
    /// [`RevisedState::try_warm_start`]).
    carried_pivots: usize,
}

impl Basis {
    /// Per-column statuses (length [`Self::num_cols`]).
    #[must_use]
    pub fn statuses(&self) -> &[BasisVarStatus] {
        &self.statuses
    }

    /// Pivots this chain has accumulated since its last scheduled
    /// refactorization. A warm solve adopting this basis starts its
    /// refactorization countdown here instead of at zero, so chained
    /// sweeps that warm-start hundreds of points still refactorize every
    /// `REFACTOR_EVERY` *cumulative* pivots.
    #[must_use]
    pub fn carried_pivots(&self) -> usize {
        self.carried_pivots
    }
}

/// Result of [`solve_revised_from`]: the solution, the final basis for
/// chaining, and whether the supplied warm basis was actually used.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The solve result.
    pub solution: LpSolution,
    /// The final basis, when one exists over the real columns (absent
    /// when an artificial variable remained basic, e.g. on infeasible
    /// problems).
    pub basis: Option<Basis>,
    /// True when the warm basis was accepted and phase 1 was skipped.
    pub warm_used: bool,
    /// Why a supplied warm basis was structurally rejected, when it was
    /// ([`LpError::BasisShapeMismatch`] after a churn event changed the
    /// problem shape, or after its public dimensions were tampered out of
    /// sync with the status vector). `None` when no basis was supplied,
    /// it was accepted, or it was declined for silent numerical or
    /// feasibility reasons. A rejection is not a failure: the solve
    /// proceeded from the crash basis.
    pub warm_rejection: Option<LpError>,
}

/// Solves `lp` with the sparse revised simplex method (cold start).
///
/// # Errors
///
/// Returns [`LpError::NumericalFailure`] when basis factorization fails
/// irrecoverably; infeasibility/unboundedness are reported via the status.
pub fn solve_revised(lp: &LpProblem) -> Result<LpSolution, LpError> {
    solve_revised_from(lp, None).map(|o| o.solution)
}

/// Solves `lp`, optionally warm-starting from a previous [`Basis`].
///
/// # Errors
///
/// Returns [`LpError::NumericalFailure`] when basis factorization fails
/// irrecoverably (warm-start rejection is *not* an error — it falls back
/// to a cold start).
pub fn solve_revised_from(lp: &LpProblem, warm: Option<&Basis>) -> Result<SolveOutcome, LpError> {
    let _timer = mec_obs::span("linprog/revised/solve");
    let started = std::time::Instant::now();
    if mec_obs::enabled() {
        let blocks = crate::presolve::detect_blocks(lp, 3);
        mec_obs::counter_add("linprog/presolve/blocks", blocks.blocks.len() as u64);
        mec_obs::counter_add(
            "linprog/presolve/coupling_rows",
            blocks.coupling_rows.len() as u64,
        );
    }
    let sf = SparseStandardForm::from_problem(lp);
    let mut state = RevisedState::new(&sf);
    let mut warm_used = false;
    let mut warm_rejection = None;
    if let Some(basis) = warm {
        mec_obs::counter_add("linprog/revised/warm/attempts", 1);
        match state.try_warm_start(basis) {
            Ok(true) => {
                warm_used = true;
                mec_obs::counter_add("linprog/revised/warm/accepted", 1);
            }
            Ok(false) => {}
            Err(e) => {
                // Structural mismatch (churned problem shape or tampered
                // dimensions): record why, then solve from the crash
                // basis like any other cold start.
                mec_obs::counter_add("linprog/revised/warm/shape_rejections", 1);
                warm_rejection = Some(e);
            }
        }
    }
    let sol = state.run(&sf, warm_used)?;

    mec_obs::counter_add("linprog/revised/solves", 1);
    mec_obs::counter_add("linprog/revised/iterations", sol.iterations as u64);
    mec_obs::counter_add("linprog/revised/pivots", state.pivots as u64);
    mec_obs::counter_add(
        "linprog/revised/factorizations",
        state.factorizations as u64,
    );
    mec_obs::counter_add(
        "linprog/revised/refactorizations",
        state.refactorizations as u64,
    );
    mec_obs::counter_add("linprog/revised/eta_nnz", state.eta_nnz_pushed as u64);
    if sol.status == LpStatus::IterationLimit {
        mec_obs::counter_add("linprog/revised/iteration_limit", 1);
    }
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    if warm_used {
        mec_obs::counter_add("linprog/revised/warm/solves", 1);
        mec_obs::counter_add("linprog/revised/warm/solve_ns", elapsed_ns);
    } else {
        mec_obs::counter_add("linprog/revised/cold/solves", 1);
        mec_obs::counter_add("linprog/revised/cold/solve_ns", elapsed_ns);
    }
    if mec_obs::enabled() {
        mec_obs::observe("linprog/revised/residual", lp.max_violation(&sol.x));
        let which = if warm_used {
            "linprog/revised/warm/iterations"
        } else {
            "linprog/revised/cold/iterations"
        };
        mec_obs::observe(which, sol.iterations as f64);
    }

    let basis = state.export_basis();
    Ok(SolveOutcome {
        solution: sol,
        basis,
        warm_used,
        warm_rejection,
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct RevisedState {
    /// Real columns (structural + slacks), *unflipped*; row flips are
    /// applied at the access points via `row_flip`.
    a: CscMatrix,
    /// Right-hand side, flipped nonnegative.
    b: Vec<f64>,
    upper: Vec<f64>,
    cost: Vec<f64>,
    num_real: usize,
    m: usize,
    n_total: usize,
    basis: Vec<usize>,
    state: Vec<VarState>,
    /// +1/−1 per row: flips applied so the rhs is nonnegative (duals are
    /// unflipped on the way out).
    row_flip: Vec<f64>,
    factor: BasisFactor,
    x_basic: Vec<f64>,
    pivots_since_refactor: usize,
    degenerate_streak: usize,
    iterations: usize,
    pivots: usize,
    /// LU factorizations performed (warm-start probe + refactorizations).
    factorizations: usize,
    /// Scheduled refactorizations triggered by the eta-file length.
    refactorizations: usize,
    /// Total eta nonzeros recorded across the solve.
    eta_nnz_pushed: usize,
}

impl RevisedState {
    fn new(sf: &SparseStandardForm) -> RevisedState {
        let m = sf.num_rows();
        let num_real = sf.num_cols();
        let n_total = num_real + m;

        let mut b = sf.b.clone();
        let mut row_flip = vec![1.0; m];
        for i in 0..m {
            if b[i] < 0.0 {
                row_flip[i] = -1.0;
                b[i] = -b[i];
            }
        }

        let mut upper = sf.upper.clone();
        upper.extend(std::iter::repeat_n(f64::INFINITY, m));
        let mut cost = sf.c.clone();
        cost.extend(std::iter::repeat_n(0.0, m));

        // Crash basis: a unit singleton column — a slack, or a structural
        // variable appearing in exactly one row, like the uncapacitated
        // cloud fractions of the HTA relaxation — whose flipped
        // coefficient is exactly +1 and whose upper bound admits the
        // row's rhs can start basic in place of the row's artificial.
        // The basis matrix stays the identity (`x_B = b`, nothing to
        // factor) and phase 1 only has to clear the rows no singleton
        // covered — for the cluster relaxation that is usually none.
        let mut basis: Vec<usize> = (num_real..n_total).collect();
        for j in 0..num_real {
            let (rows, vals) = sf.a.col(j);
            if rows.len() != 1 {
                continue;
            }
            let r = rows[0];
            if vals[0] * row_flip[r] == 1.0 && basis[r] >= num_real && upper[j] >= b[r] {
                basis[r] = j;
            }
        }
        let mut state = vec![VarState::AtLower; n_total];
        for (row, &col) in basis.iter().enumerate() {
            state[col] = VarState::Basic(row);
            if col < num_real {
                // The displaced artificial is never needed: pin it so
                // pricing skips it even during phase 1.
                upper[num_real + row] = 0.0;
            }
        }

        RevisedState {
            x_basic: b.clone(),
            a: sf.a.clone(),
            b,
            upper,
            cost,
            num_real,
            m,
            n_total,
            basis,
            state,
            row_flip,
            factor: BasisFactor::identity(m),
            pivots_since_refactor: 0,
            degenerate_streak: 0,
            iterations: 0,
            pivots: 0,
            factorizations: 0,
            refactorizations: 0,
            eta_nnz_pushed: 0,
        }
    }

    /// Column `j` scattered into a dense buffer in flipped row space.
    fn scatter_flipped(&self, j: usize, out: &mut [f64]) {
        out.fill(0.0);
        if j < self.num_real {
            let (rows, vals) = self.a.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                out[r] = v * self.row_flip[r];
            }
        } else {
            out[j - self.num_real] = 1.0;
        }
    }

    /// Attempts to adopt `warm` as the starting basis. On success
    /// (`Ok(true)`) the state is primal feasible with artificials pinned
    /// (phase 1 can be skipped); on a silent numerical or feasibility
    /// mismatch (`Ok(false)`) the cold-start state is left untouched. A
    /// *structural* mismatch — the basis was built for a different
    /// problem shape, or its public dimensions disagree with its own
    /// status vector — is the typed [`LpError::BasisShapeMismatch`]
    /// rejection: the caller records it and still proceeds cold.
    fn try_warm_start(&mut self, warm: &Basis) -> Result<bool, LpError> {
        // Dimensions AND internal consistency: `num_rows`/`num_cols` are
        // public, so a dimension check alone would still let a basis
        // whose status vector is shorter than its claimed width index out
        // of bounds below.
        if warm.num_rows != self.m
            || warm.num_cols != self.num_real
            || warm.statuses.len() != warm.num_cols
        {
            return Err(LpError::BasisShapeMismatch {
                basis_rows: warm.num_rows,
                basis_cols: warm.statuses.len(),
                lp_rows: self.m,
                lp_cols: self.num_real,
            });
        }
        let basic_cols: Vec<usize> = (0..self.num_real)
            .filter(|&j| warm.statuses[j] == BasisVarStatus::Basic)
            .collect();
        if basic_cols.len() != self.m {
            return Ok(false);
        }
        // AtUpper only makes sense against a finite bound.
        if (0..self.num_real)
            .any(|j| warm.statuses[j] == BasisVarStatus::AtUpper && !self.upper[j].is_finite())
        {
            return Ok(false);
        }

        // Factor the candidate basis.
        let mut dense = vec![0.0; self.m * self.m];
        let mut col_buf = vec![0.0; self.m];
        for (k, &j) in basic_cols.iter().enumerate() {
            self.scatter_flipped(j, &mut col_buf);
            for i in 0..self.m {
                dense[i * self.m + k] = col_buf[i];
            }
        }
        self.factorizations += 1;
        let Ok(lu) = LuFactors::factor(self.m, &dense) else {
            return Ok(false);
        };

        // x_B = B⁻¹ (b − Σ_{j at upper} a_j u_j); accept only if within
        // bounds (primal feasible), so phase 1 is provably unnecessary.
        let mut rhs = self.b.clone();
        for j in 0..self.num_real {
            if warm.statuses[j] == BasisVarStatus::AtUpper {
                let u = self.upper[j];
                let (rows, vals) = self.a.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    rhs[r] -= v * self.row_flip[r] * u;
                }
            }
        }
        lu.solve(&mut rhs);
        // Per-column tolerances: bounded columns (the costed fractions,
        // spans of order 1) get a tight band so a stale basis cannot
        // smuggle in bound violations that depress the objective;
        // unbounded columns (slacks on byte-valued capacity rows) are
        // judged on the right-hand-side scale, where sub-ulp row noise is
        // harmless.
        let slack_tol = FEAS_TOL * (1.0 + crate::matrix::norm_inf(&self.b));
        for (k, &j) in basic_cols.iter().enumerate() {
            let ub = self.upper[j];
            let tol = if ub.is_finite() {
                FEAS_TOL * (1.0 + ub.abs())
            } else {
                slack_tol
            };
            if rhs[k] < -tol || (ub.is_finite() && rhs[k] > ub + tol) {
                return Ok(false);
            }
        }

        // Commit: adopt states, pin artificials out of the problem.
        for j in 0..self.num_real {
            self.state[j] = match warm.statuses[j] {
                BasisVarStatus::Basic => VarState::AtLower, // fixed below
                BasisVarStatus::AtLower => VarState::AtLower,
                BasisVarStatus::AtUpper => VarState::AtUpper,
            };
        }
        for (k, &j) in basic_cols.iter().enumerate() {
            self.state[j] = VarState::Basic(k);
        }
        for j in self.num_real..self.n_total {
            self.state[j] = VarState::AtLower;
            self.upper[j] = 0.0;
        }
        self.basis = basic_cols;
        self.x_basic = rhs;
        // Adopt the acceptance probe's LU directly instead of factoring
        // the same matrix a second time (this also removes the only
        // non-test `expect` this path used to carry).
        self.factor = BasisFactor::from_lu(lu);
        // Refactorization debt carries across the chain: `REFACTOR_EVERY`
        // used to be a per-solve counter, so a chained sweep warm-starting
        // hundreds of points never refactorized between solves. Starting
        // the countdown at the chain's cumulative pivot count forces a
        // scheduled refactorization as soon as the *cumulative* file
        // crosses the threshold.
        self.pivots_since_refactor = warm.carried_pivots;
        Ok(true)
    }

    fn run(&mut self, sf: &SparseStandardForm, skip_phase1: bool) -> Result<LpSolution, LpError> {
        let limit = 200 * (self.m + self.n_total).max(100);

        if !skip_phase1 {
            // The crash basis often covers every row with a real column,
            // in which case the start is already feasible and phase 1
            // has nothing to minimize.
            if self.basis.iter().any(|&col| col >= self.num_real) {
                let p1 = self.optimize(Phase::One, limit)?;
                if p1 == RunOutcome::IterationLimit {
                    return Ok(self.solution(sf, LpStatus::IterationLimit));
                }
                let infeas: f64 = self
                    .basis
                    .iter()
                    .enumerate()
                    .filter(|&(_, &col)| col >= self.num_real)
                    .map(|(row, _)| self.x_basic[row])
                    .sum();
                if infeas > FEAS_TOL * (1.0 + crate::matrix::norm_inf(&self.b)) {
                    return Ok(self.solution(sf, LpStatus::Infeasible));
                }
                self.drive_out_artificials();
            }
            for j in self.num_real..self.n_total {
                self.upper[j] = 0.0;
            }
        }

        let p2 = self.optimize(Phase::Two, limit)?;
        let status = match p2 {
            RunOutcome::Optimal => LpStatus::Optimal,
            RunOutcome::Unbounded => LpStatus::Unbounded,
            RunOutcome::IterationLimit => LpStatus::IterationLimit,
        };
        Ok(self.solution(sf, status))
    }

    fn cost_of(&self, phase: Phase, j: usize) -> f64 {
        match phase {
            Phase::One => {
                if j >= self.num_real {
                    1.0
                } else {
                    0.0
                }
            }
            Phase::Two => self.cost[j],
        }
    }

    fn optimize(&mut self, phase: Phase, limit: usize) -> Result<RunOutcome, LpError> {
        let mut alpha = vec![0.0; self.m];
        loop {
            if self.iterations >= limit {
                return Ok(RunOutcome::IterationLimit);
            }
            self.iterations += 1;

            if self.pivots_since_refactor >= REFACTOR_EVERY {
                self.refactorize()?;
            }

            // Dual prices y = B⁻ᵀ c_B (flipped row space).
            let mut y: Vec<f64> = self
                .basis
                .iter()
                .map(|&col| self.cost_of(phase, col))
                .collect();
            self.factor.btran(&mut y);

            let use_bland = self.degenerate_streak >= BLAND_TRIGGER;
            let entering = self.price(phase, &y, use_bland);
            let Some(enter_col) = entering else {
                return Ok(RunOutcome::Optimal);
            };

            self.scatter_flipped(enter_col, &mut alpha);
            self.factor.ftran(&mut alpha);
            let from_lower = self.state[enter_col] == VarState::AtLower;

            match self.ratio_test(enter_col, &alpha, from_lower, use_bland) {
                Ratio::Unbounded => {
                    return Ok(match phase {
                        // Phase 1 is bounded below by zero; an unbounded
                        // ray here is a numerical artifact.
                        Phase::One => RunOutcome::IterationLimit,
                        Phase::Two => RunOutcome::Unbounded,
                    });
                }
                Ratio::BoundFlip(t) => {
                    self.apply_bound_flip(enter_col, &alpha, from_lower, t);
                }
                Ratio::Pivot { row, t } => {
                    self.apply_pivot(enter_col, &alpha, from_lower, row, t);
                }
            }
        }
    }

    /// Chooses the entering column; Dantzig rule normally, Bland's rule
    /// when a degenerate streak suggests cycling. Reduced costs over the
    /// real columns come from one sparse `Aᵀ(y ⊙ flip)` product.
    fn price(&self, phase: Phase, y: &[f64], bland: bool) -> Option<usize> {
        let yf: Vec<f64> = y
            .iter()
            .zip(self.row_flip.iter())
            .map(|(v, f)| v * f)
            .collect();
        let at_y = self.a.transpose_mul_vec(&yf);

        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.n_total {
            let dir = match self.state[j] {
                VarState::Basic(_) => continue,
                VarState::AtLower => 1.0,
                VarState::AtUpper => -1.0,
            };
            // Artificials never re-enter once pinned (upper == 0 at lower).
            if self.upper[j] <= 0.0 && self.state[j] == VarState::AtLower && j >= self.num_real {
                continue;
            }
            let d = if j < self.num_real {
                self.cost_of(phase, j) - at_y[j]
            } else {
                self.cost_of(phase, j) - y[j - self.num_real]
            };
            let improving = d * dir < -COST_TOL;
            if !improving {
                continue;
            }
            if bland {
                return Some(j);
            }
            let score = d.abs();
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((j, score));
            }
        }
        best.map(|(j, _)| j)
    }

    fn ratio_test(&self, enter_col: usize, alpha: &[f64], from_lower: bool, bland: bool) -> Ratio {
        // t is how far the entering variable moves away from its bound.
        let mut t_max = self.upper[enter_col];
        let mut leave: Option<usize> = None;

        for i in 0..self.m {
            let a_i = if from_lower { alpha[i] } else { -alpha[i] };
            // Basic value decreases toward 0 when a_i > 0, increases
            // toward its upper bound when a_i < 0.
            let (limit, active) = if a_i > PIVOT_TOL {
                (self.x_basic[i] / a_i, true)
            } else if a_i < -PIVOT_TOL {
                let ub = self.upper[self.basis[i]];
                if ub.is_finite() {
                    ((ub - self.x_basic[i]) / (-a_i), true)
                } else {
                    (f64::INFINITY, false)
                }
            } else {
                (f64::INFINITY, false)
            };
            if !active {
                continue;
            }
            let limit = limit.max(0.0);
            let replace = match leave {
                None => limit < t_max - PIVOT_TOL,
                Some(r) => {
                    limit < t_max - PIVOT_TOL
                        || (limit < t_max + PIVOT_TOL && bland && self.basis[i] < self.basis[r])
                }
            };
            if replace {
                t_max = limit.min(t_max);
                leave = Some(i);
            } else if leave.is_none() && limit <= t_max {
                t_max = limit;
                leave = Some(i);
            }
        }

        if t_max.is_infinite() {
            return Ratio::Unbounded;
        }
        match leave {
            Some(row) if t_max <= self.upper[enter_col] + PIVOT_TOL => {
                if t_max >= self.upper[enter_col] - PIVOT_TOL
                    && self.upper[enter_col].is_finite()
                    && self.upper[enter_col] <= t_max
                {
                    // The entering variable reaches its opposite bound
                    // first (or simultaneously): prefer the cheaper flip.
                    return Ratio::BoundFlip(self.upper[enter_col]);
                }
                Ratio::Pivot { row, t: t_max }
            }
            Some(row) => Ratio::Pivot { row, t: t_max },
            None => Ratio::BoundFlip(self.upper[enter_col]),
        }
    }

    fn apply_bound_flip(&mut self, col: usize, alpha: &[f64], from_lower: bool, t: f64) {
        let dir = if from_lower { 1.0 } else { -1.0 };
        for i in 0..self.m {
            self.x_basic[i] -= dir * t * alpha[i];
        }
        self.state[col] = if from_lower {
            VarState::AtUpper
        } else {
            VarState::AtLower
        };
        if t <= PIVOT_TOL {
            self.degenerate_streak += 1;
        } else {
            self.degenerate_streak = 0;
        }
    }

    fn apply_pivot(
        &mut self,
        enter_col: usize,
        alpha: &[f64],
        from_lower: bool,
        row: usize,
        t: f64,
    ) {
        let dir = if from_lower { 1.0 } else { -1.0 };
        let leaving_col = self.basis[row];
        self.pivots += 1;

        for i in 0..self.m {
            self.x_basic[i] -= dir * t * alpha[i];
        }
        let enter_value = if from_lower {
            t
        } else {
            self.upper[enter_col] - t
        };
        self.x_basic[row] = enter_value;

        // Leaving variable rests at whichever bound it hit.
        let a_r = if from_lower { alpha[row] } else { -alpha[row] };
        self.state[leaving_col] = if a_r > 0.0 {
            VarState::AtLower
        } else {
            VarState::AtUpper
        };
        self.state[enter_col] = VarState::Basic(row);
        self.basis[row] = enter_col;

        // Product-form update instead of a dense inverse row sweep.
        self.factor.push_eta(row, alpha);
        self.eta_nnz_pushed = self.eta_nnz_pushed.max(self.factor.eta_nnz());

        self.pivots_since_refactor += 1;
        if t <= PIVOT_TOL {
            self.degenerate_streak += 1;
        } else {
            self.degenerate_streak = 0;
        }
    }

    /// Pivots zero-valued artificial variables out of the basis where a
    /// nonzero pivot in a real column exists; fully redundant rows keep
    /// their artificial (pinned at zero).
    fn drive_out_artificials(&mut self) {
        let mut e_row = vec![0.0; self.m];
        let mut alpha = vec![0.0; self.m];
        for row in 0..self.m {
            if self.basis[row] < self.num_real {
                continue;
            }
            if self.x_basic[row].abs() > FEAS_TOL {
                continue; // handled by the infeasibility check
            }
            // Row `row` of B⁻¹, then flip-adjusted for sparse dots
            // against the unflipped columns.
            e_row.fill(0.0);
            e_row[row] = 1.0;
            self.factor.btran(&mut e_row);
            for i in 0..self.m {
                e_row[i] *= self.row_flip[i];
            }
            let candidate = (0..self.num_real).find(|&j| {
                matches!(self.state[j], VarState::AtLower | VarState::AtUpper)
                    && self.a.col_dot(j, &e_row).abs() > 1e-7
            });
            if let Some(j) = candidate {
                self.scatter_flipped(j, &mut alpha);
                self.factor.ftran(&mut alpha);
                let from_lower = self.state[j] == VarState::AtLower;
                self.apply_pivot(j, &alpha, from_lower, row, 0.0);
                // A degenerate pivot: fix the entering value explicitly.
                self.x_basic[row] = if from_lower { 0.0 } else { self.upper[j] };
            }
        }
    }

    fn refactorize(&mut self) -> Result<(), LpError> {
        let mut dense = vec![0.0; self.m * self.m];
        let mut col_buf = vec![0.0; self.m];
        for (k, &col) in self.basis.iter().enumerate() {
            self.scatter_flipped(col, &mut col_buf);
            for i in 0..self.m {
                dense[i * self.m + k] = col_buf[i];
            }
        }
        self.factor.refactorize(self.m, &dense)?;
        self.factorizations += 1;
        self.refactorizations += 1;
        // Recompute basic values from scratch: x_B = B⁻¹ (b − N x_N).
        let mut rhs = self.b.clone();
        for j in 0..self.n_total {
            if self.state[j] == VarState::AtUpper && self.upper[j] > 0.0 {
                let u = self.upper[j];
                self.scatter_flipped(j, &mut col_buf);
                for i in 0..self.m {
                    rhs[i] -= col_buf[i] * u;
                }
            }
        }
        self.factor.ftran(&mut rhs);
        self.x_basic = rhs;
        self.pivots_since_refactor = 0;
        Ok(())
    }

    fn solution(&self, sf: &SparseStandardForm, status: LpStatus) -> LpSolution {
        // Duals: y = B⁻ᵀ c_B in the flipped row space; undo the flips so
        // duals refer to the user's right-hand sides.
        let duals = if status == LpStatus::Optimal {
            let mut y: Vec<f64> = self.basis.iter().map(|&col| self.cost[col]).collect();
            self.factor.btran(&mut y);
            Some(
                y.iter()
                    .zip(self.row_flip.iter())
                    .map(|(v, f)| v * f)
                    .collect(),
            )
        } else {
            None
        };
        let mut x_std = vec![0.0; self.num_real];
        for (j, item) in x_std.iter_mut().enumerate() {
            *item = match self.state[j] {
                VarState::Basic(row) => self.x_basic[row].max(0.0),
                VarState::AtLower => 0.0,
                VarState::AtUpper => self.upper[j],
            };
        }
        let x = sf.recover(&x_std);
        let objective = sf.original_objective(&x_std);
        LpSolution {
            status,
            x,
            objective,
            iterations: self.iterations,
            duals,
        }
    }

    /// The final basis over the real columns; `None` when an artificial
    /// variable is still basic (no real-column basis exists).
    fn export_basis(&self) -> Option<Basis> {
        if self.basis.iter().any(|&col| col >= self.num_real) {
            return None;
        }
        let statuses: Vec<BasisVarStatus> = (0..self.num_real)
            .map(|j| match self.state[j] {
                VarState::Basic(_) => BasisVarStatus::Basic,
                VarState::AtLower => BasisVarStatus::AtLower,
                VarState::AtUpper => BasisVarStatus::AtUpper,
            })
            .collect();
        Some(Basis {
            num_rows: self.m,
            num_cols: self.num_real,
            statuses,
            carried_pivots: self.pivots_since_refactor,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    One,
    Two,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ratio {
    Pivot { row: usize, t: f64 },
    BoundFlip(f64),
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ConstraintSense;

    fn assert_optimal(sol: &LpSolution, objective: f64, tol: f64) {
        assert_eq!(
            sol.status,
            LpStatus::Optimal,
            "expected optimal, got {sol:?}"
        );
        assert!(
            (sol.objective - objective).abs() < tol,
            "objective {} != expected {objective}",
            sol.objective
        );
    }

    fn triangle_lp() -> LpProblem {
        // min -x - 2y s.t. x + y <= 4, 0 <= x,y <= 3. Optimum (1,3): -7.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![-1.0, -2.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        lp.set_bounds(0, 0.0, 3.0).unwrap();
        lp.set_bounds(1, 0.0, 3.0).unwrap();
        lp
    }

    #[test]
    fn matches_dense_simplex_on_the_oracle_problems() {
        let sol = solve_revised(&triangle_lp()).unwrap();
        assert_optimal(&sol, -7.0, 1e-8);
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 3.0).abs() < 1e-8);

        // Equalities: min x + y s.t. x + y = 2, x − y = 0 → 2.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Eq, 0.0)
            .unwrap();
        assert_optimal(&solve_revised(&lp).unwrap(), 2.0, 1e-8);

        // Lower-bound shift: min x + y s.t. x + y >= 4, x >= 1.5 → 4.
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![1.0, 1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Ge, 4.0)
            .unwrap();
        lp.set_bounds(0, 1.5, f64::INFINITY).unwrap();
        let sol = solve_revised(&lp).unwrap();
        assert_optimal(&sol, 4.0, 1e-8);
        assert!(sol.x[0] >= 1.5 - 1e-9);
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 2.0)
            .unwrap();
        assert_eq!(solve_revised(&lp).unwrap().status, LpStatus::Infeasible);

        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![-1.0]).unwrap();
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 1.0)
            .unwrap();
        assert_eq!(solve_revised(&lp).unwrap().status, LpStatus::Unbounded);
    }

    #[test]
    fn transportation_problem_and_duals() {
        let cost = [2.0, 3.0, 1.0, 5.0, 4.0, 8.0];
        let mut lp = LpProblem::new(6);
        lp.set_objective(cost.to_vec()).unwrap();
        lp.add_constraint(
            vec![(0, 1.0), (1, 1.0), (2, 1.0)],
            ConstraintSense::Le,
            20.0,
        )
        .unwrap();
        lp.add_constraint(
            vec![(3, 1.0), (4, 1.0), (5, 1.0)],
            ConstraintSense::Le,
            30.0,
        )
        .unwrap();
        lp.add_constraint(vec![(0, 1.0), (3, 1.0)], ConstraintSense::Eq, 10.0)
            .unwrap();
        lp.add_constraint(vec![(1, 1.0), (4, 1.0)], ConstraintSense::Eq, 25.0)
            .unwrap();
        lp.add_constraint(vec![(2, 1.0), (5, 1.0)], ConstraintSense::Eq, 15.0)
            .unwrap();
        let sol = solve_revised(&lp).unwrap();
        assert_optimal(&sol, 150.0, 1e-7);
        let duals = sol.duals.expect("optimal revised solve reports duals");
        assert_eq!(duals.len(), 5);
        // The dense oracle agrees on the duals' economics: ≤ supply rows
        // cannot have positive shadow prices in a minimization.
        assert!(duals[0] <= 1e-9 && duals[1] <= 1e-9, "{duals:?}");
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut lp = LpProblem::new(2);
        lp.set_objective(vec![-1.0, -1.0]).unwrap();
        for rhs in [2.0, 2.0, 2.0] {
            lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, rhs)
                .unwrap();
        }
        lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 2.0)
            .unwrap();
        lp.add_constraint(vec![(1, 1.0)], ConstraintSense::Le, 2.0)
            .unwrap();
        assert_optimal(&solve_revised(&lp).unwrap(), -2.0, 1e-8);
    }

    #[test]
    fn warm_start_from_own_basis_skips_phase_one() {
        let lp = triangle_lp();
        let cold = solve_revised_from(&lp, None).unwrap();
        assert!(!cold.warm_used);
        let basis = cold.basis.expect("optimal solve exports a basis");
        assert_eq!(basis.num_rows, 1);
        assert_eq!(basis.num_cols, 3); // 2 structural + 1 slack

        let warm = solve_revised_from(&lp, Some(&basis)).unwrap();
        assert!(warm.warm_used, "identical problem must accept the basis");
        assert_optimal(&warm.solution, -7.0, 1e-8);
        // Re-solving from the optimal basis needs only the optimality
        // check, far fewer iterations than the cold two-phase run.
        assert!(warm.solution.iterations < cold.solution.iterations);
    }

    #[test]
    fn warm_start_survives_a_data_perturbation() {
        let lp = triangle_lp();
        let basis = solve_revised_from(&lp, None).unwrap().basis.unwrap();

        // Same shape, slightly different rhs and costs: the old basis
        // stays feasible and the warm solve matches a cold solve.
        let mut nudged = LpProblem::new(2);
        nudged.set_objective(vec![-1.1, -1.9]).unwrap();
        nudged
            .add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 3.9)
            .unwrap();
        nudged.set_bounds(0, 0.0, 3.0).unwrap();
        nudged.set_bounds(1, 0.0, 3.0).unwrap();
        let warm = solve_revised_from(&nudged, Some(&basis)).unwrap();
        let cold = solve_revised_from(&nudged, None).unwrap();
        assert!(warm.warm_used);
        assert_eq!(warm.solution.status, LpStatus::Optimal);
        assert!(
            (warm.solution.objective - cold.solution.objective).abs() < 1e-8,
            "warm {} vs cold {}",
            warm.solution.objective,
            cold.solution.objective
        );
    }

    #[test]
    fn warm_start_rejects_mismatched_shapes() {
        let basis = solve_revised_from(&triangle_lp(), None)
            .unwrap()
            .basis
            .unwrap();
        // Different constraint count → dimension mismatch → cold start.
        let mut other = LpProblem::new(2);
        other.set_objective(vec![1.0, 1.0]).unwrap();
        other
            .add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        other
            .add_constraint(vec![(1, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        let out = solve_revised_from(&other, Some(&basis)).unwrap();
        assert!(!out.warm_used);
        assert_eq!(out.solution.status, LpStatus::Optimal);
        // The rejection is typed, not silent: churn that changes the
        // problem shape is observable on the outcome.
        match out.warm_rejection {
            Some(LpError::BasisShapeMismatch {
                basis_rows,
                basis_cols,
                lp_rows,
                lp_cols,
            }) => {
                assert_eq!((basis_rows, basis_cols), (1, 3));
                assert_eq!((lp_rows, lp_cols), (2, 4)); // 2 rows, 2 structural + 2 slacks
            }
            other => panic!("expected BasisShapeMismatch, got {other:?}"),
        }
        // An accepted warm start reports no rejection.
        let lp = triangle_lp();
        let own = solve_revised_from(&lp, None).unwrap().basis.unwrap();
        let warm = solve_revised_from(&lp, Some(&own)).unwrap();
        assert!(warm.warm_used && warm.warm_rejection.is_none());
    }

    /// `Basis` dimensions are public, so a caller can desynchronize them
    /// from the status vector. This used to pass the dimension check and
    /// index out of bounds; now it is the same typed rejection with a
    /// crash-basis fallback.
    #[test]
    fn warm_start_rejects_a_tampered_basis_without_panicking() {
        // A basis from a 1-variable problem: 1 row, 2 standard-form
        // columns (1 structural + 1 slack).
        let mut small = LpProblem::new(1);
        small.set_objective(vec![-1.0]).unwrap();
        small
            .add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        small.set_bounds(0, 0.0, 1.0).unwrap();
        let mut basis = solve_revised_from(&small, None).unwrap().basis.unwrap();
        assert_eq!(basis.statuses().len(), 2);
        // Tamper the public width to match the triangle LP's 3 columns
        // while the status vector stays at length 2.
        basis.num_cols = 3;
        let out = solve_revised_from(&triangle_lp(), Some(&basis)).unwrap();
        assert!(!out.warm_used);
        assert!(
            matches!(
                out.warm_rejection,
                Some(LpError::BasisShapeMismatch {
                    basis_cols: 2,
                    lp_cols: 3,
                    ..
                })
            ),
            "{:?}",
            out.warm_rejection
        );
        assert_optimal(&out.solution, -7.0, 1e-8);
    }

    /// Refactorization debt carries across warm solves: no single solve
    /// in this chain comes near `REFACTOR_EVERY` pivots, but the chain's
    /// cumulative count must still trigger scheduled refactorizations
    /// (observable both on `Basis::carried_pivots` and the
    /// `linprog/revised/refactorizations` counter).
    #[test]
    fn warm_chains_refactorize_on_cumulative_pivots() {
        let _o = mec_obs::TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        mec_obs::reset();
        mec_obs::set_enabled(true);

        // Alternating objectives move the optimum between (1,3) and
        // (3,1), so every warm solve pivots at least once.
        let make = |flip: bool| {
            let mut lp = triangle_lp();
            if flip {
                lp.set_objective(vec![-2.0, -1.0]).unwrap();
            }
            lp
        };
        let mut basis = solve_revised_from(&make(false), None)
            .unwrap()
            .basis
            .unwrap();
        let mut max_debt = basis.carried_pivots();
        let mut debt_dropped = false;
        for k in 0..(2 * REFACTOR_EVERY + 8) {
            let out = solve_revised_from(&make(k % 2 == 0), Some(&basis)).unwrap();
            assert!(out.warm_used, "chain went cold at solve {k}");
            let next = out.basis.unwrap();
            if next.carried_pivots() < basis.carried_pivots() {
                debt_dropped = true;
            }
            max_debt = max_debt.max(next.carried_pivots());
            basis = next;
        }
        let snap = mec_obs::snapshot();
        mec_obs::set_enabled(false);
        mec_obs::reset();

        assert!(
            max_debt >= REFACTOR_EVERY / 2,
            "debt never accumulated across the chain (max {max_debt})"
        );
        assert!(
            debt_dropped,
            "cumulative debt never triggered a refactorization"
        );
        let refactors = snap
            .counter("linprog/revised/refactorizations")
            .unwrap_or(0);
        assert!(
            refactors > 0,
            "chain must refactorize at least once: {refactors}"
        );
    }

    #[test]
    fn refactorization_keeps_long_solves_stable() {
        // A chain of coupled rows forces many pivots, crossing the
        // REFACTOR_EVERY boundary at least once.
        let n = 70;
        let mut lp = LpProblem::new(n);
        lp.set_objective((0..n).map(|j| -((j % 7 + 1) as f64)).collect())
            .unwrap();
        for i in 0..n {
            let mut terms = vec![(i, 1.0)];
            if i + 1 < n {
                terms.push((i + 1, 0.5));
            }
            lp.add_constraint(terms, ConstraintSense::Le, 1.0 + (i % 3) as f64)
                .unwrap();
        }
        for j in 0..n {
            lp.set_bounds(j, 0.0, 2.0).unwrap();
        }
        let sol = solve_revised(&lp).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        let dense = crate::simplex::solve_simplex(&lp).unwrap();
        assert!(
            (sol.objective - dense.objective).abs() < 1e-6 * (1.0 + dense.objective.abs()),
            "revised {} vs dense {}",
            sol.objective,
            dense.objective
        );
        assert!(lp.max_violation(&sol.x) < 1e-6);
    }
}
