//! A tour of the LP substrate on its own: model a small problem, solve it
//! with both backends, inspect duals, round-trip through MPS, presolve.
//!
//! Run with:
//!
//! ```text
//! cargo run -p linprog --example lp_tour
//! ```

use linprog::mps::{parse_mps, write_mps};
use linprog::presolve::presolve_and_solve;
use linprog::{solve, ConstraintSense, LpProblem, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny production-planning LP:
    //   maximize 3x + 5y  (min -3x - 5y)
    //   s.t. x <= 4, 2y <= 12, 3x + 2y <= 18
    let mut lp = LpProblem::new(2);
    lp.set_objective(vec![-3.0, -5.0])?;
    lp.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 4.0)?;
    lp.add_constraint(vec![(1, 2.0)], ConstraintSense::Le, 12.0)?;
    lp.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintSense::Le, 18.0)?;

    for solver in [Solver::Simplex, Solver::InteriorPoint] {
        let sol = solve(&lp, solver)?;
        println!(
            "{solver:<15} objective {:8.4}  x = ({:.4}, {:.4})  [{} iterations]",
            -sol.objective, sol.x[0], sol.x[1], sol.iterations
        );
        if let Some(duals) = &sol.duals {
            println!(
                "{:<15} shadow prices: {:?}",
                "",
                duals
                    .iter()
                    .map(|d| (d * 1e4).round() / 1e4)
                    .collect::<Vec<_>>()
            );
        }
    }

    // MPS round trip.
    let text = write_mps(&lp, "PLAN");
    println!("\nMPS form:\n{text}");
    let parsed = parse_mps(&text)?;
    let again = solve(&parsed, Solver::Simplex)?;
    assert!((again.objective - solve(&lp, Solver::Simplex)?.objective).abs() < 1e-9);
    println!("MPS round trip preserves the optimum ✓");

    // Presolve shortcuts fixed variables.
    let mut fixed = lp.clone();
    fixed.set_bounds(0, 2.0, 2.0)?;
    let pre = presolve_and_solve(&fixed, Solver::Simplex)?;
    println!("with x fixed at 2: objective {:.4}", -pre.objective);
    Ok(())
}
