//! Work-stealing parallel map primitives for the experiment sweeps.
//!
//! Replaces the previous crossbeam-scope implementation (which funneled
//! every result through a contended `Mutex<Vec<Option<R>>>` and poisoned
//! the whole run on any worker panic) with:
//!
//! * lock-free result collection — each item writes its result exactly
//!   once into its pre-allocated slot, no lock on the hot path;
//! * [`par_map_result`] — `Result`-propagating variant that also converts
//!   worker *panics* into a proper `Err` (via [`FromWorkerPanic`]) instead
//!   of tearing down the process, and aborts remaining work after the
//!   first failure.
//!
//! The worker count is the workspace-wide setting shared with the dense
//! LP kernels; see [`set_threads`]/[`threads`] (resolution order: explicit
//! `set_threads`, the `DSMEC_THREADS` environment variable, then the
//! machine's available parallelism).

use dsmec_core::error::AssignError;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Minimum projected *remaining* work (ns) before a map spawns worker
/// threads. Both maps measure their first `min(2, len)` items on the
/// calling thread and extrapolate from the **max** per-item time; below
/// this floor the spawn + join overhead (~tens of µs per thread) would
/// dominate, so they finish serially instead. Keeps cheap sweeps —
/// fig6b's division-only points most visibly — from paying for
/// parallelism they cannot amortize. Probing two items (not one) matters
/// for heterogeneous batches: the first item's time absorbs cache-miss
/// and lazy-init cost and can be unrepresentatively *cheap* when the
/// expensive state is built lazily elsewhere, which used to pin
/// expensive-tailed batches to the calling thread.
const SPAWN_FLOOR_NS: u128 = 200_000;

/// How many leading items the adaptive probe times on the calling thread.
const PROBE_ITEMS: usize = 2;

/// Locks ignoring std poisoning: the failure slot stays consistent even if
/// a recording thread dies, because `record` only ever writes a complete
/// `(index, error)` pair.
fn lock_failure<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Sets the worker-thread count for both the sweep engine and the linprog
/// dense kernels. `0` restores the default resolution.
pub fn set_threads(n: usize) {
    linprog::set_threads(n);
}

/// The worker-thread count the sweep engine will use.
pub fn threads() -> usize {
    linprog::threads()
}

/// Converts a worker panic's message into the caller's error type, so
/// [`par_map_result`] can surface panics as ordinary errors.
pub trait FromWorkerPanic {
    /// Builds the error for a worker that panicked with `message`.
    fn from_worker_panic(message: String) -> Self;
}

impl FromWorkerPanic for AssignError {
    fn from_worker_panic(message: String) -> Self {
        AssignError::Worker(message)
    }
}

/// One pre-allocated result slot per item; each slot is written exactly
/// once, by whichever worker claimed that item's index.
struct Slots<R>(Vec<UnsafeCell<Option<R>>>);

// Safety: a slot is only accessed by the single worker that claimed its
// index from the shared atomic counter, and ownership of the whole vector
// returns to the caller only after the thread scope joins.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(n: usize) -> Self {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// # Safety
    ///
    /// `i` must have been claimed exclusively by the calling worker.
    unsafe fn fill(&self, i: usize, value: R) {
        *self.0[i].get() = Some(value);
    }

    fn drain(self) -> Vec<R> {
        self.0
            .into_iter()
            .map(|c| c.into_inner().expect("every slot filled"))
            .collect()
    }
}

/// Parallel map preserving input order. Results land lock-free in
/// pre-allocated slots; work is distributed through a shared atomic index
/// so fast workers steal whatever is left.
///
/// Granularity is adaptive: the first `min(2, len)` items run (and are
/// timed) on the calling thread, and worker threads are spawned only when
/// the remaining work projected from the *slowest* probe item clears
/// [`SPAWN_FLOOR_NS`] — cheap sweeps finish serially rather than paying
/// spawn/join overhead per point, while a cheap first item cannot mask an
/// expensive tail.
///
/// # Panics
///
/// A panicking `f` propagates to the caller once the scope joins (use
/// [`par_map_result`] to receive failures as values instead).
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads().min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let slots = Slots::new(n);
    // Probe: the first min(2, n) items on the calling thread, timed
    // individually; project the tail from the slowest one so a cheap
    // first item (or one whose cost hides in another item's lazy init)
    // cannot keep an expensive batch serial.
    let probes = PROBE_ITEMS.min(n);
    let mut worst: u128 = 0;
    for (i, item) in items.iter().enumerate().take(probes) {
        let probe = Instant::now();
        let r = f(item);
        worst = worst.max(probe.elapsed().as_nanos());
        // Safety: probe indices are not claimable (the shared counter
        // starts at `probes`).
        unsafe { slots.fill(i, r) };
    }
    let projected = worst.saturating_mul((n - probes) as u128);
    let next = AtomicUsize::new(probes);
    let work = || {
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let r = f(&items[i]);
            // Safety: index `i` was claimed exclusively above.
            unsafe { slots.fill(i, r) };
        }
        // Join-point flush: a scope's implicit join does not wait for TLS
        // destructors, so the exit-flush backstop can land *after* the
        // sweep snapshots its metrics. Flushing at the end of the worker
        // closure (this also runs on the calling thread) makes everything
        // recorded here visible once the scope returns.
        mec_obs::flush_current_thread();
    };
    if projected < SPAWN_FLOOR_NS {
        work();
    } else {
        std::thread::scope(|scope| {
            // The borrow is load-bearing: the same closure runs on N threads.
            #[allow(clippy::needless_borrows_for_generic_args)]
            for _ in 1..workers {
                scope.spawn(&work);
            }
            work();
        });
    }
    slots.drain()
}

/// Fallible parallel map preserving input order. The first failure —
/// an `Err` from `f` or a worker panic (converted through
/// [`FromWorkerPanic`]) — aborts the remaining work and is returned;
/// among failures observed concurrently, the one with the smallest item
/// index wins, so single-failure runs are deterministic.
///
/// # Errors
///
/// Returns the first failure as described above.
pub fn par_map_result<T, R, E>(
    items: &[T],
    f: impl Fn(&T) -> Result<R, E> + Sync,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send + FromWorkerPanic,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = threads().min(n);
    let slots = Slots::new(n);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<(usize, E)>> = Mutex::new(None);

    let record = |i: usize, e: E| {
        let mut guard = lock_failure(&failure);
        match &*guard {
            Some((j, _)) if *j <= i => {}
            _ => *guard = Some((i, e)),
        }
        abort.store(true, Ordering::Relaxed);
    };
    let run_item = |i: usize| {
        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
            // Safety: index `i` was claimed exclusively by the caller.
            Ok(Ok(r)) => unsafe { slots.fill(i, r) },
            Ok(Err(e)) => record(i, e),
            // `&*payload` reborrows the payload itself: `&payload`
            // would coerce the Box into `dyn Any` and make every
            // downcast miss.
            Err(payload) => record(i, E::from_worker_panic(panic_message(&*payload))),
        }
    };
    let work = || {
        loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            run_item(i);
        }
        // Join-point flush; see `par_map` for why this cannot rely on the
        // thread-exit backstop.
        mec_obs::flush_current_thread();
    };
    if workers <= 1 {
        work();
    } else {
        // Probe: the first min(2, n) items on the calling thread, timed
        // individually; spawn only when the tail projected from the
        // slowest probe clears the floor (see `par_map`).
        let probes = PROBE_ITEMS.min(n);
        let mut worst: u128 = 0;
        for i in 0..probes {
            let probe = Instant::now();
            run_item(i);
            worst = worst.max(probe.elapsed().as_nanos());
        }
        let projected = worst.saturating_mul((n - probes) as u128);
        next.store(probes, Ordering::Relaxed);
        if projected < SPAWN_FLOOR_NS {
            work();
        } else {
            std::thread::scope(|scope| {
                // The borrow is load-bearing: the same closure runs on N threads.
                #[allow(clippy::needless_borrows_for_generic_args)]
                for _ in 1..workers {
                    scope.spawn(&work);
                }
                work();
            });
        }
    }

    if let Some((_, e)) = failure
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(e);
    }
    Ok(slots.drain())
}

/// Serializes tests that mutate the process-global thread count.
#[cfg(test)]
pub(crate) static THREADS_TEST_LOCK: Mutex<()> = Mutex::new(());

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&i| i * 2);
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = vec![];
        assert!(par_map(&empty, |&i: &usize| i).is_empty());
    }

    #[test]
    fn par_map_result_collects_ok() {
        let items: Vec<usize> = (0..100).collect();
        let out: Result<Vec<usize>, AssignError> = par_map_result(&items, |&i| Ok(i + 1));
        assert_eq!(out.unwrap(), (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_result_surfaces_first_error() {
        let items: Vec<usize> = (0..64).collect();
        let out: Result<Vec<usize>, AssignError> = par_map_result(&items, |&i| {
            if i == 7 {
                Err(AssignError::InvalidInput(format!("bad item {i}")))
            } else {
                Ok(i)
            }
        });
        let err = out.unwrap_err();
        assert!(err.to_string().contains("bad item 7"), "{err}");
    }

    #[test]
    fn par_map_result_converts_panics() {
        let items: Vec<usize> = (0..32).collect();
        let out: Result<Vec<usize>, AssignError> = par_map_result(&items, |&i| {
            if i == 3 {
                panic!("worker exploded on {i}");
            }
            Ok(i)
        });
        match out {
            Err(AssignError::Worker(msg)) => assert!(msg.contains("worker exploded"), "{msg}"),
            other => panic!("expected Worker error, got {other:?}"),
        }
    }

    /// Spins for roughly `us` microseconds; makes a test item expensive
    /// enough that the adaptive probe chooses the spawning path.
    fn busy_wait(us: u64) {
        let start = std::time::Instant::now();
        while start.elapsed() < std::time::Duration::from_micros(us) {
            std::hint::spin_loop();
        }
    }

    /// The join-point flush contract: metrics and flight-recorder events
    /// staged on `par_map` workers are visible in a snapshot taken right
    /// after the call returns, and worker `sweep/point`-style spans link
    /// to the coordinating thread's span via the explicit parent id.
    #[test]
    fn par_map_flushes_worker_metrics_at_the_join_point() {
        let _t = THREADS_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _o = mec_obs::TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        mec_obs::reset();
        mec_obs::set_enabled(true);
        mec_obs::set_events(true);
        set_threads(4);

        let sweep = mec_obs::span("par_test/sweep");
        let parent = mec_obs::current_span_id();
        let items: Vec<usize> = (0..16).collect();
        // Each point outlasts the spawn floor so workers really spawn and
        // the join-point flush (not serial fallback) is what's under test.
        let out = par_map(&items, |&i| {
            let _g = mec_obs::span_with_parent("par_test/point", parent);
            busy_wait(60);
            i * 3
        });
        sweep.finish();
        let snap = mec_obs::snapshot();

        set_threads(0);
        mec_obs::set_events(false);
        mec_obs::set_enabled(false);
        mec_obs::reset();

        assert_eq!(out[7], 21);
        // Every point is visible immediately after the join — no
        // reliance on the racy thread-exit flush.
        assert_eq!(snap.span("par_test/point").map(|s| s.count), Some(16));
        let sweep_ev = snap
            .events
            .iter()
            .find(|e| e.name == "par_test/sweep")
            .expect("sweep event recorded");
        let points: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "par_test/point")
            .collect();
        assert_eq!(points.len(), 16);
        assert!(
            points.iter().all(|p| p.parent == sweep_ev.id),
            "worker spans link to the coordinator's span"
        );
        assert!(snap.counter("obs/flush").unwrap_or(0) >= 1);
    }

    /// Below the spawn floor both maps finish on the calling thread: no
    /// worker threads appear even with a multi-thread setting.
    #[test]
    fn cheap_maps_stay_on_the_calling_thread() {
        let _t = THREADS_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_threads(4);
        let main_id = std::thread::current().id();
        let items: Vec<usize> = (0..8).collect();
        let ids = par_map(&items, |_| std::thread::current().id());
        let ids_r: Result<Vec<_>, AssignError> =
            par_map_result(&items, |_| Ok(std::thread::current().id()));
        set_threads(0);
        assert!(ids.iter().all(|id| *id == main_id));
        assert!(ids_r.unwrap().iter().all(|id| *id == main_id));
    }

    /// A cheap first item must not keep a heterogeneous batch serial: the
    /// probe takes the max over min(2, len) items, so a batch whose tail
    /// is expensive clears the spawn floor and runs off the calling
    /// thread. (A single-item probe projected the whole batch from the
    /// cheap head and stayed serial.)
    #[test]
    fn heterogeneous_batches_spawn_despite_a_cheap_first_item() {
        let _t = THREADS_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_threads(4);
        let main_id = std::thread::current().id();
        let items: Vec<usize> = (0..16).collect();
        let heavy_tail = |&i: &usize| {
            if i > 0 {
                busy_wait(300);
            }
            std::thread::current().id()
        };
        let ids = par_map(&items, heavy_tail);
        let ids_r: Result<Vec<_>, AssignError> = par_map_result(&items, |i| Ok(heavy_tail(i)));
        set_threads(0);
        assert!(
            ids.iter().any(|id| *id != main_id),
            "expensive tail behind a cheap probe item must spawn workers"
        );
        assert!(ids_r.unwrap().iter().any(|id| *id != main_id));
    }

    #[test]
    fn thread_setting_round_trips_through_linprog() {
        let _guard = THREADS_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_threads(2);
        assert_eq!(threads(), 2);
        assert_eq!(linprog::threads(), 2);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
