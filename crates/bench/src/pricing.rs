//! Chunked parallel cost-table pricing (DESIGN.md §11).
//!
//! [`dsmec_core::costs::CostTable::build`] prices tasks serially; this
//! module fans the *infallible* arena kernel
//! ([`mec_sim::cost::evaluate_resolved`]) out over fixed task chunks with
//! [`crate::par::par_map`] and concatenates the chunk matrices back in
//! task order. The fallible [`mec_sim::cost::resolve`] pass stays serial
//! so the first error (in task order) wins deterministically regardless
//! of thread count — `par_map_result` aborts early and can observe a
//! *later* failure first, which would make the reported error
//! thread-count-dependent.
//!
//! Bit-identity with the serial build holds by construction: both paths
//! price each task through the same `site_costs` kernel with the same
//! resolved values, and fixed chunk boundaries + in-order concatenation
//! reproduce the serial row order exactly.

use dsmec_core::costs::CostTable;
use dsmec_core::error::AssignError;
use mec_sim::arena::ScenarioArena;
use mec_sim::cost::{self, CostFacts, CostMatrix};
use mec_sim::task::HolisticTask;
use mec_sim::topology::MecSystem;

/// Tasks per parallel chunk. Fixed (not derived from thread count) so the
/// chunk boundaries — and thus the concatenation order — are identical
/// for every `--threads` setting.
pub const CHUNK_TASKS: usize = 8192;

/// Prices every task in `tasks`, fanning the arena kernel out over
/// [`CHUNK_TASKS`]-sized chunks. Produces a table bit-identical to
/// [`CostTable::build`] on the same inputs.
///
/// # Errors
///
/// Exactly the serial build's errors, first task first.
pub fn build_cost_table(
    system: &MecSystem,
    tasks: &[HolisticTask],
) -> Result<CostTable, AssignError> {
    let _timer = mec_obs::span("cost/build");
    let arena = ScenarioArena::from_system(system).map_err(AssignError::Mec)?;
    // Serial fallible pass: validation + handle resolution, task order.
    let mut facts = Vec::with_capacity(tasks.len());
    for task in tasks {
        facts.push(cost::resolve(system, task).map_err(AssignError::Mec)?);
    }
    let matrix = price_resolved(system, &arena, tasks, &facts);
    Ok(CostTable::from_matrix(matrix))
}

/// The infallible kernel fan-out: chunked `par_map`, in-order append.
fn price_resolved(
    system: &MecSystem,
    arena: &ScenarioArena,
    tasks: &[HolisticTask],
    facts: &[CostFacts],
) -> CostMatrix {
    debug_assert_eq!(tasks.len(), facts.len());
    let bounds: Vec<(usize, usize)> = (0..tasks.len())
        .step_by(CHUNK_TASKS.max(1))
        .map(|lo| (lo, (lo + CHUNK_TASKS).min(tasks.len())))
        .collect();
    let mut chunks = crate::par::par_map(&bounds, |&(lo, hi)| {
        let mut m = CostMatrix::with_capacity(hi - lo);
        for i in lo..hi {
            m.push(cost::evaluate_resolved(system, arena, &tasks[i], facts[i]));
        }
        m
    });
    let mut matrix = CostMatrix::with_capacity(tasks.len());
    for chunk in &mut chunks {
        matrix.append(chunk);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::units::Seconds;
    use mec_sim::workload::ScenarioConfig;

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let mut cfg = ScenarioConfig::paper_defaults(7);
        cfg.tasks_total = 300; // spans multiple probe items but one chunk
        let s = cfg.generate().unwrap();
        let serial = CostTable::build(&s.system, &s.tasks).unwrap();
        let _t = crate::par::THREADS_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for threads in [1, 4] {
            crate::par::set_threads(threads);
            let parallel = build_cost_table(&s.system, &s.tasks);
            crate::par::set_threads(0);
            assert_eq!(parallel.unwrap(), serial, "threads={threads}");
        }
    }

    #[test]
    fn chunk_boundaries_do_not_reorder_rows() {
        // Force several chunks by shrinking the chunk constant's effect:
        // price a task count just over one chunk via repeated slices.
        let mut cfg = ScenarioConfig::paper_defaults(8);
        cfg.tasks_total = 64;
        let s = cfg.generate().unwrap();
        let serial = CostTable::build(&s.system, &s.tasks).unwrap();
        let arena = ScenarioArena::from_system(&s.system).unwrap();
        let facts: Vec<CostFacts> = s
            .tasks
            .iter()
            .map(|t| cost::resolve(&s.system, t).unwrap())
            .collect();
        let matrix = price_resolved(&s.system, &arena, &s.tasks, &facts);
        assert_eq!(CostTable::from_matrix(matrix), serial);
    }

    #[test]
    fn first_error_in_task_order_wins() {
        let s = ScenarioConfig::paper_defaults(9).generate().unwrap();
        let mut tasks = s.tasks.clone();
        // Invalidate two tasks; the earlier one must be reported.
        tasks[5].deadline = Seconds::ZERO;
        tasks[2].deadline = Seconds::ZERO;
        let serial = CostTable::build(&s.system, &tasks).unwrap_err();
        let parallel = build_cost_table(&s.system, &tasks).unwrap_err();
        assert_eq!(parallel.to_string(), serial.to_string());
    }
}
