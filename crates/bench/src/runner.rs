//! Sweep machinery: algorithm dispatch, seed-averaged metric extraction
//! and the flat (point × seed) fan-out that spreads a whole figure over
//! worker threads (see [`crate::par`]) while keeping the output
//! bit-identical to a serial run.

use crate::cache;
use dsmec_core::costs::CostTable;
use dsmec_core::error::AssignError;
use dsmec_core::hta::{
    AllOffload, AllToC, Hgos, HtaAlgorithm, LocalFirst, LpHta, NashOffload, RandomAssign, WarmBases,
};
use dsmec_core::metrics::{evaluate_assignment, Metrics};
use mec_sim::workload::{Scenario, ScenarioConfig};

pub use crate::par::{par_map, par_map_result};

/// The holistic algorithms a figure can sweep, as a value type so sweeps
/// are `Send + Sync` without trait-object plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// The paper's LP-HTA.
    LpHta(LpHta),
    /// The reconstructed HGOS comparator.
    Hgos(Hgos),
    /// Everything to the cloud.
    AllToC,
    /// Everything off the device.
    AllOffload,
    /// Keep work local while capacity lasts.
    LocalFirst,
    /// Seeded random placement.
    Random(u64),
    /// Best-response offloading game to Nash equilibrium (refs \[8\]/\[13\]).
    Nash(NashOffload),
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::LpHta(_) => "LP-HTA",
            Algo::Hgos(_) => "HGOS",
            Algo::AllToC => "AllToC",
            Algo::AllOffload => "AllOffload",
            Algo::LocalFirst => "LocalFirst",
            Algo::Random(_) => "Random",
            Algo::Nash(_) => "NashOffload",
        }
    }

    /// Runs the algorithm over an already-generated scenario.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped algorithm's errors.
    pub fn run(&self, scenario: &Scenario, costs: &CostTable) -> Result<Metrics, AssignError> {
        let assignment = match self {
            Algo::LpHta(a) => a.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::Hgos(a) => a.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::AllToC => AllToC.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::AllOffload => AllOffload.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::LocalFirst => LocalFirst.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::Random(seed) => {
                RandomAssign { seed: *seed }.assign(&scenario.system, &scenario.tasks, costs)?
            }
            Algo::Nash(a) => a.assign(&scenario.system, &scenario.tasks, costs)?,
        };
        evaluate_assignment(&scenario.tasks, costs, &assignment)
    }

    /// Like [`Self::run`], but threads a [`WarmBases`] chain through
    /// LP-HTA's relaxation so a sequence of adjacent instances (a sweep's
    /// points under one seed) reuses optimal bases. Algorithms without an
    /// LP are unaffected and delegate to [`Self::run`].
    ///
    /// # Errors
    ///
    /// Propagates the wrapped algorithm's errors.
    pub fn run_warm(
        &self,
        scenario: &Scenario,
        costs: &CostTable,
        warm: &mut WarmBases,
    ) -> Result<Metrics, AssignError> {
        match self {
            Algo::LpHta(a) => {
                let (assignment, _) =
                    a.assign_with_report_warm(&scenario.system, &scenario.tasks, costs, warm)?;
                evaluate_assignment(&scenario.tasks, costs, &assignment)
            }
            _ => self.run(scenario, costs),
        }
    }
}

/// Per-seed chain state for [`eval_algos_warm`]: one [`WarmBases`] per
/// algorithm slot, created lazily on first use so the engine's generic
/// `Default` bound is enough.
#[derive(Debug, Default)]
pub struct WarmChain {
    per_algo: Vec<WarmBases>,
}

impl WarmChain {
    fn slots(&mut self, n: usize) -> &mut [WarmBases] {
        if self.per_algo.len() != n {
            self.per_algo = (0..n).map(|_| WarmBases::new()).collect();
        }
        &mut self.per_algo
    }

    /// Total `(attempts, hits)` across all algorithm slots.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        self.per_algo
            .iter()
            .fold((0, 0), |(a, h), w| (a + w.attempts, h + w.hits))
    }
}

/// The paper's Fig. 2–4 comparator set.
pub fn paper_comparators() -> Vec<Algo> {
    vec![
        Algo::LpHta(LpHta::paper()),
        Algo::Hgos(Hgos::default()),
        Algo::AllToC,
        Algo::AllOffload,
    ]
}

/// Runs every algorithm on `base` with its seed set to `seed` (scenario
/// and cost table come from the shared cache) and extracts one value per
/// algorithm.
///
/// # Errors
///
/// Propagates generation and algorithm errors.
pub fn eval_algos(
    base: &ScenarioConfig,
    seed: u64,
    algos: &[Algo],
    extract: impl Fn(&Metrics) -> f64,
) -> Result<Vec<f64>, AssignError> {
    let mut cfg = base.clone();
    cfg.seed = seed;
    let cached = cache::scenario_with_costs(&cfg)?;
    algos
        .iter()
        .map(|algo| {
            algo.run(&cached.scenario, &cached.costs)
                .map(|m| extract(&m))
        })
        .collect()
}

/// [`eval_algos`] with a warm-start chain: LP-HTA algorithms solve their
/// relaxations from the bases the same chain produced on the previous
/// call (the previous sweep point of this seed).
///
/// # Errors
///
/// Propagates generation and algorithm errors.
pub fn eval_algos_warm(
    base: &ScenarioConfig,
    seed: u64,
    algos: &[Algo],
    chain: &mut WarmChain,
    extract: impl Fn(&Metrics) -> f64,
) -> Result<Vec<f64>, AssignError> {
    let mut cfg = base.clone();
    cfg.seed = seed;
    let cached = cache::scenario_with_costs(&cfg)?;
    let warms = chain.slots(algos.len());
    algos
        .iter()
        .zip(warms.iter_mut())
        .map(|(algo, warm)| {
            algo.run_warm(&cached.scenario, &cached.costs, warm)
                .map(|m| extract(&m))
        })
        .collect()
}

/// Runs every algorithm over every seed of a configuration and averages
/// the metric extracted by `extract`.
///
/// # Errors
///
/// Returns [`AssignError::InvalidInput`] for an empty seed list (the
/// average would otherwise be `NaN`); propagates generation and algorithm
/// errors.
pub fn seed_averaged(
    base: &ScenarioConfig,
    seeds: &[u64],
    algos: &[Algo],
    extract: impl Fn(&Metrics) -> f64,
) -> Result<Vec<f64>, AssignError> {
    if seeds.is_empty() {
        return Err(AssignError::InvalidInput(
            "seed_averaged requires at least one seed".into(),
        ));
    }
    let mut sums = vec![0.0; algos.len()];
    for &seed in seeds {
        let row = eval_algos(base, seed, algos, &extract)?;
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
    }
    Ok(sums.into_iter().map(|s| s / seeds.len() as f64).collect())
}

/// The sweep engine behind every figure: evaluates `eval(point, seed)` for
/// the full (point × seed) cross product as one flat parallel fan-out,
/// then averages each point over its seeds.
///
/// Determinism contract: `eval` is called with exactly the arguments a
/// serial double loop would use, each `(point, seed)` evaluation is
/// independent, and the reduction sums a point's rows in seed order before
/// dividing once — so the output is bit-identical to the serial nesting,
/// for any thread count.
///
/// # Errors
///
/// Returns [`AssignError::InvalidInput`] for an empty seed list or for
/// rows of inconsistent width; propagates (or converts, for panics) worker
/// failures via [`par_map_result`].
pub fn sweep_seed_averaged<P: Sync>(
    points: &[P],
    seeds: &[u64],
    eval: impl Fn(&P, u64) -> Result<Vec<f64>, AssignError> + Sync,
) -> Result<Vec<Vec<f64>>, AssignError> {
    if seeds.is_empty() {
        return Err(AssignError::InvalidInput(
            "sweep_seed_averaged requires at least one seed".into(),
        ));
    }
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let pairs: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|pi| seeds.iter().map(move |&s| (pi, s)))
        .collect();
    // Flight-recorder linkage: a worker thread has no span context of its
    // own, so each point span links explicitly to whatever span is open
    // here on the coordinating thread (e.g. `experiment/fig2a`), giving
    // traces the full sweep → experiment → point → algorithm chain.
    let sweep_parent = mec_obs::current_span_id();
    let rows = par_map_result(&pairs, |&(pi, seed)| {
        // Per-(point, seed) wall time; workers stage locally and flush
        // into the global registry at the par_map join point.
        let _timer = mec_obs::span_with_parent("sweep/point", sweep_parent);
        eval(&points[pi], seed)
    })?;

    let per_point = seeds.len();
    let mut out = Vec::with_capacity(points.len());
    for chunk in rows.chunks_exact(per_point) {
        let width = chunk[0].len();
        if chunk.iter().any(|r| r.len() != width) {
            return Err(AssignError::InvalidInput(
                "sweep_seed_averaged rows have inconsistent widths".into(),
            ));
        }
        let mut acc = vec![0.0; width];
        for row in chunk {
            for (a, v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= per_point as f64;
        }
        out.push(acc);
    }
    Ok(out)
}

/// The warm-start sweep engine: like [`sweep_seed_averaged`], but fans
/// out over *seeds* and walks each seed's points serially, threading a
/// per-seed chain state `C` (e.g. [`WarmChain`]) through `eval` so
/// adjacent points can reuse work — LP bases, most prominently.
///
/// Determinism contract: each seed's chain runs on exactly one worker in
/// point order, chains never cross seeds, and the reduction sums a
/// point's values in seed order before dividing once — so the output is
/// bit-identical to a serial nesting, for any thread count. (Warm starts
/// may land on a different optimal vertex than a cold solve would; that
/// difference is a property of the chain itself, not of the thread
/// count, and the objective is the cold one either way.)
///
/// Parallel width is `min(threads, seeds)` instead of
/// `min(threads, points × seeds)` — the price of chaining. Figures with
/// no cross-point state to carry should keep the flat engine.
///
/// # Errors
///
/// Returns [`AssignError::InvalidInput`] for an empty seed list or rows
/// of inconsistent widths; propagates (or converts, for panics) worker
/// failures via [`par_map_result`].
pub fn sweep_seed_averaged_chained<P: Sync, C: Default>(
    points: &[P],
    seeds: &[u64],
    eval: impl Fn(&P, u64, &mut C) -> Result<Vec<f64>, AssignError> + Sync,
) -> Result<Vec<Vec<f64>>, AssignError> {
    if seeds.is_empty() {
        return Err(AssignError::InvalidInput(
            "sweep_seed_averaged_chained requires at least one seed".into(),
        ));
    }
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let sweep_parent = mec_obs::current_span_id();
    // rows[seed][point][metric]
    let rows = par_map_result(seeds, |&seed| {
        let mut chain = C::default();
        let mut per_point = Vec::with_capacity(points.len());
        for point in points {
            let _timer = mec_obs::span_with_parent("sweep/point", sweep_parent);
            per_point.push(eval(point, seed, &mut chain)?);
        }
        Ok::<_, AssignError>(per_point)
    })?;

    let mut out = Vec::with_capacity(points.len());
    for pi in 0..points.len() {
        let width = rows[0][pi].len();
        if rows.iter().any(|r| r[pi].len() != width) {
            return Err(AssignError::InvalidInput(
                "sweep_seed_averaged_chained rows have inconsistent widths".into(),
            ));
        }
        let mut acc = vec![0.0; width];
        for seed_rows in &rows {
            for (a, v) in acc.iter_mut().zip(&seed_rows[pi]) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= seeds.len() as f64;
        }
        out.push(acc);
    }
    Ok(out)
}

/// Mean of a slice; zero for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_names() {
        assert_eq!(Algo::LpHta(LpHta::paper()).name(), "LP-HTA");
        assert_eq!(Algo::AllToC.name(), "AllToC");
        assert_eq!(paper_comparators().len(), 4);
    }

    #[test]
    fn seed_averaging_runs_all_algorithms() {
        let mut cfg = ScenarioConfig::paper_defaults(0);
        cfg.tasks_total = 20;
        let algos = paper_comparators();
        let means = seed_averaged(&cfg, &[1, 2], &algos, |m| m.total_energy.value()).unwrap();
        assert_eq!(means.len(), algos.len());
        assert!(means.iter().all(|&v| v > 0.0));
        // The paper's trend: LP-HTA and HGOS track each other closely
        // (pointwise either may edge out the other — and on an instance
        // this small the rounding loss is relatively large) and both sit
        // far below the offloading baselines.
        let [lp, hgos, all_to_c, all_offload] = means[..] else {
            panic!("expected four comparators");
        };
        let ratio = lp / hgos;
        assert!((0.8..=1.2).contains(&ratio), "LP vs HGOS ratio {ratio}");
        assert!(lp < all_to_c * 0.8);
        assert!(lp < all_offload * 0.8);
    }

    #[test]
    fn seed_averaged_rejects_empty_seeds() {
        let cfg = ScenarioConfig::paper_defaults(0);
        let algos = paper_comparators();
        let err = seed_averaged(&cfg, &[], &algos, |m| m.total_energy.value()).unwrap_err();
        assert!(matches!(err, AssignError::InvalidInput(_)), "{err}");
        let err = sweep_seed_averaged(&[1usize], &[], |_, _| Ok(vec![0.0])).unwrap_err();
        assert!(matches!(err, AssignError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn sweep_matches_serial_double_loop() {
        let points = [3usize, 5, 8];
        let seeds = [11u64, 12, 13];
        let eval = |&p: &usize, s: u64| -> Result<Vec<f64>, AssignError> {
            Ok(vec![
                (p as f64) * 0.1 + s as f64,
                (p * 2) as f64 / (s as f64),
            ])
        };
        let swept = sweep_seed_averaged(&points, &seeds, eval).unwrap();
        // Serial reference: same nesting, same reduction order.
        let mut reference = Vec::new();
        for p in &points {
            let mut acc = vec![0.0; 2];
            for &s in &seeds {
                let row = eval(p, s).unwrap();
                for (a, v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
            }
            for a in &mut acc {
                *a /= seeds.len() as f64;
            }
            reference.push(acc);
        }
        assert_eq!(swept, reference);
    }

    #[test]
    fn chained_sweep_matches_serial_double_loop() {
        let points = [3usize, 5, 8];
        let seeds = [11u64, 12, 13];
        // The chain counts how many points this seed has visited; folding
        // it into the output proves state threads through in point order.
        let eval = |&p: &usize, s: u64, chain: &mut u64| -> Result<Vec<f64>, AssignError> {
            *chain += 1;
            Ok(vec![(p as f64) * 0.1 + s as f64, *chain as f64])
        };
        let swept = sweep_seed_averaged_chained(&points, &seeds, eval).unwrap();
        let mut reference = Vec::new();
        for (pi, p) in points.iter().enumerate() {
            let mut acc = vec![0.0; 2];
            for &s in &seeds {
                let mut chain = pi as u64; // pi points already visited
                let row = eval(p, s, &mut chain).unwrap();
                for (a, v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
            }
            for a in &mut acc {
                *a /= seeds.len() as f64;
            }
            reference.push(acc);
        }
        assert_eq!(swept, reference);
    }

    #[test]
    fn chained_sweep_rejects_empty_seeds_and_ragged_rows() {
        let err = sweep_seed_averaged_chained(&[1usize], &[], |_, _, _: &mut ()| Ok(vec![0.0]))
            .unwrap_err();
        assert!(matches!(err, AssignError::InvalidInput(_)), "{err}");
        // Width depends on the seed: ragged output must be rejected, not
        // silently zipped short.
        let err = sweep_seed_averaged_chained(&[1usize], &[7, 8], |_, s, _: &mut ()| {
            Ok(vec![0.0; s as usize - 6])
        })
        .unwrap_err();
        assert!(matches!(err, AssignError::InvalidInput(_)), "{err}");
        let empty: Vec<Vec<f64>> =
            sweep_seed_averaged_chained(&[] as &[usize], &[7], |_, _, _: &mut ()| Ok(vec![0.0]))
                .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn warm_chain_eval_matches_flat_eval() {
        let mut cfg = ScenarioConfig::paper_defaults(0);
        cfg.tasks_total = 20;
        // Disable the exact greedy fast path so the LP relaxation (and
        // hence the warm-start machinery) actually runs on this small
        // instance.
        let mut algos = paper_comparators();
        algos[0] = Algo::LpHta(LpHta::paper().without_fast_path());
        let flat = eval_algos(&cfg, 5, &algos, |m| m.total_energy.value()).unwrap();
        let mut chain = WarmChain::default();
        let first =
            eval_algos_warm(&cfg, 5, &algos, &mut chain, |m| m.total_energy.value()).unwrap();
        // First point of a chain is a cold solve: identical to the flat path.
        assert_eq!(flat, first);
        // Re-running the same scenario with the now-populated chain keeps
        // the same objective (warm starts may pick a different optimal
        // vertex, but energy of the certified assignment must agree).
        let again =
            eval_algos_warm(&cfg, 5, &algos, &mut chain, |m| m.total_energy.value()).unwrap();
        for (a, b) in flat.iter().zip(&again) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
        let (attempts, hits) = chain.stats();
        assert!(attempts >= 1, "second pass should attempt warm starts");
        assert!(hits <= attempts);
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
