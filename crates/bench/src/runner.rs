//! Sweep machinery: algorithm dispatch, seed-averaged metric extraction
//! and the flat (point × seed) fan-out that spreads a whole figure over
//! worker threads (see [`crate::par`]) while keeping the output
//! bit-identical to a serial run.

use crate::cache;
use dsmec_core::costs::CostTable;
use dsmec_core::error::AssignError;
use dsmec_core::hta::{
    AllOffload, AllToC, Hgos, HtaAlgorithm, LocalFirst, LpHta, NashOffload, RandomAssign,
};
use dsmec_core::metrics::{evaluate_assignment, Metrics};
use mec_sim::workload::{Scenario, ScenarioConfig};

pub use crate::par::{par_map, par_map_result};

/// The holistic algorithms a figure can sweep, as a value type so sweeps
/// are `Send + Sync` without trait-object plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// The paper's LP-HTA.
    LpHta(LpHta),
    /// The reconstructed HGOS comparator.
    Hgos(Hgos),
    /// Everything to the cloud.
    AllToC,
    /// Everything off the device.
    AllOffload,
    /// Keep work local while capacity lasts.
    LocalFirst,
    /// Seeded random placement.
    Random(u64),
    /// Best-response offloading game to Nash equilibrium (refs \[8\]/\[13\]).
    Nash(NashOffload),
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::LpHta(_) => "LP-HTA",
            Algo::Hgos(_) => "HGOS",
            Algo::AllToC => "AllToC",
            Algo::AllOffload => "AllOffload",
            Algo::LocalFirst => "LocalFirst",
            Algo::Random(_) => "Random",
            Algo::Nash(_) => "NashOffload",
        }
    }

    /// Runs the algorithm over an already-generated scenario.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped algorithm's errors.
    pub fn run(&self, scenario: &Scenario, costs: &CostTable) -> Result<Metrics, AssignError> {
        let assignment = match self {
            Algo::LpHta(a) => a.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::Hgos(a) => a.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::AllToC => AllToC.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::AllOffload => AllOffload.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::LocalFirst => LocalFirst.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::Random(seed) => {
                RandomAssign { seed: *seed }.assign(&scenario.system, &scenario.tasks, costs)?
            }
            Algo::Nash(a) => a.assign(&scenario.system, &scenario.tasks, costs)?,
        };
        evaluate_assignment(&scenario.tasks, costs, &assignment)
    }
}

/// The paper's Fig. 2–4 comparator set.
pub fn paper_comparators() -> Vec<Algo> {
    vec![
        Algo::LpHta(LpHta::paper()),
        Algo::Hgos(Hgos::default()),
        Algo::AllToC,
        Algo::AllOffload,
    ]
}

/// Runs every algorithm on `base` with its seed set to `seed` (scenario
/// and cost table come from the shared cache) and extracts one value per
/// algorithm.
///
/// # Errors
///
/// Propagates generation and algorithm errors.
pub fn eval_algos(
    base: &ScenarioConfig,
    seed: u64,
    algos: &[Algo],
    extract: impl Fn(&Metrics) -> f64,
) -> Result<Vec<f64>, AssignError> {
    let mut cfg = base.clone();
    cfg.seed = seed;
    let cached = cache::scenario_with_costs(&cfg)?;
    algos
        .iter()
        .map(|algo| {
            algo.run(&cached.scenario, &cached.costs)
                .map(|m| extract(&m))
        })
        .collect()
}

/// Runs every algorithm over every seed of a configuration and averages
/// the metric extracted by `extract`.
///
/// # Errors
///
/// Returns [`AssignError::InvalidInput`] for an empty seed list (the
/// average would otherwise be `NaN`); propagates generation and algorithm
/// errors.
pub fn seed_averaged(
    base: &ScenarioConfig,
    seeds: &[u64],
    algos: &[Algo],
    extract: impl Fn(&Metrics) -> f64,
) -> Result<Vec<f64>, AssignError> {
    if seeds.is_empty() {
        return Err(AssignError::InvalidInput(
            "seed_averaged requires at least one seed".into(),
        ));
    }
    let mut sums = vec![0.0; algos.len()];
    for &seed in seeds {
        let row = eval_algos(base, seed, algos, &extract)?;
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
    }
    Ok(sums.into_iter().map(|s| s / seeds.len() as f64).collect())
}

/// The sweep engine behind every figure: evaluates `eval(point, seed)` for
/// the full (point × seed) cross product as one flat parallel fan-out,
/// then averages each point over its seeds.
///
/// Determinism contract: `eval` is called with exactly the arguments a
/// serial double loop would use, each `(point, seed)` evaluation is
/// independent, and the reduction sums a point's rows in seed order before
/// dividing once — so the output is bit-identical to the serial nesting,
/// for any thread count.
///
/// # Errors
///
/// Returns [`AssignError::InvalidInput`] for an empty seed list or for
/// rows of inconsistent width; propagates (or converts, for panics) worker
/// failures via [`par_map_result`].
pub fn sweep_seed_averaged<P: Sync>(
    points: &[P],
    seeds: &[u64],
    eval: impl Fn(&P, u64) -> Result<Vec<f64>, AssignError> + Sync,
) -> Result<Vec<Vec<f64>>, AssignError> {
    if seeds.is_empty() {
        return Err(AssignError::InvalidInput(
            "sweep_seed_averaged requires at least one seed".into(),
        ));
    }
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let pairs: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|pi| seeds.iter().map(move |&s| (pi, s)))
        .collect();
    // Flight-recorder linkage: a worker thread has no span context of its
    // own, so each point span links explicitly to whatever span is open
    // here on the coordinating thread (e.g. `experiment/fig2a`), giving
    // traces the full sweep → experiment → point → algorithm chain.
    let sweep_parent = mec_obs::current_span_id();
    let rows = par_map_result(&pairs, |&(pi, seed)| {
        // Per-(point, seed) wall time; workers stage locally and flush
        // into the global registry at the par_map join point.
        let _timer = mec_obs::span_with_parent("sweep/point", sweep_parent);
        eval(&points[pi], seed)
    })?;

    let per_point = seeds.len();
    let mut out = Vec::with_capacity(points.len());
    for chunk in rows.chunks_exact(per_point) {
        let width = chunk[0].len();
        if chunk.iter().any(|r| r.len() != width) {
            return Err(AssignError::InvalidInput(
                "sweep_seed_averaged rows have inconsistent widths".into(),
            ));
        }
        let mut acc = vec![0.0; width];
        for row in chunk {
            for (a, v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= per_point as f64;
        }
        out.push(acc);
    }
    Ok(out)
}

/// Mean of a slice; zero for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_names() {
        assert_eq!(Algo::LpHta(LpHta::paper()).name(), "LP-HTA");
        assert_eq!(Algo::AllToC.name(), "AllToC");
        assert_eq!(paper_comparators().len(), 4);
    }

    #[test]
    fn seed_averaging_runs_all_algorithms() {
        let mut cfg = ScenarioConfig::paper_defaults(0);
        cfg.tasks_total = 20;
        let algos = paper_comparators();
        let means = seed_averaged(&cfg, &[1, 2], &algos, |m| m.total_energy.value()).unwrap();
        assert_eq!(means.len(), algos.len());
        assert!(means.iter().all(|&v| v > 0.0));
        // The paper's trend: LP-HTA and HGOS track each other closely
        // (pointwise either may edge out the other — and on an instance
        // this small the rounding loss is relatively large) and both sit
        // far below the offloading baselines.
        let [lp, hgos, all_to_c, all_offload] = means[..] else {
            panic!("expected four comparators");
        };
        let ratio = lp / hgos;
        assert!((0.8..=1.2).contains(&ratio), "LP vs HGOS ratio {ratio}");
        assert!(lp < all_to_c * 0.8);
        assert!(lp < all_offload * 0.8);
    }

    #[test]
    fn seed_averaged_rejects_empty_seeds() {
        let cfg = ScenarioConfig::paper_defaults(0);
        let algos = paper_comparators();
        let err = seed_averaged(&cfg, &[], &algos, |m| m.total_energy.value()).unwrap_err();
        assert!(matches!(err, AssignError::InvalidInput(_)), "{err}");
        let err = sweep_seed_averaged(&[1usize], &[], |_, _| Ok(vec![0.0])).unwrap_err();
        assert!(matches!(err, AssignError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn sweep_matches_serial_double_loop() {
        let points = [3usize, 5, 8];
        let seeds = [11u64, 12, 13];
        let eval = |&p: &usize, s: u64| -> Result<Vec<f64>, AssignError> {
            Ok(vec![
                (p as f64) * 0.1 + s as f64,
                (p * 2) as f64 / (s as f64),
            ])
        };
        let swept = sweep_seed_averaged(&points, &seeds, eval).unwrap();
        // Serial reference: same nesting, same reduction order.
        let mut reference = Vec::new();
        for p in &points {
            let mut acc = vec![0.0; 2];
            for &s in &seeds {
                let row = eval(p, s).unwrap();
                for (a, v) in acc.iter_mut().zip(row) {
                    *a += v;
                }
            }
            for a in &mut acc {
                *a /= seeds.len() as f64;
            }
            reference.push(acc);
        }
        assert_eq!(swept, reference);
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
