//! Sweep machinery: algorithm dispatch, seed-averaged metric extraction
//! and a small crossbeam-based parallel map used to spread a figure's
//! x-points over cores.

use dsmec_core::costs::CostTable;
use dsmec_core::error::AssignError;
use dsmec_core::hta::{AllOffload, AllToC, Hgos, HtaAlgorithm, LocalFirst, LpHta, NashOffload, RandomAssign};
use dsmec_core::metrics::{evaluate_assignment, Metrics};
use mec_sim::workload::{Scenario, ScenarioConfig};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The holistic algorithms a figure can sweep, as a value type so sweeps
/// are `Send + Sync` without trait-object plumbing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// The paper's LP-HTA.
    LpHta(LpHta),
    /// The reconstructed HGOS comparator.
    Hgos(Hgos),
    /// Everything to the cloud.
    AllToC,
    /// Everything off the device.
    AllOffload,
    /// Keep work local while capacity lasts.
    LocalFirst,
    /// Seeded random placement.
    Random(u64),
    /// Best-response offloading game to Nash equilibrium (refs \[8\]/\[13\]).
    Nash(NashOffload),
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::LpHta(_) => "LP-HTA",
            Algo::Hgos(_) => "HGOS",
            Algo::AllToC => "AllToC",
            Algo::AllOffload => "AllOffload",
            Algo::LocalFirst => "LocalFirst",
            Algo::Random(_) => "Random",
            Algo::Nash(_) => "NashOffload",
        }
    }

    /// Runs the algorithm over an already-generated scenario.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped algorithm's errors.
    pub fn run(&self, scenario: &Scenario, costs: &CostTable) -> Result<Metrics, AssignError> {
        let assignment = match self {
            Algo::LpHta(a) => a.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::Hgos(a) => a.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::AllToC => AllToC.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::AllOffload => AllOffload.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::LocalFirst => LocalFirst.assign(&scenario.system, &scenario.tasks, costs)?,
            Algo::Random(seed) => {
                RandomAssign { seed: *seed }.assign(&scenario.system, &scenario.tasks, costs)?
            }
            Algo::Nash(a) => a.assign(&scenario.system, &scenario.tasks, costs)?,
        };
        evaluate_assignment(&scenario.tasks, costs, &assignment)
    }
}

/// The paper's Fig. 2–4 comparator set.
pub fn paper_comparators() -> Vec<Algo> {
    vec![
        Algo::LpHta(LpHta::paper()),
        Algo::Hgos(Hgos::default()),
        Algo::AllToC,
        Algo::AllOffload,
    ]
}

/// Runs every algorithm over every seed of a configuration and averages
/// the metric extracted by `extract`.
///
/// # Errors
///
/// Propagates generation and algorithm errors.
pub fn seed_averaged(
    base: &ScenarioConfig,
    seeds: &[u64],
    algos: &[Algo],
    extract: impl Fn(&Metrics) -> f64,
) -> Result<Vec<f64>, AssignError> {
    let mut sums = vec![0.0; algos.len()];
    for &seed in seeds {
        let mut cfg = base.clone();
        cfg.seed = seed;
        let scenario = cfg.generate()?;
        let costs = CostTable::build(&scenario.system, &scenario.tasks)?;
        for (k, algo) in algos.iter().enumerate() {
            let m = algo.run(&scenario, &costs)?;
            sums[k] += extract(&m);
        }
    }
    Ok(sums.into_iter().map(|s| s / seeds.len() as f64).collect())
}

/// Parallel map preserving input order, spreading work over available
/// cores with a shared work queue.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker threads must not panic");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Mean of a slice; zero for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&i| i * 2);
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = vec![];
        assert!(par_map(&empty, |&i: &usize| i).is_empty());
    }

    #[test]
    fn algo_names() {
        assert_eq!(Algo::LpHta(LpHta::paper()).name(), "LP-HTA");
        assert_eq!(Algo::AllToC.name(), "AllToC");
        assert_eq!(paper_comparators().len(), 4);
    }

    #[test]
    fn seed_averaging_runs_all_algorithms() {
        let mut cfg = ScenarioConfig::paper_defaults(0);
        cfg.tasks_total = 20;
        let algos = paper_comparators();
        let means =
            seed_averaged(&cfg, &[1, 2], &algos, |m| m.total_energy.value()).unwrap();
        assert_eq!(means.len(), algos.len());
        assert!(means.iter().all(|&v| v > 0.0));
        // LP-HTA should be the cheapest of the four on average.
        let lp = means[0];
        assert!(means.iter().skip(1).all(|&v| lp <= v * 1.001));
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
