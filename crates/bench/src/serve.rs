//! `dsmec serve` — an online assignment loop over a deterministic task
//! stream.
//!
//! The paper assigns one offline batch; a deployed controller keeps
//! assigning as tasks arrive and devices churn. This module runs that
//! steady state: a [`mec_sim::stream::TaskStream`] feeds micro-batches of
//! arrivals into an epoch loop that
//!
//! 1. applies device churn from an optional seeded fault plan (dead
//!    owners cancel at ingest; dead data sources are re-sourced — the
//!    PR-5 repair rules acting as a steady-state replanner),
//! 2. shards the instance per base-station cluster (the domain-level
//!    image of `linprog::presolve::detect_blocks`: clusters only couple
//!    through the cloud, exactly like blocks through coupling rows),
//! 3. solves every shard concurrently under the deterministic `par_map`
//!    contract via [`LpHta::solve_cluster`], each shard warm-started
//!    from the basis *its own station* produced last epoch,
//! 4. commits bases and statistics serially, rounds, and reconciles the
//!    one cross-cluster resource — cloud capacity — with a cheap serial
//!    migration pass,
//! 5. fingerprints the epoch's decisions (never wall times), so
//!    `--threads 1` and `--threads N` sessions are bit-comparable.
//!
//! Per-epoch spans, a sustained assignment counter and decision-latency
//! histograms flow through `mec-obs`; the [`ServeReport`] JSON carries
//! everything `dsmec trace` and CI gates need.

use crate::timing::percentile;
use dsmec_core::assignment::Decision;
use dsmec_core::costs::CostTable;
use dsmec_core::error::AssignError;
use dsmec_core::hta::{cluster_task_indices, ClusterSolve, FractionalSolution, LpHta, WarmBases};
use mec_sim::sim::{ChaosConfig, Fault, FaultPlan};
use mec_sim::stream::{StreamConfig, TaskStream};
use mec_sim::task::{ExecutionSite, HolisticTask};
use mec_sim::topology::{DeviceId, StationId};
use mec_sim::units::{Bytes, Seconds};
use mec_sim::workload::ScenarioConfig;
use std::time::Instant;

/// Configuration of one serve session.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Stream seed: topology, tasks and arrival times.
    pub seed: u64,
    /// Number of epoch batches to drain.
    pub epochs: usize,
    /// Tasks per epoch; `0` means one task per device, which keeps every
    /// cluster's LP shape constant across epochs (best warm hit rates).
    pub batch: usize,
    /// Base stations in the topology.
    pub num_stations: usize,
    /// Devices per station.
    pub devices_per_station: usize,
    /// Maximum local input size per task, in kB.
    pub max_input_kb: f64,
    /// Poisson arrival rate, tasks per second.
    pub rate_per_second: f64,
    /// Churn seed: generates the session's fault plan (device dropouts
    /// cancel owned tasks at ingest and re-source shared data). `None`
    /// serves churn-free.
    pub chaos: Option<u64>,
    /// Per-epoch cap on cloud placements; exceeding epochs migrate their
    /// largest cloud occupants back to their stations where feasible.
    /// `None` leaves the cloud uncapacitated (the paper's model).
    pub cloud_limit: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            seed: 42,
            epochs: 20,
            batch: 0,
            num_stations: 5,
            devices_per_station: 10,
            max_input_kb: 3000.0,
            rate_per_second: 50.0,
            chaos: None,
            cloud_limit: None,
        }
    }
}

impl ServeConfig {
    /// The effective per-epoch batch size (`batch`, or one task per
    /// device when zero).
    #[must_use]
    pub fn effective_batch(&self) -> usize {
        if self.batch == 0 {
            self.num_stations * self.devices_per_station
        } else {
            self.batch
        }
    }

    fn stream_config(&self) -> StreamConfig {
        let mut scenario = ScenarioConfig::paper_defaults(self.seed);
        scenario.num_stations = self.num_stations;
        scenario.devices_per_station = self.devices_per_station;
        scenario.max_input_kb = self.max_input_kb;
        StreamConfig {
            scenario,
            epochs: self.epochs,
            batch: self.effective_batch(),
            rate_per_second: self.rate_per_second,
        }
    }
}

/// One epoch's outcome. Everything here is deterministic in the session
/// seed(s) except `decision_ns`, which is wall time and deliberately
/// excluded from [`EpochStats::fingerprint`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Zero-based epoch number.
    pub epoch: usize,
    /// Tasks that arrived this epoch.
    pub arrived: usize,
    /// Tasks assigned a site.
    pub assigned: usize,
    /// Tasks cancelled by the LP-HTA repair steps.
    pub cancelled: usize,
    /// Tasks cancelled at ingest because their owner died.
    pub churn_cancelled: usize,
    /// Tasks whose dead external source was replanned to a live device.
    pub resourced: usize,
    /// Cloud placements migrated back to stations by the reconciliation
    /// pass.
    pub cloud_migrations: usize,
    /// Live tasks that missed their deadline: assigned to a site whose
    /// completion time exceeds the deadline, or cancelled by repair
    /// (a cancelled task never completes at all). Churn cancellations are
    /// excluded — a dead owner has no SLA to miss. Deterministic, so it
    /// participates in report comparisons but not the fingerprint (which
    /// hashes raw decisions, from which this is derived).
    pub deadline_misses: usize,
    /// Wall time spent in the repair paths this epoch — churn ingest
    /// (owner cancellation, data re-sourcing) plus the cloud
    /// reconciliation pass — in milliseconds. Wall time, so excluded from
    /// fingerprints and scrubbed in deterministic comparisons exactly
    /// like `decision_ns`.
    pub repair_ms: f64,
    /// Cluster solves offered a chained basis.
    pub warm_attempts: usize,
    /// Offered bases the solver accepted (phase 1 skipped).
    pub warm_hits: usize,
    /// Offered bases rejected for shape mismatch (churn events).
    pub warm_rejections: usize,
    /// Simplex iterations spent this epoch.
    pub lp_iterations: usize,
    /// The epoch's `E_LP^(OPT)`.
    pub lp_objective: f64,
    /// Energy of the final epoch assignment.
    pub final_energy: f64,
    /// Wall-clock decision latency for the whole epoch, nanoseconds.
    pub decision_ns: u64,
    /// Order-sensitive digest of the epoch's decisions (task ids, sites,
    /// churn outcomes — no wall times). Equal fingerprints mean the same
    /// assignments; the `--threads 1` vs `--threads N` oracle.
    pub fingerprint: String,
}

/// The session report `dsmec serve` writes and CI gates.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Stream seed.
    pub seed: u64,
    /// Churn seed, if churn was enabled.
    pub chaos: Option<u64>,
    /// Effective tasks per epoch.
    pub batch: usize,
    /// Total tasks that arrived.
    pub arrived_total: usize,
    /// Total tasks assigned a site.
    pub assigned_total: usize,
    /// Total tasks cancelled (repair plus churn).
    pub cancelled_total: usize,
    /// Tasks replanned to a live data source.
    pub resourced_total: usize,
    /// Total cloud-to-station reconciliation migrations.
    pub cloud_migrations_total: usize,
    /// Cluster solves offered a chained basis.
    pub warm_attempts: u64,
    /// Offered bases accepted.
    pub warm_hits: u64,
    /// `warm_hits / warm_attempts` over the whole session.
    pub warm_hit_rate: f64,
    /// Hit rate excluding the cold first epoch — the steady-state figure
    /// the acceptance gate checks (> 0.5).
    pub steady_warm_hit_rate: f64,
    /// Median epoch decision latency, milliseconds.
    pub decision_p50_ms: f64,
    /// 95th-percentile epoch decision latency, milliseconds.
    pub decision_p95_ms: f64,
    /// Sustained assignment throughput over decision time.
    pub assignments_per_sec: f64,
    /// Digest of all epoch fingerprints — one string to compare across
    /// thread counts.
    pub session_fingerprint: String,
    /// Per-epoch outcomes.
    pub epochs: Vec<EpochStats>,
}

djson::impl_json_struct!(ServeConfig {
    seed,
    epochs,
    batch,
    num_stations,
    devices_per_station,
    max_input_kb,
    rate_per_second,
    chaos,
    cloud_limit,
});
djson::impl_json_struct!(EpochStats {
    epoch,
    arrived,
    assigned,
    cancelled,
    churn_cancelled,
    resourced,
    cloud_migrations,
    deadline_misses,
    repair_ms,
    warm_attempts,
    warm_hits,
    warm_rejections,
    lp_iterations,
    lp_objective,
    final_energy,
    decision_ns,
    fingerprint,
});
djson::impl_json_struct!(ServeReport {
    seed,
    chaos,
    batch,
    arrived_total,
    assigned_total,
    cancelled_total,
    resourced_total,
    cloud_migrations_total,
    warm_attempts,
    warm_hits,
    warm_hit_rate,
    steady_warm_hit_rate,
    decision_p50_ms,
    decision_p95_ms,
    assignments_per_sec,
    session_fingerprint,
    epochs,
});

/// Renders the session report as an aligned text table: one line per
/// epoch plus the session totals the CI gates read.
#[must_use]
pub fn render_serve_report(report: &ServeReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: seed {} chaos {} batch {}",
        report.seed,
        report
            .chaos
            .map_or_else(|| "none".to_string(), |s| s.to_string()),
        report.batch
    );
    let _ = writeln!(
        out,
        "{:>5} {:>7} {:>8} {:>9} {:>6} {:>9} {:>11} {:>12} {:>11}",
        "epoch",
        "arrived",
        "assigned",
        "cancelled",
        "warm",
        "lp iters",
        "energy (J)",
        "latency",
        "fingerprint"
    );
    for e in &report.epochs {
        let warm = if e.warm_attempts == 0 {
            "cold".to_string()
        } else {
            format!("{}/{}", e.warm_hits, e.warm_attempts)
        };
        let _ = writeln!(
            out,
            "{:>5} {:>7} {:>8} {:>9} {:>6} {:>9} {:>11.2} {:>9.2}ms {:>11}",
            e.epoch,
            e.arrived,
            e.assigned,
            e.cancelled + e.churn_cancelled,
            warm,
            e.lp_iterations,
            e.final_energy,
            e.decision_ns as f64 / 1e6,
            &e.fingerprint[..11.min(e.fingerprint.len())],
        );
    }
    let _ = writeln!(
        out,
        "totals: {} assigned / {} arrived, warm hit rate {:.0}% (steady {:.0}%), \
         {:.0} assignments/s, p50 {:.2} ms, p95 {:.2} ms",
        report.assigned_total,
        report.arrived_total,
        report.warm_hit_rate * 100.0,
        report.steady_warm_hit_rate * 100.0,
        report.assignments_per_sec,
        report.decision_p50_ms,
        report.decision_p95_ms
    );
    let _ = writeln!(out, "session fingerprint {}", report.session_fingerprint);
    out
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// How one arrived task left the epoch, encoded into the fingerprint.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Outcome {
    Site(ExecutionSite),
    RepairCancelled,
    ChurnCancelled,
}

impl Outcome {
    fn code(self) -> u8 {
        match self {
            Outcome::Site(site) => site.index() as u8,
            Outcome::RepairCancelled => 3,
            Outcome::ChurnCancelled => 4,
        }
    }
}

/// Replans a task whose external data source died this epoch. The
/// replacement is the lowest-id live device other than the owner — the
/// same rule every epoch, so replays agree for any worker-thread count.
/// When every other device is dead (all holders of the shared datum went
/// down at once) the external dependency is dropped entirely — source
/// cleared *and* size zeroed together, preserving the
/// `external_size > 0 ⟺ external_source` pairing that
/// `HolisticTask::validate` enforces — so no task ever reaches the LP
/// still pointing at a dead source. Returns `true` iff the task was
/// re-sourced or had its dependency dropped.
///
/// `is_dead` is indexed by device id and sized to the device count; a
/// source outside it does not exist in this system and is left alone.
fn resource_dead_external(task: &mut HolisticTask, is_dead: &[bool]) -> bool {
    let Some(src) = task.external_source else {
        return false;
    };
    if src.0 >= is_dead.len() || !is_dead[src.0] {
        return false;
    }
    let replacement = (0..is_dead.len())
        .map(DeviceId)
        .find(|d| !is_dead[d.0] && *d != task.owner);
    match replacement {
        Some(d) => task.external_source = Some(d),
        None => {
            task.external_source = None;
            task.external_size = Bytes::ZERO;
        }
    }
    true
}

/// Runs a full serve session: generates the stream (and churn plan),
/// drains every epoch through the sharded incremental LP-HTA, and
/// returns the session report.
///
/// Deterministic in `(seed, chaos)` for any worker-thread count: shards
/// solve concurrently but commit in station order, and fingerprints
/// never include wall times.
///
/// # Errors
///
/// Returns [`AssignError`] for substrate failures or irrecoverable LP
/// numerical failures; per-task infeasibility lands in the report as
/// cancellations.
pub fn serve(config: &ServeConfig) -> Result<ServeReport, AssignError> {
    serve_with_hook(config, &mut |_| {})
}

/// [`serve`] with a per-epoch observer: `on_epoch` runs after each
/// epoch's statistics are final (decisions committed, fingerprint
/// hashed, obs counters/gauges recorded), in epoch order, on the serve
/// thread. The telemetry plane hangs its interval snapshots and flight
/// log off this hook; the hook is infallible by design — telemetry
/// failures must never abort an assignment session, so implementations
/// stash errors and surface them after the session ends.
///
/// # Errors
///
/// Same contract as [`serve`].
pub fn serve_with_hook(
    config: &ServeConfig,
    on_epoch: &mut dyn FnMut(&EpochStats),
) -> Result<ServeReport, AssignError> {
    let _session = mec_obs::span("serve/session");
    let stream = config.stream_config().generate()?;
    let plan = match config.chaos {
        Some(seed) => {
            let horizon = Seconds::new(stream.horizon().value().max(1.0));
            ChaosConfig::from_seed(seed)
                .generate(&stream.system, horizon)
                .map_err(AssignError::Mec)?
        }
        None => FaultPlan::none(),
    };
    // Dropouts are the only permanent churn: a device that died before an
    // epoch's decision point is gone for that epoch and every later one.
    let dropouts: Vec<(DeviceId, Seconds)> = plan
        .faults()
        .iter()
        .filter_map(|f| match *f {
            Fault::Dropout { device, at } => Some((device, at)),
            _ => None,
        })
        .collect();

    // The serve loop always runs the sharded LP: the batch-mode fast
    // path proves optimality per instance but carries no chaining state,
    // which is the whole point of the incremental epoch API.
    let algo = LpHta::paper().without_fast_path();
    let mut warm = WarmBases::new();
    let mut epochs = Vec::with_capacity(stream.batches.len());
    let mut session_hash = FNV_OFFSET;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(stream.batches.len());
    let mut decision_ns_total: u64 = 0;

    for batch in &stream.batches {
        let _epoch_span = mec_obs::span("serve/epoch");
        let started = Instant::now();
        let now = batch.close_time();
        // Dense dead mask over device ids (was a `BTreeSet`): the churn
        // ingest below probes it per task owner/source, and the
        // re-sourcing scan probes it per candidate device.
        let mut is_dead = vec![false; stream.system.num_devices()];
        for &(d, at) in dropouts.iter() {
            if at <= now && d.0 < is_dead.len() {
                is_dead[d.0] = true;
            }
        }

        // Ingest churn: cancel dead owners, replan dead data sources to
        // the lowest live device (deterministic, same rule every epoch).
        let repair_started = Instant::now();
        let mut outcomes = vec![Outcome::RepairCancelled; batch.tasks.len()];
        let mut live_tasks: Vec<HolisticTask> = Vec::with_capacity(batch.tasks.len());
        let mut live_map: Vec<usize> = Vec::with_capacity(batch.tasks.len());
        let mut churn_cancelled = 0usize;
        let mut resourced = 0usize;
        for (slot, task) in batch.tasks.iter().enumerate() {
            if task.owner.0 < is_dead.len() && is_dead[task.owner.0] {
                outcomes[slot] = Outcome::ChurnCancelled;
                churn_cancelled += 1;
                continue;
            }
            let mut task = *task;
            if resource_dead_external(&mut task, &is_dead) {
                resourced += 1;
                mec_obs::counter_add("serve/resourced", 1);
            }
            live_map.push(slot);
            live_tasks.push(task);
        }
        let mut repair_ns = repair_started.elapsed().as_nanos();

        // Shard per cluster and solve concurrently, each shard offered
        // its own station's chained basis. The warm store is read-only
        // during the parallel region; commits happen serially below, in
        // station order, so the outcome is thread-count independent.
        let costs = crate::pricing::build_cost_table(&stream.system, &live_tasks)?;
        let shards: Vec<(StationId, Vec<usize>)> =
            cluster_task_indices(&stream.system, &live_tasks)?;
        let solves: Vec<Option<ClusterSolve>> = crate::par::par_map_result(&shards, |shard| {
            let (station, idxs) = shard;
            algo.solve_cluster(
                &stream.system,
                &live_tasks,
                &costs,
                *station,
                idxs,
                warm.basis(*station),
            )
        })?;

        let mut fractional = FractionalSolution {
            clusters: Vec::with_capacity(shards.len()),
            lp_objective: 0.0,
            lp_iterations: 0,
        };
        let mut warm_attempts = 0usize;
        let mut warm_hits = 0usize;
        let mut warm_rejections = 0usize;
        for ((station, _), solved) in shards.iter().zip(solves) {
            let Some(cs) = solved else { continue };
            if warm.basis(*station).is_some() {
                warm_attempts += 1;
                warm.attempts += 1;
            }
            if cs.warm_used {
                warm_hits += 1;
                warm.hits += 1;
            }
            if cs.warm_rejected {
                warm_rejections += 1;
                mec_obs::counter_add("serve/warm_rejections", 1);
            }
            match cs.basis {
                Some(basis) => warm.store(*station, basis),
                None => warm.clear(*station),
            }
            fractional.lp_objective += cs.objective;
            fractional.lp_iterations += cs.iterations;
            fractional.clusters.push(cs.fractions);
        }

        let (assignment, report) =
            algo.round_with(&stream.system, &live_tasks, &costs, &fractional)?;
        let mut decisions: Vec<Decision> = assignment.decisions().to_vec();
        let reconcile_started = Instant::now();
        let cloud_migrations =
            reconcile_cloud(config, &stream, &live_tasks, &costs, &mut decisions);
        repair_ns += reconcile_started.elapsed().as_nanos();

        // Deadline misses over the epoch's live tasks: an assignment is a
        // miss when its site cannot complete within the task's deadline,
        // and a repair cancellation is a miss by definition (the task
        // never runs). Churn cancellations are excluded above — they
        // never reach `decisions`.
        let mut deadline_misses = 0usize;
        for (live_idx, d) in decisions.iter().enumerate() {
            let missed = match d {
                Decision::Assigned(site) => {
                    !costs.feasible(live_idx, *site, live_tasks[live_idx].deadline)
                }
                Decision::Cancelled => true,
            };
            if missed {
                deadline_misses += 1;
            }
        }

        for (live_idx, &slot) in live_map.iter().enumerate() {
            outcomes[slot] = match decisions[live_idx] {
                Decision::Assigned(site) => Outcome::Site(site),
                Decision::Cancelled => Outcome::RepairCancelled,
            };
        }
        let assigned = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Site(_)))
            .count();
        let cancelled = batch.tasks.len() - assigned - churn_cancelled;

        let mut hash = FNV_OFFSET;
        for (task, outcome) in batch.tasks.iter().zip(&outcomes) {
            hash = fnv(hash, &(task.id.user as u64).to_le_bytes());
            hash = fnv(hash, &(task.id.index as u64).to_le_bytes());
            hash = fnv(hash, &[outcome.code()]);
        }
        let fingerprint = format!("{hash:016x}");
        session_hash = fnv(session_hash, fingerprint.as_bytes());

        let decision_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        decision_ns_total = decision_ns_total.saturating_add(decision_ns);
        let ms = decision_ns as f64 / 1e6;
        latencies_ms.push(ms);
        #[allow(clippy::cast_precision_loss)]
        let repair_ms = repair_ns as f64 / 1e6;
        mec_obs::counter_add("serve/assignments", assigned as u64);
        mec_obs::counter_add("serve/epochs", 1);
        mec_obs::counter_add("serve/deadline_misses", deadline_misses as u64);
        mec_obs::observe("serve/decision_latency_ms", ms);
        mec_obs::observe("serve/repair_ms", repair_ms);

        // The SLO gauges the telemetry plane exposes per epoch: the
        // current epoch index, the live queue depth after churn ingest,
        // and the rates a scrape or `dsmec top` renders directly.
        #[allow(clippy::cast_precision_loss)]
        {
            mec_obs::gauge_set("serve/epoch", batch.epoch as f64);
            mec_obs::gauge_set("serve/queue_depth", live_tasks.len() as f64);
            mec_obs::gauge_set(
                "serve/slo/deadline_miss_rate",
                if live_tasks.is_empty() {
                    0.0
                } else {
                    deadline_misses as f64 / live_tasks.len() as f64
                },
            );
            mec_obs::gauge_set(
                "serve/slo/warm_hit_rate",
                if warm_attempts == 0 {
                    0.0
                } else {
                    warm_hits as f64 / warm_attempts as f64
                },
            );
            mec_obs::gauge_set("serve/slo/repair_ms", repair_ms);
            mec_obs::gauge_set("serve/slo/cloud_migrations", cloud_migrations as f64);
        }

        let stats = EpochStats {
            epoch: batch.epoch,
            arrived: batch.tasks.len(),
            assigned,
            cancelled,
            churn_cancelled,
            resourced,
            cloud_migrations,
            deadline_misses,
            repair_ms,
            warm_attempts,
            warm_hits,
            warm_rejections,
            lp_iterations: report.lp_iterations,
            lp_objective: report.lp_objective,
            final_energy: report.final_energy,
            decision_ns,
            fingerprint,
        };
        on_epoch(&stats);
        epochs.push(stats);
    }

    let arrived_total: usize = epochs.iter().map(|e| e.arrived).sum();
    let assigned_total: usize = epochs.iter().map(|e| e.assigned).sum();
    let steady: (usize, usize) = epochs
        .iter()
        .skip(1)
        .fold((0, 0), |(h, a), e| (h + e.warm_hits, a + e.warm_attempts));
    let elapsed_secs = decision_ns_total as f64 / 1e9;
    Ok(ServeReport {
        seed: config.seed,
        chaos: config.chaos,
        batch: config.effective_batch(),
        arrived_total,
        assigned_total,
        cancelled_total: arrived_total - assigned_total,
        resourced_total: epochs.iter().map(|e| e.resourced).sum(),
        cloud_migrations_total: epochs.iter().map(|e| e.cloud_migrations).sum(),
        warm_attempts: warm.attempts,
        warm_hits: warm.hits,
        warm_hit_rate: warm.hit_rate(),
        steady_warm_hit_rate: if steady.1 == 0 {
            0.0
        } else {
            steady.0 as f64 / steady.1 as f64
        },
        decision_p50_ms: percentile(&latencies_ms, 50.0),
        decision_p95_ms: percentile(&latencies_ms, 95.0),
        assignments_per_sec: if elapsed_secs > 0.0 {
            assigned_total as f64 / elapsed_secs
        } else {
            0.0
        },
        session_fingerprint: format!("{session_hash:016x}"),
        epochs,
    })
}

/// The cheap serial cross-cluster pass: clusters solve independently, so
/// the only resource they can jointly oversubscribe is the cloud. When an
/// epoch places more than `cloud_limit` tasks there, migrate the largest
/// occupants back to their own stations while deadlines and station
/// capacity (over the *whole* epoch assignment) allow it; tasks that fit
/// nowhere stay at the cloud — the cap is a pressure valve, not a hard
/// constraint. Returns the number of migrations.
fn reconcile_cloud(
    config: &ServeConfig,
    stream: &TaskStream,
    tasks: &[HolisticTask],
    costs: &CostTable,
    decisions: &mut [Decision],
) -> usize {
    let Some(limit) = config.cloud_limit else {
        return 0;
    };
    let mut at_cloud: Vec<usize> = decisions
        .iter()
        .enumerate()
        .filter(|(_, d)| matches!(d, Decision::Assigned(ExecutionSite::Cloud)))
        .map(|(i, _)| i)
        .collect();
    if at_cloud.len() <= limit {
        return 0;
    }
    // Station headroom after this epoch's own station placements.
    let mut free: Vec<f64> = stream
        .system
        .stations()
        .iter()
        .map(|s| s.max_resource.value())
        .collect();
    for (i, d) in decisions.iter().enumerate() {
        if matches!(d, Decision::Assigned(ExecutionSite::Station)) {
            if let Ok(st) = stream.system.station_of(tasks[i].owner) {
                free[st.0] -= tasks[i].resource.value();
            }
        }
    }
    // Largest occupants first, index ascending on ties — deterministic.
    at_cloud.sort_by(|&a, &b| {
        tasks[b]
            .resource
            .value()
            .total_cmp(&tasks[a].resource.value())
            .then(a.cmp(&b))
    });
    let mut migrated = 0usize;
    let mut remaining = at_cloud.len();
    for &i in &at_cloud {
        if remaining <= limit {
            break;
        }
        let Ok(st) = stream.system.station_of(tasks[i].owner) else {
            continue;
        };
        let need = tasks[i].resource.value();
        if costs.feasible(i, ExecutionSite::Station, tasks[i].deadline) && free[st.0] >= need {
            free[st.0] -= need;
            decisions[i] = Decision::Assigned(ExecutionSite::Station);
            migrated += 1;
            remaining -= 1;
            mec_obs::counter_add("serve/cloud_migrations", 1);
        }
    }
    migrated
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scrubs the wall-clock fields (decision latencies, throughput) so
    /// replays can be compared on their deterministic content.
    fn scrub(mut r: ServeReport) -> ServeReport {
        r.decision_p50_ms = 0.0;
        r.decision_p95_ms = 0.0;
        r.assignments_per_sec = 0.0;
        for e in &mut r.epochs {
            e.decision_ns = 0;
            e.repair_ms = 0.0;
        }
        r
    }

    fn tiny_config(seed: u64) -> ServeConfig {
        ServeConfig {
            seed,
            epochs: 4,
            num_stations: 2,
            devices_per_station: 3,
            max_input_kb: 1200.0,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serve_is_deterministic_and_chains_bases() {
        let cfg = tiny_config(7);
        let a = scrub(serve(&cfg).unwrap());
        let b = scrub(serve(&cfg).unwrap());
        assert_eq!(a, b);
        assert_eq!(a.epochs.len(), 4);
        assert_eq!(a.arrived_total, 4 * cfg.effective_batch());
        // Constant shapes: every epoch after the first must offer and hit.
        assert!(a.warm_attempts > 0);
        assert!(
            a.steady_warm_hit_rate > 0.5,
            "steady hit rate {}",
            a.steady_warm_hit_rate
        );
        // Epoch 0 is cold by definition.
        assert_eq!(a.epochs[0].warm_attempts, 0);
    }

    #[test]
    fn churn_cancels_dead_owners_and_replans_sources() {
        // Some chaos seed must produce a dropout within the horizon; scan
        // a few to keep the test robust to plan-generation details.
        let mut hit = None;
        for chaos in 1..32u64 {
            let cfg = ServeConfig {
                chaos: Some(chaos),
                epochs: 6,
                ..tiny_config(11)
            };
            let r = serve(&cfg).unwrap();
            if r.epochs.iter().any(|e| e.churn_cancelled > 0) {
                hit = Some((cfg, r));
                break;
            }
        }
        let (cfg, r) = hit.expect("no chaos seed in 1..32 produced a dropout");
        let r = scrub(r);
        // Deterministic replay, including the churn.
        assert_eq!(scrub(serve(&cfg).unwrap()), r);
        // Churned tasks are cancelled, not silently dropped.
        let arrived: usize = r.epochs.iter().map(|e| e.arrived).sum();
        assert_eq!(arrived, 6 * cfg.effective_batch());
        assert!(r.cancelled_total > 0);
    }

    fn shared_task(owner: usize, source: usize) -> HolisticTask {
        HolisticTask {
            id: mec_sim::task::TaskId {
                user: owner,
                index: 0,
            },
            owner: DeviceId(owner),
            local_size: Bytes::from_kb(100.0),
            external_size: Bytes::from_kb(50.0),
            external_source: Some(DeviceId(source)),
            complexity: 1.0,
            resource: Bytes::from_kb(10.0),
            deadline: Seconds::new(5.0),
        }
    }

    #[test]
    fn resourcing_picks_the_lowest_live_non_owner() {
        // Source 3 died; devices 1 and 2 are also dead, 4 is the lowest
        // live device that is not the owner.
        let mut t = shared_task(0, 3);
        let touched = resource_dead_external(&mut t, &[false, true, true, true, false]);
        assert!(touched);
        assert_eq!(t.external_source, Some(DeviceId(4)));
        assert!(t.external_size.value() > 0.0);
        t.validate().unwrap();

        // A live source is left alone.
        let mut t = shared_task(0, 3);
        assert!(!resource_dead_external(&mut t, &[false, true, true, false]));
        assert_eq!(t.external_source, Some(DeviceId(3)));

        // A source outside the system's device range does not exist and
        // is left alone (nothing to re-source it to).
        let mut t = shared_task(0, 9);
        assert!(!resource_dead_external(&mut t, &[false, true]));
        assert_eq!(t.external_source, Some(DeviceId(9)));
    }

    #[test]
    fn all_holders_dead_drops_the_dependency_not_the_source_check() {
        // Every device except the owner died in this epoch: no live
        // holder of the shared datum remains. The task must not keep its
        // dead source — the dependency is dropped, source and size
        // together, and the result still validates.
        let mut t = shared_task(0, 2);
        let touched = resource_dead_external(&mut t, &[false, true, true]);
        assert!(touched);
        assert_eq!(t.external_source, None);
        assert_eq!(t.external_size.value(), 0.0);
        t.validate().unwrap();
    }

    #[test]
    fn all_holders_die_fingerprints_match_across_thread_counts() {
        // A two-device system: when a task's source dies, the only other
        // device is its owner, so re-sourcing is forced down the
        // drop-the-dependency path every time. Scan (seed, chaos) pairs
        // for a session that actually exercised it.
        let mut hit = None;
        'scan: for seed in 1..6u64 {
            for chaos in 1..32u64 {
                let cfg = ServeConfig {
                    seed,
                    chaos: Some(chaos),
                    epochs: 6,
                    num_stations: 1,
                    devices_per_station: 2,
                    max_input_kb: 1200.0,
                    ..ServeConfig::default()
                };
                let r = serve(&cfg).unwrap();
                if r.resourced_total > 0 {
                    hit = Some((cfg, r));
                    break 'scan;
                }
            }
        }
        let (cfg, base) = hit.expect("no (seed, chaos) pair re-sourced a task");
        let base = scrub(base);
        // Replays agree epoch by epoch for any worker-thread count: the
        // all-holders-die replanning happens in the serial ingest pass.
        let _t = crate::par::THREADS_TEST_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        for threads in [1usize, 4] {
            crate::par::set_threads(threads);
            let replay = scrub(serve(&cfg).unwrap());
            crate::par::set_threads(0);
            assert_eq!(
                replay.session_fingerprint, base.session_fingerprint,
                "threads {threads}"
            );
            for (a, b) in replay.epochs.iter().zip(base.epochs.iter()) {
                assert_eq!(a.fingerprint, b.fingerprint, "threads {threads}");
            }
            assert_eq!(replay, base, "threads {threads}");
        }
    }

    #[test]
    fn cloud_cap_triggers_the_serial_reconciliation_pass() {
        // Force heavy cloud pressure with a tiny cap: the pass must
        // migrate something (or the cap was never exceeded — also fine,
        // but then the cap must hold everywhere).
        let cfg = ServeConfig {
            cloud_limit: Some(1),
            ..tiny_config(13)
        };
        let r = serve(&cfg).unwrap();
        let capped = ServeConfig {
            cloud_limit: None,
            ..cfg.clone()
        };
        let free = serve(&capped).unwrap();
        // The reconciliation pass only ever moves cloud -> station, so
        // energy may change but the assigned count cannot drop.
        assert_eq!(r.arrived_total, free.arrived_total);
        assert_eq!(r.assigned_total, free.assigned_total);
        let baseline_cloud_heavy = free.epochs.iter().any(|e| e.assigned > 1);
        if baseline_cloud_heavy && r.cloud_migrations_total == 0 {
            // Nothing migrated: every epoch was already within the cap.
            for e in &r.epochs {
                assert!(e.cloud_migrations == 0);
            }
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = serve(&tiny_config(5)).unwrap();
        let json = djson::to_string(&r);
        let back: ServeReport = djson::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(json.contains("session_fingerprint"));
    }
}
