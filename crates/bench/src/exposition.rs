//! Zero-dependency Prometheus text exposition for the telemetry plane.
//!
//! Three pieces, all std-only:
//!
//! 1. [`render_exposition`] turns one [`mec_obs::IntervalSnapshot`] into
//!    Prometheus text format 0.0.4: `# TYPE` declarations, counters
//!    (cumulative `_total` samples), gauges, and histograms. Histogram
//!    `_bucket`/`_sum`/`_count` series carry the *window* statistics —
//!    they reset every interval, which Prometheus-compatible scrapers
//!    treat as a counter reset — and each histogram additionally exports
//!    its nearest-rank `_p50`/`_p95`/`_p99` as gauges so dashboards get
//!    percentiles without server-side quantile math.
//! 2. [`parse_exposition`] validates exposition text back into samples:
//!    every sample line must resolve to a declared metric family (with
//!    the histogram suffix rules applied), which is what the golden
//!    fixture and the CI scrape check.
//! 3. [`MetricsServer`] answers `GET /metrics` from a
//!    `std::net::TcpListener` thread with a hand-rolled request-line
//!    parser — no HTTP library. The body is a mutex-swapped `Arc<String>`
//!    the serve loop republishes each epoch; shutdown flips a flag and
//!    self-connects to unblock the blocking `accept`.

use mec_obs::IntervalSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Maps a `mec-obs` metric path onto a Prometheus metric name: `dsmec_`
/// prefix, every non-alphanumeric byte folded to `_`.
///
/// `serve/slo/deadline_miss_rate` → `dsmec_serve_slo_deadline_miss_rate`.
#[must_use]
pub fn metric_name(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 6);
    out.push_str("dsmec_");
    for c in path.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a sample value the way Prometheus expects: shortest
/// round-trip decimal, `+Inf`/`-Inf`/`NaN` spelled out.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders one interval snapshot as Prometheus text exposition (format
/// 0.0.4). Deterministic: metric order follows the snapshot's sorted
/// name order, floats print in shortest round-trip form.
#[must_use]
pub fn render_exposition(snapshot: &IntervalSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE dsmec_interval gauge");
    let _ = writeln!(out, "dsmec_interval {}", snapshot.interval);
    for c in &snapshot.counters {
        let name = metric_name(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name}_total {}", c.total);
        // The window delta as a companion gauge: scrapers that only see
        // the latest body (like `dsmec top`) get per-interval increments
        // without differentiating the cumulative series themselves.
        let _ = writeln!(out, "# TYPE {name}_window gauge");
        let _ = writeln!(out, "{name}_window {}", c.delta);
    }
    for g in &snapshot.gauges {
        let name = metric_name(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(g.value));
    }
    for h in &snapshot.histograms {
        let name = metric_name(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        for b in &h.buckets {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {}",
                fmt_value(b.le),
                b.count
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum));
        let _ = writeln!(out, "{name}_count {}", h.count);
        for (suffix, value) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99)] {
            let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
            let _ = writeln!(out, "{name}_{suffix} {}", fmt_value(value));
        }
    }
    out
}

/// One parsed sample line of an exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name, including any `_total`/`_bucket`/… suffix.
    pub name: String,
    /// Label pairs in source order (`le` for histogram buckets).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A validated exposition document: declared families plus every sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Exposition {
    /// `# TYPE` declarations: family name → `counter`/`gauge`/`histogram`.
    pub types: BTreeMap<String, String>,
    /// All sample lines, in document order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// Looks up a sample's value by full sample name, ignoring labels
    /// (first match wins).
    #[must_use]
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
    }
}

/// Resolves a sample name to its declared family: the name itself, the
/// counter's `_total` form, or a histogram's `_bucket`/`_sum`/`_count`
/// series.
fn family_of<'a>(types: &BTreeMap<String, String>, sample: &'a str) -> Option<&'a str> {
    if types.contains_key(sample) {
        return Some(sample);
    }
    if let Some(base) = sample.strip_suffix("_total") {
        if types.get(base).map(String::as_str) == Some("counter") {
            return Some(base);
        }
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base);
            }
        }
    }
    None
}

/// Parses and validates Prometheus text exposition. Every sample line
/// must resolve to a `# TYPE`-declared family; malformed lines, unknown
/// metric types and orphan samples are errors. Non-`TYPE` comment lines
/// and blank lines are ignored.
///
/// # Errors
///
/// A line-numbered message describing the first violation.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_ascii_whitespace();
                let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(format!("line {lineno}: malformed TYPE declaration"));
                };
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown metric type `{kind}`"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for `{name}`"));
                }
            }
            continue;
        }
        samples.push(parse_sample(line, lineno)?);
    }
    for s in &samples {
        if family_of(&types, &s.name).is_none() {
            return Err(format!(
                "sample `{}` does not belong to any declared family",
                s.name
            ));
        }
    }
    Ok(Exposition { types, samples })
}

/// Parses one sample line: `name[{label="value",…}] value`.
fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line[brace..]
                .find('}')
                .map(|i| brace + i)
                .ok_or_else(|| format!("line {lineno}: unclosed label braces"))?;
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        }
        None => (line, None),
    };
    let (labels, value_part) = match rest {
        Some((label_text, tail)) => (parse_labels(label_text, lineno)?, tail),
        None => {
            let space = name_part
                .find(char::is_whitespace)
                .ok_or_else(|| format!("line {lineno}: sample has no value"))?;
            return finish_sample(&name_part[..space], vec![], &name_part[space..], lineno);
        }
    };
    finish_sample(name_part, labels, value_part, lineno)
}

fn finish_sample(
    name: &str,
    labels: Vec<(String, String)>,
    value_part: &str,
    lineno: usize,
) -> Result<Sample, String> {
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("line {lineno}: invalid metric name `{name}`"));
    }
    let value_text = value_part.trim();
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("line {lineno}: invalid sample value `{v}`"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses `key="value"` pairs separated by commas.
fn parse_labels(text: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let text = text.trim();
    if text.is_empty() {
        return Ok(labels);
    }
    for pair in text.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let eq = pair
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without `=`"))?;
        let key = pair[..eq].trim();
        let raw = pair[eq + 1..].trim();
        let value = raw
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {lineno}: label value must be quoted"))?;
        labels.push((key.to_string(), value.to_string()));
    }
    Ok(labels)
}

/// The exposition endpoint: a listener thread serving the latest
/// published body at `GET /metrics`. Everything else 404s. Bodies are
/// swapped atomically (`Mutex<Arc<String>>`), so a slow scraper never
/// blocks the serve loop beyond the swap.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    body: Arc<Mutex<Arc<String>>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `spec` (`HOST:PORT`, port `0` for ephemeral) and starts the
    /// listener thread.
    ///
    /// # Errors
    ///
    /// The bind error, stringified with the offending address.
    pub fn bind(spec: &str) -> Result<MetricsServer, String> {
        let listener = TcpListener::bind(spec).map_err(|e| format!("metrics bind {spec}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("metrics local_addr: {e}"))?;
        let body: Arc<Mutex<Arc<String>>> = Arc::new(Mutex::new(Arc::new(String::new())));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_body = Arc::clone(&body);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dsmec-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let current =
                        Arc::clone(&thread_body.lock().unwrap_or_else(|p| p.into_inner()));
                    // One request per connection; errors on a single
                    // connection never take the endpoint down.
                    let _ = serve_connection(stream, &current);
                }
            })
            .map_err(|e| format!("metrics thread spawn: {e}"))?;
        Ok(MetricsServer {
            addr,
            body,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address — the real port when `:0` was requested.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Swaps in a new exposition body for subsequent scrapes.
    pub fn publish(&self, body: String) {
        *self.body.lock().unwrap_or_else(|p| p.into_inner()) = Arc::new(body);
    }

    /// Stops the listener thread and joins it. Called by `Drop` too;
    /// explicit shutdown just makes session teardown visible at the call
    /// site.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // `accept` blocks until a peer arrives; a throwaway self-connect
        // is that peer. Failure is fine — the listener then dies with the
        // process.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads one request, answers it, closes the connection. The hand-rolled
/// parser reads the request line (`GET /metrics HTTP/1.1`), drains
/// headers to the blank line, and ignores everything else.
fn serve_connection(stream: TcpStream, body: &str) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut stream = reader.into_inner();
    if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?")) {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let msg = "not found\n";
        write!(
            stream,
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            msg.len(),
            msg
        )?;
    }
    stream.flush()
}

/// Minimal HTTP client for `dsmec top` and the tests: one `GET`, returns
/// `(status, body)`.
///
/// # Errors
///
/// Connection, I/O and malformed-response errors, stringified.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("metrics connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("metrics timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("metrics timeout: {e}"))?;
    let mut stream = stream;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("metrics request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("metrics read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "metrics response: missing header terminator".to_string())?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("metrics response: bad status line `{status_line}`"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_obs::{BucketCount, CounterWindow, GaugeStat, HistogramWindow};

    fn window() -> IntervalSnapshot {
        IntervalSnapshot {
            interval: 2,
            counters: vec![CounterWindow {
                name: "serve/assignments".into(),
                total: 120,
                delta: 60,
            }],
            gauges: vec![GaugeStat {
                name: "serve/queue_depth".into(),
                value: 6.0,
            }],
            histograms: vec![HistogramWindow {
                name: "serve/decision_latency_ms".into(),
                total_count: 4,
                count: 2,
                sum: 3.5,
                min: 1.0,
                max: 2.5,
                p50: 2.0,
                p95: 2.5,
                p99: 2.5,
                buckets: vec![
                    BucketCount { le: 2.0, count: 1 },
                    BucketCount { le: 4.0, count: 2 },
                ],
            }],
        }
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(
            metric_name("serve/slo/deadline_miss_rate"),
            "dsmec_serve_slo_deadline_miss_rate"
        );
        assert_eq!(
            metric_name("obs.events dropped"),
            "dsmec_obs_events_dropped"
        );
    }

    #[test]
    fn rendered_exposition_parses_and_exposes_every_series() {
        let text = render_exposition(&window());
        let exp = parse_exposition(&text).unwrap();
        assert_eq!(
            exp.types.get("dsmec_serve_assignments").map(String::as_str),
            Some("counter")
        );
        assert_eq!(exp.value("dsmec_serve_assignments_total"), Some(120.0));
        assert_eq!(exp.value("dsmec_serve_assignments_window"), Some(60.0));
        assert_eq!(exp.value("dsmec_serve_queue_depth"), Some(6.0));
        assert_eq!(exp.value("dsmec_interval"), Some(2.0));
        assert_eq!(exp.value("dsmec_serve_decision_latency_ms_sum"), Some(3.5));
        assert_eq!(
            exp.value("dsmec_serve_decision_latency_ms_count"),
            Some(2.0)
        );
        assert_eq!(exp.value("dsmec_serve_decision_latency_ms_p95"), Some(2.5));
        // Bucket labels survive, including the implicit +Inf bound.
        let buckets: Vec<&Sample> = exp
            .samples
            .iter()
            .filter(|s| s.name == "dsmec_serve_decision_latency_ms_bucket")
            .collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].labels, vec![("le".to_string(), "2".to_string())]);
        assert_eq!(
            buckets[2].labels,
            vec![("le".to_string(), "+Inf".to_string())]
        );
        assert_eq!(buckets[2].value, 2.0);
    }

    #[test]
    fn parser_rejects_orphan_samples_and_bad_lines() {
        let orphan = "dsmec_mystery_total 4\n";
        assert!(parse_exposition(orphan)
            .unwrap_err()
            .contains("does not belong"));
        let bad_type = "# TYPE dsmec_x flux\ndsmec_x 1\n";
        assert!(parse_exposition(bad_type)
            .unwrap_err()
            .contains("unknown metric type"));
        let no_value = "# TYPE dsmec_x gauge\ndsmec_x\n";
        assert!(parse_exposition(no_value).unwrap_err().contains("no value"));
        let unclosed = "# TYPE dsmec_x histogram\ndsmec_x_bucket{le=\"1\" 3\n";
        assert!(parse_exposition(unclosed).unwrap_err().contains("unclosed"));
    }

    #[test]
    fn server_serves_latest_body_and_shuts_down_cleanly() {
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        server.publish(render_exposition(&window()));
        let (status, body) = http_get(&addr, "/metrics", Duration::from_secs(2)).unwrap();
        assert_eq!(status, 200);
        let exp = parse_exposition(&body).unwrap();
        assert_eq!(exp.value("dsmec_interval"), Some(2.0));

        // Republish: the next scrape sees the swap.
        let mut next = window();
        next.interval = 3;
        server.publish(render_exposition(&next));
        let (_, body) = http_get(&addr, "/metrics", Duration::from_secs(2)).unwrap();
        assert_eq!(
            parse_exposition(&body).unwrap().value("dsmec_interval"),
            Some(3.0)
        );

        // Unknown paths 404 without killing the listener.
        let (status, _) = http_get(&addr, "/nope", Duration::from_secs(2)).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_get(&addr, "/metrics", Duration::from_secs(2)).unwrap();
        assert_eq!(status, 200);

        server.shutdown();
        // The port is closed (or at least no longer answering /metrics).
        assert!(http_get(&addr, "/metrics", Duration::from_millis(500)).is_err());
    }
}
