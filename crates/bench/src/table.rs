//! Figure/table data structures and rendering: every experiment produces
//! a [`Figure`] (an x-axis plus one series per algorithm) that can be
//! printed as an aligned text table or written as CSV next to the paper's
//! plots.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One plotted series (an algorithm's curve).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// `y` values, parallel to the figure's x labels.
    pub values: Vec<f64>,
}

/// One reproduced figure or table.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Stable identifier, e.g. `"fig2a"`.
    pub id: String,
    /// Human title, e.g. `"Energy vs number of tasks"`.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis (with unit).
    pub y_label: String,
    /// X tick labels (numeric sweeps or categorical points).
    pub x_ticks: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure shell.
    pub fn new(
        id: &str,
        title: &str,
        x_label: &str,
        y_label: &str,
        x_ticks: Vec<String>,
    ) -> Figure {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            x_ticks,
            series: Vec::new(),
        }
    }

    /// Appends a series.
    ///
    /// # Panics
    ///
    /// Panics when the series length disagrees with the x ticks.
    pub fn push_series(&mut self, name: &str, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.x_ticks.len(),
            "series `{name}` length must match x ticks"
        );
        self.series.push(Series {
            name: name.to_string(),
            values,
        });
    }

    /// A series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders an aligned text table (x down the rows, series across).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   ({} vs {})", self.y_label, self.x_label);

        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (i, tick) in self.x_ticks.iter().enumerate() {
            let mut row = vec![tick.clone()];
            for s in &self.series {
                row.push(format_value(s.values[i]));
            }
            rows.push(row);
        }

        let widths: Vec<usize> = headers
            .iter()
            .enumerate()
            .map(|(c, h)| {
                rows.iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&headers));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders CSV content (header row then one row per x tick).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let _ = writeln!(out, "{}", headers.join(","));
        for (i, tick) in self.x_ticks.iter().enumerate() {
            let mut row = vec![tick.clone()];
            for s in &self.series {
                row.push(format!("{}", s.values[i]));
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Human-friendly numeric formatting: large magnitudes get thousands
/// precision, small ones keep significant digits.
fn format_value(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(Series { name, values });
djson::impl_json_struct!(Figure {
    id,
    title,
    x_label,
    y_label,
    x_ticks,
    series
});

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new(
            "figX",
            "demo",
            "tasks",
            "energy (J)",
            vec!["100".into(), "200".into()],
        );
        f.push_series("LP-HTA", vec![1234.5678, 2.5]);
        f.push_series("AllToC", vec![9999.1, 0.125]);
        f
    }

    #[test]
    fn table_contains_all_cells() {
        let t = sample().render_table();
        assert!(t.contains("LP-HTA"));
        assert!(t.contains("AllToC"));
        assert!(t.contains("100"));
        assert!(t.contains("1235") || t.contains("1234"));
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "tasks,LP-HTA,AllToC");
        assert!(lines[1].starts_with("100,"));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_series_panics() {
        let mut f = sample();
        f.push_series("bad", vec![1.0]);
    }

    #[test]
    fn series_lookup() {
        let f = sample();
        assert!(f.series_named("LP-HTA").is_some());
        assert!(f.series_named("nope").is_none());
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("dsmec_table_test");
        sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("figX.csv")).unwrap();
        assert!(content.contains("LP-HTA"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
