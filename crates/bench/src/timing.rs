//! Plain wall-clock timing for the `harness = false` bench targets.
//!
//! Replaces the criterion dependency with the same `Instant`-based
//! measurement the `repro --perf` speedup report uses: one warm-up call,
//! then timed iterations until a per-case budget is spent, reporting the
//! mean, minimum, median (p50) and tail (p95) per iteration.
//!
//! A positional argument filters cases by substring — the CLI shape
//! `cargo bench -- <filter>` already had under criterion — and flags
//! cargo forwards (such as `--bench`) are ignored. `DSMEC_BENCH_MS`
//! overrides the per-case time budget in milliseconds.

use std::hint::black_box;
use std::time::Instant;

/// One timed case: wall-clock statistics over `iters` iterations.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case name as printed (group/case/param).
    pub name: String,
    /// Timed iterations (excluding the warm-up call).
    pub iters: u32,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Median iteration, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile iteration, nanoseconds. With one sample this is
    /// that sample (nearest-rank percentiles are NaN-free for any
    /// non-empty input).
    pub p95_ns: f64,
}

/// Nearest-rank percentile of `samples` (`p` in `[0, 100]`), tolerant of
/// unsorted input. Every result is an actual sample, so one-sample runs
/// yield that sample for every percentile — never NaN. An empty slice
/// returns 0.0 (nothing was measured).
///
/// The rank is clamped into `[1, n]` *before* indexing, so out-of-domain
/// `p` values (negative, above 100, even NaN — `f64::max`/`min` ignore a
/// NaN operand) degrade to the extreme samples instead of panicking or
/// reading out of bounds.
#[must_use]
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    // Nearest rank: ceil(p/100 * n), clamped to [1, n], 1-indexed. The
    // float clamp happens before the usize cast so a huge/negative/NaN
    // rank can never leave the index range.
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((p / 100.0) * n as f64).ceil().max(1.0).min(n as f64) as usize;
    sorted[rank - 1]
}

/// Collects timed cases and prints one aligned row per case.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    budget_ns: f64,
    printed_header: bool,
    results: Vec<Measurement>,
}

impl Harness {
    /// Builds a harness from the process arguments (see module docs).
    #[must_use]
    pub fn from_args() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        let budget_ms: f64 = std::env::var("DSMEC_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300.0);
        Harness {
            filter,
            budget_ns: budget_ms * 1e6,
            printed_header: false,
            results: Vec::new(),
        }
    }

    /// Times `f`, printing a row unless the CLI filter excludes `name`.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up call, outside the statistics.
        black_box(f());
        let mut samples: Vec<f64> = Vec::new();
        let mut total = 0.0;
        // At least one warm iteration always runs: a budget smaller than
        // a single iteration (e.g. `DSMEC_BENCH_MS=0`) must still produce
        // a real measurement, not a zero-sample NaN row.
        loop {
            let t = Instant::now();
            black_box(f());
            let ns = t.elapsed().as_secs_f64() * 1e9;
            total += ns;
            samples.push(ns);
            if total >= self.budget_ns || samples.len() >= 100_000 {
                break;
            }
        }
        #[allow(clippy::cast_possible_truncation)]
        let iters = samples.len() as u32;
        let m = Measurement {
            name: name.to_string(),
            iters,
            mean_ns: total / f64::from(iters),
            min_ns: samples.iter().copied().fold(f64::INFINITY, f64::min),
            p50_ns: percentile(&samples, 50.0),
            p95_ns: percentile(&samples, 95.0),
        };
        if !self.printed_header {
            println!(
                "{:<44} {:>12} {:>12} {:>12} {:>12} {:>7}",
                "bench", "mean", "min", "p50", "p95", "iters"
            );
            self.printed_header = true;
        }
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>12} {:>7}",
            m.name,
            fmt_ns(m.mean_ns),
            fmt_ns(m.min_ns),
            fmt_ns(m.p50_ns),
            fmt_ns(m.p95_ns),
            m.iters
        );
        self.results.push(m);
    }

    /// Consumes the harness, returning every measurement taken.
    pub fn finish(self) -> Vec<Measurement> {
        self.results
    }
}

/// Human-friendly duration: picks ns/µs/ms/s by magnitude.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_filters() {
        let mut h = Harness {
            filter: Some("keep".into()),
            budget_ns: 1e5,
            printed_header: false,
            results: Vec::new(),
        };
        h.bench("keep/fast", || 1 + 1);
        h.bench("drop/slow", || panic!("filtered cases must not run"));
        let out = h.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "keep/fast");
        assert!(out[0].iters >= 1);
        assert!(out[0].min_ns <= out[0].mean_ns);
        assert!(out[0].min_ns <= out[0].p50_ns);
        assert!(out[0].p50_ns <= out[0].p95_ns);
    }

    #[test]
    fn zero_budget_still_records_one_iteration() {
        // Regression: a budget below one iteration's cost used to skip
        // the timing loop entirely, reporting 0 iters and a NaN mean.
        // The percentile columns inherit the guarantee: one sample, no
        // NaN anywhere.
        let mut h = Harness {
            filter: None,
            budget_ns: 0.0,
            printed_header: false,
            results: Vec::new(),
        };
        h.bench("tiny/budget", || std::hint::black_box(2 + 2));
        let out = h.finish();
        assert_eq!(out.len(), 1);
        assert!(out[0].iters >= 1);
        assert!(out[0].mean_ns.is_finite());
        assert!(out[0].min_ns.is_finite());
        assert!(out[0].p50_ns.is_finite());
        assert!(out[0].p95_ns.is_finite());
        if out[0].iters == 1 {
            assert_eq!(out[0].p50_ns, out[0].min_ns);
            assert_eq!(out[0].p95_ns, out[0].min_ns);
        }
    }

    #[test]
    fn percentile_is_nearest_rank_and_nan_free() {
        let one = [7.5];
        assert_eq!(percentile(&one, 50.0), 7.5);
        assert_eq!(percentile(&one, 95.0), 7.5);
        // 10 samples 1..=10: p50 → rank 5 → 5.0; p95 → rank ceil(9.5)=10.
        let ten: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&ten, 50.0), 5.0);
        assert_eq!(percentile(&ten, 95.0), 10.0);
        assert_eq!(percentile(&ten, 0.0), 1.0);
        assert_eq!(percentile(&ten, 100.0), 10.0);
        // Unsorted input is handled; empty input is defined as 0.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
        assert_eq!(percentile(&[], 95.0), 0.0);
    }

    /// Nearest-rank property test against a sorted-scan oracle: for
    /// sample sizes 1..64 and arbitrary `p` (including out-of-domain
    /// values), the result equals the element the rank definition picks
    /// from a sorted copy, with the rank clamped to `[1, n]`.
    #[test]
    fn percentile_matches_sorted_scan_oracle() {
        detrand::prop::run_cases("percentile_nearest_rank", 128, |rng| {
            let n = rng.gen_range(1..64usize);
            let samples: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
            let p = match rng.gen_range(0..4u64) {
                0 => rng.gen_range(0.0..100.0),
                1 => rng.gen_range(-50.0..0.0),
                2 => rng.gen_range(100.0..250.0),
                _ => f64::NAN,
            };
            let got = percentile(&samples, p);
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            let raw = ((p / 100.0) * n as f64).ceil();
            let rank = if raw.is_nan() {
                1.0
            } else {
                raw.clamp(1.0, n as f64)
            };
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let expect = sorted[rank as usize - 1];
            detrand::prop_assert_eq!(got, expect);
            // The result is always one of the inputs — the nearest-rank
            // guarantee that keeps one-sample runs NaN-free.
            detrand::prop_assert!(samples.contains(&got));
            Ok(())
        });
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
        assert_eq!(fmt_ns(1.5e9), "1.50 s");
    }
}
