//! Offline analysis behind `dsmec trace`: reconstructs the span forest
//! from a flight-recorder trace (schema v2/v3, DESIGN.md §7) and renders
//!
//! * a per-name **self-time / total-time table** — where the wall clock
//!   actually goes, with double-counted child time subtracted out;
//! * the **critical path** — the longest root-to-leaf chain of spans,
//!   with serial (self) vs parallel (overlapping children) attribution;
//! * a **folded-stack export** — `a;b;c <ns>` lines, the input format of
//!   the standard flamegraph tooling;
//! * a **diff / regression gate** over two traces' span aggregates —
//!   `dsmec trace --baseline old.json new.json --gate 1.15` fails when
//!   any span's total time regresses past the ratio.
//!
//! Aggregate-only traces (schema v1, or later recorded with
//! `DSMEC_TRACE_EVENTS=0`) still get the table and the diff/gate; the
//! forest-based views need events and say so instead of guessing. When
//! the trace carries histograms, both table paths append their v3
//! nearest-rank p50/p95/p99 columns.

use crate::cli::read_json;
use mec_obs::TraceSnapshot;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Options for [`trace_command`], mapped 1:1 from the CLI flags.
#[derive(Debug, Clone)]
pub struct TraceArgs {
    /// Trace to analyze (the *new* trace in diff mode).
    pub file: String,
    /// Write folded flamegraph stacks here.
    pub folded: Option<String>,
    /// Older trace to diff against.
    pub baseline: Option<String>,
    /// Regression ratio that fails the run (requires `baseline`).
    pub gate: Option<f64>,
    /// Spans whose baseline total is below this are exempt from the gate
    /// (and flagged informationally in the diff): tiny spans are noise.
    pub min_total_ms: f64,
    /// Per-prefix overrides of `min_total_ms`: `(prefix, ms)` pairs from
    /// `--floor prefix=ms[,prefix=ms]`; the longest matching prefix wins.
    /// Lets the gate watch hot-but-cheap subsystems (`linprog/` after the
    /// sparse-substrate ratchet) at a tighter floor than the global one.
    pub floors: Vec<(String, f64)>,
    /// Rows shown in the self-time table.
    pub top: usize,
}

impl Default for TraceArgs {
    fn default() -> Self {
        TraceArgs {
            file: String::new(),
            folded: None,
            baseline: None,
            gate: None,
            min_total_ms: 1.0,
            floors: Vec::new(),
            top: 30,
        }
    }
}

/// Entry point used by the `dsmec trace` subcommand. Prints to stdout;
/// an `Err` (bad input, or a tripped gate) becomes the process's nonzero
/// exit status.
///
/// # Errors
///
/// Returns a human-readable message for unreadable/unparsable inputs and
/// when the regression gate trips.
pub fn trace_command(args: &TraceArgs) -> Result<(), String> {
    let snap: TraceSnapshot = read_json(&args.file)?;
    if let Some(baseline_path) = &args.baseline {
        let baseline: TraceSnapshot = read_json(baseline_path)?;
        let rows = diff_spans(&baseline, &snap);
        print!("{}", render_diff(&rows, args.min_total_ms, &args.floors));
        if let Some(gate) = args.gate {
            check_gate(&rows, gate, args.min_total_ms, &args.floors)?;
        }
        return Ok(());
    }

    let forest = SpanForest::build(&snap);
    print!("{}", render_table(&snap, &forest, args.top));
    print!("{}", render_critical_path(&snap, &forest));
    if let Some(out) = &args.folded {
        let folded = folded_stacks(&snap, &forest);
        std::fs::write(out, &folded).map_err(|e| format!("writing {out}: {e}"))?;
        println!(
            "wrote folded stacks to {out} ({} lines)",
            folded.lines().count()
        );
    }
    Ok(())
}

/// The span forest reconstructed from a trace's events: children grouped
/// under parents, with per-node self time (duration minus the summed
/// duration of direct children — clamped at zero, since children running
/// in parallel on other threads can overlap their parent arbitrarily).
#[derive(Debug)]
pub struct SpanForest {
    /// Indices into `snapshot.events`, one entry per event.
    children: Vec<Vec<usize>>,
    /// Event indices with no parent in the trace (parent id 0, or the
    /// parent event was dropped by the ring).
    roots: Vec<usize>,
    /// Self time per event, nanoseconds.
    self_ns: Vec<u64>,
}

impl SpanForest {
    /// Reconstructs parent→children edges from the events' parent ids.
    #[must_use]
    pub fn build(snapshot: &TraceSnapshot) -> SpanForest {
        let events = &snapshot.events;
        let index_of: HashMap<u64, usize> =
            events.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); events.len()];
        let mut roots = Vec::new();
        for (i, e) in events.iter().enumerate() {
            match index_of.get(&e.parent) {
                Some(&p) if e.parent != 0 && e.parent != e.id => children[p].push(i),
                _ => roots.push(i),
            }
        }
        let mut self_ns = vec![0u64; events.len()];
        for (i, e) in events.iter().enumerate() {
            let child_total: u64 = children[i].iter().map(|&c| events[c].duration_ns()).sum();
            self_ns[i] = e.duration_ns().saturating_sub(child_total);
        }
        SpanForest {
            children,
            roots,
            self_ns,
        }
    }

    /// True when the trace carried no events (aggregates only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.self_ns.is_empty()
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders the per-name self-time/total-time table. With events present
/// the table is forest-based (total, self, share of self time); without
/// them it falls back to the v1 aggregates (count, total, min, max).
#[must_use]
pub fn render_table(snapshot: &TraceSnapshot, forest: &SpanForest, top: usize) -> String {
    let mut out = String::new();
    if forest.is_empty() {
        let _ = writeln!(
            out,
            "no events in trace (schema v1 file, or recorded with DSMEC_TRACE_EVENTS=0);"
        );
        let _ = writeln!(out, "showing aggregate span statistics instead\n");
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>12} {:>12} {:>12}",
            "span", "count", "total ms", "min ms", "max ms"
        );
        let _ = writeln!(out, "{}", "-".repeat(82));
        let mut spans = snapshot.spans.clone();
        spans.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
        for s in spans.iter().take(top) {
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>12} {:>12} {:>12}",
                s.name,
                s.count,
                fmt_ms(s.total_ns),
                fmt_ms(s.min_ns),
                fmt_ms(s.max_ns)
            );
        }
        out.push_str(&render_histograms(snapshot));
        return out;
    }

    // Per-name rollup over the forest.
    struct Row {
        count: u64,
        total_ns: u64,
        self_ns: u64,
    }
    let mut rows: HashMap<&str, Row> = HashMap::new();
    for (i, e) in snapshot.events.iter().enumerate() {
        let row = rows.entry(e.name.as_str()).or_insert(Row {
            count: 0,
            total_ns: 0,
            self_ns: 0,
        });
        row.count += 1;
        row.total_ns += e.duration_ns();
        row.self_ns += forest.self_ns[i];
    }
    let total_self: u64 = rows.values().map(|r| r.self_ns).sum();
    let mut sorted: Vec<(&str, Row)> = rows.into_iter().collect();
    sorted.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));

    let _ = writeln!(
        out,
        "span time by name ({} events, top {} by self time)\n",
        snapshot.events.len(),
        top.min(sorted.len())
    );
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>12} {:>12} {:>7}",
        "span", "count", "total ms", "self ms", "self%"
    );
    let _ = writeln!(out, "{}", "-".repeat(77));
    for (name, row) in sorted.iter().take(top) {
        #[allow(clippy::cast_precision_loss)]
        let share = if total_self == 0 {
            0.0
        } else {
            100.0 * row.self_ns as f64 / total_self as f64
        };
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>12} {:>12} {:>6.1}%",
            name,
            row.count,
            fmt_ms(row.total_ns),
            fmt_ms(row.self_ns),
            share
        );
    }
    out.push_str(&render_histograms(snapshot));
    out
}

/// Renders the histogram aggregates with their v3 nearest-rank
/// percentiles (p50/p95/p99 are bucket upper bounds clamped into
/// `[min, max]`; pre-v3 traces decode them as 0). Empty when the trace
/// recorded no histograms.
fn render_histograms(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    if snapshot.histograms.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "\nhistograms (nearest-rank percentiles over log2 buckets)\n"
    );
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "histogram", "count", "mean", "p50", "p95", "p99"
    );
    let _ = writeln!(out, "{}", "-".repeat(87));
    for h in &snapshot.histograms {
        #[allow(clippy::cast_precision_loss)]
        let mean = if h.count == 0 {
            0.0
        } else {
            h.sum / h.count as f64
        };
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            h.name, h.count, mean, h.p50, h.p95, h.p99
        );
    }
    out
}

/// Renders the critical path: starting from the longest root span,
/// repeatedly descend into the longest child. Each step attributes the
/// span's time to self (serial) vs children, and marks fan-out steps
/// where children overlap in parallel (summed child time exceeding the
/// parent's wall time).
#[must_use]
pub fn render_critical_path(snapshot: &TraceSnapshot, forest: &SpanForest) -> String {
    let mut out = String::new();
    let Some(&root) = forest
        .roots
        .iter()
        .max_by_key(|&&i| snapshot.events[i].duration_ns())
    else {
        let _ = writeln!(out, "\ncritical path: unavailable without events");
        return out;
    };

    let _ = writeln!(out, "\ncritical path (longest child at every step):\n");
    let mut node = root;
    let mut depth = 0usize;
    let mut serial_ns = 0u64;
    loop {
        let e = &snapshot.events[node];
        let dur = e.duration_ns();
        let child_sum: u64 = forest.children[node]
            .iter()
            .map(|&c| snapshot.events[c].duration_ns())
            .sum();
        serial_ns += forest.self_ns[node];
        #[allow(clippy::cast_precision_loss)]
        let parallelism = if dur == 0 {
            1.0
        } else {
            child_sum as f64 / dur as f64
        };
        let marker = if parallelism > 1.05 {
            format!(
                "  [children {} ms, ~{parallelism:.1}x parallel]",
                fmt_ms(child_sum)
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{:indent$}{} — {} ms total, {} ms self{marker}",
            "",
            e.name,
            fmt_ms(dur),
            fmt_ms(forest.self_ns[node]),
            indent = depth * 2
        );
        let Some(&next) = forest.children[node]
            .iter()
            .max_by_key(|&&c| snapshot.events[c].duration_ns())
        else {
            break;
        };
        node = next;
        depth += 1;
    }
    let root_dur = snapshot.events[root].duration_ns();
    #[allow(clippy::cast_precision_loss)]
    let serial_share = if root_dur == 0 {
        0.0
    } else {
        100.0 * serial_ns as f64 / root_dur as f64
    };
    let _ = writeln!(
        out,
        "\npath self (serial) time: {} ms of {} ms root span ({serial_share:.1}% serial)",
        fmt_ms(serial_ns),
        fmt_ms(root_dur)
    );
    out
}

/// Folded flamegraph stacks: one `root;child;leaf <self_ns>` line per
/// distinct stack, self time summed over occurrences, zero-self stacks
/// skipped (their time lives in deeper frames). Lines sort
/// lexicographically so output is deterministic.
#[must_use]
pub fn folded_stacks(snapshot: &TraceSnapshot, forest: &SpanForest) -> String {
    let index_of: HashMap<u64, usize> = snapshot
        .events
        .iter()
        .enumerate()
        .map(|(i, e)| (e.id, i))
        .collect();
    let mut lines: HashMap<String, u64> = HashMap::new();
    for (i, e) in snapshot.events.iter().enumerate() {
        if forest.self_ns[i] == 0 {
            continue;
        }
        // Walk parent links up to a root; the chain is short (nesting
        // depth), and a dropped parent simply truncates the stack.
        let mut stack = vec![e.name.as_str()];
        let mut cur = e;
        while cur.parent != 0 && cur.parent != cur.id {
            match index_of.get(&cur.parent) {
                Some(&p) => {
                    cur = &snapshot.events[p];
                    stack.push(cur.name.as_str());
                }
                None => break,
            }
        }
        stack.reverse();
        *lines.entry(stack.join(";")).or_insert(0) += forest.self_ns[i];
    }
    let mut sorted: Vec<(String, u64)> = lines.into_iter().collect();
    sorted.sort();
    let mut out = String::new();
    for (stack, ns) in sorted {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// One span's entry in a baseline-vs-new comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Span name.
    pub name: String,
    /// Total ns in the baseline trace (0 when the span is new).
    pub base_ns: u64,
    /// Total ns in the new trace (0 when the span disappeared).
    pub new_ns: u64,
}

impl DiffRow {
    /// `new / base` ratio; infinity for spans with no baseline time.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.base_ns == 0 {
            if self.new_ns == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new_ns as f64 / self.base_ns as f64
        }
    }
}

/// Compares two traces' span aggregates by name (works on v1 and v2
/// files alike — the gate never needs events). Rows sort by descending
/// ratio, worst regressions first.
#[must_use]
pub fn diff_spans(baseline: &TraceSnapshot, new: &TraceSnapshot) -> Vec<DiffRow> {
    let mut names: Vec<&str> = baseline
        .spans
        .iter()
        .chain(&new.spans)
        .map(|s| s.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    let mut rows: Vec<DiffRow> = names
        .into_iter()
        .map(|name| DiffRow {
            name: name.to_string(),
            base_ns: baseline.span(name).map_or(0, |s| s.total_ns),
            new_ns: new.span(name).map_or(0, |s| s.total_ns),
        })
        .collect();
    rows.sort_by(|a, b| b.ratio().total_cmp(&a.ratio()).then(a.name.cmp(&b.name)));
    rows
}

const MS_PER_NS: f64 = 1e-6;

/// The gate floor that applies to `name`: the longest matching prefix
/// override from `floors`, or the global `min_total_ms`.
fn effective_floor(name: &str, min_total_ms: f64, floors: &[(String, f64)]) -> f64 {
    floors
        .iter()
        .filter(|(prefix, _)| name.starts_with(prefix.as_str()))
        .max_by_key(|(prefix, _)| prefix.len())
        .map_or(min_total_ms, |(_, ms)| *ms)
}

/// Renders the diff table; spans under their gate floor (`min_total_ms`,
/// or a matching `--floor` prefix override) are marked as below the
/// gate's noise threshold.
#[must_use]
pub fn render_diff(rows: &[DiffRow], min_total_ms: f64, floors: &[(String, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>12} {:>12} {:>8}",
        "span", "base ms", "new ms", "ratio"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    for row in rows {
        #[allow(clippy::cast_precision_loss)]
        let below_floor =
            (row.base_ns as f64) * MS_PER_NS < effective_floor(&row.name, min_total_ms, floors);
        let note = if below_floor {
            "  (below gate floor)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<34} {:>12} {:>12} {:>8.3}{note}",
            row.name,
            fmt_ms(row.base_ns),
            fmt_ms(row.new_ns),
            row.ratio()
        );
    }
    out
}

/// Fails when any span regressed past `gate`, ignoring spans whose
/// baseline total is under their noise floor (`min_total_ms`, or a
/// matching `--floor` prefix override).
///
/// # Errors
///
/// Returns a message listing every offending span.
pub fn check_gate(
    rows: &[DiffRow],
    gate: f64,
    min_total_ms: f64,
    floors: &[(String, f64)],
) -> Result<(), String> {
    #[allow(clippy::cast_precision_loss)]
    let offenders: Vec<String> = rows
        .iter()
        .filter(|r| {
            (r.base_ns as f64) * MS_PER_NS >= effective_floor(&r.name, min_total_ms, floors)
                && r.ratio() > gate
        })
        .map(|r| {
            format!(
                "{}: {} ms -> {} ms ({:.3}x > {gate}x)",
                r.name,
                fmt_ms(r.base_ns),
                fmt_ms(r.new_ns),
                r.ratio()
            )
        })
        .collect();
    if offenders.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "regression gate failed ({} span{}):\n  {}",
            offenders.len(),
            if offenders.len() == 1 { "" } else { "s" },
            offenders.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_obs::{CounterStat, HistogramStat, SpanEvent, SpanStat, SCHEMA_VERSION};

    /// A hand-written v2 fixture: one sweep (50 ms) containing one
    /// experiment (48 ms) with two parallel points (30 + 28 ms, on
    /// different threads) each wrapping an LP solve.
    fn fixture() -> TraceSnapshot {
        let ev = |name: &str, id, parent, thread, start_ms: u64, end_ms: u64| SpanEvent {
            name: name.into(),
            id,
            parent,
            thread,
            start_ns: start_ms * 1_000_000,
            end_ns: end_ms * 1_000_000,
        };
        let events = vec![
            ev("sweep", 1, 0, 1, 0, 50),
            ev("experiment/fig2a", 2, 1, 1, 1, 49),
            ev("sweep/point", 3, 2, 2, 2, 32),
            ev("sweep/point", 4, 2, 3, 2, 30),
            ev("lp_hta/relaxation", 5, 3, 2, 3, 25),
            ev("lp_hta/relaxation", 6, 4, 3, 3, 24),
        ];
        // Matching aggregates (what the recorder would have kept).
        let agg = |name: &str, count, total_ms: u64| SpanStat {
            name: name.into(),
            count,
            total_ns: total_ms * 1_000_000,
            min_ns: 1,
            max_ns: total_ms * 1_000_000,
        };
        TraceSnapshot {
            version: SCHEMA_VERSION,
            spans: vec![
                agg("experiment/fig2a", 1, 48),
                agg("lp_hta/relaxation", 2, 43),
                agg("sweep", 1, 50),
                agg("sweep/point", 2, 58),
            ],
            counters: vec![CounterStat {
                name: "obs/flush".into(),
                value: 3,
            }],
            gauges: vec![],
            histograms: vec![HistogramStat {
                name: "serve/decision_latency_ms".into(),
                count: 4,
                sum: 20.0,
                min: 2.0,
                max: 8.0,
                p50: 4.0,
                p95: 8.0,
                p99: 8.0,
            }],
            events,
        }
    }

    #[test]
    fn forest_links_children_and_computes_self_time() {
        let snap = fixture();
        let forest = SpanForest::build(&snap);
        assert_eq!(forest.roots, vec![0]);
        assert_eq!(forest.children[0], vec![1]); // sweep -> experiment
        assert_eq!(forest.children[1], vec![2, 3]); // experiment -> points
                                                    // Experiment: 48 ms total, 30 + 28 ms of children => 0 self
                                                    // would be negative without the clamp? 48 - 58 saturates to 0.
        assert_eq!(forest.self_ns[1], 0);
        // Point at idx 2: 30 ms total, child 22 ms => 8 ms self.
        assert_eq!(forest.self_ns[2], 8_000_000);
        // Leaves keep their whole duration.
        assert_eq!(forest.self_ns[4], 22_000_000);
    }

    #[test]
    fn table_reports_self_and_total_time() {
        let snap = fixture();
        let table = render_table(&snap, &SpanForest::build(&snap), 30);
        assert!(table.contains("lp_hta/relaxation"), "{table}");
        assert!(table.contains("self ms"), "{table}");
        // lp_hta leaves: 22 + 21 = 43 ms self, the top row.
        let first_data_row = table.lines().nth(4).unwrap();
        assert!(first_data_row.starts_with("lp_hta/relaxation"), "{table}");
        assert!(first_data_row.contains("43.000"), "{table}");
        // The fixture's histogram renders with its percentile columns in
        // the appended histogram table (mean 20/4 = 5).
        assert!(table.contains("histograms"), "{table}");
        let hist_row = table
            .lines()
            .find(|l| l.starts_with("serve/decision_latency_ms"))
            .unwrap();
        for col in ["4", "5.000", "4.000", "8.000"] {
            assert!(hist_row.contains(col), "{hist_row}");
        }
    }

    #[test]
    fn aggregate_only_tables_also_render_histogram_percentiles() {
        let mut snap = fixture();
        snap.events.clear();
        let table = render_table(&snap, &SpanForest::build(&snap), 30);
        assert!(table.contains("aggregate span statistics"), "{table}");
        assert!(table.contains("serve/decision_latency_ms"), "{table}");
        assert!(table.contains("p99"), "{table}");
    }

    #[test]
    fn critical_path_descends_longest_children_and_flags_parallelism() {
        let snap = fixture();
        let path = render_critical_path(&snap, &SpanForest::build(&snap));
        // sweep -> experiment -> the 30 ms point -> its 22 ms solve.
        let names: Vec<&str> = path
            .lines()
            .filter(|l| l.contains("— "))
            .map(|l| l.trim().split(" —").next().unwrap())
            .collect();
        assert_eq!(
            names,
            [
                "sweep",
                "experiment/fig2a",
                "sweep/point",
                "lp_hta/relaxation"
            ]
        );
        // The experiment step fans out: 58 ms of children in 48 ms.
        assert!(path.contains("parallel"), "{path}");
        assert!(path.contains("% serial"), "{path}");
    }

    #[test]
    fn folded_stacks_sum_self_time_per_stack() {
        let snap = fixture();
        let folded = folded_stacks(&snap, &SpanForest::build(&snap));
        let lines: Vec<&str> = folded.lines().collect();
        // Zero-self experiment frame still appears inside deeper stacks.
        assert!(
            lines.contains(&"sweep;experiment/fig2a;sweep/point;lp_hta/relaxation 43000000"),
            "{folded}"
        );
        // Points have 8 + 7 = 15 ms of self time.
        assert!(
            lines.contains(&"sweep;experiment/fig2a;sweep/point 15000000"),
            "{folded}"
        );
        // Deterministic: sorted lexicographically.
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn aggregate_only_traces_fall_back_to_v1_table() {
        let mut snap = fixture();
        snap.events.clear();
        let forest = SpanForest::build(&snap);
        assert!(forest.is_empty());
        let table = render_table(&snap, &forest, 30);
        assert!(table.contains("no events in trace"), "{table}");
        assert!(table.contains("sweep/point"), "{table}");
        let path = render_critical_path(&snap, &forest);
        assert!(path.contains("unavailable"), "{path}");
    }

    #[test]
    fn diff_is_identity_on_equal_traces_and_catches_regressions() {
        let snap = fixture();
        let rows = diff_spans(&snap, &snap);
        assert!(rows.iter().all(|r| (r.ratio() - 1.0).abs() < 1e-12));
        assert!(check_gate(&rows, 1.01, 1.0, &[]).is_ok());

        // Inject a 2x regression on the LP span.
        let mut slow = snap.clone();
        slow.spans[1].total_ns *= 2;
        let rows = diff_spans(&snap, &slow);
        assert_eq!(rows[0].name, "lp_hta/relaxation");
        assert!((rows[0].ratio() - 2.0).abs() < 1e-12);
        let err = check_gate(&rows, 1.5, 1.0, &[]).unwrap_err();
        assert!(err.contains("lp_hta/relaxation"), "{err}");
        assert!(err.contains("2.000x"), "{err}");
        // A generous gate lets it through.
        assert!(check_gate(&rows, 2.5, 1.0, &[]).is_ok());
    }

    #[test]
    fn gate_ignores_spans_below_the_noise_floor() {
        let base = fixture();
        let mut new = base.clone();
        // A tiny span (1 µs) regresses 100x — still under a 1 ms floor.
        new.spans.push(SpanStat {
            name: "tiny/span".into(),
            count: 1,
            total_ns: 100_000,
            min_ns: 100_000,
            max_ns: 100_000,
        });
        let mut base2 = base.clone();
        base2.spans.push(SpanStat {
            name: "tiny/span".into(),
            count: 1,
            total_ns: 1_000,
            min_ns: 1_000,
            max_ns: 1_000,
        });
        let rows = diff_spans(&base2, &new);
        assert!(check_gate(&rows, 1.5, 1.0, &[]).is_ok());
        // Lowering the floor exposes it.
        assert!(check_gate(&rows, 1.5, 0.0, &[]).is_err());
        let rendered = render_diff(&rows, 1.0, &[]);
        assert!(rendered.contains("below gate floor"), "{rendered}");
    }

    #[test]
    fn prefix_floors_override_the_global_noise_floor() {
        let base = fixture();
        let mut new = base.clone();
        // A linprog span of 100 µs baseline regresses 10x: exempt under
        // the 1 ms global floor, caught once `linprog/` gets its own
        // 0.05 ms floor.
        let mut base2 = base.clone();
        base2.spans.push(SpanStat {
            name: "linprog/revised/solve".into(),
            count: 1,
            total_ns: 100_000,
            min_ns: 100_000,
            max_ns: 100_000,
        });
        new.spans.push(SpanStat {
            name: "linprog/revised/solve".into(),
            count: 1,
            total_ns: 1_000_000,
            min_ns: 1_000_000,
            max_ns: 1_000_000,
        });
        let rows = diff_spans(&base2, &new);
        assert!(check_gate(&rows, 1.5, 1.0, &[]).is_ok());
        let floors = vec![("linprog/".to_string(), 0.05)];
        let err = check_gate(&rows, 1.5, 1.0, &floors).unwrap_err();
        assert!(err.contains("linprog/revised/solve"), "{err}");
        // The longest matching prefix wins: a more specific exemption
        // can lift the subsystem floor back up.
        let floors = vec![
            ("linprog/".to_string(), 0.05),
            ("linprog/revised/".to_string(), 5.0),
        ];
        assert!(check_gate(&rows, 1.5, 1.0, &floors).is_ok());
        let rendered = render_diff(&rows, 1.0, &floors);
        assert!(rendered.contains("below gate floor"), "{rendered}");
    }

    #[test]
    fn spans_new_in_the_trace_have_infinite_ratio_but_no_base_time() {
        let base = fixture();
        let mut new = base.clone();
        new.spans.push(SpanStat {
            name: "brand/new".into(),
            count: 1,
            total_ns: 5_000_000,
            min_ns: 5_000_000,
            max_ns: 5_000_000,
        });
        let rows = diff_spans(&base, &new);
        let row = rows.iter().find(|r| r.name == "brand/new").unwrap();
        assert!(row.ratio().is_infinite());
        // New spans never trip the gate: there is nothing to regress from.
        assert!(check_gate(&rows, 1.5, 1.0, &[]).is_ok());
    }
}
