//! `dsmec` — command-line front end to the Data-Shared MEC toolkit.
//!
//! ```text
//! dsmec generate --seed 42 --tasks 200 --out scenario.json
//! dsmec assign   --scenario scenario.json --algorithm lp-hta --out assignment.json
//! dsmec simulate --scenario scenario.json --assignment assignment.json --contention
//! dsmec report   --scenario scenario.json --assignment assignment.json
//! dsmec compare  --scenario scenario.json
//! dsmec trace    trace.json --folded stacks.txt
//! dsmec trace    new.json --baseline old.json --gate 1.15
//! ```

use mec_bench::cli::{
    assign_scenario, generate_scenario, read_json, render_report, simulate_assignment, write_json,
    AlgorithmName, AssignmentFile,
};
use mec_sim::sim::Contention;
use mec_sim::workload::Scenario;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "--help".to_string());
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut switches: Vec<String> = Vec::new();
    let mut positionals: Vec<String> = Vec::new();
    let mut pending: Option<String> = None;
    for arg in args {
        if let Some(name) = pending.take() {
            flags.insert(name, arg);
            continue;
        }
        if let Some(name) = arg.strip_prefix("--") {
            match name {
                "contention" | "quick" => switches.push(name.to_string()),
                _ => pending = Some(name.to_string()),
            }
        } else if matches!(command.as_str(), "trace" | "metrics" | "top") {
            // Only the analyzers take positional operands (their input
            // files); everywhere else a stray word is still a usage error.
            positionals.push(arg);
        } else {
            return Err(format!("unexpected positional argument `{arg}`"));
        }
    }
    if let Some(name) = pending {
        return Err(format!("flag --{name} needs a value"));
    }
    if let Some(spec) = flags.get("threads") {
        mec_bench::cli::apply_threads(spec)?;
    }
    if command == "trace" {
        // Offline analysis of an existing trace: never records one.
        return run_trace(&flags, &positionals);
    }
    if command == "metrics" {
        // Flight-log analyzer + SLO gate: exits nonzero on violation.
        return run_metrics(&flags, &positionals);
    }
    if command == "top" {
        return run_top(&flags, &positionals);
    }
    // Tracing: --trace PATH or DSMEC_TRACE=PATH enables mec-obs and
    // writes the snapshot after the command completes.
    let trace_path = mec_bench::cli::init_trace(flags.get("trace").map(String::as_str));

    let outcome = dispatch(&command, &flags, &switches);
    if let Some(path) = &trace_path {
        mec_bench::cli::write_trace(path)?;
        println!("wrote trace {path}");
    }
    outcome
}

/// `dsmec trace <FILE>` / `dsmec trace --baseline OLD NEW --gate R`.
fn run_trace(flags: &HashMap<String, String>, positionals: &[String]) -> Result<(), String> {
    let mut args = mec_bench::trace_report::TraceArgs {
        file: positionals
            .first()
            .cloned()
            .ok_or("trace needs a FILE operand (see --help)")?,
        folded: flags.get("folded").cloned(),
        baseline: flags.get("baseline").cloned(),
        ..Default::default()
    };
    if positionals.len() > 1 {
        return Err(format!("trace takes one FILE operand, got {positionals:?}"));
    }
    if let Some(gate) = flags.get("gate") {
        let ratio: f64 = gate
            .parse()
            .map_err(|_| "--gate must be a ratio like 1.15".to_string())?;
        if !(ratio.is_finite() && ratio >= 1.0) {
            return Err("--gate must be a finite ratio >= 1.0".to_string());
        }
        if args.baseline.is_none() {
            return Err("--gate requires --baseline OLD.json".to_string());
        }
        args.gate = Some(ratio);
    }
    if let Some(floor) = flags.get("min-total-ms") {
        args.min_total_ms = floor
            .parse()
            .map_err(|_| "--min-total-ms must be a number".to_string())?;
    }
    if let Some(spec) = flags.get("floor") {
        // --floor prefix=ms[,prefix=ms]: per-prefix gate floors.
        for part in spec.split(',') {
            let (prefix, ms) = part
                .split_once('=')
                .ok_or_else(|| format!("--floor entries look like prefix=ms, got {part:?}"))?;
            let ms: f64 = ms
                .parse()
                .map_err(|_| format!("--floor {prefix}= needs a number, got {part:?}"))?;
            if prefix.is_empty() || !ms.is_finite() || ms < 0.0 {
                return Err(format!("--floor entry {part:?} is not a valid prefix=ms"));
            }
            args.floors.push((prefix.to_string(), ms));
        }
    }
    if let Some(top) = flags.get("top") {
        args.top = top
            .parse()
            .map_err(|_| "--top must be an integer".to_string())?;
    }
    mec_bench::trace_report::trace_command(&args)
}

/// `dsmec metrics FLIGHT.jsonl [--slo key=value,…]`.
fn run_metrics(flags: &HashMap<String, String>, positionals: &[String]) -> Result<(), String> {
    if positionals.len() > 1 {
        return Err(format!(
            "metrics takes one FLIGHT.jsonl operand, got {positionals:?}"
        ));
    }
    let args = mec_bench::metrics::MetricsArgs {
        file: positionals
            .first()
            .cloned()
            .ok_or("metrics needs a FLIGHT.jsonl operand (see --help)")?,
        slo: flags.get("slo").cloned(),
    };
    mec_bench::metrics::metrics_command(&args)
}

/// `dsmec top [FLIGHT.jsonl] [--addr HOST:PORT] [--interval-ms N]
/// [--iterations N]`.
fn run_top(flags: &HashMap<String, String>, positionals: &[String]) -> Result<(), String> {
    if positionals.len() > 1 {
        return Err(format!(
            "top takes at most one FLIGHT.jsonl operand, got {positionals:?}"
        ));
    }
    let parse_u64 = |name: &str, default: u64| -> Result<u64, String> {
        flags
            .get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{name} must be an integer"))
            })
            .unwrap_or(Ok(default))
    };
    let args = mec_bench::metrics::TopArgs {
        file: positionals.first().cloned(),
        addr: flags.get("addr").cloned(),
        interval_ms: parse_u64("interval-ms", 1000)?,
        iterations: parse_u64("iterations", 0)?,
    };
    mec_bench::metrics::top_command(&args)
}

fn dispatch(
    command: &str,
    flags: &HashMap<String, String>,
    switches: &[String],
) -> Result<(), String> {
    let get_u64 =
        |flags: &HashMap<String, String>, name: &str, default: u64| -> Result<u64, String> {
            flags
                .get(name)
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("--{name} must be an integer"))
                })
                .unwrap_or(Ok(default))
        };
    let get_usize =
        |flags: &HashMap<String, String>, name: &str, default: usize| -> Result<usize, String> {
            flags
                .get(name)
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("--{name} must be an integer"))
                })
                .unwrap_or(Ok(default))
        };

    match command {
        "generate" => {
            let seed = get_u64(flags, "seed", 42)?;
            let stations = get_usize(flags, "stations", 5)?;
            let devices = get_usize(flags, "devices-per-station", 10)?;
            let tasks = get_usize(flags, "tasks", 100)?;
            let kb: f64 = flags
                .get("max-input-kb")
                .map(|v| {
                    v.parse()
                        .map_err(|_| "--max-input-kb must be a number".to_string())
                })
                .unwrap_or(Ok(3000.0))?;
            let scenario =
                generate_scenario(seed, stations, devices, tasks, kb).map_err(|e| e.to_string())?;
            let out = flags.get("out").cloned().unwrap_or("scenario.json".into());
            write_json(&out, &scenario)?;
            println!(
                "wrote {out}: {} stations, {} devices, {} tasks",
                scenario.system.num_stations(),
                scenario.system.num_devices(),
                scenario.tasks.len()
            );
            Ok(())
        }
        "assign" => {
            let scenario: Scenario =
                read_json(flags.get("scenario").ok_or("--scenario required")?)?;
            let name = flags
                .get("algorithm")
                .map(String::as_str)
                .unwrap_or("lp-hta");
            let algorithm = AlgorithmName::parse(name)
                .ok_or_else(|| format!("unknown algorithm `{name}` (try lp-hta, hgos, nash, …)"))?;
            let seed = get_u64(flags, "seed", 42)?;
            let file = assign_scenario(&scenario, algorithm, seed).map_err(|e| e.to_string())?;
            let out = flags
                .get("out")
                .cloned()
                .unwrap_or("assignment.json".into());
            write_json(&out, &file)?;
            print!("{}", render_report(&file, None));
            println!("wrote {out}");
            Ok(())
        }
        "simulate" | "report" => {
            let scenario: Scenario =
                read_json(flags.get("scenario").ok_or("--scenario required")?)?;
            let file: AssignmentFile =
                read_json(flags.get("assignment").ok_or("--assignment required")?)?;
            let contention = if switches.iter().any(|s| s == "contention") {
                Contention::Exclusive
            } else {
                Contention::None
            };
            let sim = if command == "simulate" {
                Some(simulate_assignment(&scenario, &file, contention).map_err(|e| e.to_string())?)
            } else {
                None
            };
            print!("{}", render_report(&file, sim.as_ref()));
            // Fault injection: --chaos SEED or DSMEC_CHAOS=SEED replays
            // the assignment under a seeded fault plan with repair.
            if command == "simulate" {
                let chaos = mec_bench::cli::resolve_chaos(flags.get("chaos").map(String::as_str))?;
                if let Some(seed) = chaos {
                    let run = mec_bench::cli::chaos_assignment(&scenario, &file, contention, seed)
                        .map_err(|e| e.to_string())?;
                    print!("{}", mec_bench::cli::render_chaos_report(&run));
                    if let Some(out) = flags.get("chaos-out") {
                        write_json(out, &run)?;
                        println!("wrote {out}");
                    }
                }
            }
            Ok(())
        }
        "divisible" => {
            use dsmec_core::dta::{run_dta, DtaConfig};
            use mec_sim::workload::DivisibleScenarioConfig;
            let seed = get_u64(flags, "seed", 42)?;
            let tasks = get_usize(flags, "tasks", 100)?;
            let items = get_usize(flags, "items", 1000)?;
            let mut cfg = DivisibleScenarioConfig::paper_defaults(seed);
            cfg.tasks_total = tasks;
            cfg.num_items = items;
            let s = cfg.generate().map_err(|e| e.to_string())?;
            println!(
                "{:<14} {:>12} {:>10} {:>16} {:>8}",
                "strategy", "energy (J)", "devices", "processing (s)", "pieces"
            );
            println!("{}", "-".repeat(66));
            for dta in [DtaConfig::workload(), DtaConfig::number()] {
                let r = run_dta(&s, dta).map_err(|e| e.to_string())?;
                println!(
                    "{:<14} {:>12.1} {:>10} {:>16.3} {:>8}",
                    dta.strategy.to_string(),
                    r.total_energy.value(),
                    r.involved_devices,
                    r.processing_time.value(),
                    r.pieces.len()
                );
            }
            Ok(())
        }
        "serve" => {
            use mec_bench::metrics::{TelemetryOptions, TelemetryPlane};
            use mec_bench::serve::{serve, serve_with_hook, ServeConfig};
            let defaults = ServeConfig::default();
            let mut cfg = ServeConfig {
                seed: get_u64(flags, "seed", defaults.seed)?,
                epochs: get_usize(flags, "epochs", defaults.epochs)?,
                batch: get_usize(flags, "batch", defaults.batch)?,
                num_stations: get_usize(flags, "stations", defaults.num_stations)?,
                devices_per_station: get_usize(
                    flags,
                    "devices-per-station",
                    defaults.devices_per_station,
                )?,
                ..defaults
            };
            if let Some(kb) = flags.get("max-input-kb") {
                cfg.max_input_kb = kb
                    .parse()
                    .map_err(|_| "--max-input-kb must be a number".to_string())?;
            }
            if let Some(rate) = flags.get("rate") {
                cfg.rate_per_second = rate
                    .parse()
                    .map_err(|_| "--rate must be a number (tasks/s)".to_string())?;
            }
            cfg.chaos = mec_bench::cli::resolve_chaos(flags.get("chaos").map(String::as_str))?;
            if let Some(limit) = flags.get("cloud-limit") {
                cfg.cloud_limit = Some(
                    limit
                        .parse()
                        .map_err(|_| "--cloud-limit must be an integer".to_string())?,
                );
            }
            // Telemetry plane: --metrics-out / --metrics-addr (or their
            // DSMEC_METRICS_* environment fallbacks) feed the per-epoch
            // hook; fingerprints are identical with the plane on or off.
            let telemetry = TelemetryOptions::resolve(
                flags.get("metrics-out").map(String::as_str),
                flags.get("metrics-addr").map(String::as_str),
            );
            let mut plane = TelemetryPlane::start(&telemetry)?;
            if let Some(addr) = plane.as_ref().and_then(TelemetryPlane::server_addr) {
                println!("metrics: serving http://{addr}/metrics");
            }
            let report = match plane.as_mut() {
                Some(p) => serve_with_hook(&cfg, &mut |e| p.on_epoch(e)),
                None => serve(&cfg),
            }
            .map_err(|e| e.to_string())?;
            print!("{}", mec_bench::serve::render_serve_report(&report));
            let out = flags.get("out").cloned().unwrap_or("serve.json".into());
            write_json(&out, &report)?;
            println!("wrote {out}");
            if let Some(p) = plane {
                let intervals = p.finish()?;
                if let Some(path) = &telemetry.metrics_out {
                    println!("wrote {path} ({intervals} intervals)");
                }
            }
            Ok(())
        }
        "compare" => {
            let scenario: Scenario =
                read_json(flags.get("scenario").ok_or("--scenario required")?)?;
            let seed = get_u64(flags, "seed", 42)?;
            println!(
                "{:<12} {:>12} {:>12} {:>12}",
                "algorithm", "energy (J)", "latency (s)", "unsatisfied"
            );
            println!("{}", "-".repeat(52));
            for name in AlgorithmName::ALL {
                let file = assign_scenario(&scenario, name, seed).map_err(|e| e.to_string())?;
                println!(
                    "{:<12} {:>12.1} {:>12.3} {:>11.1}%",
                    name.as_str(),
                    file.metrics.total_energy.value(),
                    file.metrics.mean_latency.value(),
                    file.metrics.unsatisfied_rate * 100.0
                );
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            eprintln!("usage: dsmec <command> [flags]");
            eprintln!("commands:");
            eprintln!("  generate  --seed N --stations K --devices-per-station D --tasks T \\");
            eprintln!("            --max-input-kb KB --out scenario.json");
            eprintln!("  assign    --scenario F --algorithm NAME --out assignment.json");
            eprintln!("  simulate  --scenario F --assignment F [--contention] \\");
            eprintln!("            [--chaos SEED [--chaos-out chaos.json]]");
            eprintln!("            --chaos injects a seeded fault plan (device dropouts,");
            eprintln!("            link outages/degradation, stragglers) and replans");
            eprintln!("            stranded tasks; the run is deterministic per seed");
            eprintln!("  report    --scenario F --assignment F");
            eprintln!("  serve     --seed N --epochs E [--batch B] [--stations K] \\");
            eprintln!("            [--devices-per-station D] [--rate R] [--chaos SEED] \\");
            eprintln!("            [--cloud-limit C] [--out serve.json] \\");
            eprintln!("            [--metrics-addr HOST:PORT] [--metrics-out FLIGHT.jsonl]");
            eprintln!("            online mode: drain E epoch batches of task arrivals");
            eprintln!("            through the sharded incremental LP-HTA, warm-starting");
            eprintln!("            each base-station cluster from its previous basis;");
            eprintln!("            --chaos adds device churn, --cloud-limit caps cloud");
            eprintln!("            placements per epoch (excess migrates to stations);");
            eprintln!("            --metrics-addr serves live Prometheus text at GET");
            eprintln!("            /metrics, --metrics-out appends one interval snapshot");
            eprintln!("            per epoch as a JSONL flight log (DESIGN.md §12)");
            eprintln!("  metrics   FLIGHT.jsonl [--slo p95_ms=X,miss_rate=Y,…]");
            eprintln!("            summarize a flight log as a per-interval trend table;");
            eprintln!("            --slo exits nonzero when any interval violates a rule");
            eprintln!("            (keys: p50_ms p95_ms p99_ms miss_rate warm_rate_min");
            eprintln!("            queue_max)");
            eprintln!("  top       FLIGHT.jsonl | --addr HOST:PORT [--interval-ms N] \\");
            eprintln!("            [--iterations N]");
            eprintln!("            live trend view: poll a serve session's /metrics");
            eprintln!("            endpoint (one row per interval, until the session");
            eprintln!("            ends) or render a recorded flight log once");
            eprintln!("  compare   --scenario F");
            eprintln!("  divisible --seed N --tasks T --items M");
            eprintln!("  trace     FILE [--folded OUT.txt] [--top N]");
            eprintln!("            analyze a trace JSON: self-time table, critical path,");
            eprintln!("            flamegraph folded stacks");
            eprintln!("  trace     NEW.json --baseline OLD.json [--gate RATIO] \\");
            eprintln!("            [--min-total-ms MS] [--floor prefix=MS[,prefix=MS]]");
            eprintln!("            diff two traces; with --gate, exit nonzero when any");
            eprintln!("            span's total time regressed past RATIO; --floor sets");
            eprintln!("            per-prefix noise floors (longest matching prefix wins)");
            eprintln!("global flags:");
            eprintln!("  --threads N  worker threads for the LP kernels (0 = auto)");
            eprintln!("  --trace P    write an mec-obs trace JSON with flight-recorder");
            eprintln!("               events (schema v2, DESIGN.md §7)");
            eprintln!("environment:");
            eprintln!("  DSMEC_THREADS=N       worker threads when --threads is not given");
            eprintln!("  DSMEC_TRACE=P         trace output path when --trace is not given");
            eprintln!("  DSMEC_TRACE_EVENTS=0  record aggregates only (no span events)");
            eprintln!("  DSMEC_CHAOS=SEED      chaos seed when --chaos is not given");
            eprintln!("  DSMEC_METRICS_ADDR=A  serve exposition bind when --metrics-addr");
            eprintln!("                        is not given");
            eprintln!("  DSMEC_METRICS_OUT=P   flight-log path when --metrics-out is not");
            eprintln!("                        given");
            eprintln!("algorithms: lp-hta hgos all-to-c all-offload local-first nash random");
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (see --help)")),
    }
}
