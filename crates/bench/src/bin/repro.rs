//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!   repro                 run every experiment (full sweeps)
//!   repro fig2a fig3      run selected experiments
//!   repro --quick         CI-sized sweeps
//!   repro --out DIR       CSV output directory (default target/experiments)

use mec_bench::figures::{registry, ExperimentOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opts = ExperimentOptions::default();
    let mut out_dir = PathBuf::from("target/experiments");
    let mut selected: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts = ExperimentOptions::quick(),
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: repro [--quick] [--out DIR] [EXPERIMENT...]");
                eprintln!("experiments:");
                for (id, _) in registry() {
                    eprintln!("  {id}");
                }
                return ExitCode::SUCCESS;
            }
            other => selected.push(other.to_string()),
        }
    }

    let runners = registry();
    let unknown: Vec<&String> = selected
        .iter()
        .filter(|s| !runners.iter().any(|(id, _)| id == s))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiments: {unknown:?} (see --help)");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for (id, run) in runners {
        if !selected.is_empty() && !selected.iter().any(|s| s == id) {
            continue;
        }
        let start = std::time::Instant::now();
        match run(&opts) {
            Ok(fig) => {
                println!("{}", fig.render_table());
                if let Err(e) = fig.write_csv(&out_dir) {
                    eprintln!("warning: could not write {id}.csv: {e}");
                } else {
                    println!("   -> {}  ({:.1}s)\n", out_dir.join(format!("{id}.csv")).display(), start.elapsed().as_secs_f64());
                }
            }
            Err(e) => {
                eprintln!("{id} FAILED: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
