//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!   repro                 run every experiment (full sweeps)
//!   repro fig2a fig3      run selected experiments
//!   repro --quick         CI-sized sweeps (implies --perf)
//!   repro --out DIR       CSV output directory (default target/experiments)
//!   repro --threads N     worker threads (0 = auto; also DSMEC_THREADS)
//!   repro --perf          time a serial pass vs a parallel pass and write
//!                         the speedup report
//!   repro --bench-out P   speedup report path (default BENCH_parallel.json)
//!   repro --trace P       write an mec-obs trace (aggregates + flight-
//!                         recorder span events, schema v2 in DESIGN.md §7,
//!                         analyzable with `dsmec trace`); DSMEC_TRACE=P is
//!                         the environment equivalent, DSMEC_TRACE_EVENTS=0
//!                         records aggregates only
//!
//! With `--perf` (or `--quick`) every selected experiment runs twice from a
//! cold cache — once on one thread, once on the configured thread count —
//! and the wall times, speedups and a bit-identity check of the two outputs
//! land in `BENCH_parallel.json`. Series whose name contains `"time ms"`
//! are wall-clock measurements and are exempt from the identity check.

use djson::{Json, ToJson};
use mec_bench::figures::{registry, ExperimentOptions, Runner};
use mec_bench::table::Figure;
use mec_bench::{cache, cli, par};
use std::path::PathBuf;
use std::process::ExitCode;

/// A JSON object literal from `(key, value)` pairs.
fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Distills the revised simplex's warm-start counters from the timed
/// pass's trace into the speedup report: how often sweeps offered a
/// previous basis, how often the solver accepted it, and what a warm
/// solve costs next to a cold one.
fn warm_start_summary(trace: &mec_obs::TraceSnapshot) -> Json {
    let counter = |name: &str| trace.counter(name).unwrap_or(0);
    let attempts = counter("lp_hta/relaxation/warm_attempts");
    let hits = counter("lp_hta/relaxation/warm_hits");
    let warm_solves = counter("linprog/revised/warm/solves");
    let cold_solves = counter("linprog/revised/cold/solves");
    let mean = |ns: u64, n: u64| if n > 0 { ns as f64 / n as f64 } else { 0.0 };
    obj(vec![
        ("attempts", Json::from(attempts)),
        ("hits", Json::from(hits)),
        (
            "hit_rate",
            Json::from(if attempts > 0 {
                hits as f64 / attempts as f64
            } else {
                0.0
            }),
        ),
        (
            "warm_solve_mean_ns",
            Json::from(mean(counter("linprog/revised/warm/solve_ns"), warm_solves)),
        ),
        (
            "cold_solve_mean_ns",
            Json::from(mean(counter("linprog/revised/cold/solve_ns"), cold_solves)),
        ),
    ])
}

/// Outcome of one timed pass over the selected experiments.
struct Pass {
    /// `(id, figure)` for every experiment that succeeded.
    figures: Vec<(&'static str, Figure)>,
    /// `(id, wall-time ms)` for every experiment that succeeded.
    times_ms: Vec<(&'static str, f64)>,
    /// Experiments that failed, with rendered errors.
    failures: Vec<(&'static str, String)>,
}

fn run_pass(runners: &[(&'static str, Runner)], opts: &ExperimentOptions) -> Pass {
    // Root of the flight-recorder chain: sweep → experiment/<id> →
    // sweep/point (on workers, linked via the explicit parent id) →
    // lp_hta/* / dta/* / linprog/*.
    let _pass_span = mec_obs::span("sweep");
    let mut pass = Pass {
        figures: Vec::new(),
        times_ms: Vec::new(),
        failures: Vec::new(),
    };
    for &(id, run) in runners {
        let _exp_span = mec_obs::span(mec_bench::figures::experiment_span(id));
        let start = std::time::Instant::now();
        match run(opts) {
            Ok(fig) => {
                pass.times_ms
                    .push((id, start.elapsed().as_secs_f64() * 1e3));
                pass.figures.push((id, fig));
            }
            Err(e) => pass.failures.push((id, e.to_string())),
        }
    }
    pass
}

/// Bitwise equality of two figures, ignoring wall-clock series.
fn figures_identical(a: &Figure, b: &Figure) -> bool {
    a.x_ticks == b.x_ticks
        && a.series.len() == b.series.len()
        && a.series.iter().zip(&b.series).all(|(x, y)| {
            x.name == y.name
                && (x.name.contains("time ms")
                    || (x.values.len() == y.values.len()
                        && x.values
                            .iter()
                            .zip(&y.values)
                            .all(|(u, v)| u.to_bits() == v.to_bits())))
        })
}

/// The `--chaos SEED` pass: LP-HTA on the paper-default scenario, then
/// the full fault-injection + repair pipeline, archived as
/// `DIR/CHAOS_report.json` (seed, fault plan, per-task fates, event log).
fn run_chaos(seed: u64, out_dir: &std::path::Path) -> Result<String, String> {
    use mec_sim::sim::Contention;
    let scenario = cli::generate_scenario(42, 5, 10, 100, 3000.0).map_err(|e| e.to_string())?;
    let file = cli::assign_scenario(&scenario, cli::AlgorithmName::LpHta, 42)
        .map_err(|e| e.to_string())?;
    let run = cli::chaos_assignment(&scenario, &file, Contention::Exclusive, seed)
        .map_err(|e| e.to_string())?;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let path = out_dir.join("CHAOS_report.json");
    let path = path.to_str().ok_or("non-UTF-8 output path")?;
    cli::write_json(path, &run)?;
    Ok(format!(
        "{}   -> {path}",
        cli::render_chaos_report(&run).trim_end()
    ))
}

fn main() -> ExitCode {
    let mut opts = ExperimentOptions::default();
    let mut out_dir = PathBuf::from("target/experiments");
    let mut bench_out = PathBuf::from("BENCH_parallel.json");
    let mut perf = false;
    let mut trace_flag: Option<String> = None;
    let mut chaos_flag: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                opts = ExperimentOptions::quick();
                perf = true;
            }
            "--perf" => perf = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--bench-out" => match args.next() {
                Some(path) => bench_out = PathBuf::from(path),
                None => {
                    eprintln!("--bench-out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(path) => trace_flag = Some(path),
                None => {
                    eprintln!("--trace requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--chaos" => match args.next() {
                Some(seed) => chaos_flag = Some(seed),
                None => {
                    eprintln!("--chaos requires a seed");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().map(|s| cli::apply_threads(&s)) {
                Some(Ok(_)) => {}
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--threads requires a count");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--quick] [--perf] [--threads N] [--out DIR] \
                     [--bench-out PATH] [--trace PATH] [--chaos SEED] [EXPERIMENT...]"
                );
                eprintln!("with --chaos SEED, a paper-default scenario is additionally run");
                eprintln!("under a seeded fault plan with repair; the full plan and event");
                eprintln!("log land in DIR/CHAOS_report.json for replay");
                eprintln!("environment:");
                eprintln!("  DSMEC_THREADS=N       worker threads when --threads is not given");
                eprintln!("  DSMEC_TRACE=P         trace output path when --trace is not given");
                eprintln!("  DSMEC_TRACE_EVENTS=0  record aggregates only (no span events)");
                eprintln!("  DSMEC_CHAOS=SEED      chaos seed when --chaos is not given");
                eprintln!("experiments:");
                for (id, _) in registry() {
                    eprintln!("  {id}");
                }
                return ExitCode::SUCCESS;
            }
            other => selected.push(other.to_string()),
        }
    }

    let chaos_seed = match cli::resolve_chaos(chaos_flag.as_deref()) {
        Ok(seed) => seed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let runners: Vec<(&'static str, Runner)> = registry()
        .into_iter()
        .filter(|(id, _)| selected.is_empty() || selected.iter().any(|s| s == id))
        .collect();
    let unknown: Vec<&String> = selected
        .iter()
        .filter(|s| !registry().iter().any(|(id, _)| id == s))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiments: {unknown:?} (see --help)");
        return ExitCode::FAILURE;
    }

    // Tracing: an explicit --trace/DSMEC_TRACE path, and --perf on its own
    // so the span summary can land in BENCH_parallel.json.
    let trace_path = cli::init_trace(trace_flag.as_deref());
    if perf {
        mec_obs::set_enabled(true);
    }

    let threads = par::threads();
    // Optional reference pass on one thread, cold cache, for the speedup
    // report and the serial-vs-parallel identity check.
    let serial = if perf {
        par::set_threads(1);
        cache::clear();
        let pass = run_pass(&runners, &opts);
        par::set_threads(threads);
        Some(pass)
    } else {
        None
    };

    // The trace mirrors the cache counters' scope: the timed (parallel)
    // pass only, not the serial reference.
    mec_obs::reset();
    cache::clear();
    let parallel = run_pass(&runners, &opts);
    let cache_stats = cache::stats();
    let trace = mec_obs::snapshot();

    for (id, fig) in &parallel.figures {
        println!("{}", fig.render_table());
        let t = parallel
            .times_ms
            .iter()
            .find(|(i, _)| i == id)
            .map_or(0.0, |(_, ms)| *ms);
        if let Err(e) = fig.write_csv(&out_dir) {
            eprintln!("warning: could not write {id}.csv: {e}");
        } else {
            println!(
                "   -> {}  ({:.1}s)\n",
                out_dir.join(format!("{id}.csv")).display(),
                t / 1e3
            );
        }
    }
    for (id, e) in &parallel.failures {
        eprintln!("{id} FAILED: {e}");
    }

    // Chaos pass: replay a paper-default scenario under a seeded fault
    // plan with repair, archiving the plan + event log for replay.
    if let Some(seed) = chaos_seed {
        match run_chaos(seed, &out_dir) {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("chaos FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &trace_path {
        match cli::write_trace(path) {
            Ok(()) => println!(
                "trace: {} spans, {} counters -> {path}",
                trace.spans.len(),
                trace.counters.len()
            ),
            Err(e) => {
                eprintln!("ERROR: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(serial) = &serial {
        let mut per_figure = Vec::new();
        let mut serial_total = 0.0;
        let mut parallel_total = 0.0;
        let mut all_identical = true;
        for (id, par_ms) in &parallel.times_ms {
            let Some((_, ser_ms)) = serial.times_ms.iter().find(|(i, _)| i == id) else {
                continue;
            };
            let figs = (
                serial.figures.iter().find(|(i, _)| i == id),
                parallel.figures.iter().find(|(i, _)| i == id),
            );
            let identical = match figs {
                (Some((_, a)), Some((_, b))) => figures_identical(a, b),
                _ => false,
            };
            all_identical &= identical;
            serial_total += ser_ms;
            parallel_total += par_ms;
            let mut fields = vec![
                ("id", Json::from(*id)),
                ("serial_ms", Json::from(*ser_ms)),
                ("parallel_ms", Json::from(*par_ms)),
                ("speedup", Json::from(ser_ms / par_ms.max(1e-9))),
                ("identical", Json::from(identical)),
            ];
            // Figures with wall-clock series (name containing "time ms",
            // e.g. the LP backend ablation) get distribution statistics
            // over those measurements; nearest-rank percentiles are
            // NaN-free even for a single sample.
            if let (_, Some((_, fig))) = figs {
                let samples: Vec<f64> = fig
                    .series
                    .iter()
                    .filter(|s| s.name.contains("time ms"))
                    .flat_map(|s| s.values.iter().copied())
                    .collect();
                if !samples.is_empty() {
                    fields.push((
                        "time_ms_p50",
                        Json::from(mec_bench::timing::percentile(&samples, 50.0)),
                    ));
                    fields.push((
                        "time_ms_p95",
                        Json::from(mec_bench::timing::percentile(&samples, 95.0)),
                    ));
                }
            }
            per_figure.push(obj(fields));
        }
        let per_figure_times: Vec<f64> = parallel.times_ms.iter().map(|&(_, ms)| ms).collect();
        let report = obj(vec![
            ("threads", Json::from(threads as u64)),
            ("figures", Json::Arr(per_figure)),
            (
                "total",
                obj(vec![
                    ("serial_ms", Json::from(serial_total)),
                    ("parallel_ms", Json::from(parallel_total)),
                    (
                        "speedup",
                        Json::from(serial_total / parallel_total.max(1e-9)),
                    ),
                    (
                        "per_figure_p50_ms",
                        Json::from(mec_bench::timing::percentile(&per_figure_times, 50.0)),
                    ),
                    (
                        "per_figure_p95_ms",
                        Json::from(mec_bench::timing::percentile(&per_figure_times, 95.0)),
                    ),
                ]),
            ),
            ("identical", Json::from(all_identical)),
            ("warm_start", warm_start_summary(&trace)),
            ("cache", cache_stats.to_json()),
            ("trace", trace.to_json()),
        ]);
        let json = djson::to_string_pretty(&report);
        if let Err(e) = std::fs::write(&bench_out, json + "\n") {
            eprintln!("warning: could not write {}: {e}", bench_out.display());
        } else {
            println!(
                "perf: {threads} threads, {:.1}x speedup, outputs identical: {all_identical} -> {}",
                serial_total / parallel_total.max(1e-9),
                bench_out.display()
            );
        }
        if !all_identical {
            eprintln!("ERROR: parallel output differs from the serial reference");
            return ExitCode::FAILURE;
        }
    }

    if parallel.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
