//! Reusable implementation of the `dsmec` command-line tool: generate
//! scenarios, assign them with any algorithm, execute assignments on the
//! discrete-event simulator and print reports — all via JSON files, so
//! the pieces compose in shell pipelines.
//!
//! The binary in `src/bin/dsmec.rs` is a thin argument-parsing wrapper;
//! everything testable lives here.

use dsmec_core::assignment::Assignment;
use dsmec_core::error::AssignError;
use dsmec_core::hta::{
    AllOffload, AllToC, Hgos, HtaAlgorithm, LocalFirst, LpHta, NashOffload, RandomAssign,
};
use dsmec_core::metrics::{evaluate_assignment, Metrics};
use dsmec_core::repair::{AbandonReason, RepairAction, TaskFate};
use dsmec_core::{execute_with_repair, ChaosRunReport, RepairPolicy};
use mec_sim::sim::{simulate, ChaosConfig, Contention, FaultPlan, SimReport};
use mec_sim::units::Seconds;
use mec_sim::workload::{Scenario, ScenarioConfig};
use std::fmt;

/// Algorithms selectable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmName {
    /// The paper's LP-HTA.
    LpHta,
    /// The reconstructed HGOS.
    Hgos,
    /// Everything to the cloud.
    AllToC,
    /// Everything off the device.
    AllOffload,
    /// Keep local while capacity lasts.
    LocalFirst,
    /// Best-response game to Nash equilibrium.
    Nash,
    /// Seeded random placement.
    Random,
}

impl AlgorithmName {
    /// All selectable algorithms.
    pub const ALL: [AlgorithmName; 7] = [
        AlgorithmName::LpHta,
        AlgorithmName::Hgos,
        AlgorithmName::AllToC,
        AlgorithmName::AllOffload,
        AlgorithmName::LocalFirst,
        AlgorithmName::Nash,
        AlgorithmName::Random,
    ];

    /// Parses the CLI spelling (`lp-hta`, `hgos`, …).
    pub fn parse(s: &str) -> Option<AlgorithmName> {
        Some(match s.to_ascii_lowercase().as_str() {
            "lp-hta" | "lphta" => AlgorithmName::LpHta,
            "hgos" => AlgorithmName::Hgos,
            "all-to-c" | "alltoc" | "cloud" => AlgorithmName::AllToC,
            "all-offload" | "alloffload" => AlgorithmName::AllOffload,
            "local-first" | "localfirst" => AlgorithmName::LocalFirst,
            "nash" | "game" => AlgorithmName::Nash,
            "random" => AlgorithmName::Random,
            _ => return None,
        })
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlgorithmName::LpHta => "lp-hta",
            AlgorithmName::Hgos => "hgos",
            AlgorithmName::AllToC => "all-to-c",
            AlgorithmName::AllOffload => "all-offload",
            AlgorithmName::LocalFirst => "local-first",
            AlgorithmName::Nash => "nash",
            AlgorithmName::Random => "random",
        }
    }

    /// Instantiates the algorithm (the `seed` feeds `Random`).
    pub fn instantiate(&self, seed: u64) -> Box<dyn HtaAlgorithm> {
        match self {
            AlgorithmName::LpHta => Box::new(LpHta::paper()),
            AlgorithmName::Hgos => Box::new(Hgos::default()),
            AlgorithmName::AllToC => Box::new(AllToC),
            AlgorithmName::AllOffload => Box::new(AllOffload),
            AlgorithmName::LocalFirst => Box::new(LocalFirst),
            AlgorithmName::Nash => Box::new(NashOffload::default()),
            AlgorithmName::Random => Box::new(RandomAssign { seed }),
        }
    }
}

impl fmt::Display for AlgorithmName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Parses and applies the shared `--threads N` flag: sets the worker count
/// for both the sweep engine and the linprog dense kernels, returning the
/// effective count. `0` restores the default resolution (the
/// `DSMEC_THREADS` environment variable, then the machine's available
/// parallelism).
///
/// # Errors
///
/// Returns a human-readable message when `spec` is not a number.
pub fn apply_threads(spec: &str) -> Result<usize, String> {
    let n: usize = spec
        .parse()
        .map_err(|e| format!("invalid --threads value {spec:?}: {e}"))?;
    crate::par::set_threads(n);
    Ok(crate::par::threads())
}

/// Resolves the trace output path shared by both binaries — an explicit
/// `--trace PATH` wins, otherwise the `DSMEC_TRACE` environment variable
/// — and enables `mec-obs` recording when one is configured. Returns the
/// path the caller should later pass to [`write_trace`].
///
/// Tracing to a file also switches on the flight recorder (per-span
/// events, trace schema v2), which is what `dsmec trace` analyzes.
/// `DSMEC_TRACE_EVENTS=0` keeps a run aggregates-only — smaller files,
/// e.g. for the committed `bench/baseline.json`; any other value (or
/// unset) records events.
pub fn init_trace(flag: Option<&str>) -> Option<String> {
    let path = flag
        .map(str::to_string)
        .or_else(|| std::env::var("DSMEC_TRACE").ok())
        .filter(|p| !p.is_empty());
    if path.is_some() {
        mec_obs::set_enabled(true);
        let events = std::env::var("DSMEC_TRACE_EVENTS").map_or(true, |v| v != "0");
        mec_obs::set_events(events);
    }
    path
}

/// Writes the current [`mec_obs::snapshot`] (flushing the calling thread
/// first) as pretty JSON to `path`. The schema is documented in
/// DESIGN.md §7.
///
/// # Errors
///
/// Returns a human-readable message when the file cannot be written.
pub fn write_trace(path: &str) -> Result<(), String> {
    write_json(path, &mec_obs::snapshot())
}

/// On-disk bundle tying an assignment to the scenario it was made for.
#[derive(Debug, Clone)]
pub struct AssignmentFile {
    /// Which algorithm produced it.
    pub algorithm: AlgorithmName,
    /// The scenario seed (sanity-checked on load).
    pub scenario_seed: u64,
    /// The decisions.
    pub assignment: Assignment,
    /// Metrics at assignment time.
    pub metrics: Metrics,
}

/// Pretty-prints `value` as JSON into `path`.
///
/// # Errors
///
/// Returns a human-readable message when the file cannot be written.
pub fn write_json<T: djson::ToJson>(path: &str, value: &T) -> Result<(), String> {
    let json = djson::to_string_pretty(value);
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))
}

/// Reads and decodes a JSON file, prefixing every failure — missing file,
/// truncated or malformed JSON, wrong field types, unknown fields — with
/// the path so CLI users see which input was bad.
///
/// # Errors
///
/// Returns a human-readable message for I/O and decode failures.
pub fn read_json<T: djson::FromJson>(path: &str) -> Result<T, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    djson::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// Generates a scenario from CLI-level knobs.
///
/// # Errors
///
/// Propagates generation errors.
pub fn generate_scenario(
    seed: u64,
    stations: usize,
    devices_per_station: usize,
    tasks: usize,
    max_input_kb: f64,
) -> Result<Scenario, AssignError> {
    let mut cfg = ScenarioConfig::paper_defaults(seed);
    cfg.num_stations = stations;
    cfg.devices_per_station = devices_per_station;
    cfg.tasks_total = tasks;
    cfg.max_input_kb = max_input_kb;
    Ok(cfg.generate()?)
}

/// Assigns a scenario with the named algorithm.
///
/// # Errors
///
/// Propagates pricing and algorithm errors.
pub fn assign_scenario(
    scenario: &Scenario,
    algorithm: AlgorithmName,
    seed: u64,
) -> Result<AssignmentFile, AssignError> {
    let costs = crate::pricing::build_cost_table(&scenario.system, &scenario.tasks)?;
    let algo = algorithm.instantiate(seed);
    let assignment = algo.assign(&scenario.system, &scenario.tasks, &costs)?;
    let metrics = evaluate_assignment(&scenario.tasks, &costs, &assignment)?;
    Ok(AssignmentFile {
        algorithm,
        scenario_seed: seed,
        assignment,
        metrics,
    })
}

/// Executes an assignment on the discrete-event simulator.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn simulate_assignment(
    scenario: &Scenario,
    file: &AssignmentFile,
    contention: Contention,
) -> Result<SimReport, AssignError> {
    let exec = file.assignment.to_executable(&scenario.tasks)?;
    Ok(simulate(&scenario.system, &exec, contention)?)
}

/// Resolves the chaos seed shared by both binaries: an explicit
/// `--chaos SEED` wins, otherwise the `DSMEC_CHAOS` environment
/// variable; `None` (no fault injection) when neither is set.
///
/// # Errors
///
/// Returns a human-readable message when the seed is not a `u64`.
pub fn resolve_chaos(flag: Option<&str>) -> Result<Option<u64>, String> {
    let spec = flag
        .map(str::to_string)
        .or_else(|| std::env::var("DSMEC_CHAOS").ok())
        .filter(|s| !s.is_empty());
    match spec {
        None => Ok(None),
        Some(s) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("invalid chaos seed {s:?}: {e}")),
    }
}

/// On-disk bundle of one chaos run: the seed, the generated fault plan
/// (so a failing run can be replayed or shrunk without regenerating),
/// and the repair report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRunFile {
    /// The chaos seed the plan was generated from.
    pub seed: u64,
    /// The fault-injection horizon (fault-free makespan, ≥ 1 s).
    pub horizon: Seconds,
    /// The injected faults.
    pub plan: FaultPlan,
    /// Per-task fates and the ordered fault/repair event log.
    pub report: ChaosRunReport,
}

/// Runs the chaos pipeline on an assignment: simulate fault-free to find
/// the schedule's horizon, generate a seeded [`FaultPlan`] spanning it,
/// then execute under faults with the default [`RepairPolicy`].
///
/// # Errors
///
/// Propagates substrate errors; per-task failures land in the report.
pub fn chaos_assignment(
    scenario: &Scenario,
    file: &AssignmentFile,
    contention: Contention,
    seed: u64,
) -> Result<ChaosRunFile, AssignError> {
    // The horizon must overlap the actual schedule or every generated
    // window would miss it; the fault-free makespan is exactly that
    // (clamped up for degenerate zero-length schedules).
    let baseline = simulate_assignment(scenario, file, contention)?;
    let horizon = Seconds::new(baseline.makespan().value().max(1.0));
    let plan = ChaosConfig::from_seed(seed)
        .generate(&scenario.system, horizon)
        .map_err(AssignError::Mec)?;
    let report = execute_with_repair(
        &scenario.system,
        &scenario.tasks,
        &file.assignment,
        contention,
        &plan,
        &RepairPolicy::default(),
    )?;
    Ok(ChaosRunFile {
        seed,
        horizon,
        plan,
        report,
    })
}

/// Renders a one-screen summary of a chaos run: fault counts, per-fate
/// task tallies, repair-action tallies and the head of the event log.
pub fn render_chaos_report(run: &ChaosRunFile) -> String {
    use std::fmt::Write as _;
    let r = &run.report;
    let mut out = String::new();
    let _ = writeln!(out, "--- chaos (seed {}) ---", run.seed);
    let _ = writeln!(
        out,
        "faults injected:  {} over {:.4} s horizon",
        run.plan.faults().len(),
        run.horizon.value()
    );
    let recovered = r
        .results
        .iter()
        .filter(|t| {
            matches!(
                t.fate,
                TaskFate::Completed {
                    recovered: true,
                    ..
                }
            )
        })
        .count();
    let _ = writeln!(
        out,
        "tasks:            {} completed ({recovered} after repair) / {} failed / {} waves",
        r.completed(),
        r.failed(),
        r.waves
    );
    let count =
        |pred: &dyn Fn(&RepairAction) -> bool| r.events.iter().filter(|e| pred(&e.action)).count();
    let _ = writeln!(
        out,
        "repairs:          {} retries / {} re-sourced / {} reassigned / {} abandoned",
        count(&|a| matches!(a, RepairAction::Retry { .. })),
        count(&|a| matches!(a, RepairAction::Resourced { .. })),
        count(&|a| matches!(a, RepairAction::Reassigned { .. })),
        count(&|a| matches!(
            a,
            RepairAction::Abandoned(
                AbandonReason::RetriesExhausted
                    | AbandonReason::OwnerLost
                    | AbandonReason::DataLost
                    | AbandonReason::NoFeasibleSite
            )
        )),
    );
    let _ = writeln!(out, "chaos energy:     {:.2} J", r.total_energy().value());
    const HEAD: usize = 12;
    for e in r.events.iter().take(HEAD) {
        let _ = writeln!(
            out,
            "  {:>10.4}s  {}  {:?}",
            e.time.value(),
            e.task,
            e.action
        );
    }
    if r.events.len() > HEAD {
        let _ = writeln!(out, "  … {} more events", r.events.len() - HEAD);
    }
    out
}

/// Renders a one-screen report of assignment metrics (and optionally a
/// simulation outcome).
pub fn render_report(file: &AssignmentFile, sim: Option<&SimReport>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let m = &file.metrics;
    let [d, s, c] = m.site_counts;
    let _ = writeln!(out, "algorithm:        {}", file.algorithm);
    let _ = writeln!(out, "total energy:     {:.2} J", m.total_energy.value());
    let _ = writeln!(out, "mean latency:     {:.4} s", m.mean_latency.value());
    let _ = writeln!(out, "unsatisfied rate: {:.2}%", m.unsatisfied_rate * 100.0);
    let _ = writeln!(out, "cancelled tasks:  {}", m.cancelled);
    let _ = writeln!(
        out,
        "placements:       device {d} / station {s} / cloud {c}"
    );
    if let Some(r) = sim {
        let _ = writeln!(out, "--- discrete-event execution ---");
        let _ = writeln!(out, "makespan:         {:.4} s", r.makespan().value());
        let _ = writeln!(out, "sim mean latency: {:.4} s", r.mean_latency().value());
        let _ = writeln!(out, "sim energy:       {:.2} J", r.total_energy().value());
        let _ = writeln!(
            out,
            "deadline misses:  {:.2}%",
            r.deadline_miss_rate() * 100.0
        );
    }
    out
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_enum!(AlgorithmName {
    LpHta,
    Hgos,
    AllToC,
    AllOffload,
    LocalFirst,
    Nash,
    Random,
});
djson::impl_json_struct!(AssignmentFile {
    algorithm,
    scenario_seed,
    assignment,
    metrics,
});
djson::impl_json_struct!(ChaosRunFile {
    seed,
    horizon,
    plan,
    report,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_threads_parses_and_applies() {
        let _guard = crate::par::THREADS_TEST_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        assert_eq!(apply_threads("3"), Ok(3));
        assert!(apply_threads("zero").is_err());
        // Restore the default so other tests see the ambient setting.
        assert!(apply_threads("0").unwrap() >= 1);
    }

    #[test]
    fn algorithm_names_round_trip() {
        for name in AlgorithmName::ALL {
            assert_eq!(AlgorithmName::parse(name.as_str()), Some(name));
        }
        assert_eq!(AlgorithmName::parse("LP-HTA"), Some(AlgorithmName::LpHta));
        assert_eq!(AlgorithmName::parse("cloud"), Some(AlgorithmName::AllToC));
        assert_eq!(AlgorithmName::parse("bogus"), None);
    }

    #[test]
    fn generate_assign_simulate_pipeline() {
        let scenario = generate_scenario(5, 2, 4, 24, 2000.0).unwrap();
        assert_eq!(scenario.tasks.len(), 24);
        let file = assign_scenario(&scenario, AlgorithmName::LpHta, 5).unwrap();
        assert_eq!(file.assignment.len(), 24);
        let sim = simulate_assignment(&scenario, &file, Contention::None).unwrap();
        // Analytic and simulated energies agree.
        let d = (sim.total_energy().value() - file.metrics.total_energy.value()).abs();
        assert!(d < 1e-6 * (1.0 + sim.total_energy().value()));
        let report = render_report(&file, Some(&sim));
        assert!(report.contains("lp-hta"));
        assert!(report.contains("makespan"));
    }

    #[test]
    fn scenario_and_assignment_serialize() {
        let scenario = generate_scenario(6, 1, 3, 9, 1000.0).unwrap();
        let json = djson::to_string(&scenario);
        let back: Scenario = djson::from_str(&json).unwrap();
        assert_eq!(back, scenario);

        let file = assign_scenario(&scenario, AlgorithmName::Hgos, 6).unwrap();
        let json = djson::to_string(&file);
        let back: AssignmentFile = djson::from_str(&json).unwrap();
        assert_eq!(back.assignment, file.assignment);
    }

    #[test]
    fn write_and_read_json_round_trip_through_disk() {
        let scenario = generate_scenario(8, 1, 2, 6, 800.0).unwrap();
        let dir = std::env::temp_dir().join("dsmec-cli-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scenario.json");
        let path = path.to_str().unwrap();
        write_json(path, &scenario).unwrap();
        let back: Scenario = read_json(path).unwrap();
        assert_eq!(back, scenario);
        // Failures carry the path.
        let missing = dir.join("nope.json");
        let err = read_json::<Scenario>(missing.to_str().unwrap()).unwrap_err();
        assert!(err.contains("nope.json"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_chaos_prefers_the_flag_and_validates() {
        // The env fallback is covered by tests/chaos.rs (process-level),
        // keeping this test free of env-var races.
        assert_eq!(resolve_chaos(Some("7")), Ok(Some(7)));
        assert!(resolve_chaos(Some("not-a-seed")).is_err());
    }

    #[test]
    fn chaos_pipeline_is_deterministic_and_round_trips() {
        let scenario = generate_scenario(9, 1, 4, 12, 1500.0).unwrap();
        let file = assign_scenario(&scenario, AlgorithmName::LpHta, 9).unwrap();
        let a = chaos_assignment(&scenario, &file, Contention::Exclusive, 0xC0FFEE).unwrap();
        let b = chaos_assignment(&scenario, &file, Contention::Exclusive, 0xC0FFEE).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.report.results.len(), scenario.tasks.len());
        let json = djson::to_string(&a);
        let back: ChaosRunFile = djson::from_str(&json).unwrap();
        assert_eq!(back, a);
        let text = render_chaos_report(&a);
        assert!(text.contains("chaos (seed 12648430)"), "{text}");
        assert!(text.contains("tasks:"), "{text}");
    }

    #[test]
    fn every_algorithm_runs_through_the_cli_path() {
        let scenario = generate_scenario(7, 2, 3, 18, 1500.0).unwrap();
        for name in AlgorithmName::ALL {
            let file = assign_scenario(&scenario, name, 7).unwrap();
            assert_eq!(file.assignment.len(), 18, "{name}");
        }
    }
}
