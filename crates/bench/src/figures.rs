//! One runner per table and figure of the paper's Section V, plus the
//! ablations called out in DESIGN.md. Every runner returns a [`Figure`]
//! whose series mirror the paper's plot legends, so
//! `cargo run -p mec-bench --bin repro --release` regenerates the entire
//! evaluation as text tables and CSV files.
//!
//! Every sweep fans out through one of two engines: figures whose points
//! share no state use [`sweep_seed_averaged`], the flat (point × seed)
//! fan-out; LP-heavy figures use [`sweep_seed_averaged_chained`], which
//! fans out over seeds and walks each seed's points serially so adjacent
//! points warm-start the revised simplex from the previous point's bases.
//! Per-(point, seed) scenario construction is served by [`crate::cache`];
//! both engines keep the output bit-identical to a serial evaluation.

use crate::cache;
use crate::par::par_map_result;
use crate::runner::{
    eval_algos_warm, paper_comparators, sweep_seed_averaged, sweep_seed_averaged_chained, Algo,
    WarmChain,
};
use crate::table::Figure;
use dsmec_core::dta::{
    divide_balanced, divide_min_devices, divisible_as_holistic, dta_device_shares, exact_min_max,
    rebalance, run_dta, DtaConfig,
};
use dsmec_core::error::AssignError;
use dsmec_core::hta::{
    partial_offload_plan, ExactBnB, HtaAlgorithm, LpHta, NashOffload, OnlineHta, OnlinePolicy,
    RoundingRule, WarmBases,
};
use dsmec_core::metrics::evaluate_assignment;
use linprog::Solver;
use mec_sim::radio::NetworkProfile;
use mec_sim::sim::{simulate, Contention};
use mec_sim::topology::ResultModel;
use mec_sim::units::Bytes;
use mec_sim::workload::{DivisibleScenarioConfig, ScenarioConfig};
use std::time::Instant;

/// Shared knobs of every experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Seeds averaged per data point.
    pub seeds: Vec<u64>,
    /// Shrinks sweeps for CI/integration-test use.
    pub quick: bool,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            seeds: vec![101, 102, 103],
            quick: false,
        }
    }
}

impl ExperimentOptions {
    /// A fast configuration for tests.
    pub fn quick() -> ExperimentOptions {
        ExperimentOptions {
            seeds: vec![101],
            quick: true,
        }
    }

    fn task_sweep(&self) -> Vec<usize> {
        if self.quick {
            vec![40, 100]
        } else {
            (100..=450).step_by(50).collect()
        }
    }

    fn size_sweep(&self) -> Vec<f64> {
        if self.quick {
            vec![1000.0, 3000.0]
        } else {
            vec![1000.0, 2000.0, 3000.0, 4000.0, 5000.0]
        }
    }
}

type FigResult = Result<Figure, AssignError>;

fn holistic_cfg(tasks: usize, max_kb: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_defaults(0);
    cfg.tasks_total = tasks;
    cfg.max_input_kb = max_kb;
    cfg
}

fn divisible_cfg(seed: u64, tasks: usize, max_kb: f64) -> DivisibleScenarioConfig {
    let mut cfg = DivisibleScenarioConfig::paper_defaults(seed);
    cfg.tasks_total = tasks;
    cfg.item_kb = 100.0;
    cfg.items_per_task = (4, ((max_kb / cfg.item_kb) as usize).max(5));
    cfg
}

/// Sweeps task counts for the four Fig. 2–4 algorithms and extracts one
/// metric. Chained: each seed's points run serially so LP-HTA can try to
/// warm-start from the previous point's bases (task-count sweeps change
/// the LP dimensions between points, so most attempts fall back to a cold
/// solve — the chain is still correct, just rarely a hit).
fn sweep_tasks(
    opts: &ExperimentOptions,
    max_kb: f64,
    algos: &[Algo],
    extract: impl Fn(&dsmec_core::metrics::Metrics) -> f64 + Sync,
) -> Result<Vec<Vec<f64>>, AssignError> {
    let points = opts.task_sweep();
    sweep_seed_averaged_chained(
        &points,
        &opts.seeds,
        |&tasks, seed, chain: &mut WarmChain| {
            eval_algos_warm(&holistic_cfg(tasks, max_kb), seed, algos, chain, &extract)
        },
    )
}

/// Sweeps input sizes at a fixed task count. Chained: the LP shape is
/// constant across the size sweep, so adjacent points warm-start.
fn sweep_sizes(
    opts: &ExperimentOptions,
    tasks: usize,
    algos: &[Algo],
    extract: impl Fn(&dsmec_core::metrics::Metrics) -> f64 + Sync,
) -> Result<Vec<Vec<f64>>, AssignError> {
    let points = opts.size_sweep();
    let rows = sweep_seed_averaged_chained(&points, &opts.seeds, |&kb, seed, chain| {
        eval_algos_warm(&holistic_cfg(100, kb), seed, algos, chain, &extract)
    });
    let _ = tasks;
    rows
}

fn assemble(
    id: &str,
    title: &str,
    x_label: &str,
    y_label: &str,
    ticks: Vec<String>,
    names: &[&str],
    rows: Vec<Vec<f64>>,
) -> Figure {
    let mut fig = Figure::new(id, title, x_label, y_label, ticks);
    for (k, name) in names.iter().enumerate() {
        fig.push_series(name, rows.iter().map(|r| r[k]).collect());
    }
    fig
}

/// Fig. 2(a): total energy vs number of tasks (100→450, 3000 kB max).
pub fn fig2a(opts: &ExperimentOptions) -> FigResult {
    let algos = paper_comparators();
    let rows = sweep_tasks(opts, 3000.0, &algos, |m| m.total_energy.value())?;
    Ok(assemble(
        "fig2a",
        "Energy cost vs number of tasks",
        "tasks",
        "total energy (J)",
        opts.task_sweep().iter().map(|t| t.to_string()).collect(),
        &["LP-HTA", "HGOS", "AllToC", "AllOffload"],
        rows,
    ))
}

/// Fig. 2(b): total energy vs max input size (1000→5000 kB, 100 tasks).
pub fn fig2b(opts: &ExperimentOptions) -> FigResult {
    let algos = paper_comparators();
    let rows = sweep_sizes(opts, 100, &algos, |m| m.total_energy.value())?;
    Ok(assemble(
        "fig2b",
        "Energy cost vs size of input data",
        "max input (kB)",
        "total energy (J)",
        opts.size_sweep()
            .iter()
            .map(|s| format!("{s:.0}"))
            .collect(),
        &["LP-HTA", "HGOS", "AllToC", "AllOffload"],
        rows,
    ))
}

/// Fig. 3: unsatisfied-task rate vs number of tasks (LP-HTA, HGOS,
/// AllOffload; AllToC is off the chart in the paper too).
pub fn fig3(opts: &ExperimentOptions) -> FigResult {
    let algos = vec![
        Algo::LpHta(LpHta::paper()),
        Algo::Hgos(Default::default()),
        Algo::AllOffload,
    ];
    // Tighter deadlines than the default so obliviousness is visible.
    let points = opts.task_sweep();
    let rows = sweep_seed_averaged_chained(&points, &opts.seeds, |&tasks, seed, chain| {
        let mut cfg = holistic_cfg(tasks, 3000.0);
        cfg.deadline_factor_range = (1.0, 2.0);
        eval_algos_warm(&cfg, seed, &algos, chain, |m| m.unsatisfied_rate)
    })?;
    Ok(assemble(
        "fig3",
        "Unsatisfied task rate vs number of tasks",
        "tasks",
        "unsatisfied rate",
        points.iter().map(|t| t.to_string()).collect(),
        &["LP-HTA", "HGOS", "AllOffload"],
        rows,
    ))
}

/// Fig. 4(a): average latency vs number of tasks.
pub fn fig4a(opts: &ExperimentOptions) -> FigResult {
    let algos = paper_comparators();
    let rows = sweep_tasks(opts, 3000.0, &algos, |m| m.mean_latency.value())?;
    Ok(assemble(
        "fig4a",
        "Average latency vs number of tasks",
        "tasks",
        "average latency (s)",
        opts.task_sweep().iter().map(|t| t.to_string()).collect(),
        &["LP-HTA", "HGOS", "AllToC", "AllOffload"],
        rows,
    ))
}

/// Fig. 4(b): average latency vs max input size.
pub fn fig4b(opts: &ExperimentOptions) -> FigResult {
    let algos = paper_comparators();
    let rows = sweep_sizes(opts, 100, &algos, |m| m.mean_latency.value())?;
    Ok(assemble(
        "fig4b",
        "Average latency vs size of input data",
        "max input (kB)",
        "average latency (s)",
        opts.size_sweep()
            .iter()
            .map(|s| format!("{s:.0}"))
            .collect(),
        &["LP-HTA", "HGOS", "AllToC", "AllOffload"],
        rows,
    ))
}

/// The three Fig. 5 series on one divisible scenario configuration.
fn dta_energy_point(cfg: &DivisibleScenarioConfig) -> Result<[f64; 3], AssignError> {
    let scenario = cfg.generate()?;
    // LP-HTA on the raw-data (holistic) version of the same workload.
    let holistic = divisible_as_holistic(&scenario)?;
    let costs = crate::pricing::build_cost_table(&scenario.system, &holistic)?;
    let a = LpHta::paper().assign(&scenario.system, &holistic, &costs)?;
    let lp = evaluate_assignment(&holistic, &costs, &a)?
        .total_energy
        .value();
    let w = run_dta(&scenario, DtaConfig::workload())?
        .total_energy
        .value();
    let n = run_dta(&scenario, DtaConfig::number())?
        .total_energy
        .value();
    Ok([lp, w, n])
}

/// Fig. 5(a): energy of LP-HTA vs DTA-Workload vs DTA-Number as the
/// number of (divisible) tasks grows.
pub fn fig5a(opts: &ExperimentOptions) -> FigResult {
    let points = opts.task_sweep();
    let rows = sweep_seed_averaged(&points, &opts.seeds, |&tasks, seed| {
        dta_energy_point(&divisible_cfg(seed, tasks, 3000.0)).map(|p| p.to_vec())
    })?;
    Ok(assemble(
        "fig5a",
        "Energy: holistic LP-HTA vs divisible DTA (by task count)",
        "tasks",
        "total energy (J)",
        points.iter().map(|t| t.to_string()).collect(),
        &["LP-HTA", "DTA-Workload", "DTA-Number"],
        rows,
    ))
}

/// Fig. 5(b): energy as the result size shrinks
/// (0.4X → 0.2X → 0.1X → 0.05X → constant).
pub fn fig5b(opts: &ExperimentOptions) -> FigResult {
    let models: Vec<(String, ResultModel)> = vec![
        ("0.4X".into(), ResultModel::Proportional(0.4)),
        ("0.2X".into(), ResultModel::Proportional(0.2)),
        ("0.1X".into(), ResultModel::Proportional(0.1)),
        ("0.05X".into(), ResultModel::Proportional(0.05)),
        ("const".into(), ResultModel::Constant(Bytes::from_kb(10.0))),
    ];
    let tasks = if opts.quick { 30 } else { 100 };
    let rows = sweep_seed_averaged(&models, &opts.seeds, |(_, model), seed| {
        let mut cfg = divisible_cfg(seed, tasks, 3000.0);
        cfg.base.result_model = *model;
        dta_energy_point(&cfg).map(|p| p.to_vec())
    })?;
    Ok(assemble(
        "fig5b",
        "Energy vs result size (100 divisible tasks)",
        "result size",
        "total energy (J)",
        models.iter().map(|(n, _)| n.clone()).collect(),
        &["LP-HTA", "DTA-Workload", "DTA-Number"],
        rows,
    ))
}

/// Fig. 6(a): processing time of the two divisions as input grows
/// (1200→2000 kB, 200 tasks).
pub fn fig6a(opts: &ExperimentOptions) -> FigResult {
    let points: Vec<f64> = if opts.quick {
        vec![1200.0, 2000.0]
    } else {
        vec![1200.0, 1400.0, 1600.0, 1800.0, 2000.0]
    };
    let tasks = if opts.quick { 40 } else { 200 };
    let rows = sweep_seed_averaged(&points, &opts.seeds, |&kb, seed| {
        let s = divisible_cfg(seed, tasks, kb).generate()?;
        let required = s.required_universe();
        let w = divide_balanced(&s.universe, &required)?;
        let n = divide_min_devices(&s.universe, &required)?;
        Ok(vec![
            w.processing_time(&s.system, &s.universe).value(),
            n.processing_time(&s.system, &s.universe).value(),
        ])
    })?;
    Ok(assemble(
        "fig6a",
        "Processing time: DTA-Workload vs DTA-Number",
        "max input (kB)",
        "processing time (s)",
        points.iter().map(|p| format!("{p:.0}")).collect(),
        &["DTA-Workload", "DTA-Number"],
        rows,
    ))
}

/// Fig. 6(b): involved devices as tasks grow (100→900, 2000 kB).
pub fn fig6b(opts: &ExperimentOptions) -> FigResult {
    let points: Vec<usize> = if opts.quick {
        vec![100, 300]
    } else {
        (100..=900).step_by(100).collect()
    };
    let rows = sweep_seed_averaged(&points, &opts.seeds, |&tasks, seed| {
        let s = divisible_cfg(seed, tasks, 2000.0).generate()?;
        let required = s.required_universe();
        let w = divide_balanced(&s.universe, &required)?;
        let n = divide_min_devices(&s.universe, &required)?;
        Ok(vec![
            w.involved_devices() as f64,
            n.involved_devices() as f64,
        ])
    })?;
    Ok(assemble(
        "fig6b",
        "Involved mobile devices: DTA-Workload vs DTA-Number",
        "tasks",
        "involved devices",
        points.iter().map(|p| p.to_string()).collect(),
        &["DTA-Workload", "DTA-Number"],
        rows,
    ))
}

/// Table I: the wireless-network parameters, echoed from the model so the
/// reproduction's inputs are auditable.
pub fn table1(_opts: &ExperimentOptions) -> FigResult {
    let mut fig = Figure::new(
        "table1",
        "Parameters of wireless networks (Table I)",
        "network",
        "value",
        NetworkProfile::ALL
            .iter()
            .map(|p| p.name().to_string())
            .collect(),
    );
    let links: Vec<_> = NetworkProfile::ALL.iter().map(|p| p.link()).collect();
    fig.push_series(
        "download (Mbps)",
        links.iter().map(|l| l.download.as_mbps()).collect(),
    );
    fig.push_series(
        "upload (Mbps)",
        links.iter().map(|l| l.upload.as_mbps()).collect(),
    );
    fig.push_series(
        "P^T (W)",
        links.iter().map(|l| l.tx_power.value()).collect(),
    );
    fig.push_series(
        "P^R (W)",
        links.iter().map(|l| l.rx_power.value()).collect(),
    );
    Ok(fig)
}

/// A3: empirical LP-HTA approximation ratio against the exact optimum on
/// small instances, with the self-reported certificate alongside.
pub fn ratio_check(opts: &ExperimentOptions) -> FigResult {
    let seeds: Vec<u64> = if opts.quick {
        vec![201, 202]
    } else {
        (201..209).collect()
    };
    let rows = par_map_result(&seeds, |&seed| -> Result<Vec<f64>, AssignError> {
        let mut cfg = ScenarioConfig::paper_defaults(seed);
        cfg.num_stations = 2;
        cfg.devices_per_station = 3;
        cfg.tasks_total = 12;
        let cached = cache::scenario_with_costs(&cfg)?;
        let (s, costs) = (&cached.scenario, &cached.costs);
        let exact = ExactBnB::default().solve(&s.system, &s.tasks, costs)?;
        let (a, report) = LpHta::paper()
            .without_fast_path()
            .assign_with_report(&s.system, &s.tasks, costs)?;
        let m = evaluate_assignment(&s.tasks, costs, &a)?;
        let opt = exact.map(|(_, e)| e).unwrap_or(f64::NAN);
        let ratio = if a.cancelled().is_empty() && opt.is_finite() {
            m.total_energy.value() / opt
        } else {
            f64::NAN
        };
        Ok(vec![m.total_energy.value(), opt, ratio, report.ratio_bound])
    })?;
    Ok(assemble(
        "ratio_check",
        "Empirical approximation ratio vs certificate (small instances)",
        "seed",
        "energy (J) / ratio",
        seeds.iter().map(|s| s.to_string()).collect(),
        &[
            "LP-HTA energy",
            "optimal energy",
            "empirical ratio",
            "certificate",
        ],
        rows,
    ))
}

/// A1: LP backend ablation — energy parity and wall time of the interior
/// point vs the simplex inside LP-HTA (fast path disabled). The `time ms`
/// series are wall-clock measurements and are exempt from the
/// serial-vs-parallel bit-identical check.
pub fn ablate_lp_backend(opts: &ExperimentOptions) -> FigResult {
    let points = if opts.quick {
        vec![40usize]
    } else {
        vec![100, 200, 300]
    };
    let rows = sweep_seed_averaged(&points, &opts.seeds, |&tasks, seed| {
        let mut cfg = holistic_cfg(tasks, 3000.0);
        cfg.seed = seed;
        let cached = cache::scenario_with_costs(&cfg)?;
        let (s, costs) = (&cached.scenario, &cached.costs);
        let mut out = vec![0.0; 4];
        for (k, solver) in [Solver::InteriorPoint, Solver::Simplex].iter().enumerate() {
            let algo = LpHta {
                solver: *solver,
                ..LpHta::paper().without_fast_path()
            };
            let start = Instant::now();
            let a = algo.assign(&s.system, &s.tasks, costs)?;
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            let m = evaluate_assignment(&s.tasks, costs, &a)?;
            out[k] = m.total_energy.value();
            out[2 + k] = elapsed;
        }
        Ok(out)
    })?;
    Ok(assemble(
        "ablate_lp_backend",
        "LP backend ablation (LP-HTA, fast path off)",
        "tasks",
        "energy (J) / time (ms)",
        points.iter().map(|p| p.to_string()).collect(),
        &[
            "energy (IPM)",
            "energy (simplex)",
            "time ms (IPM)",
            "time ms (simplex)",
        ],
        rows,
    ))
}

/// A2: rounding-rule ablation — arg-max vs randomized rounding. Both
/// rules round the *same* cached LP relaxation (one solve per point and
/// seed instead of one per rule).
pub fn ablate_rounding(opts: &ExperimentOptions) -> FigResult {
    let points = if opts.quick {
        vec![40usize]
    } else {
        vec![100, 200, 300]
    };
    let rows = sweep_seed_averaged(&points, &opts.seeds, |&tasks, seed| {
        let mut cfg = holistic_cfg(tasks, 3000.0);
        cfg.seed = seed;
        let cached = cache::scenario_with_costs(&cfg)?;
        let (s, costs) = (&cached.scenario, &cached.costs);
        let mut out = vec![0.0; 2];
        for (k, rounding) in [
            RoundingRule::ArgMax,
            RoundingRule::Randomized {
                seed: seed ^ 0xDEAD,
            },
        ]
        .iter()
        .enumerate()
        {
            let algo = LpHta {
                rounding: *rounding,
                ..LpHta::paper().without_fast_path()
            };
            let frac = cache::lp_relaxation(&cfg, &algo, &cached)?;
            let (a, _) = algo.round_with(&s.system, &s.tasks, costs, &frac)?;
            let m = evaluate_assignment(&s.tasks, costs, &a)?;
            out[k] = m.total_energy.value();
        }
        Ok(out)
    })?;
    Ok(assemble(
        "ablate_rounding",
        "Rounding-rule ablation (LP-HTA)",
        "tasks",
        "total energy (J)",
        points.iter().map(|p| p.to_string()).collect(),
        &["arg-max", "randomized"],
        rows,
    ))
}

/// A4: rebalancing extension — max share of greedy DTA-Workload, the
/// local-search refinement, and (small instances) the exact optimum.
pub fn ablate_rebalance(opts: &ExperimentOptions) -> FigResult {
    let points: Vec<usize> = if opts.quick {
        vec![8, 12]
    } else {
        vec![8, 10, 12, 14]
    };
    let rows = sweep_seed_averaged(&points, &opts.seeds, |&items, seed| {
        let mut cfg = DivisibleScenarioConfig::paper_defaults(seed);
        cfg.base.num_stations = 1;
        cfg.base.devices_per_station = 5;
        cfg.num_items = items;
        cfg.tasks_total = 6;
        cfg.items_per_task = (2, items.min(6));
        let s = cfg.generate()?;
        let required = s.required_universe();
        let greedy = divide_balanced(&s.universe, &required)?;
        let refined = rebalance(&s.universe, &greedy)?;
        let exact = exact_min_max(&s.universe, &required, 16)?;
        Ok(vec![
            greedy.max_share_len() as f64,
            refined.max_share_len() as f64,
            exact.max_share_len() as f64,
        ])
    })?;
    Ok(assemble(
        "ablate_rebalance",
        "Max share: greedy vs rebalanced vs exact (small universes)",
        "universe items",
        "max share (items)",
        points.iter().map(|p| p.to_string()).collect(),
        &["greedy", "rebalanced", "exact"],
        rows,
    ))
}

/// A5: contention ablation — analytic latency vs the discrete-event
/// executor with exclusive FIFO resources, on LP-HTA's assignment.
pub fn ablate_contention(opts: &ExperimentOptions) -> FigResult {
    let points = if opts.quick {
        vec![20usize, 40]
    } else {
        vec![50, 100, 150, 200]
    };
    let rows = sweep_seed_averaged(&points, &opts.seeds, |&tasks, seed| {
        let mut cfg = holistic_cfg(tasks, 3000.0);
        cfg.seed = seed;
        let cached = cache::scenario_with_costs(&cfg)?;
        let (s, costs) = (&cached.scenario, &cached.costs);
        let a = LpHta::paper().assign(&s.system, &s.tasks, costs)?;
        let exec = a.to_executable(&s.tasks)?;
        let free = simulate(&s.system, &exec, Contention::None)?;
        let queued = simulate(&s.system, &exec, Contention::Exclusive)?;
        Ok(vec![
            free.mean_latency().value(),
            queued.mean_latency().value(),
            queued.makespan().value(),
        ])
    })?;
    Ok(assemble(
        "ablate_contention",
        "Analytic vs queued execution of LP-HTA assignments",
        "tasks",
        "seconds",
        points.iter().map(|p| p.to_string()).collect(),
        &[
            "analytic mean latency",
            "queued mean latency",
            "queued makespan",
        ],
        rows,
    ))
}

/// E-NASH (extension): the decentralized offloading game of refs \[8\]/\[13\]
/// against LP-HTA and HGOS — energy and unsatisfied rate side by side.
/// Each algorithm now runs once per (point, seed) and contributes both
/// metrics (the previous driver ran the whole comparator set twice).
pub fn ext_nash(opts: &ExperimentOptions) -> FigResult {
    let algos = vec![
        Algo::LpHta(LpHta::paper()),
        Algo::Hgos(Default::default()),
        Algo::Nash(NashOffload::default()),
        Algo::LocalFirst,
    ];
    let points = opts.task_sweep();
    let rows = sweep_seed_averaged(&points, &opts.seeds, |&tasks, seed| {
        let mut cfg = holistic_cfg(tasks, 3000.0);
        cfg.seed = seed;
        let cached = cache::scenario_with_costs(&cfg)?;
        let mut energy = Vec::with_capacity(algos.len());
        let mut unsat = Vec::with_capacity(algos.len());
        for algo in &algos {
            let m = algo.run(&cached.scenario, &cached.costs)?;
            energy.push(m.total_energy.value());
            unsat.push(m.unsatisfied_rate);
        }
        energy.extend(unsat);
        Ok(energy)
    })?;
    Ok(assemble(
        "ext_nash",
        "Game-theoretic comparator (extension): energy and unsatisfied rate",
        "tasks",
        "energy (J) / rate",
        points.iter().map(|p| p.to_string()).collect(),
        &[
            "E LP-HTA",
            "E HGOS",
            "E Nash",
            "E LocalFirst",
            "unsat LP-HTA",
            "unsat HGOS",
            "unsat Nash",
            "unsat LocalFirst",
        ],
        rows,
    ))
}

/// X2 (extension): battery fairness — the paper motivates DTA-Number
/// with "saving energy for the majority of mobile devices"; this makes
/// that measurable with per-device attribution and a 5 kJ battery fleet.
pub fn ext_battery(opts: &ExperimentOptions) -> FigResult {
    use mec_sim::battery::{attribute_energy, BatteryFleet, DeviceShare};
    let tasks = if opts.quick { 40 } else { 150 };
    let strategies = ["LP-HTA raw", "DTA-Workload", "DTA-Number"];
    // One flat 3×3 row per seed (strategy-major), averaged by the sweep
    // engine; seeds fan out in parallel.
    let flat = sweep_seed_averaged(&[()], &opts.seeds, |_, seed| {
        let s = divisible_cfg(seed, tasks, 2000.0).generate()?;
        let capacity = mec_sim::units::Joules::new(5000.0);

        // One round's per-device shares for each strategy.
        let mut per_strategy: Vec<Vec<DeviceShare>> = Vec::new();
        // LP-HTA over the raw (holistic) workload.
        let holistic = divisible_as_holistic(&s)?;
        let costs = crate::pricing::build_cost_table(&s.system, &holistic)?;
        let a = LpHta::paper().assign(&s.system, &holistic, &costs)?;
        let mut shares: Vec<DeviceShare> = Vec::new();
        for (idx, task) in holistic.iter().enumerate() {
            if let Some(site) = a.decision(idx).site() {
                for sh in attribute_energy(&s.system, task, site)? {
                    match shares.iter_mut().find(|x| x.device == sh.device) {
                        Some(x) => x.energy += sh.energy,
                        None => shares.push(sh),
                    }
                }
            }
        }
        per_strategy.push(shares);
        for cfg in [DtaConfig::workload(), DtaConfig::number()] {
            let report = run_dta(&s, cfg)?;
            per_strategy.push(dta_device_shares(&s, &report, cfg.descriptor_bytes)?);
        }

        let mut row = Vec::with_capacity(strategies.len() * 3);
        for shares in &per_strategy {
            // Rounds until the first battery dies under repeated rounds.
            let mut fleet = BatteryFleet::uniform(&s.system, capacity)?;
            let mut rounds = 0usize;
            while fleet.depleted().is_empty() && rounds < 1_000_000 {
                fleet.drain(shares);
                rounds += 1;
            }
            row.push(rounds as f64);
            // Devices barely touched in one round (< 0.1% drain).
            let mut fresh = BatteryFleet::uniform(&s.system, capacity)?;
            fresh.drain(shares);
            row.push(fresh.devices_below_drain(0.001) as f64);
            // Largest single-device drain per round (J).
            row.push(
                shares
                    .iter()
                    .map(|sh| sh.energy.value())
                    .fold(0.0f64, f64::max),
            );
        }
        Ok(row)
    })?
    .remove(0);
    let rows: Vec<Vec<f64>> = flat.chunks(3).map(|c| c.to_vec()).collect();
    Ok(assemble(
        "ext_battery",
        "Battery fairness (extension): per-device drain by strategy",
        "strategy",
        "rounds / devices / J",
        strategies.iter().map(|s| s.to_string()).collect(),
        &[
            "rounds to first depletion",
            "devices <0.1% drained",
            "max drain per round (J)",
        ],
        rows,
    ))
}

/// X3 (extension): the quasi-static assumption's price. A one-shot
/// epoch-0 LP-HTA assignment is evaluated against drifting topologies
/// ("stale") vs re-running LP-HTA each epoch ("fresh").
pub fn ext_mobility(opts: &ExperimentOptions) -> FigResult {
    use mec_sim::mobility::MobilityConfig;
    let probs: Vec<f64> = if opts.quick {
        vec![0.0, 0.3]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.5]
    };
    let rows = sweep_seed_averaged(&probs, &opts.seeds, |&p, seed| {
        let mut cfg = MobilityConfig::paper_defaults(seed);
        // Capacity pressure + tight deadlines: staleness only has a
        // price when the optimal placement actually depends on the
        // topology.
        cfg.base.tasks_total = if opts.quick { 120 } else { 250 };
        cfg.base.device_resource_mb = 6.0;
        cfg.base.deadline_factor_range = (1.0, 1.6);
        cfg.move_prob = p;
        let dynamic = cfg.generate()?;
        // Epoch-0 assignment, reused stale across epochs.
        let costs0 = crate::pricing::build_cost_table(&dynamic.epochs[0], &dynamic.tasks)?;
        let stale = LpHta::paper().assign(&dynamic.epochs[0], &dynamic.tasks, &costs0)?;
        let epochs = dynamic.epochs.len() as f64;
        let mut acc = vec![0.0; 4];
        // Epochs are adjacent instances of the same shape: chain the
        // revised simplex's bases so each re-plan warm-starts from the
        // previous epoch's optimum.
        let mut warm = WarmBases::new();
        for (e, system) in dynamic.epochs.iter().enumerate() {
            let costs = crate::pricing::build_cost_table(system, &dynamic.tasks)?;
            let stale_m = evaluate_assignment(&dynamic.tasks, &costs, &stale)?;
            let (fresh, _) = LpHta::paper().assign_with_report_warm(
                system,
                &dynamic.tasks,
                &costs,
                &mut warm,
            )?;
            let fresh_m = evaluate_assignment(&dynamic.tasks, &costs, &fresh)?;
            acc[0] += fresh_m.total_energy.value() / epochs;
            acc[1] += (stale_m.total_energy.value() - fresh_m.total_energy.value()) / epochs;
            acc[2] += (stale_m.unsatisfied_rate - fresh_m.unsatisfied_rate) / epochs;
            acc[3] += dynamic.churn(0, e)? / epochs;
        }
        Ok(acc)
    })?;
    Ok(assemble(
        "ext_mobility",
        "Quasi-static assumption (extension): stale vs per-epoch LP-HTA",
        "move probability / epoch",
        "energy (J) / rate",
        probs.iter().map(|p| format!("{p:.1}")).collect(),
        &[
            "E fresh",
            "dE stale-fresh",
            "dUnsat stale-fresh",
            "mean churn vs epoch 0",
        ],
        rows,
    ))
}

/// X4 (extension): online arrivals — empirical competitive ratio of the
/// greedy and reserve online controllers against offline LP-HTA.
pub fn ext_online(opts: &ExperimentOptions) -> FigResult {
    let points = if opts.quick {
        vec![60usize]
    } else {
        vec![100, 200, 300, 400]
    };
    let rows = sweep_seed_averaged(&points, &opts.seeds, |&tasks, seed| {
        let mut cfg = holistic_cfg(tasks, 3000.0);
        cfg.seed = seed;
        cfg.device_resource_mb = 6.0; // pressure makes policies differ
        let cached = cache::scenario_with_costs(&cfg)?;
        let (s, costs) = (&cached.scenario, &cached.costs);
        let mut acc = vec![0.0; 6];
        let algos: [(&dyn HtaAlgorithm, usize); 3] = [
            (
                &OnlineHta {
                    policy: OnlinePolicy::Greedy,
                },
                0,
            ),
            (
                &OnlineHta {
                    policy: OnlinePolicy::Reserve { reserve: 0.2 },
                },
                1,
            ),
            (&LpHta::paper(), 2),
        ];
        for (algo, k) in algos {
            let a = algo.assign(&s.system, &s.tasks, costs)?;
            let m = evaluate_assignment(&s.tasks, costs, &a)?;
            // Energy per *satisfied* task: cancellation-fair.
            let satisfied = (tasks as f64) * (1.0 - m.unsatisfied_rate);
            acc[k] = m.total_energy.value() / satisfied.max(1.0);
            acc[3 + k] = m.unsatisfied_rate;
        }
        Ok(acc)
    })?;
    Ok(assemble(
        "ext_online",
        "Online arrivals (extension): greedy / reserve vs offline LP-HTA",
        "tasks",
        "energy (J) / rate",
        points.iter().map(|p| p.to_string()).collect(),
        &[
            "E/satisfied online-greedy",
            "E/satisfied online-reserve",
            "E/satisfied offline",
            "unsat online-greedy",
            "unsat online-reserve",
            "unsat offline",
        ],
        rows,
    ))
}

/// X5 (extension): what the binary restriction costs — fractional
/// partial offloading (refs \[25\]/\[26\]) vs binary LP-HTA under
/// progressively tighter deadlines.
pub fn ext_partial(opts: &ExperimentOptions) -> FigResult {
    let factors: Vec<(f64, f64)> = if opts.quick {
        vec![(1.0, 1.2), (1.0, 2.0)]
    } else {
        vec![(1.0, 1.1), (1.0, 1.3), (1.0, 1.6), (1.0, 2.0), (1.0, 3.0)]
    };
    let tasks = if opts.quick { 50 } else { 120 };
    // Chained over the deadline sweep: the LP shape is constant, so each
    // seed's successive points warm-start LP-HTA's relaxations.
    let rows = sweep_seed_averaged_chained(&factors, &opts.seeds, |&(lo, hi), seed, warm| {
        let mut cfg = holistic_cfg(tasks, 3000.0);
        cfg.seed = seed;
        cfg.deadline_factor_range = (lo, hi);
        let cached = cache::scenario_with_costs(&cfg)?;
        let (s, costs) = (&cached.scenario, &cached.costs);
        let (a, _) = LpHta::paper().assign_with_report_warm(&s.system, &s.tasks, costs, warm)?;
        let binary = evaluate_assignment(&s.tasks, costs, &a)?;
        let plan = partial_offload_plan(&s.system, &s.tasks)?;
        Ok(vec![
            binary.total_energy.value(),
            plan.total_energy().value(),
            binary.unsatisfied_rate,
            plan.unsatisfied_rate(),
        ])
    })?;
    Ok(assemble(
        "ext_partial",
        "Binary vs fractional offloading (extension) under deadline pressure",
        "deadline slack (hi)",
        "energy (J) / rate",
        factors.iter().map(|(_, hi)| format!("{hi:.1}")).collect(),
        &[
            "E binary LP-HTA",
            "E partial split",
            "unsat binary",
            "unsat partial",
        ],
        rows,
    ))
}

/// X6 (extension): open-loop arrivals — how much of the queueing pain of
/// A5 comes from the batch (all-at-t=0) release the paper's model implies.
/// Poisson arrivals at decreasing rates relieve contention toward the
/// analytic sojourns.
pub fn ext_arrivals(opts: &ExperimentOptions) -> FigResult {
    use mec_sim::sim::simulate_with_arrivals;
    use mec_sim::workload::poisson_arrivals;
    let rates: Vec<f64> = if opts.quick {
        vec![5.0, 0.5]
    } else {
        vec![20.0, 10.0, 5.0, 2.0, 1.0, 0.5]
    };
    let tasks = if opts.quick { 40 } else { 100 };
    let rows = sweep_seed_averaged(&rates, &opts.seeds, |&rate, seed| {
        let mut cfg = holistic_cfg(tasks, 3000.0);
        cfg.seed = seed;
        let cached = cache::scenario_with_costs(&cfg)?;
        let (s, costs) = (&cached.scenario, &cached.costs);
        let a = LpHta::paper().assign(&s.system, &s.tasks, costs)?;
        let exec = a.to_executable(&s.tasks)?;
        let free = simulate(&s.system, &exec, Contention::None)?;
        let batch = simulate(&s.system, &exec, Contention::Exclusive)?;
        let arrivals = poisson_arrivals(seed, exec.len(), rate)?;
        let timed: Vec<_> = exec
            .iter()
            .zip(arrivals.iter())
            .map(|((t, site), at)| (*t, *site, *at))
            .collect();
        let open = simulate_with_arrivals(&s.system, &timed, Contention::Exclusive)?;
        Ok(vec![
            free.mean_latency().value(),
            batch.mean_latency().value(),
            open.mean_latency().value(),
        ])
    })?;
    Ok(assemble(
        "ext_arrivals",
        "Open-loop arrivals (extension): batch vs Poisson release",
        "arrival rate (tasks/s)",
        "mean sojourn (s)",
        rates.iter().map(|r| format!("{r}")).collect(),
        &["analytic", "batch + contention", "poisson + contention"],
        rows,
    ))
}

/// Scale guard (ROADMAP item 5): a 10⁵-device fleet priced end-to-end
/// plus a 10⁵-device shared-data universe divided by both DTA greedy
/// rules. Every series is structural (counts, not wall times), so the CSV
/// is bit-identical run to run and across thread counts; the timing
/// signal lives in the `cost/build` and `dta/division` spans this run
/// dominates, which `dsmec trace` gates against `bench/baseline.json`.
pub fn scale(opts: &ExperimentOptions) -> FigResult {
    let seed = opts.seeds.first().copied().unwrap_or(424_242);
    // The fleet size is the point: quick mode trims the divisible task
    // count, never the 200 × 500 = 10⁵ devices.
    let div_tasks = if opts.quick { 1200 } else { 2000 };

    let mut cfg = ScenarioConfig::paper_defaults(seed);
    cfg.num_stations = 200;
    cfg.devices_per_station = 500;
    cfg.tasks_total = 100_000;
    let s = cfg.generate()?;
    let costs = crate::pricing::build_cost_table(&s.system, &s.tasks)?;
    let feasible = s
        .tasks
        .iter()
        .enumerate()
        .filter(|(i, t)| costs.task(*i).cheapest_feasible(t.deadline).is_some())
        .count();

    let mut dcfg = DivisibleScenarioConfig::paper_defaults(seed);
    dcfg.base.num_stations = 200;
    dcfg.base.devices_per_station = 500;
    dcfg.num_items = 2048;
    dcfg.tasks_total = div_tasks;
    dcfg.items_per_task = (4, 20);
    let d = dcfg.generate()?;
    let required = d.required_universe();
    let w = divide_balanced(&d.universe, &required)?;
    let n = divide_min_devices(&d.universe, &required)?;

    let devices = s.system.num_devices();
    Ok(assemble(
        "scale",
        "10^5-device scale guard: cost pricing + DTA division",
        "devices",
        "count",
        vec![devices.to_string()],
        &[
            "priced tasks",
            "deadline-feasible tasks",
            "required items",
            "DTA-Workload devices",
            "DTA-Number devices",
            "DTA-Workload max share",
        ],
        vec![vec![
            costs.len() as f64,
            feasible as f64,
            required.len() as f64,
            w.involved_devices() as f64,
            n.involved_devices() as f64,
            w.max_share_len() as f64,
        ]],
    ))
}

/// Experiment registry consumed by the `repro` binary and the tests.
pub type Runner = fn(&ExperimentOptions) -> FigResult;

/// Every reproducible experiment, in paper order.
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("table1", table1 as Runner),
        ("fig2a", fig2a as Runner),
        ("fig2b", fig2b as Runner),
        ("fig3", fig3 as Runner),
        ("fig4a", fig4a as Runner),
        ("fig4b", fig4b as Runner),
        ("fig5a", fig5a as Runner),
        ("fig5b", fig5b as Runner),
        ("fig6a", fig6a as Runner),
        ("fig6b", fig6b as Runner),
        ("ratio_check", ratio_check as Runner),
        ("ablate_lp_backend", ablate_lp_backend as Runner),
        ("ablate_rounding", ablate_rounding as Runner),
        ("ablate_rebalance", ablate_rebalance as Runner),
        ("ablate_contention", ablate_contention as Runner),
        ("ext_nash", ext_nash as Runner),
        ("ext_battery", ext_battery as Runner),
        ("ext_mobility", ext_mobility as Runner),
        ("ext_online", ext_online as Runner),
        ("ext_partial", ext_partial as Runner),
        ("ext_arrivals", ext_arrivals as Runner),
        ("scale", scale as Runner),
    ]
}

/// The `experiment/<id>` span name for a registry id — static names so
/// the flight recorder stays allocation-free on the hot path. The span
/// wraps one experiment run and parents its `sweep/point` spans, giving
/// traces the sweep → experiment → point → algorithm chain.
#[must_use]
pub fn experiment_span(id: &str) -> &'static str {
    match id {
        "table1" => "experiment/table1",
        "fig2a" => "experiment/fig2a",
        "fig2b" => "experiment/fig2b",
        "fig3" => "experiment/fig3",
        "fig4a" => "experiment/fig4a",
        "fig4b" => "experiment/fig4b",
        "fig5a" => "experiment/fig5a",
        "fig5b" => "experiment/fig5b",
        "fig6a" => "experiment/fig6a",
        "fig6b" => "experiment/fig6b",
        "ratio_check" => "experiment/ratio_check",
        "ablate_lp_backend" => "experiment/ablate_lp_backend",
        "ablate_rounding" => "experiment/ablate_rounding",
        "ablate_rebalance" => "experiment/ablate_rebalance",
        "ablate_contention" => "experiment/ablate_contention",
        "ext_nash" => "experiment/ext_nash",
        "ext_battery" => "experiment/ext_battery",
        "ext_mobility" => "experiment/ext_mobility",
        "ext_online" => "experiment/ext_online",
        "ext_partial" => "experiment/ext_partial",
        "ext_arrivals" => "experiment/ext_arrivals",
        "scale" => "experiment/scale",
        _ => "experiment/other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_match_figures() {
        let opts = ExperimentOptions::quick();
        for (id, run) in registry() {
            if !matches!(id, "table1" | "fig6b" | "ablate_rebalance") {
                continue; // the cheap ones; the rest run in integration tests
            }
            let fig = run(&opts).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(fig.id, id);
            assert!(!fig.series.is_empty());
        }
    }

    #[test]
    fn every_registry_id_has_a_dedicated_span_name() {
        for (id, _) in registry() {
            let span = experiment_span(id);
            assert_eq!(span, format!("experiment/{id}"), "{id}");
        }
        assert_eq!(experiment_span("not-a-figure"), "experiment/other");
    }

    #[test]
    fn table1_echoes_paper_constants() {
        let fig = table1(&ExperimentOptions::quick()).unwrap();
        let down = fig.series_named("download (Mbps)").unwrap();
        assert!((down.values[0] - 13.76).abs() < 1e-9);
        assert!((down.values[1] - 54.97).abs() < 1e-9);
    }
}
