//! The `dsmec serve` telemetry plane and its analyzers.
//!
//! [`TelemetryPlane`] hangs off the serve loop's per-epoch hook
//! ([`crate::serve::serve_with_hook`]): each epoch it closes one
//! `mec_obs` interval window ([`mec_obs::snapshot_interval`]), appends it
//! as a djson line to the `--metrics-out` JSONL flight log, and
//! republishes the Prometheus exposition body the `--metrics-addr`
//! endpoint serves. The hook is infallible — a full disk or dead socket
//! must never abort an assignment session — so I/O errors are stashed
//! and surfaced by [`TelemetryPlane::finish`] after the session ends.
//!
//! Two analyzers read the plane back:
//!
//! * `dsmec metrics FLIGHT.jsonl [--slo k=v,…]` — batch: summarizes the
//!   flight log as a per-interval trend table and, with `--slo`, exits
//!   nonzero when any interval violates a threshold. This is CI's gate
//!   over *time-series* behavior, not just end totals.
//! * `dsmec top --addr HOST:PORT | FLIGHT.jsonl` — live: polls the
//!   exposition endpoint and prints one trend line per interval (or
//!   renders a recorded flight log once).

use crate::exposition::{http_get, parse_exposition, render_exposition, MetricsServer};
use crate::serve::EpochStats;
use mec_obs::IntervalSnapshot;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::net::SocketAddr;
use std::time::Duration;

/// Where the serve loop should emit telemetry, resolved from CLI flags
/// with environment fallback (the same flag-wins rule as `--trace` /
/// `DSMEC_TRACE`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryOptions {
    /// JSONL flight-log path (`--metrics-out` / `DSMEC_METRICS_OUT`).
    pub metrics_out: Option<String>,
    /// Exposition bind address (`--metrics-addr` / `DSMEC_METRICS_ADDR`).
    pub metrics_addr: Option<String>,
}

impl TelemetryOptions {
    /// Resolves the options: an explicit flag wins, otherwise the
    /// environment variable, otherwise off. Empty values disable.
    #[must_use]
    pub fn resolve(out_flag: Option<&str>, addr_flag: Option<&str>) -> TelemetryOptions {
        let pick = |flag: Option<&str>, var: &str| -> Option<String> {
            flag.map(str::to_string)
                .or_else(|| std::env::var(var).ok())
                .filter(|v| !v.is_empty())
        };
        TelemetryOptions {
            metrics_out: pick(out_flag, "DSMEC_METRICS_OUT"),
            metrics_addr: pick(addr_flag, "DSMEC_METRICS_ADDR"),
        }
    }

    /// Whether any telemetry sink is configured.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.metrics_out.is_some() || self.metrics_addr.is_some()
    }
}

/// The live telemetry plane for one serve session: flight-log writer
/// plus exposition endpoint, fed once per epoch.
#[derive(Debug)]
pub struct TelemetryPlane {
    out: Option<(String, BufWriter<File>)>,
    server: Option<MetricsServer>,
    records: u64,
    error: Option<String>,
}

impl TelemetryPlane {
    /// Starts the configured sinks: creates/truncates the flight log,
    /// binds the exposition endpoint, and enables `mec-obs` so the serve
    /// loop's counters, gauges and histograms actually record. Returns
    /// `Ok(None)` when no sink is configured.
    ///
    /// # Errors
    ///
    /// File creation or socket bind failures — these happen before any
    /// assignment work, so they *are* allowed to abort the command.
    pub fn start(opts: &TelemetryOptions) -> Result<Option<TelemetryPlane>, String> {
        if !opts.is_active() {
            return Ok(None);
        }
        mec_obs::set_enabled(true);
        let out = match &opts.metrics_out {
            Some(path) => {
                let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
                Some((path.clone(), BufWriter::new(file)))
            }
            None => None,
        };
        let server = match &opts.metrics_addr {
            Some(spec) => Some(MetricsServer::bind(spec)?),
            None => None,
        };
        Ok(Some(TelemetryPlane {
            out,
            server,
            records: 0,
            error: None,
        }))
    }

    /// The exposition endpoint's bound address, when one is serving.
    #[must_use]
    pub fn server_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(MetricsServer::addr)
    }

    /// The per-epoch feed: closes one interval window, publishes it to
    /// the endpoint and appends it to the flight log. Infallible — the
    /// first I/O error is stashed for [`TelemetryPlane::finish`] and
    /// later epochs stop writing (the endpoint keeps serving).
    pub fn on_epoch(&mut self, _stats: &EpochStats) {
        let window = mec_obs::snapshot_interval();
        if let Some(server) = &self.server {
            server.publish(render_exposition(&window));
        }
        if self.error.is_none() {
            if let Some((path, writer)) = &mut self.out {
                let line = djson::to_string(&window);
                if let Err(e) = writeln!(writer, "{line}") {
                    self.error = Some(format!("{path}: {e}"));
                }
            }
        }
        self.records += 1;
    }

    /// Tears the plane down: flushes the flight log, shuts the endpoint
    /// down, and surfaces any I/O error an epoch stashed. Returns the
    /// number of intervals recorded.
    ///
    /// # Errors
    ///
    /// The first flight-log write/flush error of the session.
    pub fn finish(mut self) -> Result<u64, String> {
        if let Some((path, mut writer)) = self.out.take() {
            if let Err(e) = writer.flush() {
                self.error.get_or_insert(format!("{path}: {e}"));
            }
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        match self.error {
            Some(e) => Err(format!("telemetry: {e}")),
            None => Ok(self.records),
        }
    }
}

/// Reads a JSONL flight log back into interval snapshots. Blank lines
/// are ignored; a malformed line reports its line number.
///
/// # Errors
///
/// File read errors and per-line djson decode errors.
pub fn read_flight_log(path: &str) -> Result<Vec<IntervalSnapshot>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let snap: IntervalSnapshot =
            djson::from_str(line).map_err(|e| format!("{path}:{}: {e}", idx + 1))?;
        records.push(snap);
    }
    Ok(records)
}

/// One `--slo` threshold. Semantics per key:
///
/// | key            | reads                              | violated when |
/// |----------------|------------------------------------|---------------|
/// | `p50_ms`       | decision-latency window p50        | `> limit`     |
/// | `p95_ms`       | decision-latency window p95        | `> limit`     |
/// | `p99_ms`       | decision-latency window p99        | `> limit`     |
/// | `miss_rate`    | `serve/slo/deadline_miss_rate`     | `> limit`     |
/// | `warm_rate_min`| `serve/slo/warm_hit_rate`          | `< limit`     |
/// | `queue_max`    | `serve/queue_depth`                | `> limit`     |
///
/// Latency and warm-rate rules skip the first record: epoch 0 is the
/// cold epoch by construction (no basis to chain, caches empty).
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// One of the keys above.
    pub key: String,
    /// The threshold.
    pub limit: f64,
}

const SLO_KEYS: [&str; 6] = [
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "miss_rate",
    "warm_rate_min",
    "queue_max",
];

/// Parses `--slo key=value[,key=value…]`.
///
/// # Errors
///
/// Unknown keys, missing `=`, and non-finite limits.
pub fn parse_slo(spec: &str) -> Result<Vec<SloRule>, String> {
    let mut rules = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("--slo entries look like key=value, got {part:?}"))?;
        let key = key.trim();
        if !SLO_KEYS.contains(&key) {
            return Err(format!(
                "unknown --slo key `{key}` (known: {})",
                SLO_KEYS.join(", ")
            ));
        }
        let limit: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("--slo {key}= needs a number, got {value:?}"))?;
        if !limit.is_finite() {
            return Err(format!("--slo {key}= must be finite"));
        }
        rules.push(SloRule {
            key: key.to_string(),
            limit,
        });
    }
    if rules.is_empty() {
        return Err("--slo needs at least one key=value rule".to_string());
    }
    Ok(rules)
}

/// One interval that broke a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloViolation {
    /// The interval index from the record.
    pub interval: u64,
    /// The rule key.
    pub key: String,
    /// The observed value.
    pub observed: f64,
    /// The configured limit.
    pub limit: f64,
}

/// The decision-latency histogram every latency rule reads.
const LATENCY_HIST: &str = "serve/decision_latency_ms";

/// Evaluates every rule over every record, returning all violations in
/// (record, rule) order. See [`SloRule`] for per-key semantics.
#[must_use]
pub fn evaluate_slo(records: &[IntervalSnapshot], rules: &[SloRule]) -> Vec<SloViolation> {
    let mut violations = Vec::new();
    for (pos, rec) in records.iter().enumerate() {
        for rule in rules {
            let cold_skipped = matches!(
                rule.key.as_str(),
                "p50_ms" | "p95_ms" | "p99_ms" | "warm_rate_min"
            );
            if pos == 0 && cold_skipped {
                continue;
            }
            let observed = match rule.key.as_str() {
                "p50_ms" => rec
                    .histogram(LATENCY_HIST)
                    .filter(|h| h.count > 0)
                    .map(|h| h.p50),
                "p95_ms" => rec
                    .histogram(LATENCY_HIST)
                    .filter(|h| h.count > 0)
                    .map(|h| h.p95),
                "p99_ms" => rec
                    .histogram(LATENCY_HIST)
                    .filter(|h| h.count > 0)
                    .map(|h| h.p99),
                "miss_rate" => rec.gauge("serve/slo/deadline_miss_rate"),
                "warm_rate_min" => rec.gauge("serve/slo/warm_hit_rate"),
                "queue_max" => rec.gauge("serve/queue_depth"),
                _ => None,
            };
            let Some(observed) = observed else { continue };
            let violated = if rule.key == "warm_rate_min" {
                observed < rule.limit
            } else {
                observed > rule.limit
            };
            if violated {
                violations.push(SloViolation {
                    interval: rec.interval,
                    key: rule.key.clone(),
                    observed,
                    limit: rule.limit,
                });
            }
        }
    }
    violations
}

/// The quantities one trend row shows, extracted from one interval
/// record (flight-log path) or one scraped exposition (live path).
#[derive(Debug, Clone, PartialEq)]
struct TrendRow {
    interval: u64,
    assigned: f64,
    rate: f64,
    p50_ms: f64,
    p95_ms: f64,
    warm_pct: f64,
    miss_pct: f64,
    queue: f64,
    migrations: f64,
}

impl TrendRow {
    fn from_record(rec: &IntervalSnapshot) -> TrendRow {
        let assigned = rec
            .counter("serve/assignments")
            .map_or(0.0, |c| c.delta as f64);
        let (p50, p95, window_s) = rec
            .histogram(LATENCY_HIST)
            .map_or((0.0, 0.0, 0.0), |h| (h.p50, h.p95, h.sum / 1e3));
        TrendRow {
            interval: rec.interval,
            assigned,
            rate: if window_s > 0.0 {
                assigned / window_s
            } else {
                0.0
            },
            p50_ms: p50,
            p95_ms: p95,
            warm_pct: rec.gauge("serve/slo/warm_hit_rate").unwrap_or(0.0) * 100.0,
            miss_pct: rec.gauge("serve/slo/deadline_miss_rate").unwrap_or(0.0) * 100.0,
            queue: rec.gauge("serve/queue_depth").unwrap_or(0.0),
            migrations: rec.gauge("serve/slo/cloud_migrations").unwrap_or(0.0),
        }
    }

    fn header() -> String {
        format!(
            "{:>8} {:>9} {:>9} {:>8} {:>8} {:>6} {:>6} {:>6} {:>5}",
            "interval", "assigned", "rate/s", "p50 ms", "p95 ms", "warm%", "miss%", "queue", "migr"
        )
    }

    fn render(&self) -> String {
        format!(
            "{:>8} {:>9.0} {:>9.0} {:>8.2} {:>8.2} {:>6.1} {:>6.1} {:>6.0} {:>5.0}",
            self.interval,
            self.assigned,
            self.rate,
            self.p50_ms,
            self.p95_ms,
            self.warm_pct,
            self.miss_pct,
            self.queue,
            self.migrations
        )
    }
}

/// Renders a flight log as an aligned trend table: one row per interval
/// showing the assignment rate, latency window percentiles, and the SLO
/// gauges. Long logs are downsampled to a bounded stride (the final
/// interval is always shown) so a multi-thousand-epoch session stays
/// readable; the SLO gate always evaluates every interval regardless.
#[must_use]
pub fn render_trend(records: &[IntervalSnapshot]) -> String {
    const MAX_ROWS: usize = 50;
    let stride = records.len().div_ceil(MAX_ROWS).max(1);
    let mut out = String::new();
    if stride > 1 {
        let _ = writeln!(
            out,
            "trend: showing every {stride}th of {} intervals",
            records.len()
        );
    }
    let _ = writeln!(out, "{}", TrendRow::header());
    let last = records.len().saturating_sub(1);
    for (i, rec) in records.iter().enumerate() {
        if i % stride == 0 || i == last {
            let _ = writeln!(out, "{}", TrendRow::from_record(rec).render());
        }
    }
    out
}

/// Arguments of `dsmec metrics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsArgs {
    /// The flight-log path (positional operand).
    pub file: String,
    /// Optional `--slo key=value,…` gate.
    pub slo: Option<String>,
}

/// `dsmec metrics FLIGHT.jsonl [--slo …]`: summarize a flight log and
/// gate it.
///
/// # Errors
///
/// Read/parse errors, and — the gate — a summary of every SLO violation,
/// which the binary turns into a nonzero exit.
pub fn metrics_command(args: &MetricsArgs) -> Result<(), String> {
    let records = read_flight_log(&args.file)?;
    if records.is_empty() {
        return Err(format!("{}: flight log holds no intervals", args.file));
    }
    let assigned_total = records
        .last()
        .and_then(|r| r.counter("serve/assignments"))
        .map_or(0, |c| c.total);
    println!(
        "metrics: {} — {} intervals, {} assignments",
        args.file,
        records.len(),
        assigned_total
    );
    print!("{}", render_trend(&records));
    let Some(spec) = &args.slo else {
        return Ok(());
    };
    let rules = parse_slo(spec)?;
    let violations = evaluate_slo(&records, &rules);
    if violations.is_empty() {
        println!(
            "slo: ok ({} rules over {} intervals)",
            rules.len(),
            records.len()
        );
        return Ok(());
    }
    for v in &violations {
        eprintln!(
            "slo violation: interval {} {} = {:.3} (limit {:.3})",
            v.interval, v.key, v.observed, v.limit
        );
    }
    Err(format!(
        "{} SLO violation(s) across {} interval(s)",
        violations.len(),
        records.len()
    ))
}

/// Arguments of `dsmec top`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopArgs {
    /// Flight-log path (positional operand) — render once and exit.
    pub file: Option<String>,
    /// Live endpoint (`--addr HOST:PORT`) — poll and stream rows.
    pub addr: Option<String>,
    /// Poll interval in milliseconds (`--interval-ms`, default 1000).
    pub interval_ms: u64,
    /// Poll count (`--iterations`, default 0 = until the endpoint
    /// closes).
    pub iterations: u64,
}

/// `dsmec top`: live (or recorded) trend view. In `--addr` mode each
/// poll scrapes `/metrics`, re-parses the exposition, and prints one row
/// whenever the served interval advances; the loop ends after
/// `--iterations` polls, or when the endpoint closes (session over).
///
/// # Errors
///
/// Missing input, unreachable endpoint on the *first* poll, and
/// flight-log read errors. A later poll failing means the session ended
/// — that is the normal way a watch terminates, not an error.
pub fn top_command(args: &TopArgs) -> Result<(), String> {
    if let Some(file) = &args.file {
        let records = read_flight_log(file)?;
        print!("{}", render_trend(&records));
        return Ok(());
    }
    let Some(addr) = &args.addr else {
        return Err("top needs a FLIGHT.jsonl operand or --addr HOST:PORT".to_string());
    };
    let timeout = Duration::from_secs(2);
    println!("{}", TrendRow::header());
    let mut last_interval: Option<u64> = None;
    let mut polls = 0u64;
    loop {
        match http_get(addr, "/metrics", timeout) {
            Ok((200, body)) => {
                let exp =
                    parse_exposition(&body).map_err(|e| format!("{addr}: bad exposition: {e}"))?;
                if let Some(row) = scraped_row(&exp) {
                    if last_interval != Some(row.interval) {
                        last_interval = Some(row.interval);
                        println!("{}", row.render());
                    }
                }
            }
            Ok((status, _)) => return Err(format!("{addr}: /metrics answered {status}")),
            Err(e) => {
                if polls == 0 {
                    return Err(e);
                }
                println!("endpoint closed — session over");
                return Ok(());
            }
        }
        polls += 1;
        if args.iterations > 0 && polls >= args.iterations {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(args.interval_ms.max(10)));
    }
}

/// Rebuilds a trend row from scraped exposition samples. `None` until
/// the endpoint has published its first interval.
fn scraped_row(exp: &crate::exposition::Exposition) -> Option<TrendRow> {
    let interval = exp.value("dsmec_interval")?;
    let assigned = exp.value("dsmec_serve_assignments_window").unwrap_or(0.0);
    let window_s = exp
        .value("dsmec_serve_decision_latency_ms_sum")
        .unwrap_or(0.0)
        / 1e3;
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    Some(TrendRow {
        interval: interval.max(0.0) as u64,
        assigned,
        rate: if window_s > 0.0 {
            assigned / window_s
        } else {
            0.0
        },
        p50_ms: exp
            .value("dsmec_serve_decision_latency_ms_p50")
            .unwrap_or(0.0),
        p95_ms: exp
            .value("dsmec_serve_decision_latency_ms_p95")
            .unwrap_or(0.0),
        warm_pct: exp.value("dsmec_serve_slo_warm_hit_rate").unwrap_or(0.0) * 100.0,
        miss_pct: exp
            .value("dsmec_serve_slo_deadline_miss_rate")
            .unwrap_or(0.0)
            * 100.0,
        queue: exp.value("dsmec_serve_queue_depth").unwrap_or(0.0),
        migrations: exp.value("dsmec_serve_slo_cloud_migrations").unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_obs::{CounterWindow, GaugeStat, HistogramWindow};

    fn record(interval: u64, p95: f64, miss: f64, warm: f64) -> IntervalSnapshot {
        IntervalSnapshot {
            interval,
            counters: vec![CounterWindow {
                name: "serve/assignments".into(),
                total: 50 * (interval + 1),
                delta: 50,
            }],
            gauges: vec![
                GaugeStat {
                    name: "serve/slo/deadline_miss_rate".into(),
                    value: miss,
                },
                GaugeStat {
                    name: "serve/slo/warm_hit_rate".into(),
                    value: warm,
                },
                GaugeStat {
                    name: "serve/queue_depth".into(),
                    value: 50.0,
                },
            ],
            histograms: vec![HistogramWindow {
                name: LATENCY_HIST.into(),
                total_count: interval + 1,
                count: 1,
                sum: p95,
                min: p95,
                max: p95,
                p50: p95,
                p95,
                p99: p95,
                buckets: vec![],
            }],
        }
    }

    #[test]
    fn slo_specs_parse_and_reject_unknown_keys() {
        let rules = parse_slo("p95_ms=40, miss_rate=0.1").unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].key, "p95_ms");
        assert_eq!(rules[0].limit, 40.0);
        assert!(parse_slo("p97_ms=1")
            .unwrap_err()
            .contains("unknown --slo key"));
        assert!(parse_slo("p95_ms").unwrap_err().contains("key=value"));
        assert!(parse_slo("p95_ms=wat")
            .unwrap_err()
            .contains("needs a number"));
        assert!(parse_slo("").is_err());
    }

    #[test]
    fn slo_evaluation_skips_the_cold_epoch_for_latency_and_warm_rules() {
        // Record 0 is slow and cold — latency/warm rules must ignore it;
        // record 2 breaks both the p95 and the miss-rate rule.
        let records = vec![
            record(0, 400.0, 0.0, 0.0),
            record(1, 5.0, 0.0, 0.9),
            record(2, 80.0, 0.5, 0.9),
        ];
        let rules = parse_slo("p95_ms=40,miss_rate=0.1,warm_rate_min=0.5").unwrap();
        let violations = evaluate_slo(&records, &rules);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].interval, 2);
        assert_eq!(violations[0].key, "p95_ms");
        assert_eq!(violations[1].key, "miss_rate");
        // A warm-rate floor of 0.95 catches records 1 and 2 but not the
        // cold record 0.
        let strict = parse_slo("warm_rate_min=0.95").unwrap();
        let v = evaluate_slo(&records, &strict);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.interval >= 1));
    }

    #[test]
    fn flight_logs_round_trip_and_report_bad_lines() {
        let dir = std::env::temp_dir().join("dsmec_metrics_flight_log");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        let records = vec![record(0, 10.0, 0.0, 0.0), record(1, 5.0, 0.0, 1.0)];
        let mut text = String::new();
        for r in &records {
            text.push_str(&djson::to_string(r));
            text.push('\n');
        }
        std::fs::write(&path, &text).unwrap();
        let back = read_flight_log(path.to_str().unwrap()).unwrap();
        assert_eq!(back, records);

        std::fs::write(&path, "{\"interval\": 0").unwrap();
        let err = read_flight_log(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains(":1:"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trend_rows_compute_rates_from_the_latency_window() {
        // 50 assignments over a 10 ms window → 5000/s.
        let rows = render_trend(&[record(3, 10.0, 0.25, 0.8)]);
        assert!(rows.contains("interval"), "{rows}");
        let data = rows.lines().nth(1).unwrap();
        assert!(data.contains("5000"), "{data}");
        assert!(data.contains("25.0"), "{data}");
        assert!(data.contains("80.0"), "{data}");
    }

    #[test]
    fn long_trends_downsample_but_keep_the_final_interval() {
        let records: Vec<IntervalSnapshot> = (0..200).map(|i| record(i, 10.0, 0.0, 0.5)).collect();
        let rows = render_trend(&records);
        assert!(
            rows.starts_with("trend: showing every 4th of 200 intervals"),
            "{rows}"
        );
        // Note line + header + at most ceil(200/4) strided rows + final.
        assert!(rows.lines().count() <= 53, "{rows}");
        assert!(
            rows.lines().last().unwrap().trim_start().starts_with("199"),
            "{rows}"
        );
    }

    #[test]
    fn telemetry_options_resolve_flag_over_env() {
        // Flag wins; empty disables. (Env-var fallback is covered by the
        // CLI integration tests to keep this test env-independent.)
        let opts = TelemetryOptions::resolve(Some("m.jsonl"), None);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.jsonl"));
        assert!(opts.is_active());
        let off = TelemetryOptions::resolve(Some(""), None);
        assert!(!off.is_active() || std::env::var("DSMEC_METRICS_ADDR").is_ok());
    }
}
