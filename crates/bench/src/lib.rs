//! # mec-bench — experiment harness for the Data-Shared MEC reproduction
//!
//! One runner per table and figure of the paper's Section V (plus the
//! DESIGN.md ablations), producing aligned text tables and CSV files.
//!
//! ```no_run
//! use mec_bench::figures::{fig2a, ExperimentOptions};
//!
//! let fig = fig2a(&ExperimentOptions::default())?;
//! println!("{}", fig.render_table());
//! # Ok::<(), dsmec_core::AssignError>(())
//! ```
//!
//! The `repro` binary regenerates everything:
//!
//! ```text
//! cargo run -p mec-bench --bin repro --release            # all experiments
//! cargo run -p mec-bench --bin repro --release -- fig2a   # one experiment
//! cargo run -p mec-bench --bin repro --release -- --quick # CI-sized sweeps
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod cli;
pub mod exposition;
pub mod figures;
pub mod metrics;
pub mod par;
pub mod pricing;
pub mod runner;
pub mod serve;
pub mod table;
pub mod timing;
pub mod trace_report;

pub use figures::ExperimentOptions;
pub use par::{set_threads, threads};
pub use table::{Figure, Series};
