//! Cross-figure memoization of the expensive, deterministic artifacts the
//! experiment sweeps keep recomputing:
//!
//! * **Scenario + cost table** — every figure point regenerates the same
//!   `(ScenarioConfig, seed)` scenario and rebuilds its [`CostTable`] once
//!   per compared algorithm family; the scenario cache shares one build per
//!   distinct configuration across all figures of a run.
//! * **LP relaxation** — the rounding ablation (and any caller of
//!   [`dsmec_core::hta::LpHta::round_with`]) re-solves the identical
//!   relaxed LP for every rounding rule; the relaxation cache keys on
//!   `(config hash, solver, lp_cluster_limit)` so the LP is solved once.
//!
//! Keys are FNV-1a hashes of the *serialized* configuration (the seed is a
//! config field, so `(config, seed)` pairs hash distinctly). Since scenario
//! generation and the LP solve are deterministic, a concurrent double-build
//! of the same key produces identical values — first insert wins and the
//! duplicate is dropped, so no lock is held while building.
//!
//! Everything here is read-shared behind `Arc`, bounded (maps reset past
//! [`MAX_ENTRIES`]), and resettable via [`clear`] so wall-time comparisons
//! can run cold; [`stats`] exposes hit/miss counters for
//! `BENCH_parallel.json`.

use dsmec_core::costs::CostTable;
use dsmec_core::error::AssignError;
use dsmec_core::hta::{FractionalSolution, LpHta};
use linprog::Solver;
use mec_sim::workload::{Scenario, ScenarioConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a cache map ignoring std poisoning: every critical section is a
/// plain map read/insert/clear, so a panicking holder cannot leave the map
/// half-updated; recovering the guard preserves the old
/// non-poisoning behavior.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cap per cache map; on overflow the map is reset wholesale (the working
/// set of one `repro` run is far below this, so eviction sophistication
/// would buy nothing).
pub const MAX_ENTRIES: usize = 512;

/// A generated scenario together with its cost table, shared read-only.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedScenario {
    /// The generated MEC system and task set.
    pub scenario: Scenario,
    /// Per-task site costs for `scenario`.
    pub costs: CostTable,
}

type ScenarioMap = HashMap<u64, Arc<CachedScenario>>;
type RelaxationMap = HashMap<(u64, u8, usize), Arc<FractionalSolution>>;

static SCENARIOS: OnceLock<Mutex<ScenarioMap>> = OnceLock::new();
static RELAXATIONS: OnceLock<Mutex<RelaxationMap>> = OnceLock::new();
static SCENARIO_HITS: AtomicU64 = AtomicU64::new(0);
static SCENARIO_MISSES: AtomicU64 = AtomicU64::new(0);
static LP_HITS: AtomicU64 = AtomicU64::new(0);
static LP_MISSES: AtomicU64 = AtomicU64::new(0);

/// Hit/miss counters of both caches, as of the moment of the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Scenario-cache hits.
    pub scenario_hits: u64,
    /// Scenario-cache misses (builds).
    pub scenario_misses: u64,
    /// LP-relaxation-cache hits.
    pub lp_hits: u64,
    /// LP-relaxation-cache misses (solves).
    pub lp_misses: u64,
}

/// Current hit/miss counters.
pub fn stats() -> CacheStats {
    CacheStats {
        scenario_hits: SCENARIO_HITS.load(Ordering::Relaxed),
        scenario_misses: SCENARIO_MISSES.load(Ordering::Relaxed),
        lp_hits: LP_HITS.load(Ordering::Relaxed),
        lp_misses: LP_MISSES.load(Ordering::Relaxed),
    }
}

/// Empties both caches and resets the counters. Call before timed passes
/// so serial and parallel runs are compared cold-for-cold.
pub fn clear() {
    if let Some(map) = SCENARIOS.get() {
        lock(map).clear();
    }
    if let Some(map) = RELAXATIONS.get() {
        lock(map).clear();
    }
    SCENARIO_HITS.store(0, Ordering::Relaxed);
    SCENARIO_MISSES.store(0, Ordering::Relaxed);
    LP_HITS.store(0, Ordering::Relaxed);
    LP_MISSES.store(0, Ordering::Relaxed);
}

/// FNV-1a over the serialized configuration. The seed is part of the
/// configuration, so this is the ISSUE's `(config-hash, seed)` key in one
/// value.
///
/// # Errors
///
/// Infallible with the in-workspace JSON encoder (non-finite floats encode
/// as `null` rather than failing); the `Result` is kept so callers are
/// insulated from future key schemes that can reject a configuration.
pub fn config_key(cfg: &ScenarioConfig) -> Result<u64, AssignError> {
    Ok(fnv1a(&djson::to_vec(cfg)))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The scenario and cost table for `cfg`, generated once per distinct
/// configuration and shared across figures and threads.
///
/// # Errors
///
/// Propagates generation and cost-model errors.
pub fn scenario_with_costs(cfg: &ScenarioConfig) -> Result<Arc<CachedScenario>, AssignError> {
    let key = config_key(cfg)?;
    let map = SCENARIOS.get_or_init(Default::default);
    if let Some(hit) = lock(map).get(&key) {
        SCENARIO_HITS.fetch_add(1, Ordering::Relaxed);
        mec_obs::counter_add("cache/scenario/hits", 1);
        return Ok(Arc::clone(hit));
    }
    SCENARIO_MISSES.fetch_add(1, Ordering::Relaxed);
    mec_obs::counter_add("cache/scenario/misses", 1);
    // Build outside the lock; concurrent builders of the same key produce
    // identical values (generation is seed-deterministic), first insert wins.
    // The chunked parallel pricer is bit-identical to `CostTable::build`.
    let scenario = cfg.generate()?;
    let costs = crate::pricing::build_cost_table(&scenario.system, &scenario.tasks)?;
    let built = Arc::new(CachedScenario { scenario, costs });
    let mut guard = lock(map);
    if guard.len() >= MAX_ENTRIES {
        guard.clear();
    }
    Ok(Arc::clone(guard.entry(key).or_insert(built)))
}

fn solver_tag(solver: Solver) -> u8 {
    match solver {
        Solver::InteriorPoint => 0,
        Solver::Simplex => 1,
        Solver::Revised => 2,
    }
}

/// The LP-relaxation (Steps 1–2) of LP-HTA on `cfg`'s scenario, solved
/// once per `(config, solver, lp_cluster_limit)` and shared across
/// rounding rules. `cached` must be the scenario for `cfg` (normally the
/// value returned by [`scenario_with_costs`]).
///
/// # Errors
///
/// Propagates LP and substrate errors.
pub fn lp_relaxation(
    cfg: &ScenarioConfig,
    algo: &LpHta,
    cached: &CachedScenario,
) -> Result<Arc<FractionalSolution>, AssignError> {
    let key = (
        config_key(cfg)?,
        solver_tag(algo.solver),
        algo.lp_cluster_limit,
    );
    let map = RELAXATIONS.get_or_init(Default::default);
    if let Some(hit) = lock(map).get(&key) {
        LP_HITS.fetch_add(1, Ordering::Relaxed);
        mec_obs::counter_add("cache/lp/hits", 1);
        return Ok(Arc::clone(hit));
    }
    LP_MISSES.fetch_add(1, Ordering::Relaxed);
    mec_obs::counter_add("cache/lp/misses", 1);
    let solved = Arc::new(algo.solve_relaxation(
        &cached.scenario.system,
        &cached.scenario.tasks,
        &cached.costs,
    )?);
    let mut guard = lock(map);
    if guard.len() >= MAX_ENTRIES {
        guard.clear();
    }
    Ok(Arc::clone(guard.entry(key).or_insert(solved)))
}

// JSON codecs (wire-compatible with the former serde derives).
djson::impl_json_struct!(CacheStats {
    scenario_hits,
    scenario_misses,
    lp_hits,
    lp_misses,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_key_distinguishes_seeds_and_fields() {
        let a = ScenarioConfig::paper_defaults(1);
        let mut b = ScenarioConfig::paper_defaults(1);
        assert_eq!(config_key(&a).unwrap(), config_key(&b).unwrap());
        b.seed = 2;
        assert_ne!(config_key(&a).unwrap(), config_key(&b).unwrap());
        let mut c = ScenarioConfig::paper_defaults(1);
        c.tasks_total += 1;
        assert_ne!(config_key(&a).unwrap(), config_key(&c).unwrap());
    }

    #[test]
    fn cached_scenario_matches_uncached_build() {
        let mut cfg = ScenarioConfig::paper_defaults(4242);
        cfg.tasks_total = 15;
        let cached = scenario_with_costs(&cfg).unwrap();
        let scenario = cfg.generate().unwrap();
        let costs = CostTable::build(&scenario.system, &scenario.tasks).unwrap();
        assert_eq!(cached.scenario, scenario);
        assert_eq!(cached.costs, costs);
        // Second lookup returns the same shared value.
        let again = scenario_with_costs(&cfg).unwrap();
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn lp_relaxation_is_shared_across_rounding_rules() {
        use dsmec_core::hta::RoundingRule;
        let mut cfg = ScenarioConfig::paper_defaults(4243);
        cfg.tasks_total = 15;
        let cached = scenario_with_costs(&cfg).unwrap();
        let a = LpHta::paper().without_fast_path();
        let b = LpHta {
            rounding: RoundingRule::Randomized { seed: 1 },
            ..a
        };
        let fa = lp_relaxation(&cfg, &a, &cached).unwrap();
        let fb = lp_relaxation(&cfg, &b, &cached).unwrap();
        assert!(
            Arc::ptr_eq(&fa, &fb),
            "rounding rule must not affect the key"
        );
        let direct = a
            .solve_relaxation(
                &cached.scenario.system,
                &cached.scenario.tasks,
                &cached.costs,
            )
            .unwrap();
        assert_eq!(*fa, direct);
    }
}
