//! Timing benches of the assignment algorithms themselves: LP-HTA (both
//! LP backends, with and without the exact fast path), the comparators,
//! the exact branch-and-bound, and the DTA divisions.
//!
//! Plain `harness = false` binary on [`mec_bench::timing`]; filter cases
//! with `cargo bench --bench algorithms -- <substring>`.

use dsmec_core::costs::CostTable;
use dsmec_core::dta::{divide_balanced, divide_min_devices, run_dta, DtaConfig};
use dsmec_core::hta::{AllOffload, ExactBnB, Hgos, HtaAlgorithm, LpHta, RoundingRule};
use linprog::Solver;
use mec_bench::timing::Harness;
use mec_sim::workload::{DivisibleScenarioConfig, ScenarioConfig};

fn holistic(tasks: usize) -> (mec_sim::workload::Scenario, CostTable) {
    let mut cfg = ScenarioConfig::paper_defaults(9000 + tasks as u64);
    cfg.tasks_total = tasks;
    let s = cfg.generate().expect("generation");
    let costs = CostTable::build(&s.system, &s.tasks).expect("pricing");
    (s, costs)
}

fn bench_lp_hta(h: &mut Harness) {
    for tasks in [100usize, 200, 400] {
        let (s, costs) = holistic(tasks);
        let paper = LpHta::paper();
        h.bench(&format!("lp_hta/paper/{tasks}"), || {
            paper.assign(&s.system, &s.tasks, &costs).unwrap()
        });
        let ipm = LpHta::paper().without_fast_path();
        h.bench(&format!("lp_hta/full_ipm/{tasks}"), || {
            ipm.assign(&s.system, &s.tasks, &costs).unwrap()
        });
        let simplex = LpHta {
            solver: Solver::Simplex,
            rounding: RoundingRule::ArgMax,
            ..LpHta::paper().without_fast_path()
        };
        h.bench(&format!("lp_hta/full_simplex/{tasks}"), || {
            simplex.assign(&s.system, &s.tasks, &costs).unwrap()
        });
    }
}

fn bench_comparators(h: &mut Harness) {
    let (s, costs) = holistic(300);
    h.bench("comparators/hgos", || {
        Hgos::default().assign(&s.system, &s.tasks, &costs).unwrap()
    });
    h.bench("comparators/all_offload", || {
        AllOffload.assign(&s.system, &s.tasks, &costs).unwrap()
    });
}

fn bench_exact(h: &mut Harness) {
    let mut cfg = ScenarioConfig::paper_defaults(77);
    cfg.num_stations = 2;
    cfg.devices_per_station = 3;
    cfg.tasks_total = 14;
    let s = cfg.generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    h.bench("exact_bnb_14_tasks", || {
        ExactBnB::default()
            .solve(&s.system, &s.tasks, &costs)
            .unwrap()
    });
}

fn bench_dta(h: &mut Harness) {
    for items in [500usize, 1000, 2000] {
        let mut cfg = DivisibleScenarioConfig::paper_defaults(8000 + items as u64);
        cfg.num_items = items;
        cfg.tasks_total = 100;
        let s = cfg.generate().unwrap();
        let required = s.required_universe();
        h.bench(&format!("dta/divide_balanced/{items}"), || {
            divide_balanced(&s.universe, &required).unwrap()
        });
        h.bench(&format!("dta/divide_min_devices/{items}"), || {
            divide_min_devices(&s.universe, &required).unwrap()
        });
    }
    // The whole pipeline at the paper's default scale.
    let s = DivisibleScenarioConfig::paper_defaults(8500)
        .generate()
        .unwrap();
    h.bench("dta/pipeline_workload_100_tasks", || {
        run_dta(&s, DtaConfig::workload()).unwrap()
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_lp_hta(&mut h);
    bench_comparators(&mut h);
    bench_exact(&mut h);
    bench_dta(&mut h);
    h.finish();
}
