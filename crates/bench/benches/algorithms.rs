//! Criterion benchmarks of the assignment algorithms themselves: LP-HTA
//! (both LP backends, with and without the exact fast path), the
//! comparators, the exact branch-and-bound, and the DTA divisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmec_core::costs::CostTable;
use dsmec_core::dta::{divide_balanced, divide_min_devices, run_dta, DtaConfig};
use dsmec_core::hta::{AllOffload, ExactBnB, Hgos, HtaAlgorithm, LpHta, RoundingRule};
use linprog::Solver;
use mec_sim::workload::{DivisibleScenarioConfig, ScenarioConfig};
use std::hint::black_box;

fn holistic(tasks: usize) -> (mec_sim::workload::Scenario, CostTable) {
    let mut cfg = ScenarioConfig::paper_defaults(9000 + tasks as u64);
    cfg.tasks_total = tasks;
    let s = cfg.generate().expect("generation");
    let costs = CostTable::build(&s.system, &s.tasks).expect("pricing");
    (s, costs)
}

fn bench_lp_hta(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_hta");
    for tasks in [100usize, 200, 400] {
        let (s, costs) = holistic(tasks);
        group.bench_with_input(BenchmarkId::new("paper", tasks), &tasks, |b, _| {
            let algo = LpHta::paper();
            b.iter(|| black_box(algo.assign(&s.system, &s.tasks, &costs).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("full_ipm", tasks), &tasks, |b, _| {
            let algo = LpHta::paper().without_fast_path();
            b.iter(|| black_box(algo.assign(&s.system, &s.tasks, &costs).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("full_simplex", tasks), &tasks, |b, _| {
            let algo = LpHta {
                solver: Solver::Simplex,
                rounding: RoundingRule::ArgMax,
                ..LpHta::paper().without_fast_path()
            };
            b.iter(|| black_box(algo.assign(&s.system, &s.tasks, &costs).unwrap()))
        });
    }
    group.finish();
}

fn bench_comparators(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparators");
    let (s, costs) = holistic(300);
    group.bench_function("hgos", |b| {
        b.iter(|| black_box(Hgos::default().assign(&s.system, &s.tasks, &costs).unwrap()))
    });
    group.bench_function("all_offload", |b| {
        b.iter(|| black_box(AllOffload.assign(&s.system, &s.tasks, &costs).unwrap()))
    });
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut cfg = ScenarioConfig::paper_defaults(77);
    cfg.num_stations = 2;
    cfg.devices_per_station = 3;
    cfg.tasks_total = 14;
    let s = cfg.generate().unwrap();
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    c.bench_function("exact_bnb_14_tasks", |b| {
        b.iter(|| {
            black_box(
                ExactBnB::default()
                    .solve(&s.system, &s.tasks, &costs)
                    .unwrap(),
            )
        })
    });
}

fn bench_dta(c: &mut Criterion) {
    let mut group = c.benchmark_group("dta");
    for items in [500usize, 1000, 2000] {
        let mut cfg = DivisibleScenarioConfig::paper_defaults(8000 + items as u64);
        cfg.num_items = items;
        cfg.tasks_total = 100;
        let s = cfg.generate().unwrap();
        let required = s.required_universe();
        group.bench_with_input(
            BenchmarkId::new("divide_balanced", items),
            &items,
            |b, _| b.iter(|| black_box(divide_balanced(&s.universe, &required).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("divide_min_devices", items),
            &items,
            |b, _| b.iter(|| black_box(divide_min_devices(&s.universe, &required).unwrap())),
        );
    }
    // The whole pipeline at the paper's default scale.
    let s = DivisibleScenarioConfig::paper_defaults(8500)
        .generate()
        .unwrap();
    group.bench_function("pipeline_workload_100_tasks", |b| {
        b.iter(|| black_box(run_dta(&s, DtaConfig::workload()).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lp_hta,
    bench_comparators,
    bench_exact,
    bench_dta
);
criterion_main!(benches);
