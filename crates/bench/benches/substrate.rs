//! Timing benches of the substrates: the LP solvers on growing problem
//! sizes, the data-sharing bitset, the cost model and the discrete-event
//! executor.
//!
//! Plain `harness = false` binary on [`mec_bench::timing`]; filter cases
//! with `cargo bench --bench substrate -- <substring>`.

use dsmec_core::costs::CostTable;
use dsmec_core::hta::HtaAlgorithm;
use linprog::{solve, ConstraintSense, LpProblem, Solver};
use mec_bench::timing::Harness;
use mec_sim::data::{DataItemId, ItemSet};
use mec_sim::sim::{simulate, Contention};
use mec_sim::workload::ScenarioConfig;

/// A dense random-ish LP with box bounds, `rows` coupling rows and
/// `3 * rows` variables — the shape LP-HTA produces.
fn synthetic_lp(rows: usize) -> LpProblem {
    let n = 3 * rows;
    let mut lp = LpProblem::new(n);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let c: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
    lp.set_objective(c).unwrap();
    for r in 0..rows {
        let terms: Vec<(usize, f64)> = (0..n)
            .filter(|j| (j + r) % 7 < 3)
            .map(|j| (j, 0.5 + next()))
            .collect();
        lp.add_constraint(terms, ConstraintSense::Le, 5.0 + next() * 10.0)
            .unwrap();
    }
    // Multiple-choice equality per variable triple, like C4.
    for k in 0..rows {
        lp.add_constraint(
            vec![(3 * k, 1.0), (3 * k + 1, 1.0), (3 * k + 2, 1.0)],
            ConstraintSense::Eq,
            1.0,
        )
        .unwrap();
    }
    for v in 0..n {
        lp.set_bounds(v, 0.0, 1.0).unwrap();
    }
    lp
}

fn bench_linprog(h: &mut Harness) {
    for rows in [20usize, 60, 120] {
        let lp = synthetic_lp(rows);
        h.bench(&format!("linprog/interior_point/{rows}"), || {
            solve(&lp, Solver::InteriorPoint).unwrap()
        });
        h.bench(&format!("linprog/simplex/{rows}"), || {
            solve(&lp, Solver::Simplex).unwrap()
        });
    }
}

fn bench_itemset(h: &mut Harness) {
    let capacity = 10_000;
    let a = ItemSet::from_ids(capacity, (0..capacity).step_by(3).map(DataItemId));
    let b = ItemSet::from_ids(capacity, (0..capacity).step_by(5).map(DataItemId));
    h.bench("itemset/intersection_10k", || a.intersection(&b));
    h.bench("itemset/intersection_len_10k", || a.intersection_len(&b));
    h.bench("itemset/iterate_10k", || {
        a.iter().map(|d| d.0).sum::<usize>()
    });
}

fn bench_cost_and_sim(h: &mut Harness) {
    let mut cfg = ScenarioConfig::paper_defaults(4242);
    cfg.tasks_total = 200;
    let s = cfg.generate().unwrap();
    h.bench("cost_table_200_tasks", || {
        CostTable::build(&s.system, &s.tasks).unwrap()
    });
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let a = dsmec_core::hta::LpHta::paper()
        .assign(&s.system, &s.tasks, &costs)
        .unwrap();
    let exec = a.to_executable(&s.tasks).unwrap();
    h.bench("des/simulate_free_200", || {
        simulate(&s.system, &exec, Contention::None).unwrap()
    });
    h.bench("des/simulate_queued_200", || {
        simulate(&s.system, &exec, Contention::Exclusive).unwrap()
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_linprog(&mut h);
    bench_itemset(&mut h);
    bench_cost_and_sim(&mut h);
    h.finish();
}
