//! Criterion benchmarks of the substrates: the LP solvers on growing
//! problem sizes, the data-sharing bitset, the cost model and the
//! discrete-event executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmec_core::costs::CostTable;
use dsmec_core::hta::HtaAlgorithm;
use linprog::{solve, ConstraintSense, LpProblem, Solver};
use mec_sim::data::{DataItemId, ItemSet};
use mec_sim::sim::{simulate, Contention};
use mec_sim::workload::ScenarioConfig;
use std::hint::black_box;

/// A dense random-ish LP with box bounds, `rows` coupling rows and
/// `3 * rows` variables — the shape LP-HTA produces.
fn synthetic_lp(rows: usize) -> LpProblem {
    let n = 3 * rows;
    let mut lp = LpProblem::new(n);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let c: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
    lp.set_objective(c).unwrap();
    for r in 0..rows {
        let terms: Vec<(usize, f64)> = (0..n)
            .filter(|j| (j + r) % 7 < 3)
            .map(|j| (j, 0.5 + next()))
            .collect();
        lp.add_constraint(terms, ConstraintSense::Le, 5.0 + next() * 10.0)
            .unwrap();
    }
    // Multiple-choice equality per variable triple, like C4.
    for k in 0..rows {
        lp.add_constraint(
            vec![(3 * k, 1.0), (3 * k + 1, 1.0), (3 * k + 2, 1.0)],
            ConstraintSense::Eq,
            1.0,
        )
        .unwrap();
    }
    for v in 0..n {
        lp.set_bounds(v, 0.0, 1.0).unwrap();
    }
    lp
}

fn bench_linprog(c: &mut Criterion) {
    let mut group = c.benchmark_group("linprog");
    group.sample_size(10);
    for rows in [20usize, 60, 120] {
        let lp = synthetic_lp(rows);
        group.bench_with_input(BenchmarkId::new("interior_point", rows), &rows, |b, _| {
            b.iter(|| black_box(solve(&lp, Solver::InteriorPoint).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("simplex", rows), &rows, |b, _| {
            b.iter(|| black_box(solve(&lp, Solver::Simplex).unwrap()))
        });
    }
    group.finish();
}

fn bench_itemset(c: &mut Criterion) {
    let mut group = c.benchmark_group("itemset");
    let capacity = 10_000;
    let a = ItemSet::from_ids(capacity, (0..capacity).step_by(3).map(DataItemId));
    let b = ItemSet::from_ids(capacity, (0..capacity).step_by(5).map(DataItemId));
    group.bench_function("intersection_10k", |bch| {
        bch.iter(|| black_box(a.intersection(&b)))
    });
    group.bench_function("intersection_len_10k", |bch| {
        bch.iter(|| black_box(a.intersection_len(&b)))
    });
    group.bench_function("iterate_10k", |bch| {
        bch.iter(|| black_box(a.iter().map(|d| d.0).sum::<usize>()))
    });
    group.finish();
}

fn bench_cost_and_sim(c: &mut Criterion) {
    let mut cfg = ScenarioConfig::paper_defaults(4242);
    cfg.tasks_total = 200;
    let s = cfg.generate().unwrap();
    c.bench_function("cost_table_200_tasks", |b| {
        b.iter(|| black_box(CostTable::build(&s.system, &s.tasks).unwrap()))
    });
    let costs = CostTable::build(&s.system, &s.tasks).unwrap();
    let a = dsmec_core::hta::LpHta::paper()
        .assign(&s.system, &s.tasks, &costs)
        .unwrap();
    let exec = a.to_executable(&s.tasks).unwrap();
    let mut group = c.benchmark_group("des");
    group.bench_function("simulate_free_200", |b| {
        b.iter(|| black_box(simulate(&s.system, &exec, Contention::None).unwrap()))
    });
    group.bench_function("simulate_queued_200", |b| {
        b.iter(|| black_box(simulate(&s.system, &exec, Contention::Exclusive).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_linprog, bench_itemset, bench_cost_and_sim);
criterion_main!(benches);
