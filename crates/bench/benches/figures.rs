//! Criterion benchmarks of the figure regeneration itself: one benchmark
//! per paper table/figure, timing the quick-mode runner end to end. The
//! full-sweep regeneration lives in the `repro` binary; these benches
//! keep the per-figure cost visible and regression-tested.

use criterion::{criterion_group, criterion_main, Criterion};
use mec_bench::figures::{registry, ExperimentOptions};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let opts = ExperimentOptions::quick();
    let mut group = c.benchmark_group("figures_quick");
    group.sample_size(10);
    for (id, run) in registry() {
        group.bench_function(id, |b| {
            b.iter(|| black_box(run(&opts).expect("figure regenerates")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
