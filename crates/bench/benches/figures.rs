//! Timing benches of the figure regeneration itself: one case per paper
//! table/figure, timing the quick-mode runner end to end. The full-sweep
//! regeneration lives in the `repro` binary; these benches keep the
//! per-figure cost visible.
//!
//! Plain `harness = false` binary on [`mec_bench::timing`]; filter cases
//! with `cargo bench --bench figures -- <substring>`.

use mec_bench::figures::{registry, ExperimentOptions};
use mec_bench::timing::Harness;

fn main() {
    let opts = ExperimentOptions::quick();
    let mut h = Harness::from_args();
    for (id, run) in registry() {
        h.bench(&format!("figures_quick/{id}"), || {
            run(&opts).expect("figure regenerates")
        });
    }
    h.finish();
}
