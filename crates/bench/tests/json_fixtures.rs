//! Hand-written JSON fixtures for the on-disk formats: the wire shape is
//! a compatibility contract (files written before the serde → djson
//! migration must keep loading), so these fixtures are spelled out
//! literally rather than generated.

use djson::{FromJson, ToJson};
use mec_bench::cli::AssignmentFile;
use mec_sim::task::ExecutionSite;
use mec_sim::workload::Scenario;

/// A complete two-device, one-station scenario in the exact on-disk shape.
const SCENARIO_FIXTURE: &str = r#"{
  "system": {
    "devices": [
      {
        "id": 0,
        "station": 0,
        "cpu": 1400000000.0,
        "link": {
          "download": 1720000,
          "upload": 731250,
          "tx_power": 7.32,
          "rx_power": 1.6
        },
        "max_resource": 8000000
      },
      {
        "id": 1,
        "station": 0,
        "cpu": 1500000000.0,
        "link": {
          "download": 6871250,
          "upload": 1610000,
          "tx_power": 15.7,
          "rx_power": 2.7
        },
        "max_resource": 8000000
      }
    ],
    "stations": [
      {
        "id": 0,
        "cpu": 4000000000,
        "max_resource": 200000000
      }
    ],
    "cloud": {
      "cpu": 2400000000
    },
    "clusters": [
      [
        0,
        1
      ]
    ],
    "backhaul": {
      "station_to_station": {
        "latency": 0.015,
        "bandwidth": 125000000,
        "energy_per_byte": 0.00000005
      },
      "station_to_cloud": {
        "latency": 0.25,
        "bandwidth": 18750000,
        "energy_per_byte": 0.0000005
      }
    },
    "cycle_model": {
      "cycles_per_byte": 330
    },
    "result_model": {
      "Proportional": 0.2
    }
  },
  "tasks": [
    {
      "id": {
        "user": 0,
        "index": 0
      },
      "owner": 0,
      "local_size": 1951922.5,
      "external_size": 236688.5,
      "external_source": 1,
      "complexity": 1,
      "resource": 2188611.0,
      "deadline": 1.25
    },
    {
      "id": {
        "user": 1,
        "index": 0
      },
      "owner": 1,
      "local_size": 1386800.25,
      "external_size": 343030.5,
      "external_source": 0,
      "complexity": 1,
      "resource": 1729830.75,
      "deadline": 1.5
    }
  ]
}"#;

/// An assignment file in the exact on-disk shape (external enum tagging
/// for decisions, unit variants as bare strings).
const ASSIGNMENT_FIXTURE: &str = r#"{
  "algorithm": "Hgos",
  "scenario_seed": 7,
  "assignment": {
    "decisions": [
      {
        "Assigned": "Device"
      },
      {
        "Assigned": "Station"
      }
    ]
  },
  "metrics": {
    "total_energy": 8.810634886,
    "mean_latency": 0.849017316,
    "unsatisfied_rate": 0,
    "cancelled": 0,
    "site_counts": [
      1,
      1,
      0
    ]
  }
}"#;

#[test]
fn scenario_fixture_parses_with_exact_values() {
    let s: Scenario = djson::from_str(SCENARIO_FIXTURE).unwrap();
    assert_eq!(s.system.num_devices(), 2);
    assert_eq!(s.system.num_stations(), 1);
    assert_eq!(s.tasks.len(), 2);
    let d0 = &s.system.devices()[0];
    assert_eq!(d0.cpu.value(), 1.4e9);
    assert_eq!(d0.link.tx_power.value(), 7.32);
    assert_eq!(d0.max_resource.value(), 8e6);
    assert_eq!(s.tasks[0].local_size.value(), 1_951_922.5);
    assert_eq!(s.tasks[0].deadline.value(), 1.25);
    assert_eq!(s.tasks[1].owner.0, 1);
}

#[test]
fn scenario_fixture_round_trips_value_identically() {
    let s: Scenario = djson::from_str(SCENARIO_FIXTURE).unwrap();
    let reparsed: Scenario = djson::from_str(&djson::to_string_pretty(&s)).unwrap();
    // Value-level identity: the re-encoded document decodes to the same
    // JSON tree (field order is fixed by the codec macros).
    assert_eq!(s.to_json(), reparsed.to_json());
}

#[test]
fn assignment_fixture_parses_with_exact_values() {
    let f: AssignmentFile = djson::from_str(ASSIGNMENT_FIXTURE).unwrap();
    assert_eq!(f.algorithm.as_str(), "hgos");
    assert_eq!(f.scenario_seed, 7);
    assert_eq!(f.assignment.len(), 2);
    assert_eq!(f.assignment.decision(0).site(), Some(ExecutionSite::Device));
    assert_eq!(
        f.assignment.decision(1).site(),
        Some(ExecutionSite::Station)
    );
    assert_eq!(f.metrics.total_energy.value(), 8.810634886);
    assert_eq!(f.metrics.site_counts, [1, 1, 0]);
}

#[test]
fn assignment_fixture_round_trips_value_identically() {
    let f: AssignmentFile = djson::from_str(ASSIGNMENT_FIXTURE).unwrap();
    let reparsed: AssignmentFile = djson::from_str(&djson::to_string(&f)).unwrap();
    assert_eq!(f.to_json(), reparsed.to_json());
}

#[test]
fn fixture_survives_the_full_write_parse_write_cycle_byte_identically() {
    // Pretty-printing a parsed fixture and parsing it again must yield
    // byte-identical output: the writer is deterministic and the number
    // formatter preserves every value it can represent.
    let s: Scenario = djson::from_str(SCENARIO_FIXTURE).unwrap();
    let once = djson::to_string_pretty(&s);
    let twice = djson::to_string_pretty(&djson::from_str::<Scenario>(&once).unwrap());
    assert_eq!(once, twice);
}

#[test]
fn json_value_from_json_is_lossless_for_the_fixture() {
    // Parsing into the dynamic `Json` value and re-rendering preserves
    // the document structure (modulo whitespace).
    let v: djson::Json = djson::from_str(SCENARIO_FIXTURE).unwrap();
    let compact = djson::to_string(&v);
    let v2: djson::Json = djson::from_str(&compact).unwrap();
    assert_eq!(
        djson::Json::from_json(&v).unwrap(),
        djson::Json::from_json(&v2).unwrap()
    );
}
