//! Warm-start correctness across a full figure sweep: chaining point
//! k+1's relaxation from point k's basis must reproduce the cold
//! objective at every point, and the chained sweep engine must produce
//! bit-identical figures under 1 and 4 worker threads (each seed's chain
//! always runs serially on a single worker).

use dsmec_core::costs::CostTable;
use dsmec_core::hta::{LpHta, WarmBases};
use mec_bench::par::set_threads;
use mec_bench::runner::{eval_algos_warm, sweep_seed_averaged_chained, Algo, WarmChain};
use mec_sim::workload::ScenarioConfig;

/// A fig2b-shaped size sweep: the LP dimensions are constant across
/// points, so the warm chain actually hits.
const POINTS: [f64; 3] = [1000.0, 2000.0, 3000.0];
const SEEDS: [u64; 2] = [101, 102];

fn sweep_cfg(kb: f64, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_defaults(seed);
    cfg.tasks_total = 60;
    cfg.max_input_kb = kb;
    cfg
}

fn warm_figure_rows() -> Vec<Vec<f64>> {
    let algos = [Algo::LpHta(LpHta::paper().without_fast_path())];
    sweep_seed_averaged_chained(&POINTS, &SEEDS, |&kb, seed, chain: &mut WarmChain| {
        eval_algos_warm(&sweep_cfg(kb, seed), seed, &algos, chain, |m| {
            m.total_energy.value()
        })
    })
    .unwrap()
}

#[test]
fn warm_chains_match_cold_objectives_across_a_sweep_at_any_thread_count() {
    // Point k+1 from point k's basis: same LP objective as a cold solve,
    // at every point of the sweep, for every seed.
    let algo = LpHta::paper().without_fast_path();
    for &seed in &SEEDS {
        let mut warm = WarmBases::new();
        for &kb in &POINTS {
            let cfg = sweep_cfg(kb, seed);
            let s = cfg.generate().unwrap();
            let costs = CostTable::build(&s.system, &s.tasks).unwrap();
            let cold = algo.solve_relaxation(&s.system, &s.tasks, &costs).unwrap();
            let chained = algo
                .solve_relaxation_warm(&s.system, &s.tasks, &costs, &mut warm)
                .unwrap();
            let scale = 1.0 + cold.lp_objective.abs();
            assert!(
                (chained.lp_objective - cold.lp_objective).abs() < 1e-6 * scale,
                "seed {seed}, {kb} kB: warm objective {} vs cold {}",
                chained.lp_objective,
                cold.lp_objective
            );
        }
        assert!(
            warm.attempts >= 1 && warm.hits >= 1,
            "seed {seed}: constant-shape sweep should warm-start \
             (attempts {}, hits {})",
            warm.attempts,
            warm.hits
        );
    }

    // The engine's determinism contract: the same chained sweep, run with
    // 1 and 4 worker threads, yields bit-identical figure rows.
    set_threads(1);
    let serial = warm_figure_rows();
    set_threads(4);
    let parallel = warm_figure_rows();
    set_threads(0);
    assert_eq!(serial, parallel);
}
