//! Malformed-input coverage for the `dsmec` JSON loading path: truncated
//! files, wrong field types and unknown fields must all surface readable
//! errors naming the file and the offending location — never a panic.

use mec_bench::cli::{assign_scenario, read_json, AlgorithmName, AssignmentFile};
use mec_sim::workload::{Scenario, ScenarioConfig};
use std::path::PathBuf;

/// A fresh scratch directory per test, to keep parallel tests apart.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("dsmec-malformed")
        .join(format!("{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, text: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path.to_string_lossy().into_owned()
}

/// A small but complete, valid scenario to mutate.
fn valid_scenario_text() -> String {
    let mut cfg = ScenarioConfig::paper_defaults(7);
    cfg.num_stations = 1;
    cfg.devices_per_station = 2;
    cfg.tasks_total = 2;
    djson::to_string_pretty(&cfg.generate().unwrap())
}

#[test]
fn missing_file_names_the_path() {
    let err = read_json::<Scenario>("/nonexistent/scenario.json").unwrap_err();
    assert!(err.contains("reading /nonexistent/scenario.json"), "{err}");
}

#[test]
fn truncated_file_is_a_parse_error_not_a_panic() {
    let dir = scratch("truncated");
    let full = valid_scenario_text();
    // Cut the document at several depths; every prefix must error
    // gracefully and name the file.
    for cut in [1, full.len() / 4, full.len() / 2, full.len() - 2] {
        let path = write(&dir, "truncated.json", &full[..cut]);
        let err = read_json::<Scenario>(&path).unwrap_err();
        assert!(err.contains("parsing"), "cut {cut}: {err}");
        assert!(err.contains("truncated.json"), "cut {cut}: {err}");
    }
}

#[test]
fn wrong_field_type_names_the_field() {
    let dir = scratch("wrong-type");
    let text = valid_scenario_text().replace("\"tasks\": [", "\"tasks\": 5, \"x\": [");
    let path = write(&dir, "wrong.json", &text);
    let err = read_json::<Scenario>(&path).unwrap_err();
    assert!(err.contains("parsing"), "{err}");
    // Either the retyped `tasks` or the now-unknown `x` is reported first;
    // both are readable, field-naming errors.
    assert!(
        err.contains("expected array") || err.contains("unknown field"),
        "{err}"
    );
}

#[test]
fn unknown_field_is_rejected_by_name() {
    let dir = scratch("unknown-field");
    let mut cfg = ScenarioConfig::paper_defaults(7);
    cfg.num_stations = 1;
    cfg.devices_per_station = 2;
    cfg.tasks_total = 2;
    let scenario = cfg.generate().unwrap();
    let file = assign_scenario(&scenario, AlgorithmName::Hgos, 7).unwrap();
    let text =
        djson::to_string_pretty(&file).replace("\"algorithm\"", "\"bogus\": 1,\n  \"algorithm\"");
    let path = write(&dir, "extra.json", &text);
    let err = read_json::<AssignmentFile>(&path).unwrap_err();
    assert!(err.contains("unknown field `bogus`"), "{err}");
}

#[test]
fn non_json_garbage_is_reported_readably() {
    let dir = scratch("garbage");
    let path = write(&dir, "garbage.json", "this is not json at all {{{");
    let err = read_json::<Scenario>(&path).unwrap_err();
    assert!(err.contains("parsing"), "{err}");
    assert!(err.contains("garbage.json"), "{err}");
}

#[test]
fn wrong_toplevel_shape_is_reported() {
    let dir = scratch("toplevel");
    let path = write(&dir, "array.json", "[1, 2, 3]");
    let err = read_json::<Scenario>(&path).unwrap_err();
    assert!(err.contains("expected object"), "{err}");
}
