//! The exported trace shape: stable, versioned, documented in DESIGN.md
//! §7. Everything here round-trips through `djson` (schema test below).
//!
//! ## Versioning / compatibility rule
//!
//! Schema changes are **additive**: new top-level keys may appear, the
//! existing ones never change shape, and `version` is bumped to mark the
//! addition. To keep every released reader working on every future file,
//! [`TraceSnapshot`] deliberately bypasses `djson`'s strict object
//! decoder at the top level: unknown top-level keys are ignored and the
//! `events` array (new in v2) defaults to empty — so a v2 reader parses
//! v1 files and a v1-shaped reader keeps parsing v2 aggregates. The
//! nested record types stay strict; their shapes are frozen per version
//! — with one carve-out: [`HistogramStat`] grew `p50`/`p95`/`p99` in v3,
//! and its hand-written decoder defaults them to 0 when absent so v3
//! readers keep parsing v1/v2 files (`bench/baseline.json` included).

use djson::{impl_json_struct, FromJson, Json, JsonError, ToJson};

/// Version of the trace JSON schema emitted by [`TraceSnapshot`].
/// v1: aggregates only. v2: adds the flight-recorder `events` array.
/// v3: adds the top-level `gauges` array and nearest-rank `p50`/`p95`/
/// `p99` percentile fields on histogram aggregates.
pub const SCHEMA_VERSION: u32 = 3;

/// Aggregated statistics of one named span (timed region).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Metric path, e.g. `lp_hta/relaxation`.
    pub name: String,
    /// Number of times the span ran.
    pub count: u64,
    /// Total wall time across all runs, nanoseconds.
    pub total_ns: u64,
    /// Fastest single run, nanoseconds.
    pub min_ns: u64,
    /// Slowest single run, nanoseconds.
    pub max_ns: u64,
}

impl_json_struct!(SpanStat {
    name,
    count,
    total_ns,
    min_ns,
    max_ns
});

/// Final value of one monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Metric path, e.g. `linprog/simplex/pivots`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

impl_json_struct!(CounterStat { name, value });

/// Current value of one gauge (last write wins). New in schema v3.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeStat {
    /// Metric path, e.g. `serve/queue_depth`.
    pub name: String,
    /// The most recently set value.
    pub value: f64,
}

impl_json_struct!(GaugeStat { name, value });

/// Aggregated statistics of one value histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStat {
    /// Metric path, e.g. `dta/greedy/residual_items`.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (mean = `sum / count`).
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Nearest-rank median, estimated from the fixed log buckets
    /// (upper bucket bound, clamped into `[min, max]`). New in v3.
    pub p50: f64,
    /// Nearest-rank 95th percentile, same estimator. New in v3.
    pub p95: f64,
    /// Nearest-rank 99th percentile, same estimator. New in v3.
    pub p99: f64,
}

impl ToJson for HistogramStat {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), self.name.to_json()),
            ("count".to_string(), self.count.to_json()),
            ("sum".to_string(), self.sum.to_json()),
            ("min".to_string(), self.min.to_json()),
            ("max".to_string(), self.max.to_json()),
            ("p50".to_string(), self.p50.to_json()),
            ("p95".to_string(), self.p95.to_json()),
            ("p99".to_string(), self.p99.to_json()),
        ])
    }
}

impl FromJson for HistogramStat {
    /// Hand-written for the v3 carve-out: the v1 fields are required,
    /// the percentile fields default to 0 when absent (v1/v2 files),
    /// and unknown keys are ignored like at the snapshot top level.
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let Json::Obj(entries) = value else {
            return Err(JsonError::expected("object", value).at("HistogramStat"));
        };
        let mut name = None;
        let mut count = None;
        let mut sum = None;
        let mut min = None;
        let mut max = None;
        let (mut p50, mut p95, mut p99) = (0.0, 0.0, 0.0);
        for (key, field) in entries {
            let pathed = |e: JsonError| e.at(format!("HistogramStat.{key}"));
            match key.as_str() {
                "name" => name = Some(String::from_json(field).map_err(pathed)?),
                "count" => count = Some(u64::from_json(field).map_err(pathed)?),
                "sum" => sum = Some(f64::from_json(field).map_err(pathed)?),
                "min" => min = Some(f64::from_json(field).map_err(pathed)?),
                "max" => max = Some(f64::from_json(field).map_err(pathed)?),
                "p50" => p50 = f64::from_json(field).map_err(pathed)?,
                "p95" => p95 = f64::from_json(field).map_err(pathed)?,
                "p99" => p99 = f64::from_json(field).map_err(pathed)?,
                _ => {}
            }
        }
        let require =
            |field: &str| JsonError::msg(format!("missing field `{field}`")).at("HistogramStat");
        Ok(HistogramStat {
            name: name.ok_or_else(|| require("name"))?,
            count: count.ok_or_else(|| require("count"))?,
            sum: sum.ok_or_else(|| require("sum"))?,
            min: min.ok_or_else(|| require("min"))?,
            max: max.ok_or_else(|| require("max"))?,
            p50,
            p95,
            p99,
        })
    }
}

/// One flight-recorder event: a single finished occurrence of a span,
/// with identity and parent linkage (schema v2, see DESIGN.md §7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Metric path, same namespace as [`SpanStat::name`].
    pub name: String,
    /// Process-unique span id (> 0; ids are never reused).
    pub id: u64,
    /// Id of the enclosing span, 0 for a root. Usually the innermost
    /// open span on the same thread; fan-out workers link across
    /// threads via `mec_obs::span_with_parent`.
    pub parent: u64,
    /// Dense id of the thread the span ran on.
    pub thread: u64,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End time, same epoch; `end_ns >= start_ns`.
    pub end_ns: u64,
}

impl_json_struct!(SpanEvent {
    name,
    id,
    parent,
    thread,
    start_ns,
    end_ns
});

impl SpanEvent {
    /// Wall time of this occurrence, nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One merged, name-sorted export of everything recorded since the last
/// reset. This is the JSON written by `repro --trace` / `dsmec --trace`
/// and embedded by `repro --perf` in `BENCH_parallel.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Schema version ([`SCHEMA_VERSION`]) of the *writer*. Readers
    /// accept any version (see the module-level compatibility rule).
    pub version: u32,
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Counter values, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Gauge values, sorted by name, empty before any `gauge_set` (and
    /// in every v1/v2 file). New in schema v3.
    pub gauges: Vec<GaugeStat>,
    /// Histogram aggregates, sorted by name.
    pub histograms: Vec<HistogramStat>,
    /// Flight-recorder events sorted by start time, empty unless events
    /// were enabled (and in every v1 file). New in schema v2.
    pub events: Vec<SpanEvent>,
}

impl ToJson for TraceSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".to_string(), self.version.to_json()),
            ("spans".to_string(), self.spans.to_json()),
            ("counters".to_string(), self.counters.to_json()),
            ("gauges".to_string(), self.gauges.to_json()),
            ("histograms".to_string(), self.histograms.to_json()),
            ("events".to_string(), self.events.to_json()),
        ])
    }
}

impl FromJson for TraceSnapshot {
    /// Tolerant top-level decode: every section defaults to empty when
    /// absent (v1 files have no `events`), unknown keys are skipped
    /// (future versions only add keys), only `version` is required.
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let Json::Obj(entries) = value else {
            return Err(JsonError::expected("object", value).at("TraceSnapshot"));
        };
        let mut snap = TraceSnapshot {
            version: 0,
            spans: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            events: Vec::new(),
        };
        let mut saw_version = false;
        for (key, field) in entries {
            let pathed = |e: JsonError| e.at(format!("TraceSnapshot.{key}"));
            match key.as_str() {
                "version" => {
                    snap.version = u32::from_json(field).map_err(pathed)?;
                    saw_version = true;
                }
                "spans" => snap.spans = Vec::from_json(field).map_err(pathed)?,
                "counters" => snap.counters = Vec::from_json(field).map_err(pathed)?,
                "gauges" => snap.gauges = Vec::from_json(field).map_err(pathed)?,
                "histograms" => snap.histograms = Vec::from_json(field).map_err(pathed)?,
                "events" => snap.events = Vec::from_json(field).map_err(pathed)?,
                _ => {} // forward compatibility: later versions add keys
            }
        }
        if !saw_version {
            return Err(JsonError::msg("missing field `version`").at("TraceSnapshot"));
        }
        Ok(snap)
    }
}

impl TraceSnapshot {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Looks up a span aggregate by exact name.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Looks up a counter value by exact name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by exact name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram aggregate by exact name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// One counter inside an interval window: the running total plus the
/// delta accumulated since the previous tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterWindow {
    /// Metric path.
    pub name: String,
    /// Cumulative value since the last reset.
    pub total: u64,
    /// Increment within this window.
    pub delta: u64,
}

impl_json_struct!(CounterWindow { name, total, delta });

/// One occupied histogram bucket of a window, in Prometheus `le` form:
/// the cumulative count of window observations at or below `le`.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket (a power of two).
    pub le: f64,
    /// Window observations with value `<= le` (non-decreasing across
    /// the bucket list; the implicit `+Inf` count is the window count).
    pub count: u64,
}

impl_json_struct!(BucketCount { le, count });

/// One histogram windowed over an interval: the delta statistics since
/// the previous tick plus the running total count.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramWindow {
    /// Metric path.
    pub name: String,
    /// Cumulative observation count since the last reset.
    pub total_count: u64,
    /// Observations within this window.
    pub count: u64,
    /// Sum of the window's observed values.
    pub sum: f64,
    /// Lower bound on the window's smallest value (bucket bound
    /// tightened by the cumulative minimum); 0 when the window is empty.
    pub min: f64,
    /// Upper bound on the window's largest value; 0 when empty.
    pub max: f64,
    /// Nearest-rank median over the window's bucket deltas.
    pub p50: f64,
    /// Nearest-rank 95th percentile over the window.
    pub p95: f64,
    /// Nearest-rank 99th percentile over the window.
    pub p99: f64,
    /// The window's occupied buckets, ascending `le`.
    pub buckets: Vec<BucketCount>,
}

impl_json_struct!(HistogramWindow {
    name,
    total_count,
    count,
    sum,
    min,
    max,
    p50,
    p95,
    p99,
    buckets,
});

/// One closed telemetry window, returned by `mec_obs::snapshot_interval`
/// and appended per epoch to the `dsmec serve --metrics-out` JSONL
/// flight log (one compact-encoded snapshot per line).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSnapshot {
    /// Zero-based tick index since the last reset.
    pub interval: u64,
    /// Counter windows, sorted by name.
    pub counters: Vec<CounterWindow>,
    /// Current gauge values, sorted by name.
    pub gauges: Vec<GaugeStat>,
    /// Histogram windows, sorted by name.
    pub histograms: Vec<HistogramWindow>,
}

impl_json_struct!(IntervalSnapshot {
    interval,
    counters,
    gauges,
    histograms,
});

impl IntervalSnapshot {
    /// Looks up a counter window by exact name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<&CounterWindow> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Looks up a gauge value by exact name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram window by exact name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramWindow> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            version: SCHEMA_VERSION,
            spans: vec![SpanStat {
                name: "lp_hta/relaxation".into(),
                count: 3,
                total_ns: 1_500,
                min_ns: 400,
                max_ns: 700,
            }],
            counters: vec![CounterStat {
                name: "linprog/simplex/pivots".into(),
                value: 42,
            }],
            gauges: vec![GaugeStat {
                name: "serve/queue_depth".into(),
                value: 12.0,
            }],
            histograms: vec![HistogramStat {
                name: "dta/greedy/residual_items".into(),
                count: 2,
                sum: 9.0,
                min: 3.0,
                max: 6.0,
                p50: 3.0,
                p95: 6.0,
                p99: 6.0,
            }],
            events: vec![
                SpanEvent {
                    name: "sweep/point".into(),
                    id: 1,
                    parent: 0,
                    thread: 1,
                    start_ns: 10,
                    end_ns: 900,
                },
                SpanEvent {
                    name: "lp_hta/relaxation".into(),
                    id: 2,
                    parent: 1,
                    thread: 1,
                    start_ns: 20,
                    end_ns: 420,
                },
            ],
        }
    }

    /// The schema round-trip the ISSUE asks for: emit → parse with djson
    /// → assert span/counter/event shape.
    #[test]
    fn snapshot_round_trips_through_djson() {
        let snap = sample();
        let text = djson::to_string_pretty(&snap);
        let back: TraceSnapshot = djson::from_str(&text).unwrap();
        assert_eq!(back, snap);

        // The documented top-level shape, checked structurally too.
        let value = djson::parse(&text).unwrap();
        let djson::Json::Obj(fields) = &value else {
            panic!("snapshot must serialize as an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "version",
                "spans",
                "counters",
                "gauges",
                "histograms",
                "events"
            ]
        );
    }

    /// Compat rule for the v3 histogram fields: a pre-v3 file whose
    /// histograms lack `p50`/`p95`/`p99` (and whose top level lacks
    /// `gauges`) still decodes, with the percentiles zeroed.
    #[test]
    fn pre_v3_histograms_without_percentiles_still_parse() {
        let v2 = r#"{
            "version": 2,
            "spans": [],
            "counters": [],
            "histograms": [{"name": "h", "count": 2, "sum": 9.0, "min": 3.0, "max": 6.0}],
            "events": []
        }"#;
        let snap: TraceSnapshot = djson::from_str(v2).unwrap();
        assert!(snap.gauges.is_empty());
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.p50, 0.0);
        assert_eq!(h.p95, 0.0);
        assert_eq!(h.p99, 0.0);
    }

    /// Interval snapshots — the per-epoch flight-log record — round-trip
    /// through djson and expose name lookups like the cumulative shape.
    #[test]
    fn interval_snapshot_round_trips_through_djson() {
        let window = IntervalSnapshot {
            interval: 3,
            counters: vec![CounterWindow {
                name: "serve/assigned".into(),
                total: 100,
                delta: 40,
            }],
            gauges: vec![GaugeStat {
                name: "serve/queue_depth".into(),
                value: 5.0,
            }],
            histograms: vec![HistogramWindow {
                name: "serve/repair_ms".into(),
                total_count: 9,
                count: 4,
                sum: 10.0,
                min: 1.0,
                max: 4.0,
                p50: 2.0,
                p95: 4.0,
                p99: 4.0,
                buckets: vec![
                    BucketCount { le: 2.0, count: 3 },
                    BucketCount { le: 4.0, count: 4 },
                ],
            }],
        };
        let text = djson::to_string(&window);
        let back: IntervalSnapshot = djson::from_str(&text).unwrap();
        assert_eq!(back, window);
        assert_eq!(back.counter("serve/assigned").unwrap().delta, 40);
        assert_eq!(back.gauge("serve/queue_depth"), Some(5.0));
        assert_eq!(back.histogram("serve/repair_ms").unwrap().buckets.len(), 2);
        assert!(back.counter("nope").is_none());
        assert_eq!(back.gauge("nope"), None);
        assert!(back.histogram("nope").is_none());
    }

    /// Compat rule, backward half: a v1 file (no `events` key) still
    /// decodes, with an empty event list.
    #[test]
    fn v1_files_without_events_still_parse() {
        let v1 = r#"{
            "version": 1,
            "spans": [{"name": "a", "count": 1, "total_ns": 5, "min_ns": 5, "max_ns": 5}],
            "counters": [],
            "histograms": []
        }"#;
        let snap: TraceSnapshot = djson::from_str(v1).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.spans.len(), 1);
        assert!(snap.events.is_empty());
    }

    /// Compat rule, forward half: unknown top-level keys from a future
    /// version are ignored, so today's reader parses tomorrow's file.
    #[test]
    fn unknown_top_level_keys_are_ignored() {
        let v4 = r#"{"version": 4, "spans": [], "counters": [], "gauges": [],
                     "histograms": [], "events": [], "future_section": [1, 2, 3]}"#;
        let snap: TraceSnapshot = djson::from_str(v4).unwrap();
        assert_eq!(snap.version, 4);
        assert!(snap.is_empty());
    }

    #[test]
    fn missing_version_is_rejected() {
        let err = djson::from_str::<TraceSnapshot>("{\"spans\": []}").unwrap_err();
        assert!(err.to_string().contains("missing field `version`"), "{err}");
    }

    #[test]
    fn event_duration_saturates() {
        let mut e = sample().events[0].clone();
        assert_eq!(e.duration_ns(), 890);
        e.end_ns = 0;
        assert_eq!(e.duration_ns(), 0);
    }

    #[test]
    fn lookup_helpers_find_by_name() {
        let snap = TraceSnapshot {
            version: SCHEMA_VERSION,
            spans: vec![],
            counters: vec![CounterStat {
                name: "cache/scenario/hits".into(),
                value: 7,
            }],
            gauges: vec![GaugeStat {
                name: "serve/epoch".into(),
                value: 3.0,
            }],
            histograms: vec![],
            events: vec![],
        };
        assert_eq!(snap.counter("cache/scenario/hits"), Some(7));
        assert_eq!(snap.counter("cache/scenario/misses"), None);
        assert_eq!(snap.gauge("serve/epoch"), Some(3.0));
        assert_eq!(snap.gauge("nope"), None);
        assert!(snap.span("nope").is_none());
        assert!(snap.histogram("nope").is_none());
        assert!(!snap.is_empty());
    }
}
